(* Benchmark & figure-regeneration harness.

   `dune exec bench/main.exe` regenerates every table and figure of the paper
   (Figures 1-17 as machine-checked artifacts) and then runs Bechamel timing
   benchmarks validating the complexity claims (Theorem 3.3, Propositions 7.5
   and 7.7) and the tractable-vs-NP-hard shape.

   `dune exec bench/main.exe -- figures` or `-- timing` selects a part;
   `-- fig1` etc. selects a single section. *)

open Resilience
module Db = Graphdb.Db

let lang = Automata.Lang.of_string

let selected name =
  let args = Array.to_list Sys.argv |> List.tl in
  args = []
  || List.mem name args
  || (List.mem "figures" args && not (String.equal name "timing"))

(* Wall-clock timing (these sections report elapsed time, not processor
   time — the pool ablation in particular spends most of it blocked in
   [select] waiting on workers, which [Sys.time] would not see). *)
let time_it f =
  let t0 = Obs.Clock.now () in
  let r = f () in
  let t1 = Obs.Clock.now () in
  (r, t1 -. t0)

let section name title f =
  if selected name then begin
    Printf.printf "\n==== %s ====\n%!" title;
    f ()
  end

(* ------------------------------------------------------------------ *)
(* FIG1: the classification table.                                      *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  Printf.printf
    "Figure 1: complexity of resilience (classifier output, matches the paper cell for cell)\n\n";
  let row kind names =
    Printf.printf "-- %s --\n" kind;
    List.iter
      (fun s ->
        let c = Classify.classify_regex s in
        Printf.printf "  %-18s %s\n" s (Classify.verdict_summary c.Classify.verdict))
      names
  in
  row "infinite / PTIME" [ "ax*b" ];
  row "infinite / unclassified" [ "ax*b|xd" ];
  row "infinite / NP-hard" [ "ax*b|cxd"; "b(aa)*d" ];
  row "finite / PTIME (local)" [ "abc|abd"; "ab|ad|cd"; "abc" ];
  row "finite / PTIME (submodularity, Prp 7.7)" [ "abc|be"; "abcd|ce" ];
  row "finite / PTIME (bipartite chain, Prp 7.5)" [ "ab|bc"; "axb|byc"; "axyb|bztc|cd|dea" ];
  row "finite / unclassified" [ "abc|bcd"; "abcd|be"; "abc|bef" ];
  row "finite / NP-hard (repeated letter, Thm 6.1)" [ "aaaa"; "aa"; "abca|cab" ];
  row "finite / NP-hard (four-legged, Thm 5.5)" [ "axb|cxd" ];
  row "finite / NP-hard (gadgets, Prp 7.6 & 7.8)" [ "ab|bc|ca"; "abcd|be|ef"; "abcd|bef" ]

(* ------------------------------------------------------------------ *)
(* FIG2: local automata and RO-eNFAs for ax*b and ab|ad|cd.            *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  Printf.printf "Figure 2: RO-eNFAs (Lemma B.4) for the two example local languages\n";
  List.iter
    (fun s ->
      let a = lang s in
      let ro = Automata.Local.ro_enfa a in
      Printf.printf "\n%s: local=%b, RO-eNFA read-once=%b, recognizes L=%b\n" s
        (Automata.Local.is_local_language a)
        (Automata.Nfa.is_read_once ro) (Automata.Lang.equiv ro a);
      Format.printf "%a@." Automata.Nfa.pp ro)
    [ "ax*b"; "ab|ad|cd" ]

(* ------------------------------------------------------------------ *)
(* Gadget figures.                                                      *)
(* ------------------------------------------------------------------ *)

let show_gadget ?(verbose = false) (name, g, l) =
  let v = Gadgets.verify g l in
  Printf.printf "  %-32s %s" name (if v.Gadgets.ok then "VALID gadget" else "INVALID");
  (match v.Gadgets.odd_path_length with
  | Some len ->
      Printf.printf " | matches: %2d | condensed odd path length: %d\n"
        (Hypergraph.edge_count v.Gadgets.matches)
        len
  | None -> Printf.printf " (%s)\n" (Option.value ~default:"?" v.Gadgets.failure));
  if verbose then begin
    let c = Gadgets.complete g in
    Format.printf "%a@." Db.pp c.Gadgets.db';
    Format.printf "hypergraph of matches:@.%a@." Hypergraph.pp v.Gadgets.matches;
    Format.printf "condensed:@.%a@." Hypergraph.pp v.Gadgets.condensed
  end

let find_gadget name =
  List.find (fun (n, _, _) -> n = name) (Gadgets.all_paper_gadgets ())

let fig3 () =
  Printf.printf "Figure 3: gadgets for aa (Prop 4.1) and axb|cxd (Prop 4.12)\n";
  show_gadget ~verbose:true (find_gadget "aa (Fig 3a)");
  show_gadget (find_gadget "four-legged case 1 (axb|cxd)")

let fig4 () =
  Printf.printf "Figure 4: endpoint graphs (Definition 7.2)\n";
  List.iter
    (fun s ->
      let ws = Option.get (Automata.Lang.words (lang s)) in
      let letters, edges = Bcl.endpoint_graph ws in
      Printf.printf "  %-18s letters {%s}, endpoint edges {%s} -> chain=%b, BCL=%b\n" s
        (String.concat "" (List.map (String.make 1) letters))
        (String.concat ", " (List.map (fun (a, b) -> Printf.sprintf "%c-%c" a b) edges))
        (Bcl.is_chain ws) (Bcl.is_bcl ws))
    [ "ab|bc"; "axyb|bztc|cd|dea"; "ab|bc|ca" ]

let fig5 () =
  Printf.printf "Figure 5: encoding a directed triangle with the aa gadget (Prop 4.1/4.11)\n";
  let _, g, l = find_gadget "aa (Fig 3a)" in
  let graph = Graphs.Ugraph.cycle 3 in
  let xi = Gadgets.encode g graph in
  Printf.printf "  triangle: 3 nodes, 3 edges; encoding: %d db-nodes, %d facts\n" (Db.nnodes xi)
    (Db.fact_count xi);
  let expected = Gadgets.expected_resilience g l graph in
  let v, _ = Exact.hitting_set xi l in
  Printf.printf "  vc(triangle)=%d; predicted RES = vc + m(l-1)/2 = %d; measured RES_set = %s\n"
    (Graphs.Ugraph.vertex_cover_number graph)
    expected (Value.to_string v)

let fig6 () =
  Printf.printf "Figure 6: full hypergraph of matches of the axb|cxd gadget completion\n";
  let _, g, l = find_gadget "four-legged case 1 (axb|cxd)" in
  let v = Gadgets.verify g l in
  Format.printf "%a@." Hypergraph.pp v.Gadgets.matches;
  Printf.printf "condensation trace (protecting F_in, F_out), as in Appendix C.6:\n";
  let c = Gadgets.complete g in
  let m = Graphdb.Eval.match_hypergraph c.Gadgets.db' l in
  let _, steps =
    Hypergraph.condense_trace ~protected:[ c.Gadgets.f_in; c.Gadgets.f_out ] m
  in
  List.iter (fun st -> Format.printf "  %a@." Hypergraph.pp_step st) steps;
  Printf.printf "resulting odd path (the Fig 3d analogue):\n";
  Format.printf "%a@." Hypergraph.pp v.Gadgets.condensed

let fig7_8 () =
  Printf.printf "Figures 7-8: generic four-legged gadgets (Theorem 5.5)\n";
  Printf.printf " case 1 (no infix of g'xb' in L):\n";
  List.iter
    (fun (s, x, al, be, ga, de) ->
      let l = lang s in
      let g = Gadgets.gadget_four_legged_case1 ~x ~alpha:al ~beta:be ~gamma:ga ~delta:de l in
      show_gadget (s, g, l))
    [
      ("axb|cxd", 'x', "a", "b", "c", "d");
      ("aexfb|cgxhd", 'x', "ae", "fb", "cg", "hd");
      ("abxcb|dxeb", 'x', "ab", "cb", "d", "eb");
    ];
  Printf.printf " case 2 (some infix of g'xb' in L, here c2xb):\n";
  let l = lang "axb|ccxd|cxb" in
  let g = Gadgets.gadget_four_legged_case2 ~x:'x' ~alpha:"a" ~beta:"b" ~gamma:"cc" ~delta:"d" l in
  show_gadget ("axb|ccxd|cxb", g, l)

let fig9_10 () =
  Printf.printf "Figures 9-10: Lemma E.4 gadgets for a-gamma-a and a-gamma-a-delta\n";
  List.iter
    (fun gamma ->
      let g, l = Gadgets.gadget_a_gamma_a ~gamma () in
      show_gadget (g.Gadgets.name, g, l))
    [ "b"; "bc" ];
  List.iter
    (fun (gamma, delta) ->
      let g, l = Gadgets.gadget_a_gamma_a_delta ~gamma ~delta () in
      show_gadget (g.Gadgets.name, g, l))
    [ ("b", "d"); ("bc", "d") ]

let fig_gadget figname gname =
  Printf.printf "%s\n" figname;
  show_gadget (find_gadget gname)

(* ------------------------------------------------------------------ *)
(* Value-level reproduction of the tractability theorems.              *)
(* ------------------------------------------------------------------ *)

let thm33_check () =
  Printf.printf "Theorem 3.3 check: RES_bag(ax*b) via RO-eNFA product MinCut = exact, and\n";
  Printf.printf "the MinCut correspondence of the introduction (a=sources, x=edges, b=sinks)\n";
  List.iter
    (fun seed ->
      let d = Graphdb.Generate.flow_grid ~width:3 ~depth:3 ~max_mult:3 ~seed () in
      let mc =
        match Local_solver.solve d (lang "ax*b") with Ok (v, _) -> v | Error e -> failwith e
      in
      let ex = fst (Exact.branch_and_bound d (lang "ax*b")) in
      Printf.printf "  grid(3x3, seed %d): mincut=%s exact=%s %s\n" seed (Value.to_string mc)
        (Value.to_string ex)
        (if Value.equal mc ex then "AGREE" else "DISAGREE!"))
    [ 1; 2; 3 ]

let prop75_check () =
  Printf.printf "Proposition 7.5 check: BCL MinCut = exact on layered ab|bc workloads\n";
  List.iter
    (fun seed ->
      let d = Graphdb.Generate.layered ~layers:[ 'a'; 'b'; 'c' ] ~width:2 ~max_mult:2 ~seed () in
      let bc = match Bcl.solve d (lang "ab|bc") with Ok (v, _) -> v | Error e -> failwith e in
      let ex = fst (Exact.branch_and_bound d (lang "ab|bc")) in
      Printf.printf "  layered(width 2, seed %d): bcl=%s exact=%s %s\n" seed (Value.to_string bc)
        (Value.to_string ex)
        (if Value.equal bc ex then "AGREE" else "DISAGREE!"))
    [ 1; 2; 3 ]

let prop77_check () =
  Printf.printf "Proposition 7.7 check: submodular solver = exact on abc|be workloads\n";
  List.iter
    (fun seed ->
      let d =
        Graphdb.Generate.random ~nnodes:5 ~nfacts:9 ~alphabet:[ 'a'; 'b'; 'c'; 'e' ] ~max_mult:2
          ~seed ()
      in
      let sm =
        match Submod_solver.solve d (lang "abc|be") with Ok v -> v | Error e -> failwith e
      in
      let ex = fst (Exact.branch_and_bound d (lang "abc|be")) in
      Printf.printf "  random(seed %d): submodular=%s exact=%s %s\n" seed (Value.to_string sm)
        (Value.to_string ex)
        (if Value.equal sm ex then "AGREE" else "DISAGREE!"))
    [ 1; 2; 3 ]

let set_bag_check () =
  Printf.printf
    "Set vs bag semantics (Fig 1 caption: all results hold for both): RES_set = RES_bag on\n";
  Printf.printf "unit multiplicities; multiplicities act as costs otherwise\n";
  List.iter
    (fun s ->
      let d =
        Graphdb.Generate.random ~nnodes:4 ~nfacts:7 ~alphabet:[ 'a'; 'b'; 'x' ] ~max_mult:3
          ~seed:11 ()
      in
      let l = lang s in
      let bag = fst (Exact.branch_and_bound d l) in
      let set = fst (Exact.branch_and_bound (Db.with_unit_mults d) l) in
      Printf.printf "  %-8s RES_bag=%s RES_set=%s (set <= bag: %b)\n" s (Value.to_string bag)
        (Value.to_string set)
        (Value.compare set bag <= 0))
    [ "aa"; "ax*b"; "ab|bc" ]

let thm61_demo () =
  Printf.printf
    "Theorem 6.1 as an executable case analysis: for each reduced finite language with a\n";
  Printf.printf
    "repeated-letter word, replay the proof and emit a verified gadget (strategy shown).\n";
  List.iter
    (fun s ->
      match Hardness.thm61_gadget (lang s) with
      | Ok o ->
          Printf.printf "  %-12s %-42s mirrored=%-5b odd path %s\n" s o.Hardness.strategy
            o.Hardness.mirrored
            (match o.Hardness.verification.Gadgets.odd_path_length with
            | Some l -> string_of_int l
            | None -> "?")
      | Error e -> Printf.printf "  %-12s ERROR %s\n" s e)
    [ "aa"; "aaa"; "aaaa"; "aab"; "aba"; "abba"; "aba|bab"; "abca|cab"; "abab"; "abcbd";
      "bcaa"; "abcadbce" ]

let open_cases () =
  Printf.printf
    "Open cases of the paper (Section 8): bounded gadget search finds nothing, consistent\n";
  Printf.printf "with their open status (a negative search proves nothing).\n";
  List.iter
    (fun s ->
      let t0 = Obs.Clock.now () in
      match Gadget_search.certify_np_hard ~max_matches:5 (lang s) with
      | Some _ -> Printf.printf "  %-10s GADGET FOUND (!) -- NP-hard\n" s
      | None ->
          Printf.printf "  %-10s no gadget up to 5 matches (%.1fs)\n" s (Obs.Clock.now () -. t0))
    [ "abcd|be"; "abc|bcd"; "abc|bef" ]

let ablation_flow () =
  Printf.printf
    "Ablation: Dinic vs push-relabel inside the Theorem 3.3 solver (same product network).\n";
  Printf.printf "  %8s %10s %14s %20s\n" "grid" "|D| facts" "Dinic (s)" "push-relabel (s)";
  List.iter
    (fun w ->
      let d = Graphdb.Generate.flow_grid ~width:w ~depth:w ~max_mult:5 ~seed:3 () in
      let ro = Automata.Local.ro_enfa (lang "ax*b") in
      let net = Local_solver.build_network d ~ro in
      let (c1, t1) =
        time_it (fun () ->
            Flow.Network.min_cut net.Local_solver.net ~source:net.Local_solver.source
              ~sink:net.Local_solver.sink)
      in
      let (c2, t2) =
        time_it (fun () ->
            Flow.Push_relabel.min_cut net.Local_solver.net ~source:net.Local_solver.source
              ~sink:net.Local_solver.sink)
      in
      Printf.printf "  %8d %10d %14.4f %20.4f %s\n" w (Db.fact_count d) t1 t2
        (if Flow.Network.cap_compare c1.Flow.Network.value c2.Flow.Network.value = 0 then
           "[agree]"
         else "[MISMATCH]"))
    [ 8; 16; 24 ]

let ablation_solvers () =
  Printf.printf
    "Ablation: the three exact solvers (witness B&B, hitting set, ILP [23]) agree; the LP\n";
  Printf.printf "relaxation lower-bounds them (integrality gap visible on gadget encodings).\n";
  Printf.printf "  %-22s %10s %8s %8s %8s %10s\n" "instance" "facts" "B&B" "hit-set" "ILP" "LP bound";
  let g_aa, l_aa = Gadgets.gadget_aa () in
  let instances =
    [
      ("aa / path encoding", Gadgets.encode g_aa (Graphs.Ugraph.path 3), l_aa);
      ("aa / triangle enc.", Gadgets.encode g_aa (Graphs.Ugraph.cycle 3), l_aa);
      ( "ab|bc|ca / random",
        Graphdb.Generate.random ~nnodes:5 ~nfacts:10 ~alphabet:[ 'a'; 'b'; 'c' ] ~seed:5 (),
        lang "ab|bc|ca" );
    ]
  in
  List.iter
    (fun (name, d, l) ->
      let bnb = fst (Exact.branch_and_bound d l) in
      let hs = fst (Exact.hitting_set d l) in
      let ilp = match Ilp_solver.solve d l with Ok (v, _) -> v | Error _ -> Value.Infinite in
      let lp = match Ilp_solver.lp_relaxation d l with Ok x -> x | Error _ -> nan in
      Printf.printf "  %-22s %10d %8s %8s %8s %10.2f %s\n" name (Db.fact_count d)
        (Value.to_string bnb) (Value.to_string hs) (Value.to_string ilp) lp
        (if Value.equal bnb hs && Value.equal hs ilp then "[agree]" else "[MISMATCH]"))
    instances

(* ------------------------------------------------------------------ *)
(* Scaling series (wall-clock, printed as paper-style series).         *)
(* ------------------------------------------------------------------ *)

let scaling_local () =
  Printf.printf
    "Theorem 3.3 scaling: RES_bag(ax*b) on flow grids; time grows near-linearly in |D|\n";
  Printf.printf "  %8s %8s %10s %12s\n" "width" "depth" "|D| facts" "time (s)";
  List.iter
    (fun (w, dep) ->
      let d = Graphdb.Generate.flow_grid ~width:w ~depth:dep ~max_mult:5 ~seed:42 () in
      let (v, _), t = time_it (fun () -> Local_solver.solve d (lang "ax*b") |> Result.get_ok) in
      Printf.printf "  %8d %8d %10d %12.4f (RES=%s)\n" w dep (Db.fact_count d) t
        (Value.to_string v))
    [ (4, 4); (8, 8); (16, 16); (24, 24); (32, 32) ]

let scaling_bcl () =
  Printf.printf "Proposition 7.5 scaling: RES_bag(ab|bc) on layered databases\n";
  Printf.printf "  %8s %10s %12s\n" "width" "|D| facts" "time (s)";
  List.iter
    (fun w ->
      let d =
        Graphdb.Generate.layered ~layers:[ 'a'; 'b'; 'c' ] ~width:w ~density:0.4 ~seed:7 ()
      in
      let (v, _), t = time_it (fun () -> Bcl.solve d (lang "ab|bc") |> Result.get_ok) in
      Printf.printf "  %8d %10d %12.4f (RES=%s)\n" w (Db.fact_count d) t (Value.to_string v))
    [ 4; 8; 12; 16 ]

let scaling_hardness () =
  Printf.printf
    "Hardness shape: exact solving of RES_set(aa) on gadget encodings of growing paths\n";
  Printf.printf "(NP-hard, Thm 6.1) vs the Thm 3.3 MinCut solver for the local language abc\n";
  Printf.printf "on the same databases: the exact solver's time explodes, MinCut stays flat.\n";
  Printf.printf "  %8s %10s %16s %16s\n" "path n" "|D| facts" "exact aa (s)" "mincut abc (s)";
  let g, l = Gadgets.gadget_aa () in
  List.iter
    (fun n ->
      let xi = Gadgets.encode g (Graphs.Ugraph.path n) in
      let (v1, _), t1 = time_it (fun () -> Exact.hitting_set xi l) in
      let _, t2 = time_it (fun () -> Local_solver.solve xi (lang "abc") |> Result.get_ok) in
      Printf.printf "  %8d %10d %16.4f %16.4f (RES_aa=%s)\n" n (Db.fact_count xi) t1 t2
        (Value.to_string v1))
    [ 3; 5; 7; 9 ]

let ablation_chain_extraction () =
  Printf.printf
    "Ablation: Lemma F.2 trie extraction vs determinization for chain-language word lists\n";
  Printf.printf "(the former gives Prop 7.5 its combined-complexity bound).\n";
  (* build a large BCL over many letters: a1 b | b c1 | ... *)
  let letters = "abcdefghijklmnopqrstuvwxyz" in
  let k = 24 in
  let words = List.init k (fun i -> Printf.sprintf "%c%c" letters.[i] letters.[i + 1]) in
  let a = Automata.Nfa.of_words words in
  let (r1, t1) = time_it (fun () -> Bcl.words_of_chain_nfa a) in
  let (r2, t2) = time_it (fun () -> Automata.Lang.words a) in
  let ok =
    match (r1, r2) with
    | Ok ws1, Some ws2 -> List.sort compare ws1 = List.sort compare ws2
    | _ -> false
  in
  Printf.printf "  %d words over %d letters: Lemma F.2 %.4fs, determinization %.4fs (%s)\n" k
    (k + 1) t1 t2
    (if ok then "same word list" else "MISMATCH");
  ignore (r1, r2)

let scaling_submodular () =
  Printf.printf
    "Proposition 7.7 scaling: RES_bag(abc|be) via submodular minimization on growing DBs\n";
  Printf.printf "  %8s %10s %12s\n" "nfacts" "|ground|" "time (s)";
  List.iter
    (fun nfacts ->
      let d =
        Graphdb.Generate.random ~nnodes:(2 + (nfacts / 3)) ~nfacts
          ~alphabet:[ 'a'; 'b'; 'c'; 'e' ] ~max_mult:2 ~seed:17 ()
      in
      match Submod_solver.recognize [ "abc"; "be" ] with
      | None -> ()
      | Some shape ->
          let ground, _ = Submod_solver.oracle d shape in
          let (v, t) =
            time_it (fun () -> Submod_solver.solve d (lang "abc|be") |> Result.get_ok)
          in
          Printf.printf "  %8d %10d %12.4f (RES=%s)\n" nfacts (List.length ground) t
            (Value.to_string v))
    [ 10; 20; 40; 80 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)
(* ------------------------------------------------------------------ *)

(* The micro-benchmark cases, shared between Bechamel (statistical OLS
   estimates) and the hand-rolled sampler below (absolute wall-clock
   medians written to BENCH_pr4.json for cross-commit diffing). *)
let micro_cases () =
  let grid w = Graphdb.Generate.flow_grid ~width:w ~depth:w ~max_mult:3 ~seed:1 () in
  let layered w =
    Graphdb.Generate.layered ~layers:[ 'a'; 'b'; 'c' ] ~width:w ~density:0.4 ~seed:1 ()
  in
  let rnd n f =
    Graphdb.Generate.random ~nnodes:n ~nfacts:f ~alphabet:[ 'a'; 'b'; 'c'; 'e' ] ~seed:5 ()
  in
  let axb = lang "ax*b" and abbc = lang "ab|bc" and abcbe = lang "abc|be" in
  let abbc_cl = Classify.classify abbc in
  let axb_cl = Classify.classify axb in
  let d8 = grid 8 and d16 = grid 16 in
  let l6 = layered 6 and l12 = layered 12 in
  let r7 = rnd 5 8 in
  let g_aa, l_aa = Gadgets.gadget_aa () in
  let xi5 = Gadgets.encode g_aa (Graphs.Ugraph.path 5) in
  [
    ("THM3.3/local-mincut/grid8", fun () -> ignore (Solver.solve ~classification:axb_cl d8 axb));
    ( "THM3.3/local-mincut/grid16",
      fun () -> ignore (Solver.solve ~classification:axb_cl d16 axb) );
    ( "PROP7.5/bcl-mincut/layered6",
      fun () -> ignore (Solver.solve ~classification:abbc_cl l6 abbc) );
    ( "PROP7.5/bcl-mincut/layered12",
      fun () -> ignore (Solver.solve ~classification:abbc_cl l12 abbc) );
    ("PROP7.7/submodular/random8", fun () -> ignore (Submod_solver.solve r7 abcbe));
    ("HARD/exact-bnb/aa-path5", fun () -> ignore (Exact.hitting_set xi5 l_aa));
    ("CLASSIFY/figure1/axb|cxd", fun () -> ignore (Classify.classify_regex "axb|cxd"));
    ("GADGET/verify/aa", fun () -> ignore (Gadgets.verify g_aa l_aa));
  ]

let bechamel_tests cases =
  let open Bechamel in
  List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) cases

let run_bechamel cases =
  let open Bechamel in
  let open Toolkit in
  Printf.printf "Bechamel micro-benchmarks (estimated time per run)\n%!";
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.3) ~kde:None () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> nan
          in
          let unit, value =
            if est > 1e9 then ("s ", est /. 1e9)
            else if est > 1e6 then ("ms", est /. 1e6)
            else if est > 1e3 then ("us", est /. 1e3)
            else ("ns", est)
          in
          Printf.printf "  %-42s %10.2f %s/run\n%!" name value unit)
        results)
    (bechamel_tests cases)

(* Absolute wall-clock samples over the same cases: 3 warmups, 31 timed
   runs, median and p99 per section. The machine-readable artifact lets
   CI diff timings across commits without parsing Bechamel's output. *)
let write_bench_json cases =
  let nruns = 31 in
  let sample f =
    for _ = 1 to 3 do
      f ()
    done;
    let xs =
      Array.init nruns (fun _ ->
          let t0 = Obs.Clock.now () in
          f ();
          Obs.Clock.now () -. t0)
    in
    Array.sort compare xs;
    let rank q = min (nruns - 1) (int_of_float (Float.ceil (q *. float_of_int nruns)) - 1) in
    (xs.(rank 0.5), xs.(rank 0.99))
  in
  let open Runner.Proto.Json in
  let entries =
    List.map
      (fun (name, f) ->
        let median, p99 = sample f in
        Obj
          [
            ("name", Str name); ("n", Int nruns); ("median_s", Float median); ("p99_s", Float p99);
          ])
      cases
  in
  Out_channel.with_open_text "BENCH_pr4.json" (fun oc ->
      output_string oc (to_string (List entries));
      output_char oc '\n');
  Printf.printf "  wrote BENCH_pr4.json (%d sections, n=%d each)\n%!" (List.length entries) nruns

let run_timing () =
  let cases = micro_cases () in
  run_bechamel cases;
  write_bench_json cases

(* ------------------------------------------------------------------ *)
(* ABLATION: anytime degradation chain — answer quality vs work budget. *)
(* ------------------------------------------------------------------ *)

let ablation_anytime () =
  Printf.printf
    "Anytime degradation on the K4 vertex-cover encoding of `aa` (exact resilience 15):\n\
     the budgeted chain (B&B slice -> ILP slice -> LP + greedy bounds) vs the step budget.\n\n";
  let pre, l = Gadgets.gadget_aa () in
  let d = Gadgets.encode pre (Graphs.Ugraph.complete 4) in
  Printf.printf "  %10s  %-28s %s\n" "steps" "outcome" "time";
  List.iter
    (fun steps ->
      let (outcome, spent), dt =
        time_it (fun () ->
            Faults.with_plan Faults.Off (fun () ->
                let b = Budget.create ~steps () in
                let outcome = Solver.solve_bounded ~budget:b d l in
                (outcome, Budget.spent b)))
      in
      let show =
        match outcome with
        | Solver.Exact r ->
            Format.asprintf "exact %a via %s" Value.pp r.Solver.value
              (Solver.algorithm_name r.Solver.algorithm)
        | Solver.Bounded { lower; upper; _ } ->
            Format.asprintf "%a <= RES <= %a" Value.pp lower Value.pp upper
      in
      Printf.printf "  %10d  %-28s %.3fs (%d ticks spent)\n%!" steps show dt spent.Budget.steps)
    [ 100; 500; 1_000; 2_000; 5_000; 20_000; 100_000 ]

let ablation_pool () =
  Printf.printf
    "Supervised pool throughput on a mixed job file (easy exact solves, budgeted hard\n\
     solves, and one kill:50 crasher that must degrade through retries), vs worker count.\n\
     Machine-readable: one `BENCH {json}` line per configuration.\n\n";
  let pre, _ = Gadgets.gadget_aa () in
  let hard_db = Graphdb.Serialize.to_string (Gadgets.encode pre (Graphs.Ugraph.complete 5)) in
  let easy_db = "s a m\nm a t\n" in
  let job id db steps faults =
    {
      Runner.Proto.id;
      db;
      query = "aa";
      budget = { Runner.Proto.no_budget with steps };
      faults;
      deadline_ms = None;
      priority = Runner.Proto.default_priority;
      trace = None;
    }
  in
  let jobs =
    List.init 24 (fun i -> job (Printf.sprintf "easy%d" i) easy_db None (Some "off"))
    @ List.init 11 (fun i -> job (Printf.sprintf "hard%d" i) hard_db (Some 400) (Some "off"))
    @ [ job "crash" hard_db (Some 1000) (Some "kill:50") ]
  in
  let njobs = List.length jobs in
  let percentile sorted p =
    sorted.(min (Array.length sorted - 1) (int_of_float (p *. float_of_int (Array.length sorted))))
  in
  Printf.printf "  %8s %10s %12s %10s %10s %10s\n" "workers" "jobs" "wall (s)" "jobs/s" "p50 (s)"
    "p99 (s)";
  List.iter
    (fun workers ->
      let cfg = { Runner.default_config with Runner.workers; retries = 3; backoff = 0.005 } in
      let t0 = Runner.now_s () in
      let replies, stats = Runner.run_batch cfg jobs in
      let wall = Runner.now_s () -. t0 in
      let lat =
        List.map (fun (r : Runner.Proto.reply) -> r.Runner.Proto.wall_s) replies
        |> Array.of_list
      in
      Array.sort compare lat;
      let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
      let rate = float_of_int njobs /. wall in
      Printf.printf "  %8d %10d %12.3f %10.1f %10.4f %10.4f  (%d failures)\n%!" workers njobs
        wall rate p50 p99 stats.Runner.failures;
      let open Runner.Proto.Json in
      Printf.printf "BENCH %s\n%!"
        (to_string
           (Obj
              [
                ("bench", Str "pool_throughput");
                ("workers", Int workers);
                ("jobs", Int njobs);
                ("wall_s", Float wall);
                ("jobs_per_s", Float rate);
                ("p50_s", Float p50);
                ("p99_s", Float p99);
                ("failures", Int stats.Runner.failures);
              ])))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* ABLATION: journal durability — sync policy, recovery, compaction.   *)
(* ------------------------------------------------------------------ *)

let ablation_journal () =
  Printf.printf
    "Journal v2 ablation: per-append cost of each sync policy (Never / Per_line /\n\
     Per_job over Done records, so Per_job actually fsyncs), recovery (load) time vs\n\
     journal size, and the compaction ratio on a heavily superseded journal.\n\
     Machine-readable: BENCH_pr5.json.\n\n";
  let module J = Runner.Journal in
  let open Runner.Proto.Json in
  let with_temp f =
    let path = Filename.temp_file "rpq_bench_journal" ".jnl" in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ path; path ^ ".tmp" ])
      (fun () -> Sys.remove path; f path)
  in
  let done_entry id =
    J.Done
      {
        id;
        digest = "bench-digest";
        reply = Runner.Proto.failed ~id ~kind:"bench" "journal ablation payload";
      }
  in
  let percentile sorted q =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1))
  in
  (* Per-append latency under each sync policy. *)
  let nappends = 201 in
  let sync_name = function
    | J.Never -> "never" | J.Per_line -> "per_line" | J.Per_job -> "per_job"
  in
  Printf.printf "  %-10s %10s %14s %14s %14s\n" "sync" "appends" "median (s)" "p99 (s)"
    "records/s";
  let append_rows =
    List.map
      (fun sync ->
        with_temp (fun path ->
            let j = match J.open_append ~sync path with Ok j -> j | Error e -> failwith e in
            Fun.protect ~finally:(fun () -> J.close j) @@ fun () ->
            for i = 1 to 8 do
              J.append j (done_entry (Printf.sprintf "warm%d" i))
            done;
            let xs =
              Array.init nappends (fun i ->
                  let e = done_entry (Printf.sprintf "job%d" i) in
                  let t0 = Obs.Clock.now () in
                  J.append j e;
                  Obs.Clock.now () -. t0)
            in
            let total = Array.fold_left ( +. ) 0.0 xs in
            Array.sort compare xs;
            let median = percentile xs 0.5 and p99 = percentile xs 0.99 in
            let rate = float_of_int nappends /. total in
            Printf.printf "  %-10s %10d %14.6f %14.6f %14.0f\n%!" (sync_name sync) nappends
              median p99 rate;
            Obj
              [
                ("sync", Str (sync_name sync));
                ("appends", Int nappends);
                ("median_append_s", Float median);
                ("p99_append_s", Float p99);
                ("records_per_s", Float rate);
              ]))
      [ J.Never; J.Per_line; J.Per_job ]
  in
  (* Recovery: load time as a function of journal size. *)
  Printf.printf "\n  %10s %12s %12s\n" "records" "bytes" "load (s)";
  let recovery_rows =
    List.map
      (fun records ->
        with_temp (fun path ->
            let j = match J.open_append ~sync:J.Never path with
              | Ok j -> j | Error e -> failwith e
            in
            for i = 1 to records do
              J.append j (done_entry (Printf.sprintf "job%d" i))
            done;
            J.close j;
            let rep, load_s =
              time_it (fun () ->
                  match J.load path with Ok r -> r | Error e -> failwith e)
            in
            Printf.printf "  %10d %12d %12.6f\n%!" rep.J.records rep.J.bytes load_s;
            Obj
              [
                ("records", Int rep.J.records); ("bytes", Int rep.J.bytes);
                ("load_s", Float load_s);
              ]))
      [ 100; 400; 1600 ]
  in
  (* Compaction: 50 jobs, 8 superseded Done versions each. *)
  let compaction_row =
    with_temp (fun path ->
        let j = match J.open_append ~sync:J.Never path with
          | Ok j -> j | Error e -> failwith e
        in
        for v = 1 to 8 do
          ignore v;
          for i = 1 to 50 do
            J.append j (done_entry (Printf.sprintf "job%d" i))
          done
        done;
        J.close j;
        let stats, compact_s =
          time_it (fun () ->
              match J.compact path with Ok s -> s | Error e -> failwith e)
        in
        let ratio =
          float_of_int stats.J.after_bytes /. float_of_int stats.J.before_bytes
        in
        Printf.printf
          "\n  compaction: %d kept, %d dropped, %d -> %d bytes (ratio %.3f) in %.6fs\n%!"
          stats.J.kept stats.J.dropped stats.J.before_bytes stats.J.after_bytes ratio
          compact_s;
        Obj
          [
            ("kept", Int stats.J.kept); ("dropped", Int stats.J.dropped);
            ("before_bytes", Int stats.J.before_bytes);
            ("after_bytes", Int stats.J.after_bytes); ("ratio", Float ratio);
            ("compact_s", Float compact_s);
          ])
  in
  Out_channel.with_open_text "BENCH_pr5.json" (fun oc ->
      output_string oc
        (to_string
           (Obj
              [
                ("append", List append_rows); ("recovery", List recovery_rows);
                ("compaction", compaction_row);
              ]));
      output_char oc '\n');
  Printf.printf "  wrote BENCH_pr5.json\n%!"

(* ------------------------------------------------------------------ *)
(* ABLATION: multi-client serve — cache, throughput, shedding.         *)
(* ------------------------------------------------------------------ *)

let ablation_serve () =
  Printf.printf
    "Serve ablation: certificate-gated cache hit vs recompute latency, throughput vs\n\
     concurrent client count over pre-connected socketpairs, and the shed rate when\n\
     the admission queue saturates.\n\
     Machine-readable: BENCH_pr8.json.\n\n";
  let open Runner.Proto.Json in
  let percentile sorted q =
    sorted.(min (Array.length sorted - 1) (int_of_float (q *. float_of_int (Array.length sorted))))
  in
  let pre, _ = Gadgets.gadget_aa () in
  let hard_db = Graphdb.Serialize.to_string (Gadgets.encode pre (Graphs.Ugraph.complete 5)) in
  let easy_db = "s a m\nm a t\n" in
  let job id db steps =
    {
      Runner.Proto.id;
      db;
      query = "aa";
      budget = { Runner.Proto.no_budget with steps };
      faults = Some "off";
      deadline_ms = None;
      priority = Runner.Proto.default_priority;
      trace = None;
    }
  in
  (* Drive serve_sockets end-to-end: each client pre-writes its job
     lines on its socketpair end and half-closes; replies are read back
     after the server returns. *)
  let serve_clients scfg jobs_per_client =
    let ends = List.map (fun _ -> Runner.Transport.pair ()) jobs_per_client in
    let chans = List.map (fun (_, fd) -> Runner.Transport.channels_of_fd fd) ends in
    List.iter2
      (fun (_, oc) js ->
        List.iter (fun j -> output_string oc (Runner.Proto.job_to_json j ^ "\n")) js;
        Runner.Transport.shutdown_send oc)
      chans jobs_per_client;
    let (), wall =
      time_it (fun () -> Runner.serve_sockets ~preconnected:(List.map fst ends) scfg)
    in
    let replies =
      List.concat_map
        (fun (ic, oc) ->
          let rec rd acc =
            match input_line ic with
            | line -> rd (line :: acc)
            | exception End_of_file ->
                close_in ic;
                close_out_noerr oc;
                List.rev acc
          in
          List.filter_map
            (fun line -> Result.to_option (Runner.Proto.reply_of_json line))
            (rd []))
        chans
    in
    (wall, replies)
  in
  (* 1. Cache hit (certificate re-check included) vs recompute, on a
     budgeted hard solve. *)
  let jh = job "h" hard_db (Some 400) in
  let digest = Runner.Journal.canonical_digest jh in
  let reply = Runner.run_job_locally jh in
  let cache = Runner.Cache.create ~entries:16 in
  Runner.Cache.store cache ~digest reply;
  let time_many n f = Array.init n (fun _ -> snd (time_it f)) in
  let hit_lat =
    time_many 500 (fun () ->
        match Runner.Cache.find cache ~digest ~id:"x" with
        | Runner.Cache.Hit _ -> ()
        | Runner.Cache.Miss | Runner.Cache.Cert_reject _ -> ())
  in
  let miss_lat = time_many 40 (fun () -> ignore (Runner.run_job_locally jh)) in
  Array.sort compare hit_lat;
  Array.sort compare miss_lat;
  let hit_p50 = percentile hit_lat 0.50 and hit_p99 = percentile hit_lat 0.99 in
  let miss_p50 = percentile miss_lat 0.50 and miss_p99 = percentile miss_lat 0.99 in
  Printf.printf "  cache hit   p50 %.6fs  p99 %.6fs  (n=%d, cert re-checked per hit)\n"
    hit_p50 hit_p99 (Array.length hit_lat);
  Printf.printf "  recompute   p50 %.6fs  p99 %.6fs  (n=%d)\n%!" miss_p50 miss_p99
    (Array.length miss_lat);
  let cache_row =
    Obj
      [
        ("hit_p50_s", Float hit_p50); ("hit_p99_s", Float hit_p99);
        ("miss_p50_s", Float miss_p50); ("miss_p99_s", Float miss_p99);
        ("speedup_p50", Float (miss_p50 /. Float.max hit_p50 1e-9));
      ]
  in
  (* 2. Throughput vs concurrent clients: a fixed mixed job set split
     round-robin across k clients, cache off so every job computes. *)
  let total = 48 in
  let all_jobs =
    List.init total (fun i ->
        if i mod 4 = 3 then job (Printf.sprintf "h%d" i) hard_db (Some 400)
        else job (Printf.sprintf "e%d" i) easy_db None)
  in
  Printf.printf "\n  %8s %10s %12s %10s\n" "clients" "jobs" "wall (s)" "jobs/s";
  let throughput_rows =
    List.map
      (fun nclients ->
        let buckets = Array.make nclients [] in
        List.iteri (fun i j -> buckets.(i mod nclients) <- j :: buckets.(i mod nclients)) all_jobs;
        let per_client = Array.to_list (Array.map List.rev buckets) in
        let base =
          { Runner.default_config with Runner.workers = 4; retries = 1; backoff = 0.005 }
        in
        let scfg = { Runner.default_serve_config with Runner.base = base; cache_entries = 0 } in
        let wall, replies = serve_clients scfg per_client in
        let rate = float_of_int (List.length replies) /. wall in
        Printf.printf "  %8d %10d %12.3f %10.1f\n%!" nclients (List.length replies) wall rate;
        Obj
          [
            ("clients", Int nclients); ("jobs", Int (List.length replies));
            ("wall_s", Float wall); ("jobs_per_s", Float rate);
          ])
      [ 1; 2; 4; 8 ]
  in
  (* 3. Shedding under overload: a tiny queue cap against four eager
     clients; retriable `overloaded' replies are the safety valve. *)
  let overload_jobs = List.init 32 (fun i -> job (Printf.sprintf "o%d" i) easy_db None) in
  let per_client = List.init 4 (fun c ->
      List.map (fun (j : Runner.Proto.job) ->
          { j with Runner.Proto.id = Printf.sprintf "c%d_%s" c j.Runner.Proto.id })
        overload_jobs)
  in
  let base = { Runner.default_config with Runner.workers = 2; retries = 0; queue_cap = 8 } in
  let scfg = { Runner.default_serve_config with Runner.base = base; cache_entries = 0 } in
  let wall, replies = serve_clients scfg per_client in
  let shed =
    List.length
      (List.filter
         (fun (r : Runner.Proto.reply) ->
           match r.Runner.Proto.verdict with
           | Runner.Proto.V_failed { kind = "overloaded"; _ } -> true
           | _ -> false)
         replies)
  in
  let nreplies = List.length replies in
  let shed_rate = float_of_int shed /. float_of_int (max 1 nreplies) in
  Printf.printf
    "\n  overload: %d jobs over 4 clients, queue cap 8 -> %d shed (%.1f%%) in %.3fs\n%!"
    nreplies shed (100.0 *. shed_rate) wall;
  let shed_row =
    Obj
      [
        ("jobs", Int nreplies); ("clients", Int 4); ("queue_cap", Int 8);
        ("shed", Int shed); ("shed_rate", Float shed_rate); ("wall_s", Float wall);
      ]
  in
  Out_channel.with_open_text "BENCH_pr8.json" (fun oc ->
      output_string oc
        (to_string
           (Obj
              [
                ("cache", cache_row); ("throughput", List throughput_rows);
                ("shedding", shed_row);
              ]));
      output_char oc '\n');
  Printf.printf "  wrote BENCH_pr8.json\n%!"

let ablation_hedge () =
  Printf.printf
    "Hedging / overload ablation: per-job latency with certificate-gated hedging off\n\
     vs on under a deterministic wedge mix (the parity claim: identical settlements,\n\
     wall clock aside), and the shed rate by priority class at ~2x queue overload.\n\
     Machine-readable: BENCH_pr10.json.\n\n";
  let open Runner.Proto.Json in
  let percentile sorted q =
    sorted.(min (Array.length sorted - 1) (int_of_float (q *. float_of_int (Array.length sorted))))
  in
  let pre, _ = Gadgets.gadget_aa () in
  let hard_db = Graphdb.Serialize.to_string (Gadgets.encode pre (Graphs.Ugraph.complete 5)) in
  let easy_db = "s a m\nm a t\n" in
  let job ?deadline_ms ?(priority = Runner.Proto.default_priority) ?(faults = "off") id db
      steps =
    {
      Runner.Proto.id;
      db;
      query = "aa";
      budget = { Runner.Proto.no_budget with steps };
      faults = Some faults;
      deadline_ms;
      priority;
      trace = None;
    }
  in
  (* 1. Hedging off vs on over one batch: every third job wedges at tick
     50 (so it burns wall timeout + grace per attempt until degradation
     preempts the wedge), the rest are clean. The hedge duplicates the
     primary's payload verbatim, so under this deterministic plan it can
     never win on outcome — the measurement is that it also costs
     nothing: settlements are pairwise equal modulo wall clock. *)
  let mix () =
    List.init 24 (fun i ->
        if i mod 3 = 0 then
          job (Printf.sprintf "w%d" i) hard_db (Some 1000) ~faults:"wedge:50"
        else if i mod 3 = 1 then job (Printf.sprintf "h%d" i) hard_db (Some 200)
        else job (Printf.sprintf "e%d" i) easy_db None)
  in
  let cfg hedge_after =
    {
      Runner.default_config with
      Runner.workers = 4;
      retries = 2;
      job_timeout = Some 0.3;
      grace = 0.2;
      backoff = 0.005;
      hedge_after;
    }
  in
  let latencies replies =
    let a =
      Array.of_list (List.map (fun (r : Runner.Proto.reply) -> r.Runner.Proto.wall_s) replies)
    in
    Array.sort compare a;
    a
  in
  let hedge_counter = Obs.Metrics.counter "runner.hedges_total" in
  let win_counter = Obs.Metrics.counter "runner.hedge_wins_total" in
  let off_replies, _ = Runner.run_batch (cfg None) (mix ()) in
  let hedges0 = Obs.Metrics.count hedge_counter and wins0 = Obs.Metrics.count win_counter in
  let on_replies, _ = Runner.run_batch (cfg (Some 0.02)) (mix ()) in
  let hedges = Obs.Metrics.count hedge_counter - hedges0 in
  let wins = Obs.Metrics.count win_counter - wins0 in
  let off_lat = latencies off_replies and on_lat = latencies on_replies in
  let off_p50 = percentile off_lat 0.50 and off_p99 = percentile off_lat 0.99 in
  let on_p50 = percentile on_lat 0.50 and on_p99 = percentile on_lat 0.99 in
  let parity =
    List.for_all2 Runner.Proto.reply_equal_ignoring_time off_replies on_replies
  in
  Printf.printf "  hedging off  p50 %.4fs  p99 %.4fs  (n=%d)\n" off_p50 off_p99
    (Array.length off_lat);
  Printf.printf "  hedging on   p50 %.4fs  p99 %.4fs  (%d hedges, %d wins)\n" on_p50 on_p99
    hedges wins;
  Printf.printf "  settlement parity (modulo wall clock): %b\n%!" parity;
  let hedging_row =
    Obj
      [
        ("off_p50_s", Float off_p50); ("off_p99_s", Float off_p99);
        ("on_p50_s", Float on_p50); ("on_p99_s", Float on_p99);
        ("hedges", Int hedges); ("hedge_wins", Int wins); ("parity", Bool parity);
      ]
  in
  (* 2. Shed rate by priority class: one client per class, each pushing
     16 budgeted hard jobs at a queue capped at 8 with one worker —
     roughly 2x overload once inflight and queued slots are counted.
     Interactive arrivals evict queued batch work at the cap, so the
     shed burden lands on the low classes. *)
  let per_class = 16 and queue_cap = 8 in
  let classes = [ "batch"; "normal"; "interactive" ] in
  let per_client =
    List.map
      (fun cls ->
        List.init per_class (fun i ->
            job (Printf.sprintf "%s%d" cls i) hard_db (Some 200) ~priority:cls))
      classes
  in
  let base =
    { Runner.default_config with Runner.workers = 1; retries = 0; queue_cap }
  in
  let scfg =
    { Runner.default_serve_config with Runner.base = base; cache_entries = 0 }
  in
  let ends = List.map (fun _ -> Runner.Transport.pair ()) per_client in
  let chans = List.map (fun (_, fd) -> Runner.Transport.channels_of_fd fd) ends in
  List.iter2
    (fun (_, oc) js ->
      List.iter
        (fun j -> output_string oc (Runner.Proto.job_to_wire_json j ^ "\n"))
        js;
      Runner.Transport.shutdown_send oc)
    chans per_client;
  let (), wall =
    time_it (fun () -> Runner.serve_sockets ~preconnected:(List.map fst ends) scfg)
  in
  let shed_of replies =
    List.length
      (List.filter
         (fun (r : Runner.Proto.reply) ->
           match r.Runner.Proto.verdict with
           | Runner.Proto.V_failed { kind = "overloaded"; _ } -> true
           | _ -> false)
         replies)
  in
  Printf.printf "\n  %12s %6s %6s %10s\n" "class" "jobs" "shed" "shed rate";
  let class_rows =
    List.map2
      (fun cls (ic, oc) ->
        let rec rd acc =
          match input_line ic with
          | line -> rd (line :: acc)
          | exception End_of_file ->
              close_in ic;
              close_out_noerr oc;
              List.rev acc
        in
        let replies =
          List.filter_map
            (fun line -> Result.to_option (Runner.Proto.reply_of_json line))
            (rd [])
        in
        let shed = shed_of replies in
        let rate = float_of_int shed /. float_of_int (max 1 (List.length replies)) in
        Printf.printf "  %12s %6d %6d %9.1f%%\n%!" cls (List.length replies) shed
          (100.0 *. rate);
        Obj
          [
            ("class", Str cls); ("jobs", Int (List.length replies));
            ("shed", Int shed); ("shed_rate", Float rate);
          ])
      classes chans
  in
  Printf.printf "  overload wall: %.3fs (queue cap %d, %d jobs)\n%!" wall queue_cap
    (3 * per_class);
  Out_channel.with_open_text "BENCH_pr10.json" (fun oc ->
      output_string oc
        (to_string
           (Obj
              [
                ("hedging", hedging_row);
                ( "priority_shedding",
                  Obj
                    [
                      ("queue_cap", Int queue_cap); ("workers", Int 1);
                      ("jobs", Int (3 * per_class)); ("wall_s", Float wall);
                      ("classes", List class_rows);
                    ] );
              ]));
      output_char oc '\n');
  Printf.printf "  wrote BENCH_pr10.json\n%!"

let () =
  section "fig1" "FIG1: classification table" fig1;
  section "fig2" "FIG2: example automata" fig2;
  section "fig3" "FIG3: gadgets for aa and axb|cxd" fig3;
  section "fig4" "FIG4: endpoint graphs" fig4;
  section "fig5" "FIG5: vertex-cover encoding" fig5;
  section "fig6" "FIG6: hypergraph of matches for axb|cxd" fig6;
  section "fig7_8" "FIG7-8: four-legged gadgets (Thm 5.5)" fig7_8;
  section "fig9_10" "FIG9-10: repeated-letter gadgets (Lemma E.4)" fig9_10;
  section "fig11" "FIG11: aba|bab gadget (Claim E.8)" (fun () ->
      fig_gadget "Figure 11" "aba|bab (Fig 11)");
  section "fig12" "FIG12: aaa gadget (Claim E.9)" (fun () ->
      fig_gadget "Figure 12" "aaa (Fig 12)");
  section "fig13" "FIG13: aab gadget (Claim E.12)" (fun () ->
      fig_gadget "Figure 13" "aab (Fig 13)");
  section "fig14" "FIG14: ax(eta)ya|yax gadgets (Claim E.11)" (fun () ->
      fig_gadget "Figure 14 (eta = empty)" "axya|yax (Fig 14)";
      fig_gadget "Figure 14 (eta = c)" "axcya|yax (Fig 14)");
  section "fig15" "FIG15: ab|bc|ca gadget (Prop 7.6)" (fun () ->
      fig_gadget "Figure 15" "ab|bc|ca (Fig 15)");
  section "fig16_17" "FIG16-17: abcd|be|ef and abcd|bef gadgets (Prop 7.8)" (fun () ->
      fig_gadget "Figure 16" "abcd|be|ef (Fig 16)";
      fig_gadget "Figure 17" "abcd|bef (Fig 17)");
  section "thm33" "THM3.3: MinCut solver value checks" thm33_check;
  section "prop75" "PROP7.5: BCL solver value checks" prop75_check;
  section "prop77" "PROP7.7: submodular solver value checks" prop77_check;
  section "set_bag" "SET=BAG: semantics coherence" set_bag_check;
  section "thm61" "THM6.1: executable case analysis" thm61_demo;
  section "open_cases" "OPEN CASES: bounded gadget search" open_cases;
  section "ablation_flow" "ABLATION: Dinic vs push-relabel" ablation_flow;
  section "ablation_solvers" "ABLATION: exact solvers and the LP bound" ablation_solvers;
  section "ablation_chain" "ABLATION: Lemma F.2 extraction vs determinization" ablation_chain_extraction;
  section "ablation_anytime" "ABLATION: anytime bounds vs work budget" ablation_anytime;
  section "ablation_pool" "ABLATION: supervised pool throughput vs worker count" ablation_pool;
  section "ablation_journal" "ABLATION: journal sync policy, recovery, compaction" ablation_journal;
  section "ablation_serve" "ABLATION: multi-client serve, cache, shedding" ablation_serve;
  section "ablation_hedge" "ABLATION: hedging latency/parity, shed rate by priority" ablation_hedge;
  section "scaling_submodular" "SCALING: Proposition 7.7" scaling_submodular;
  section "scaling_local" "SCALING: Theorem 3.3" scaling_local;
  section "scaling_bcl" "SCALING: Proposition 7.5" scaling_bcl;
  section "scaling_hard" "SCALING: hardness shape" scaling_hardness;
  section "timing" "TIMING: Bechamel micro-benchmarks" run_timing
