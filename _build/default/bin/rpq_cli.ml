(* rpq: command-line front-end for the RPQ-resilience library.

   Subcommands:
     classify REGEX...         classify languages (Figure 1)
     solve --db FILE REGEX     resilience of a database file
     reduce REGEX              print reduce(L)
     words REGEX               enumerate (finite) languages
     gadgets                   verify every hardness gadget of the paper

   Database file format: one fact per line, `src label dst [multiplicity]`,
   where src/dst are arbitrary node names and label is one character.
   Lines starting with # are comments. *)

open Cmdliner
open Resilience
module Db = Graphdb.Db

let parse_db_file path =
  let ic = open_in path in
  let b = Db.Builder.create () in
  (try
     let rec loop lineno =
       match input_line ic with
       | line ->
           let line = String.trim line in
           if line <> "" && line.[0] <> '#' then begin
             match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
             | [ src; label; dst ] when String.length label = 1 ->
                 Db.Builder.add b src label.[0] dst
             | [ src; label; dst; m ] when String.length label = 1 ->
                 Db.Builder.add b ~mult:(int_of_string m) src label.[0] dst
             | _ -> failwith (Printf.sprintf "%s:%d: expected `src label dst [mult]`" path lineno)
           end;
           loop (lineno + 1)
       | exception End_of_file -> ()
     in
     loop 1
   with e ->
     close_in ic;
     raise e);
  close_in ic;
  (Db.Builder.build b, b)

let regex_arg =
  let parse s =
    match Automata.Regex.parse_opt s with
    | Some _ -> Ok s
    | None -> Error (`Msg (Printf.sprintf "invalid regular expression %S" s))
  in
  Arg.conv (parse, Fmt.string)

(* ---- classify ---- *)

let classify_cmd =
  let regexes =
    Arg.(non_empty & pos_all regex_arg [] & info [] ~docv:"REGEX" ~doc:"Languages to classify.")
  in
  let run regexes =
    List.iter
      (fun s ->
        let c = Classify.classify_regex s in
        Format.printf "%-20s %s@." s (Classify.verdict_summary c.Classify.verdict))
      regexes
  in
  Cmd.v (Cmd.info "classify" ~doc:"Classify the resilience complexity of RPQs (Figure 1).")
    Term.(const run $ regexes)

(* ---- solve ---- *)

let solve_cmd =
  let db_file =
    Arg.(required & opt (some file) None & info [ "db" ] ~docv:"FILE" ~doc:"Database file.")
  in
  let regex =
    Arg.(required & pos 0 (some regex_arg) None & info [] ~docv:"REGEX" ~doc:"The RPQ.")
  in
  let witness = Arg.(value & flag & info [ "witness" ] ~doc:"Print a minimum contingency set.") in
  let run db_file s witness =
    let db, builder = parse_db_file db_file in
    let l = Automata.Lang.of_string s in
    let r = Solver.solve db l in
    Format.printf "language    : %s@." s;
    Format.printf "verdict     : %s@."
      (Classify.verdict_summary r.Solver.classification.Classify.verdict);
    Format.printf "algorithm   : %s@." (Solver.algorithm_name r.Solver.algorithm);
    Format.printf "resilience  : %a@." Value.pp r.Solver.value;
    if witness then
      match r.Solver.witness with
      | Some w ->
          List.iter
            (fun id ->
              let f = Db.fact db id in
              Format.printf "  remove %s --%c--> %s (cost %d)@."
                (Db.Builder.node_name builder f.Db.src)
                f.Db.label
                (Db.Builder.node_name builder f.Db.dst)
                (Db.mult db id))
            w
      | None -> Format.printf "  (this algorithm reports no witness)@."
  in
  Cmd.v (Cmd.info "solve" ~doc:"Compute the resilience of an RPQ on a database file.")
    Term.(const run $ db_file $ regex $ witness)

(* ---- reduce ---- *)

let reduce_cmd =
  let regex =
    Arg.(required & pos 0 (some regex_arg) None & info [] ~docv:"REGEX" ~doc:"The language.")
  in
  let run s =
    let r = Automata.Reduce.nfa (Automata.Lang.of_string s) in
    match Automata.Lang.words r with
    | Some ws -> Format.printf "reduce(%s) = {%s}@." s (String.concat ", " ws)
    | None ->
        Format.printf "reduce(%s) is infinite; words up to length 6: {%s}, ...@." s
          (String.concat ", " (Automata.Lang.words_up_to r 6))
  in
  Cmd.v (Cmd.info "reduce" ~doc:"Compute the reduced (infix-free) sublanguage.")
    Term.(const run $ regex)

(* ---- words ---- *)

let words_cmd =
  let regex =
    Arg.(required & pos 0 (some regex_arg) None & info [] ~docv:"REGEX" ~doc:"The language.")
  in
  let limit =
    Arg.(value & opt int 8 & info [ "limit" ] ~docv:"N" ~doc:"Length bound for infinite languages.")
  in
  let run s limit =
    let l = Automata.Lang.of_string s in
    match Automata.Lang.words l with
    | Some ws -> Format.printf "{%s}@." (String.concat ", " ws)
    | None -> Format.printf "{%s, ...}@." (String.concat ", " (Automata.Lang.words_up_to l limit))
  in
  Cmd.v (Cmd.info "words" ~doc:"Enumerate the words of a language.") Term.(const run $ regex $ limit)

(* ---- certify ---- *)

let certify_cmd =
  let regex =
    Arg.(required & pos 0 (some regex_arg) None & info [] ~docv:"REGEX" ~doc:"The language.")
  in
  let run s =
    let l = Automata.Lang.of_string s in
    Format.printf "%-20s %s@." s
      (Classify.verdict_summary (Classify.classify l).Classify.verdict);
    match Hardness.thm61_gadget l with
    | Ok o ->
        Format.printf "Theorem 6.1 pipeline: %s (mirrored=%b), gadget with odd path length %s@."
          o.Hardness.strategy o.Hardness.mirrored
          (match o.Hardness.verification.Gadgets.odd_path_length with
          | Some len -> string_of_int len
          | None -> "?")
    | Error e1 -> begin
        Format.printf "Theorem 6.1 pipeline: %s@." e1;
        match Gadget_search.certify_np_hard l with
        | Some f ->
            Format.printf "Gadget search: verified gadget found (%d matches) => NP-hard@."
              (Array.length f.Gadget_search.words_used)
        | None -> Format.printf "Gadget search: nothing found within budget@."
      end
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Try to produce a machine-checked NP-hardness gadget (Thm 6.1 pipeline + search).")
    Term.(const run $ regex)

(* ---- report ---- *)

let report_cmd =
  let regexes =
    Arg.(non_empty & pos_all regex_arg [] & info [] ~docv:"REGEX" ~doc:"Languages to analyze.")
  in
  let no_gadget =
    Arg.(value & flag & info [ "no-gadget" ] ~doc:"Skip the hardness-gadget attempt (faster).")
  in
  let run regexes no_gadget =
    List.iter
      (fun s ->
        match Report.analyze ~try_gadget:(not no_gadget) s with
        | Ok r -> print_string (Report.to_markdown r)
        | Error e -> Format.printf "%s: %s@." s e)
      regexes
  in
  Cmd.v (Cmd.info "report" ~doc:"Full analysis report for a language (markdown).")
    Term.(const run $ regexes $ no_gadget)

(* ---- st-solve ---- *)

let st_solve_cmd =
  let db_file =
    Arg.(required & opt (some file) None & info [ "db" ] ~docv:"FILE" ~doc:"Database file.")
  in
  let regex =
    Arg.(required & pos 0 (some regex_arg) None & info [] ~docv:"REGEX" ~doc:"The RPQ.")
  in
  let src =
    Arg.(required & opt (some string) None & info [ "from" ] ~docv:"NODE" ~doc:"Source node.")
  in
  let dst =
    Arg.(required & opt (some string) None & info [ "to" ] ~docv:"NODE" ~doc:"Target node.")
  in
  let run db_file s src dst =
    let db, builder = parse_db_file db_file in
    let find_node name =
      (* Builder.node would create; detect unknown names by comparing counts. *)
      let before = Db.nnodes db in
      let id = Db.Builder.node builder name in
      if id >= before then failwith (Printf.sprintf "unknown node %S" name) else id
    in
    let l = Automata.Lang.of_string s in
    let r = St_resilience.solve db l ~src:(find_node src) ~dst:(find_node dst) in
    Format.printf "resilience of %s from %s to %s: %a  [%s]@." s src dst Value.pp
      r.St_resilience.value
      (Solver.algorithm_name r.St_resilience.algorithm)
  in
  Cmd.v
    (Cmd.info "st-solve" ~doc:"Fixed-endpoint resilience (Section 8 future work).")
    Term.(const run $ db_file $ regex $ src $ dst)

(* ---- dot ---- *)

let dot_cmd =
  let regex =
    Arg.(value & opt (some regex_arg) None & info [ "regex" ] ~docv:"REGEX" ~doc:"Render an automaton.")
  in
  let db_file =
    Arg.(value & opt (some file) None & info [ "db" ] ~docv:"FILE" ~doc:"Render a database.")
  in
  let minimize = Arg.(value & flag & info [ "dfa" ] ~doc:"Render the minimal DFA instead of the NFA.") in
  let run regex db_file minimize =
    (match regex with
    | Some s ->
        let a = Automata.Lang.of_string s in
        if minimize then
          print_string (Automata.Dot.of_dfa (Automata.Dfa.minimize (Automata.Dfa.of_nfa a)))
        else print_string (Automata.Dot.of_nfa a)
    | None -> ());
    match db_file with
    | Some f ->
        let db, builder = parse_db_file f in
        print_string (Graphdb.Serialize.to_dot ~names:(Db.Builder.node_name builder) db)
    | None -> ()
  in
  Cmd.v (Cmd.info "dot" ~doc:"Export automata or databases as Graphviz DOT.")
    Term.(const run $ regex $ db_file $ minimize)

(* ---- gadgets ---- *)

let gadgets_cmd =
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Print databases and hypergraphs.") in
  let run verbose =
    List.iter
      (fun (name, g, l) ->
        let v = Gadgets.verify g l in
        Format.printf "%-36s %s%s@." name
          (if v.Gadgets.ok then "VALID" else "INVALID")
          (match v.Gadgets.odd_path_length with
          | Some len -> Printf.sprintf " (odd path length %d)" len
          | None -> "");
        if verbose then begin
          let c = Gadgets.complete g in
          Format.printf "%a@." Db.pp c.Gadgets.db';
          Format.printf "%a@." Hypergraph.pp v.Gadgets.condensed
        end)
      (Gadgets.all_paper_gadgets ())
  in
  Cmd.v (Cmd.info "gadgets" ~doc:"Verify the paper's hardness gadgets (Definition 4.9).")
    Term.(const run $ verbose)

let () =
  let doc = "Resilience of regular path queries (PODS 2025 reproduction)" in
  let info = Cmd.info "rpq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            classify_cmd;
            report_cmd;
            solve_cmd;
            st_solve_cmd;
            reduce_cmd;
            words_cmd;
            gadgets_cmd;
            certify_cmd;
            dot_cmd;
          ]))
