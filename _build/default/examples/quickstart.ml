(* Quickstart: build a small graph database, ask for the resilience of a few
   RPQs, and inspect witnesses.

   Run with: dune exec examples/quickstart.exe *)

open Resilience
module Db = Graphdb.Db

let () =
  (* A small labeled graph: a = "assigned-to", x = "links-to", b = "blocks". *)
  let b = Db.Builder.create () in
  List.iter
    (fun (u, l, v) -> Db.Builder.add b u l v)
    [
      ("alice", 'a', "task1");
      ("bob", 'a', "task1");
      ("task1", 'x', "task2");
      ("task2", 'x', "task3");
      ("task3", 'b', "release");
      ("task2", 'b', "release");
    ];
  let db = Db.Builder.build b in
  Format.printf "Database:@.%a@." Db.pp db;

  (* The RPQ ax*b asks: is some assignment connected to a blocker through a
     chain of links? Its resilience = the minimum number of facts to delete
     so that no such path remains (Theorem 3.3 computes it via MinCut). *)
  List.iter
    (fun q ->
      let l = Automata.Lang.of_string q in
      let r = Solver.solve db l in
      Format.printf "RES(%s) = %a   [algorithm: %s, verdict: %s]@." q Value.pp r.Solver.value
        (Solver.algorithm_name r.Solver.algorithm)
        (Classify.verdict_summary r.Solver.classification.Classify.verdict);
      match r.Solver.witness with
      | Some w when w <> [] ->
          Format.printf "  a minimum contingency set:@.";
          List.iter
            (fun id ->
              let f = Db.fact db id in
              Format.printf "    fact %d: %d --%c--> %d@." id f.Db.src f.Db.label f.Db.dst)
            w
      | _ -> ())
    [ "ax*b"; "ab|ax*b"; "xx"; "axb" ]
