(* Gadget explorer: build a hardness gadget, verify it (Definition 4.9),
   encode a vertex-cover instance with it (Definition 4.5), and confirm the
   Prop 4.11 relation RES_set(Q_L, encoding) = vc(G) + m(l-1)/2 by solving
   the resilience instance exactly.

   Run with: dune exec examples/gadget_explorer.exe [-- gadget-name] *)

open Resilience
module Db = Graphdb.Db

let explore (name, g, l) =
  Format.printf "@.=== %s ===@." name;
  let v = Gadgets.verify g l in
  Format.printf "pre-gadget: %d nodes, %d facts, label %c@." (Db.nnodes g.Gadgets.db)
    (Db.fact_count g.Gadgets.db) g.Gadgets.label;
  Format.printf "matches on the completion: %d hyperedges@."
    (Hypergraph.edge_count v.Gadgets.matches);
  (match v.Gadgets.odd_path_length with
  | Some len -> Format.printf "condenses to an odd F_in--F_out path of length %d: VALID@." len
  | None -> Format.printf "INVALID: %s@." (Option.value ~default:"?" v.Gadgets.failure));
  if v.Gadgets.ok then begin
    let graph = Graphs.Ugraph.make ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3); (0, 2) ] in
    let k = Graphs.Ugraph.vertex_cover_number graph in
    let xi = Gadgets.encode g graph in
    let expected = Gadgets.expected_resilience g l graph in
    let measured, _ = Exact.hitting_set xi l in
    Format.printf "encoding a 4-vertex graph (m=4, vc=%d): %d facts@." k (Db.fact_count xi);
    Format.printf "predicted resilience %d, measured %a -> %s@." expected Value.pp measured
      (if Value.equal measured (Value.Finite expected) then "reduction confirmed"
       else "MISMATCH")
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let all = Gadgets.all_paper_gadgets () in
  let targets =
    if args = [] then all
    else
      List.filter
        (fun (n, _, _) ->
          List.exists (fun a -> String.length a <= String.length n && String.sub n 0 (String.length a) = a) args)
        all
  in
  Format.printf "Hardness-gadget explorer (%d gadgets)@." (List.length targets);
  List.iter explore targets
