examples/beyond_boolean.ml: Analysis Automata Format Graphdb Hypergraph Ilp_solver List Printf Resilience Solver St_resilience String Two_way Value
