examples/network_robustness.mli:
