examples/beyond_boolean.mli:
