examples/social_network.ml: Automata Classify Format Graphdb List Resilience Solver Sys Value
