examples/gadget_explorer.mli:
