examples/network_robustness.ml: Array Automata Flow Format Graphdb List Resilience Solver Value
