examples/classify_language.ml: Array Automata Classify Format List Resilience String Sys
