examples/gadget_explorer.ml: Array Exact Format Gadgets Graphdb Graphs Hypergraph List Option Resilience String Sys Value
