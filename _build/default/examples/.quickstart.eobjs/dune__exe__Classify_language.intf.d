examples/classify_language.mli:
