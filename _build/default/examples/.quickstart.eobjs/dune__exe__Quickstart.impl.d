examples/quickstart.ml: Automata Classify Format Graphdb List Resilience Solver Value
