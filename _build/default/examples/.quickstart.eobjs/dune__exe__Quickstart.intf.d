examples/quickstart.mli:
