(* Classify regular path queries: a command-line front-end for the Figure 1
   decision procedure.

   Run with:
     dune exec examples/classify_language.exe              (showcase list)
     dune exec examples/classify_language.exe -- "abc|be" "ax*b" ...  *)

open Resilience

let showcase =
  [
    "ax*b"; "ab|ad|cd"; "abc|be"; "abcd|ce"; "ab|bc"; "axb|byc"; "axyb|bztc|cd|dea"; "a|aa";
    "ax*b|xd"; "abc|bcd"; "abcd|be"; "abc|bef";
    "aa"; "aaaa"; "abca|cab"; "axb|cxd"; "ax*b|cxd"; "b(aa)*d"; "ab|bc|ca"; "abcd|be|ef";
    "abcd|bef"; "aba|bab"; "e*be*ce*|e*de*fe*";
  ]

let describe s =
  match Automata.Regex.parse_opt s with
  | None -> Format.printf "%-20s syntax error@." s
  | Some _ ->
      let c = Classify.classify_regex s in
      Format.printf "%-20s %s@." s (Classify.verdict_summary c.Classify.verdict);
      (match c.Classify.reduced_words with
      | Some ws when List.length ws <= 8 ->
          Format.printf "%-20s reduce(L) = {%s}@." "" (String.concat ", " ws)
      | Some ws -> Format.printf "%-20s reduce(L): %d words@." "" (List.length ws)
      | None -> Format.printf "%-20s reduce(L) is infinite@." "");
      (* extra diagnostics *)
      let r = c.Classify.reduced in
      Format.printf "%-20s local=%b star-free=%s neutral letters={%s}@." ""
        (Automata.Local.is_local_language r)
        (match Automata.Starfree.is_star_free r with
        | Some true -> "yes"
        | Some false -> "no"
        | None -> "unknown")
        (String.concat ","
           (List.map (String.make 1) (Automata.Neutral.neutral_letters (Automata.Lang.of_string s))))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let targets = if args = [] then showcase else args in
  Format.printf "RPQ resilience classification (Figure 1 of the paper)@.@.";
  List.iter describe targets
