(* Social-network moderation: resilience as a robustness measure on a
   synthetic social graph with labels f (follows), m (mentions), b (blocks).

   Each query asks whether a "bad pattern" exists; its resilience is the
   minimum number of interactions a moderator must delete to destroy all
   occurrences of the pattern. Tractability depends on the pattern's
   language, exactly as classified by the paper.

   Run with: dune exec examples/social_network.exe *)

open Resilience
module Db = Graphdb.Db

let () =
  let db = Graphdb.Generate.social ~nusers:30 ~density:0.03 ~seed:2025 () in
  Format.printf "Synthetic social network: %d users, %d interactions@." (Db.nnodes db)
    (Db.fact_count db);
  let queries =
    [
      ( "fm",
        "someone follows a user who mentions another (amplification path)" );
      ( "ff*m",
        "a mention reachable through a follow chain (viral amplification)" );
      ( "fm|mb",
        "amplification, or a mention followed by a block (harassment signal)" );
      ( "bb",
        "two blocks in a row (block chains; NP-hard: self-join pattern!)" );
      ( "fb|bm",
        "follow-then-block or block-then-mention" );
    ]
  in
  List.iter
    (fun (q, story) ->
      let l = Automata.Lang.of_string q in
      let t0 = Sys.time () in
      let r = Solver.solve db l in
      let dt = Sys.time () -. t0 in
      Format.printf "@.%s  --  %s@." q story;
      Format.printf "  verdict   : %s@."
        (Classify.verdict_summary r.Solver.classification.Classify.verdict);
      Format.printf "  algorithm : %s@." (Solver.algorithm_name r.Solver.algorithm);
      Format.printf "  resilience: %a   (%.4fs)@." Value.pp r.Solver.value dt)
    queries
