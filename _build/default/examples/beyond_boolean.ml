(* Beyond Boolean resilience: the analyses around the core problem —
   enumeration of all minimum contingency sets, per-fact responsibility
   (Freire et al., reference [12] of the paper), fixed-endpoint resilience
   and two-way RPQs (both Section 8 future-work directions), and the ILP
   baseline with its LP relaxation (reference [23]).

   Run with: dune exec examples/beyond_boolean.exe *)

open Resilience
module Db = Graphdb.Db

let () =
  (* A small supply-chain graph: s = supplies, t = transports, c = certifies. *)
  let b = Db.Builder.create () in
  List.iter
    (fun (u, l, v) -> Db.Builder.add b u l v)
    [
      ("mine1", 's', "smelter");
      ("mine2", 's', "smelter");
      ("smelter", 't', "factory");
      ("factory", 't', "depot");
      ("auditor", 'c', "factory");
      ("depot", 't', "store");
    ];
  let db = Db.Builder.build b in
  let l = Automata.Lang.of_string "st*" in
  Format.printf "Supply-chain database (%d facts); query st* (a supplied chain)@."
    (Db.fact_count db);

  (* 1. All minimum contingency sets. *)
  let v, sets = Analysis.all_minimum_contingency_sets db l in
  Format.printf "@.RES(st*) = %a with %d minimum contingency set(s):@." Value.pp v
    (List.length sets);
  List.iter
    (fun set ->
      Format.printf "  {%s}@."
        (String.concat ", "
           (List.map
              (fun id ->
                let f = Db.fact db id in
                Printf.sprintf "%d-%c->%d" f.Db.src f.Db.label f.Db.dst)
              (Hypergraph.Iset.elements set))))
    sets;

  (* 2. Responsibility ranking: which individual fact matters most? *)
  Format.printf "@.Responsibility ranking (1/(1+k) scores):@.";
  List.iter
    (fun (id, score) ->
      let f = Db.fact db id in
      if score > 0.0 then
        Format.printf "  %d-%c->%d : %.3f@." f.Db.src f.Db.label f.Db.dst score)
    (Analysis.most_responsible_facts db l);

  (* 3. Fixed endpoints: how robust is the mine1 -> store connection? *)
  let mine1 = 0 in
  (* node ids follow insertion order in the builder *)
  let store = Db.nnodes db - 1 in
  let r = St_resilience.solve db (Automata.Lang.of_string "st*t") ~src:mine1 ~dst:store in
  Format.printf "@.(s,t)-resilience of st*t from mine1 to store: %a [%s]@." Value.pp
    r.St_resilience.value
    (Solver.algorithm_name r.St_resilience.algorithm);

  (* 4. Two-way RPQ: sT = a supplier whose smelter is supplied by another
     mine (s forward then s... use sS: supply then backward supply). *)
  let l2 = Automata.Lang.of_string "sS" in
  Format.printf "@.Two-way query sS (two mines sharing a smelter): satisfied=%b, RES=%a@."
    (Two_way.satisfies db l2)
    Value.pp
    (fst (Two_way.resilience db l2));

  (* 5. ILP baseline and its LP relaxation. *)
  (match (Ilp_solver.solve db l, Ilp_solver.lp_relaxation db l) with
  | Ok (v, _), Ok lp ->
      Format.printf "@.ILP baseline: RES = %a, LP relaxation = %.2f (integrality gap %s)@."
        Value.pp v lp
        (match v with
        | Value.Finite n when float_of_int n > lp +. 1e-6 -> "> 1"
        | _ -> "= 1")
  | Error e, _ | _, Error e -> Format.printf "ILP error: %s@." e)
