(* Network robustness: the paper's introduction observes that resilience of
   the RPQ ax*b under bag semantics IS the classical MinCut problem
   (a-facts = sources, x-facts = network edges, b-facts = sinks).

   This example builds layered flow networks, computes their resilience with
   the Theorem 3.3 solver, and cross-checks the value against a directly
   constructed flow network solved by Dinic's algorithm.

   Run with: dune exec examples/network_robustness.exe *)

open Resilience
module Db = Graphdb.Db
module Net = Flow.Network

(* Build the flow network corresponding to the database by hand: one network
   edge per x-fact, a super-source wired to the heads of a-facts and a
   super-sink wired from the tails of b-facts. Removing an a-fact (resp.
   b-fact) is modeled by the capacity of its source-side (resp. sink-side)
   edge, so cuts of this network are exactly contingency sets. *)
let direct_mincut db =
  let net = Net.create () in
  let nodes = Array.init (Db.nnodes db) (fun _ -> Net.add_vertex net) in
  let source = Net.add_vertex net and sink = Net.add_vertex net in
  List.iter
    (fun (id, (f : Db.fact)) ->
      match f.Db.label with
      | 'a' -> ignore (Net.add_edge net ~src:source ~dst:nodes.(f.Db.dst) (Net.Finite (Db.mult db id)))
      | 'x' ->
          ignore
            (Net.add_edge net ~src:nodes.(f.Db.src) ~dst:nodes.(f.Db.dst)
               (Net.Finite (Db.mult db id)))
      | 'b' -> ignore (Net.add_edge net ~src:nodes.(f.Db.src) ~dst:sink (Net.Finite (Db.mult db id)))
      | _ -> ())
    (Db.facts db);
  (Net.min_cut net ~source ~sink).Net.value

let () =
  let l = Automata.Lang.of_string "ax*b" in
  Format.printf "MinCut correspondence sweep (resilience of ax*b = min cut of the network)@.";
  Format.printf "%8s %8s %10s %12s %12s@." "width" "depth" "facts" "RES(ax*b)" "direct cut";
  List.iter
    (fun (w, d) ->
      let db = Graphdb.Generate.flow_grid ~width:w ~depth:d ~max_mult:7 ~seed:(w + d) () in
      let r = Solver.solve db l in
      let direct = direct_mincut db in
      Format.printf "%8d %8d %10d %12s %12s%s@." w d (Db.fact_count db)
        (Value.to_string r.Solver.value)
        (match direct with Net.Finite v -> string_of_int v | Net.Inf -> "inf")
        (match (r.Solver.value, direct) with
        | Value.Finite a, Net.Finite b when a = b -> "   [agree]"
        | _ -> "   [MISMATCH]"))
    [ (2, 2); (4, 4); (8, 8); (16, 16) ];

  (* Robustness interpretation: the witness tells an operator which links to
     guard: they form a minimum set whose failure disconnects the service. *)
  let db = Graphdb.Generate.flow_grid ~width:3 ~depth:3 ~max_mult:2 ~seed:9 () in
  let r = Solver.solve db l in
  Format.printf "@.On a 3x3 grid, a minimum contingency set (the critical links):@.";
  (match r.Solver.witness with
  | Some w ->
      List.iter
        (fun id ->
          let f = Db.fact db id in
          Format.printf "  %d --%c--> %d (cost %d)@." f.Db.src f.Db.label f.Db.dst (Db.mult db id))
        w
  | None -> Format.printf "  (no witness)@.");
  Format.printf "total cost: %a@." Value.pp r.Solver.value
