lib/submodular/sfm.ml: Array Fun List
