lib/submodular/sfm.mli:
