type t =
  | Empty
  | Eps
  | Letter of char
  | Union of t * t
  | Concat of t * t
  | Star of t

(* Recursive-descent parser. Grammar:
     union  ::= concat ('|' concat)*
     concat ::= postfix+
     postfix::= atom '*'*
     atom   ::= letter | '~' | '!' | '(' union ')'
   A letter is any non-space char other than the meta-characters. *)
exception Syntax of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let rec skip_ws () =
    if !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') then begin
      incr pos;
      skip_ws ()
    end
  in
  let peek () =
    skip_ws ();
    if !pos < n then Some s.[!pos] else None
  in
  let advance () = incr pos in
  let is_letter c = not (List.mem c [ '|'; '*'; '('; ')'; '~'; '!' ]) in
  let rec union () =
    let lhs = concat () in
    match peek () with
    | Some '|' ->
        advance ();
        Union (lhs, union ())
    | _ -> lhs
  and concat () =
    let rec atoms acc =
      match peek () with
      | Some c when is_letter c || c = '(' || c = '~' || c = '!' -> atoms (postfix () :: acc)
      | _ -> List.rev acc
    in
    match atoms [] with
    | [] -> raise (Syntax "expected an atom")
    | [ a ] -> a
    | a :: rest -> List.fold_left (fun acc r -> Concat (acc, r)) a rest
  and postfix () =
    let a = atom () in
    let rec stars a =
      match peek () with
      | Some '*' ->
          advance ();
          stars (Star a)
      | _ -> a
    in
    stars a
  and atom () =
    match peek () with
    | Some '(' ->
        advance ();
        let e = union () in
        (match peek () with
        | Some ')' ->
            advance ();
            e
        | _ -> raise (Syntax "unclosed parenthesis"))
    | Some '~' ->
        advance ();
        Eps
    | Some '!' ->
        advance ();
        Empty
    | Some c when is_letter c ->
        advance ();
        Letter c
    | Some c -> raise (Syntax (Printf.sprintf "unexpected character %C" c))
    | None -> raise (Syntax "unexpected end of input")
  in
  let e = union () in
  skip_ws ();
  if !pos <> n then raise (Syntax "trailing input");
  e

let parse s =
  try parse_exn s with Syntax msg -> invalid_arg (Printf.sprintf "Regex.parse %S: %s" s msg)

let parse_opt s = try Some (parse_exn s) with Syntax _ -> None

let of_word w =
  if w = "" then Eps
  else
    let rec go i =
      if i = String.length w - 1 then Letter w.[i] else Concat (Letter w.[i], go (i + 1))
    in
    go 0

let of_words = function
  | [] -> Empty
  | w :: ws -> List.fold_left (fun acc w -> Union (acc, of_word w)) (of_word w) ws

let rec letters = function
  | Empty | Eps -> Cset.empty
  | Letter c -> Cset.singleton c
  | Union (a, b) | Concat (a, b) -> Cset.union (letters a) (letters b)
  | Star a -> letters a

let rec nullable = function
  | Empty -> false
  | Eps -> true
  | Letter _ -> false
  | Union (a, b) -> nullable a || nullable b
  | Concat (a, b) -> nullable a && nullable b
  | Star _ -> true

let rec is_empty_syntactic = function
  | Empty -> true
  | Eps | Letter _ | Star _ -> false
  | Union (a, b) -> is_empty_syntactic a && is_empty_syntactic b
  | Concat (a, b) -> is_empty_syntactic a || is_empty_syntactic b

(* Printing with minimal parentheses: union binds loosest, then concat, then star. *)
let to_string e =
  let buf = Buffer.create 16 in
  (* level: 0 = union context, 1 = concat context, 2 = star context *)
  let rec go level e =
    match e with
    | Empty -> Buffer.add_char buf '!'
    | Eps -> Buffer.add_char buf '~'
    | Letter c -> Buffer.add_char buf c
    | Union (a, b) ->
        let paren = level > 0 in
        if paren then Buffer.add_char buf '(';
        go 0 a;
        Buffer.add_char buf '|';
        go 0 b;
        if paren then Buffer.add_char buf ')'
    | Concat (a, b) ->
        let paren = level > 1 in
        if paren then Buffer.add_char buf '(';
        go 1 a;
        go 1 b;
        if paren then Buffer.add_char buf ')'
    | Star a ->
        go 2 a;
        Buffer.add_char buf '*'
  in
  go 0 e;
  Buffer.contents buf

let pp ppf e = Format.pp_print_string ppf (to_string e)
let equal = ( = )

let rec mirror = function
  | (Empty | Eps | Letter _) as e -> e
  | Union (a, b) -> Union (mirror a, mirror b)
  | Concat (a, b) -> Concat (mirror b, mirror a)
  | Star a -> Star (mirror a)

let rec rename f = function
  | (Empty | Eps) as e -> e
  | Letter c -> Letter (f c)
  | Union (a, b) -> Union (rename f a, rename f b)
  | Concat (a, b) -> Concat (rename f a, rename f b)
  | Star a -> Star (rename f a)
