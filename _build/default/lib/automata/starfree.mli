(** Star-freeness test (Lemma 5.6 uses: reduced non-star-free ⇒ four-legged
    ⇒ NP-hard).

    A regular language is star-free iff it is counter-free (McNaughton–Papert),
    iff the transition monoid of its minimal DFA is aperiodic (Schützenberger).
    We decide the latter: compute the transition monoid and check that every
    element [m] satisfies [m^k = m^(k+1)] for some [k]. *)

val is_star_free : ?max_monoid:int -> Nfa.t -> bool option
(** [Some b] when the transition monoid could be computed within
    [max_monoid] elements (default 200_000); [None] when the bound was hit
    (monoids can have up to [n^n] elements). *)

val monoid_size : ?max_monoid:int -> Nfa.t -> int option
(** Size of the transition monoid of the minimal DFA, if within bounds. *)
