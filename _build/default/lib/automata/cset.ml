include Set.Make (Char)

let of_string s = String.fold_left (fun acc c -> add c acc) empty s

let to_string t =
  let b = Buffer.create (cardinal t) in
  iter (Buffer.add_char b) t;
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map (String.make 1) (elements t)))
