(** Neutral letters (Section 5.2 of the paper).

    A letter [e] is neutral for L when inserting or deleting [e] anywhere in
    a word does not change membership: for all α, β, [αβ ∈ L ⟺ αeβ ∈ L].
    Proposition 5.7 gives a full dichotomy for languages with a neutral
    letter. *)

val is_neutral : Nfa.t -> char -> bool
(** Decides neutrality of a letter: build the "insert one [e]" and
    "delete one [e]" rational transductions of L and check both are ⊆ L. *)

val neutral_letters : Nfa.t -> char list
(** All neutral letters of the alphabet, in increasing order. *)
