(** High-level operations on regular languages.

    A language is carried around as a {!Nfa.t}; this module bundles the
    DFA-powered decision procedures (membership, inclusion, equivalence,
    finiteness, enumeration) behind a single convenient interface. *)

type t = Nfa.t

val of_regex : ?alphabet:Cset.t -> Regex.t -> t
val of_string : ?alphabet:Cset.t -> string -> t
(** Parses a regex (see {!Regex.parse}) and compiles it. *)

val of_words : ?alphabet:Cset.t -> Word.t list -> t
val mem : Word.t -> t -> bool
val is_empty : t -> bool
val subset : t -> t -> bool
val equiv : t -> t -> bool
val is_finite : t -> bool

val words : t -> Word.t list option
(** Explicit word list if the language is finite, sorted by length then
    lexicographically. *)

val words_up_to : t -> int -> Word.t list
(** All words of the language of length at most the bound. *)

val shortest_word : t -> Word.t option
val nullable : t -> bool

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val mirror : t -> t
