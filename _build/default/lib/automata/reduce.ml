let words ws =
  let ws = List.sort_uniq compare ws in
  List.filter
    (fun w -> not (List.exists (fun w' -> Word.is_strict_infix w' w) ws))
    ws

let is_reduced_words ws = List.sort_uniq compare ws = List.sort_uniq compare (words ws)

let nfa (a : Nfa.t) =
  let sigma = a.Nfa.alphabet in
  let splus = Nfa.sigma_plus sigma and sstar = Nfa.sigma_star sigma in
  (* Words having a strict infix in L: Σ⁺LΣ* ∪ Σ*LΣ⁺ *)
  let strict_infix_ext =
    Nfa.union (Nfa.concat splus (Nfa.concat a sstar)) (Nfa.concat sstar (Nfa.concat a splus))
  in
  let d_ext = Dfa.of_nfa strict_infix_ext in
  let d_l = Dfa.of_nfa a in
  Dfa.to_nfa (Dfa.diff d_l d_ext)

let is_reduced a = Lang.equiv a (nfa a)
