(** Regular expressions over [char] letters.

    Supports the syntax used in the paper: letters, concatenation by
    juxtaposition, union [|], Kleene star [*], and parentheses, e.g.
    ["ax*b|cxd"] or ["b(aa)*d"]. The token [~] denotes ε and [!] denotes the
    empty language (neither is needed for the paper's languages but both are
    convenient for tests). *)

type t =
  | Empty  (** the empty language ∅ *)
  | Eps  (** the language {{!Word.epsilon}ε} *)
  | Letter of char
  | Union of t * t
  | Concat of t * t
  | Star of t

val parse : string -> t
(** Parses a regular expression. Whitespace is ignored.
    @raise Invalid_argument on a syntax error. *)

val parse_opt : string -> t option
(** Like {!parse} but returns [None] on a syntax error. *)

val of_words : Word.t list -> t
(** The finite language given by an explicit list of words. [of_words []] is
    {!Empty}. *)

val letters : t -> Cset.t
(** All letters occurring in the expression (an over-approximation of the
    alphabet actually used by the language). *)

val nullable : t -> bool
(** Does the language of the expression contain ε? *)

val is_empty_syntactic : t -> bool
(** Syntactic emptiness (no word at all is denoted). *)

val to_string : t -> string
(** Prints back a parseable concrete syntax. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural (syntactic) equality, not language equivalence. *)

val mirror : t -> t
(** Expression denoting the mirror language (Proposition E.1). *)

val rename : (char -> char) -> t -> t
(** Applies a letter renaming to every letter of the expression. *)
