(** Conversion from automata back to regular expressions (state
    elimination), and counting statistics of regular languages. *)

val of_dfa : Dfa.t -> Regex.t
(** A regular expression for the DFA's language (state elimination on the
    trimmed automaton; the result can be large but is language-equivalent,
    which the test suite checks by compiling it back). *)

val of_nfa : Nfa.t -> Regex.t

val count_words : Dfa.t -> int -> int list
(** [count_words d n] = number of accepted words of each length [0..n]
    (dynamic programming over the DFA; counts can be exponential in [n],
    beware of overflow beyond ~60 letters on small DFAs). *)

val growth : Dfa.t -> [ `Empty | `Finite of int | `Polynomial | `Exponential ]
(** Growth class of the language: finite (with its cardinality), polynomial
    (bounded by n^k: the trimmed DFA's cycles are vertex-disjoint and lie on
    a single path structure), or exponential (two distinct cycles reachable
    from one another). Standard characterization via the cycle structure of
    the trimmed automaton. *)
