(* State elimination over a matrix of regular expressions. Normalization
   (Deriv.normalize) keeps intermediate expressions from exploding with
   Empty/Eps junk. *)

let union a b = Deriv.normalize (Regex.Union (a, b))
let concat a b = Deriv.normalize (Regex.Concat (a, b))
let star a = Deriv.normalize (Regex.Star a)

let of_nfa (a0 : Nfa.t) =
  let a = Nfa.trim a0 in
  if a.Nfa.nstates = 0 then Regex.Empty
  else begin
    let n = a.Nfa.nstates in
    (* GNFA states: 0..n-1, start = n, end = n+1. *)
    let r = Array.make_matrix (n + 2) (n + 2) Regex.Empty in
    let add i j e = r.(i).(j) <- union r.(i).(j) e in
    List.iter
      (fun (s, sym, s') ->
        match sym with
        | Nfa.Eps -> add s s' Regex.Eps
        | Nfa.Ch c -> add s s' (Regex.Letter c))
      a.Nfa.trans;
    List.iter (fun s -> add n s Regex.Eps) a.Nfa.initial;
    List.iter (fun s -> add s (n + 1) Regex.Eps) a.Nfa.final;
    (* Eliminate states 0..n-1. *)
    for q = 0 to n - 1 do
      let loop = star r.(q).(q) in
      for i = 0 to n + 1 do
        if i <> q && r.(i).(q) <> Regex.Empty then
          for j = 0 to n + 1 do
            if j <> q && r.(q).(j) <> Regex.Empty then
              add i j (concat r.(i).(q) (concat loop r.(q).(j)))
          done
      done;
      for i = 0 to n + 1 do
        r.(i).(q) <- Regex.Empty;
        r.(q).(i) <- Regex.Empty
      done
    done;
    r.(n).(n + 1)
  end

let of_dfa d = of_nfa (Dfa.to_nfa d)

let count_words (d : Dfa.t) n =
  let vec = Array.make d.Dfa.nstates 0 in
  vec.(d.Dfa.init) <- 1;
  let count v =
    let acc = ref 0 in
    Array.iteri (fun s x -> if d.Dfa.final.(s) then acc := !acc + x) v;
    !acc
  in
  let result = ref [ count vec ] in
  let cur = ref vec in
  for _ = 1 to n do
    let next = Array.make d.Dfa.nstates 0 in
    Array.iteri
      (fun s x ->
        if x > 0 then Array.iter (fun s' -> next.(s') <- next.(s') + x) d.Dfa.delta.(s))
      !cur;
    cur := next;
    result := count next :: !result
  done;
  List.rev !result

let growth (d : Dfa.t) =
  let a = Nfa.trim (Dfa.to_nfa d) in
  let n = a.Nfa.nstates in
  if n = 0 then `Empty
  else begin
    (* adjacency over useful states (trim already done) *)
    let adj = Array.make n [] in
    List.iter (fun (s, _, s') -> adj.(s) <- s' :: adj.(s)) a.Nfa.trans;
    (* Tarjan SCC *)
    let index = Array.make n (-1) and low = Array.make n 0 in
    let onstack = Array.make n false in
    let stack = ref [] and counter = ref 0 in
    let scc_of = Array.make n (-1) and nscc = ref 0 in
    let rec strongconnect v =
      index.(v) <- !counter;
      low.(v) <- !counter;
      incr counter;
      stack := v :: !stack;
      onstack.(v) <- true;
      List.iter
        (fun w ->
          if index.(w) < 0 then begin
            strongconnect w;
            low.(v) <- min low.(v) low.(w)
          end
          else if onstack.(w) then low.(v) <- min low.(v) index.(w))
        adj.(v);
      if low.(v) = index.(v) then begin
        let rec pop () =
          match !stack with
          | w :: rest ->
              stack := rest;
              onstack.(w) <- false;
              scc_of.(w) <- !nscc;
              if w <> v then pop ()
          | [] -> ()
        in
        pop ();
        incr nscc
      end
    in
    for v = 0 to n - 1 do
      if index.(v) < 0 then strongconnect v
    done;
    (* internal out-degree per vertex within its SCC, and self-loop count *)
    let has_cycle = ref false and not_simple = ref false in
    for v = 0 to n - 1 do
      let internal = List.filter (fun w -> scc_of.(w) = scc_of.(v)) adj.(v) in
      if internal <> [] then has_cycle := true;
      if List.length internal > 1 then not_simple := true
    done;
    (* An SCC that is a single vertex with k >= 2 self-loops, or any vertex
       with two internal successors, yields exponential growth. *)
    if !not_simple then `Exponential
    else if not !has_cycle then begin
      match Dfa.words d with
      | Some ws -> `Finite (List.length ws)
      | None -> `Polynomial (* unreachable: acyclic useful part means finite *)
    end
    else `Polynomial
  end
