type t = Nfa.t

let of_regex = Nfa.of_regex
let of_string ?alphabet s = Nfa.of_regex ?alphabet (Regex.parse s)
let of_words = Nfa.of_words
let mem w a = Nfa.accepts a w
let is_empty a = Dfa.is_empty (Dfa.of_nfa a)
let subset a b = Dfa.subset (Dfa.of_nfa a) (Dfa.of_nfa b)
let equiv a b = Dfa.equiv (Dfa.of_nfa a) (Dfa.of_nfa b)
let is_finite a = Dfa.is_finite (Dfa.of_nfa a)
let words a = Dfa.words (Dfa.of_nfa a)
let words_up_to a bound = Dfa.words_up_to (Dfa.of_nfa a) bound
let shortest_word a = Dfa.shortest_word (Dfa.of_nfa a)
let nullable = Nfa.nullable
let inter a b = Dfa.to_nfa (Dfa.inter (Dfa.of_nfa a) (Dfa.of_nfa b))
let union = Nfa.union
let diff a b = Dfa.to_nfa (Dfa.diff (Dfa.of_nfa a) (Dfa.of_nfa b))
let mirror = Nfa.reverse
