(** Local languages (Section 3 of the paper).

    A language is {e local} if it is recognized by a local DFA
    (Definition 3.1), equivalently by a read-once εNFA (Lemma 3.8),
    equivalently if it is letter-Cartesian (Proposition B.7). Local languages
    are exactly the languages determined by which letters may start a word,
    which may end one, and which letter pairs may be adjacent. *)

type profile = {
  starts : Cset.t;  (** Σ_start: letters that can start a word of L *)
  ends : Cset.t;  (** Σ_end: letters that can end a word of L *)
  pairs : (char * char) list;  (** Π: pairs of letters that can be adjacent in a word of L *)
  has_eps : bool;  (** ε ∈ L *)
}

val profile : Nfa.t -> profile
(** Computes [Σ_start], [Σ_end], [Π] and nullability in time
    O(|Σ| × |A|) by graph traversals on the trimmed automaton
    (proof of Lemma B.4). *)

val ro_enfa : Nfa.t -> Nfa.t
(** The RO-εNFA A' of Lemma B.4: a read-once εNFA with
    [L(A) ⊆ L(A')], and [L(A) = L(A')] iff [L(A)] is local. *)

val ro_enfa_of_profile : Cset.t -> profile -> Nfa.t
(** Same construction given the profile directly. *)

val is_local_language : Nfa.t -> bool
(** Decides whether the {e language} of the automaton is local
    (Proposition 3.5): build the RO-εNFA and test [L(A') ⊆ L(A)]. *)

val letter_cartesian_for : Nfa.t -> char -> bool
(** Exact decision of the letter-Cartesian property {e for one letter} x
    (the property of Proposition G.1): whether [αxβ ∈ L] and [γxδ ∈ L]
    imply [αxδ ∈ L]. Decided as the inclusion [Uₓ·x·Vₓ ⊆ L] where [Uₓ]
    (resp. [Vₓ]) is the language of prefixes before (resp. suffixes after)
    an occurrence of x in a word of L. Exponential in general (the paper
    shows PSPACE-hardness for NFA inputs, Appendix G). *)

val is_letter_cartesian : Nfa.t -> bool
(** Exact letter-Cartesian test over every letter: by Proposition B.7 this
    is equivalent to {!is_local_language} (the test suite cross-checks the
    two implementations). *)

val inclusion_to_cartesian : l1:Nfa.t -> l2:Nfa.t -> Nfa.t
(** The reduction of Proposition G.1: an εNFA over Σ ∪ \{a, b\} whose
    language is letter-Cartesian for the fresh letter [a] iff
    [L(l2) ⊆ L(l1)] (assuming both languages non-empty). Witnesses the
    PSPACE-hardness of per-letter letter-Cartesian testing on NFAs. *)

val letter_cartesian_violation :
  Nfa.t -> bound:int -> (char * Word.t * Word.t * Word.t * Word.t) option
(** Searches for a violation [(x, α, β, γ, δ)] of the letter-Cartesian
    property (Definition 5.1): [αxβ ∈ L], [γxδ ∈ L] and [αxδ ∉ L], examining
    the words of L of length ≤ [bound]. The returned witness is always
    genuine ([αxδ ∉ L] is checked on the automaton); [None] only means no
    witness exists among bounded words. For finite languages with [bound] ≥
    the maximum word length, the search is complete. *)

val four_legged_witness :
  Nfa.t -> bound:int -> (char * Word.t * Word.t * Word.t * Word.t) option
(** Same search restricted to violations with all four legs non-empty
    (Definition 5.3). The language must additionally be reduced for the
    witness to prove NP-hardness via Theorem 5.5 (not checked here). *)
