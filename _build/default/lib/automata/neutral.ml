(* Two-copy construction: copy 1 is "before the edit point", copy 2 after. *)
let two_copies (a : Nfa.t) ~bridge =
  let n = a.Nfa.nstates in
  let dup = List.concat_map (fun (s, sym, s') -> [ (s, sym, s'); (s + n, sym, s' + n) ]) a.Nfa.trans in
  Nfa.create ~nstates:(2 * n) ~alphabet:a.Nfa.alphabet ~initial:a.Nfa.initial
    ~final:(List.map (( + ) n) a.Nfa.final)
    ~trans:(dup @ bridge n a)

(* insert_e(L) = { u e v | uv ∈ L }: read the inserted e while staying at the
   same underlying state. *)
let insert_one (a : Nfa.t) e =
  two_copies a ~bridge:(fun n a ->
      List.init a.Nfa.nstates (fun s -> (s, Nfa.Ch e, s + n)))

(* delete_e(L) = { uv | u e v ∈ L }: silently skip one e-transition of A. *)
let delete_one (a : Nfa.t) e =
  two_copies a ~bridge:(fun n a ->
      List.filter_map
        (fun (s, sym, s') -> if sym = Nfa.Ch e then Some (s, Nfa.Eps, s' + n) else None)
        a.Nfa.trans)

let is_neutral a e =
  Cset.mem e a.Nfa.alphabet
  && a.Nfa.nstates > 0
  && Lang.subset (insert_one a e) a
  && Lang.subset (delete_one a e) a

let neutral_letters a = List.filter (is_neutral a) (Cset.elements a.Nfa.alphabet)
