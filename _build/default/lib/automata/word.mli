(** Words over a finite alphabet of [char] letters.

    A word is represented as an OCaml [string]; the empty string is the empty
    word ε. This module collects the combinatorial operations on words used
    throughout the paper: infix/prefix/suffix tests, mirroring, and
    repeated-letter detection (Section 2 and Section 6 of the paper). *)

type t = string
(** A word; [""] is ε. *)

val epsilon : t
(** The empty word ε. *)

val length : t -> int
(** Number of letters. *)

val letters : t -> Cset.t
(** Set of letters occurring in the word. *)

val mirror : t -> t
(** [mirror "abc" = "cba"]; the mirror operation of Proposition E.1. *)

val is_prefix : t -> t -> bool
(** [is_prefix a b] holds iff [a] is a prefix of [b]. *)

val is_suffix : t -> t -> bool
(** [is_suffix a b] holds iff [a] is a suffix of [b]. *)

val is_infix : t -> t -> bool
(** [is_infix a b] holds iff [a] occurs as a contiguous factor of [b]. *)

val is_strict_infix : t -> t -> bool
(** [is_strict_infix a b] holds iff [b = d ^ a ^ g] with [d ^ g] non-empty. *)

val infixes : t -> t list
(** All infixes of the word, without duplicates (includes ε and the word). *)

val strict_infixes : t -> t list
(** All strict infixes, without duplicates (includes ε, excludes the word
    itself unless it occurs as a shorter factor, which is impossible). *)

val prefixes : t -> t list
(** All prefixes, from ε to the full word. *)

val suffixes : t -> t list
(** All suffixes, from ε to the full word. *)

val has_repeated_letter : t -> bool
(** Does the word contain the same letter at two distinct positions?
    (Definition used by Theorem 6.1.) *)

val repeated_letter_gap : t -> (char * int) option
(** If the word has a repeated letter, returns [(a, g)] where [g] is the
    maximal gap [|γ|] over decompositions [βaγaδ] of the word (the quantity
    maximized by maximal-gap words, Definition E.2). *)

val all_distinct : t -> bool
(** Are all letters pairwise distinct? *)

val to_list : t -> char list
val of_list : char list -> t

val pp : Format.formatter -> t -> unit
(** Prints the word, or ["ε"] for the empty word. *)
