(** Graphviz (DOT) rendering of automata, for documentation and debugging. *)

val of_nfa : ?name:string -> Nfa.t -> string
(** DOT digraph: initial states get an incoming arrow, final states a double
    circle; ε-transitions are dashed. *)

val of_dfa : ?name:string -> Dfa.t -> string
