let of_nfa ?(name = "nfa") (a : Nfa.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  List.iter
    (fun s ->
      Buffer.add_string b (Printf.sprintf "  start%d [shape=point];\n  start%d -> q%d;\n" s s s))
    a.Nfa.initial;
  for s = 0 to a.Nfa.nstates - 1 do
    let shape = if List.mem s a.Nfa.final then "doublecircle" else "circle" in
    Buffer.add_string b (Printf.sprintf "  q%d [shape=%s,label=\"%d\"];\n" s shape s)
  done;
  List.iter
    (fun (s, sym, s') ->
      match sym with
      | Nfa.Eps ->
          Buffer.add_string b
            (Printf.sprintf "  q%d -> q%d [label=\"\xce\xb5\",style=dashed];\n" s s')
      | Nfa.Ch c -> Buffer.add_string b (Printf.sprintf "  q%d -> q%d [label=\"%c\"];\n" s s' c))
    a.Nfa.trans;
  Buffer.add_string b "}\n";
  Buffer.contents b

let of_dfa ?(name = "dfa") (d : Dfa.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  Buffer.add_string b
    (Printf.sprintf "  start [shape=point];\n  start -> q%d;\n" d.Dfa.init);
  for s = 0 to d.Dfa.nstates - 1 do
    let shape = if d.Dfa.final.(s) then "doublecircle" else "circle" in
    Buffer.add_string b (Printf.sprintf "  q%d [shape=%s,label=\"%d\"];\n" s shape s)
  done;
  Array.iteri
    (fun s row ->
      Array.iteri
        (fun li s' ->
          Buffer.add_string b (Printf.sprintf "  q%d -> q%d [label=\"%c\"];\n" s s' d.Dfa.alpha.(li)))
        row)
    d.Dfa.delta;
  Buffer.add_string b "}\n";
  Buffer.contents b
