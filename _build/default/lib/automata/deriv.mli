(** Brzozowski derivatives of regular expressions.

    An independent implementation of membership and DFA construction, used
    to cross-check the Thompson/subset-construction pipeline in the test
    suite and as a convenient symbolic tool: [deriv a e] denotes
    { w | aw ∈ L(e) }. Expressions are kept in a similarity-normal form
    (associativity/commutativity/idempotence of [|], unit/zero laws) so that
    the set of iterated derivatives is finite (Brzozowski's theorem). *)

val normalize : Regex.t -> Regex.t
(** Similarity-normal form; preserves the language. *)

val deriv : char -> Regex.t -> Regex.t
(** The derivative by one letter, normalized. *)

val deriv_word : Word.t -> Regex.t -> Regex.t

val mem : Regex.t -> Word.t -> bool
(** Membership: [mem e w] iff the derivative of [e] by [w] is nullable. *)

val dfa : ?max_states:int -> Regex.t -> Dfa.t
(** The derivative automaton, determinized by construction: states are the
    distinct normalized derivatives. [max_states] (default 10_000) bounds
    the exploration.
    @raise Failure if the bound is exceeded (should not happen after
    normalization). *)
