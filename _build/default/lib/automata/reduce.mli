(** Reduction of languages: [reduce(L)] is the infix-free sublanguage
    {α ∈ L | no strict infix of α is in L} (Section 2 of the paper).
    The queries [Q_L] and [Q_{reduce(L)}] are the same, so all complexity
    results are stated on reduced languages. *)

val words : Word.t list -> Word.t list
(** Reduction of an explicit finite language. *)

val is_reduced_words : Word.t list -> bool

val nfa : Nfa.t -> Nfa.t
(** Automaton for [reduce(L)]: computed as
    [L ∩ ¬(Σ⁺LΣ* ∪ Σ*LΣ⁺)]. Exact for every regular language, but may incur
    the inherent exponential blowup (Barceló et al., cited as [6] in the
    paper). *)

val is_reduced : Nfa.t -> bool
(** Is [L = reduce(L)]? *)
