(** Finite sets of letters (alphabets Σ). *)

include Set.S with type elt = char

val of_string : string -> t
(** Set of the letters occurring in a string. *)

val to_string : t -> string
(** Letters in increasing order, concatenated. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{a,b,c}]. *)
