lib/automata/cset.ml: Buffer Char Format List Set String
