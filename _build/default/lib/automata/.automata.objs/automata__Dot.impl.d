lib/automata/dot.ml: Array Buffer Dfa List Nfa Printf
