lib/automata/neutral.ml: Cset Lang List Nfa
