lib/automata/local.ml: Array Cset Dfa Fun Hashtbl Lang List Nfa String
