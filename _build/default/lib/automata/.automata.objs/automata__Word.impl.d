lib/automata/word.ml: Array Char Cset Format List String
