lib/automata/starfree.ml: Array Dfa Hashtbl List Option Queue
