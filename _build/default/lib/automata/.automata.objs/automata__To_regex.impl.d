lib/automata/to_regex.ml: Array Deriv Dfa List Nfa Regex
