lib/automata/neutral.mli: Nfa
