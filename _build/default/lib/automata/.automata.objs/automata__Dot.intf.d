lib/automata/dot.mli: Dfa Nfa
