lib/automata/local.mli: Cset Nfa Word
