lib/automata/lang.ml: Dfa Nfa Regex
