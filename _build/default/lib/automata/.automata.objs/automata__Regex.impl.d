lib/automata/regex.ml: Buffer Cset Format List Printf String
