lib/automata/reduce.ml: Dfa Lang List Nfa Word
