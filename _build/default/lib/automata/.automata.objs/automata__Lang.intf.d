lib/automata/lang.mli: Cset Nfa Regex Word
