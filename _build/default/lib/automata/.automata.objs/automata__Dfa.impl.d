lib/automata/dfa.ml: Array Buffer Cset Format Hashtbl List Nfa Option Queue String
