lib/automata/nfa.ml: Array Char Cset Format List Printf Regex String
