lib/automata/regex.mli: Cset Format Word
