lib/automata/cset.mli: Format Set
