lib/automata/to_regex.mli: Dfa Nfa Regex
