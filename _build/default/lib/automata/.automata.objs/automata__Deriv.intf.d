lib/automata/deriv.mli: Dfa Regex Word
