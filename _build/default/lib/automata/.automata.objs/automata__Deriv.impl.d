lib/automata/deriv.ml: Array Cset Dfa Hashtbl List Nfa Regex String
