lib/automata/reduce.mli: Nfa Word
