lib/automata/nfa.mli: Cset Format Regex Word
