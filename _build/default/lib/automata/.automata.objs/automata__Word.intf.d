lib/automata/word.mli: Cset Format
