lib/automata/starfree.mli: Nfa
