lib/automata/dfa.mli: Cset Format Nfa Regex Word
