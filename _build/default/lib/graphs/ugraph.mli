(** Simple undirected graphs, minimum vertex cover, ℓ-subdivisions and
    bipartiteness. These are the combinatorial objects of the paper's
    hardness reductions (Proposition 4.2, Proposition 4.11) and of the
    bipartite chain languages (Definition 7.2). *)

type t
(** Vertices are [0 .. n-1]; no self-loops, no parallel edges. *)

val make : n:int -> edges:(int * int) list -> t
(** @raise Invalid_argument on self-loops or out-of-range endpoints.
    Duplicate edges are merged. *)

val n : t -> int
val edges : t -> (int * int) list
(** Each edge as [(u, v)] with [u < v]; sorted. *)

val edge_count : t -> int
val neighbors : t -> int -> int list
val pp : Format.formatter -> t -> unit

(** {1 Vertex cover} *)

val vertex_cover_number : t -> int
(** Exact minimum vertex cover size (branch and bound; exponential worst
    case, practical for the reduction tests). *)

val vertex_cover_bruteforce : t -> int
(** Reference implementation (≤ 25 vertices). *)

val is_vertex_cover : t -> int list -> bool

(** {1 Constructions} *)

val subdivide : t -> int -> t
(** [subdivide g l] replaces every edge by a path of length [l] (l ≥ 1;
    l = 1 is the identity). Original vertices keep their ids. *)

val bipartition : t -> (int array * int) option
(** [Some (color, classes)] when 2-colorable: [color.(v)] ∈ {0, 1} (vertices
    of degree 0 get color 0); [None] otherwise. *)

val is_bipartite : t -> bool

(** {1 Generators} *)

val path : int -> t
val cycle : int -> t
val complete : int -> t
val random : n:int -> p:float -> seed:int -> t
(** Erdős–Rényi G(n, p). *)
