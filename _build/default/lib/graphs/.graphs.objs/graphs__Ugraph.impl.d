lib/graphs/ugraph.ml: Array Format Fun List Printf Queue Random String
