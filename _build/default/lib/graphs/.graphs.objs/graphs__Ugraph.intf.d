lib/graphs/ugraph.mli: Format
