lib/lp/ilp.mli:
