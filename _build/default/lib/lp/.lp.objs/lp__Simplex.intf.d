lib/lp/simplex.mli:
