lib/lp/ilp.ml: Array Float List Simplex
