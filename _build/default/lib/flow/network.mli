(** Flow networks with integer capacities and +∞ edges.

    The paper reduces resilience to MinCut on networks whose fact-edges carry
    the fact multiplicities and whose structural edges have capacity +∞
    (Theorem 3.3, Proposition 7.5). *)

type capacity = Finite of int | Inf

val cap_add : capacity -> capacity -> capacity
val cap_compare : capacity -> capacity -> int
val pp_capacity : Format.formatter -> capacity -> unit

type t
(** A mutable network under construction. Vertices are integers allocated by
    {!add_vertex}; parallel edges are allowed. *)

val create : unit -> t
val add_vertex : t -> int
val vertex_count : t -> int

val add_edge : t -> src:int -> dst:int -> capacity -> int
(** Adds a directed edge and returns its edge id (ids are dense from 0). *)

val edge_count : t -> int
val edge_info : t -> int -> int * int * capacity
(** [(src, dst, capacity)] of an edge id. *)

val pp : Format.formatter -> t -> unit

(** {1 Max-flow / min-cut} *)

type cut = { value : capacity; edges : int list }
(** A minimum cut: its total capacity and the ids of the cut edges (edges
    from the source side to the sink side; only returned when the value is
    finite). *)

val min_cut : t -> source:int -> sink:int -> cut
(** Dinic's algorithm. When the cut value is [Inf] (the sink is not
    separable by finite-capacity edges), [edges] is []. *)

val max_flow_value : t -> source:int -> sink:int -> capacity
