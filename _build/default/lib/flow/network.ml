type capacity = Finite of int | Inf

let cap_add a b =
  match (a, b) with
  | Finite x, Finite y -> Finite (x + y)
  | _ -> Inf

let cap_compare a b =
  match (a, b) with
  | Finite x, Finite y -> compare x y
  | Finite _, Inf -> -1
  | Inf, Finite _ -> 1
  | Inf, Inf -> 0

let pp_capacity ppf = function
  | Finite x -> Format.pp_print_int ppf x
  | Inf -> Format.pp_print_string ppf "+\xe2\x88\x9e"

type t = {
  mutable nvertices : int;
  mutable edges : (int * int * capacity) list;  (* reversed order of insertion *)
  mutable nedges : int;
}

let create () = { nvertices = 0; edges = []; nedges = 0 }

let add_vertex t =
  let v = t.nvertices in
  t.nvertices <- v + 1;
  v

let vertex_count t = t.nvertices

let add_edge t ~src ~dst cap =
  if src < 0 || src >= t.nvertices || dst < 0 || dst >= t.nvertices then
    invalid_arg "Network.add_edge: vertex out of range";
  (match cap with
  | Finite c when c < 0 -> invalid_arg "Network.add_edge: negative capacity"
  | _ -> ());
  let id = t.nedges in
  t.nedges <- id + 1;
  t.edges <- (src, dst, cap) :: t.edges;
  id

let edge_count t = t.nedges
let edges_array t = Array.of_list (List.rev t.edges)
let edge_info t id = (edges_array t).(id)

let pp ppf t =
  Format.fprintf ppf "@[<v>network: %d vertices, %d edges@," t.nvertices t.nedges;
  Array.iteri
    (fun id (s, d, c) -> Format.fprintf ppf "  e%d: %d -> %d (%a)@," id s d pp_capacity c)
    (edges_array t);
  Format.fprintf ppf "@]"

type cut = { value : capacity; edges : int list }

(* Dinic's algorithm. Infinite capacities are encoded as (total finite
   capacity + 1): any finite cut has value at most the total finite capacity,
   so a computed min cut exceeding it means the true min cut is infinite. *)
let min_cut t ~source ~sink =
  if source = sink then invalid_arg "Network.min_cut: source = sink";
  let es = edges_array t in
  let m = Array.length es in
  let total_finite =
    Array.fold_left (fun acc (_, _, c) -> match c with Finite x -> acc + x | Inf -> acc) 0 es
  in
  let inf_internal = total_finite + 1 in
  let n = t.nvertices in
  (* Arc arrays: arc 2i is edge i forward, arc 2i+1 its residual. *)
  let arc_to = Array.make (2 * m) 0 in
  let arc_cap = Array.make (2 * m) 0 in
  let head = Array.make n [] in
  Array.iteri
    (fun i (s, d, c) ->
      arc_to.(2 * i) <- d;
      arc_cap.(2 * i) <- (match c with Finite x -> x | Inf -> inf_internal);
      arc_to.((2 * i) + 1) <- s;
      arc_cap.((2 * i) + 1) <- 0;
      head.(s) <- (2 * i) :: head.(s);
      head.(d) <- ((2 * i) + 1) :: head.(d))
    es;
  let head = Array.map Array.of_list head in
  let level = Array.make n (-1) in
  let iter = Array.make n 0 in
  let bfs () =
    Array.fill level 0 n (-1);
    let q = Queue.create () in
    level.(source) <- 0;
    Queue.add source q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      Array.iter
        (fun a ->
          let u = arc_to.(a) in
          if arc_cap.(a) > 0 && level.(u) < 0 then begin
            level.(u) <- level.(v) + 1;
            Queue.add u q
          end)
        head.(v)
    done;
    level.(sink) >= 0
  in
  let rec dfs v f =
    if v = sink then f
    else begin
      let res = ref 0 in
      while !res = 0 && iter.(v) < Array.length head.(v) do
        let a = head.(v).(iter.(v)) in
        let u = arc_to.(a) in
        if arc_cap.(a) > 0 && level.(u) = level.(v) + 1 then begin
          let d = dfs u (min f arc_cap.(a)) in
          if d > 0 then begin
            arc_cap.(a) <- arc_cap.(a) - d;
            arc_cap.(a lxor 1) <- arc_cap.(a lxor 1) + d;
            res := d
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !res
    end
  in
  let flow = ref 0 in
  while !flow <= total_finite && bfs () do
    Array.fill iter 0 n 0;
    let continue = ref true in
    while !continue do
      let f = dfs source max_int in
      if f = 0 then continue := false else flow := !flow + f
    done
  done;
  if !flow > total_finite then { value = Inf; edges = [] }
  else begin
    (* Source side of the residual graph. *)
    let reach = Array.make n false in
    let q = Queue.create () in
    reach.(source) <- true;
    Queue.add source q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      Array.iter
        (fun a ->
          let u = arc_to.(a) in
          if arc_cap.(a) > 0 && not reach.(u) then begin
            reach.(u) <- true;
            Queue.add u q
          end)
        head.(v)
    done;
    let cut_edges = ref [] in
    Array.iteri
      (fun i (s, d, c) ->
        match c with
        | Finite x when x > 0 && reach.(s) && not reach.(d) -> cut_edges := i :: !cut_edges
        | _ -> ())
      es;
    { value = Finite !flow; edges = List.rev !cut_edges }
  end

let max_flow_value t ~source ~sink = (min_cut t ~source ~sink).value
