lib/flow/network.mli: Format
