lib/flow/push_relabel.mli: Network
