lib/flow/push_relabel.ml: Array List Network Queue
