lib/flow/network.ml: Array Format List Queue
