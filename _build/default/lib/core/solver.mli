(** One-stop resilience solver.

    Classifies the language (Figure 1) and dispatches to the best algorithm:
    the Theorem 3.3 MinCut solver for local languages, the Proposition 7.5
    construction for bipartite chain languages, submodular minimization for
    the Proposition 7.7 family, and exact branch and bound otherwise (the
    problem is then NP-hard or unclassified).

    Bag semantics throughout: fact multiplicities are removal costs; a set
    database is simply one with all multiplicities 1 (RES_set = RES_bag on
    it, cf. Section 2). *)

type algorithm =
  | Alg_trivial  (** empty language or ε ∈ L *)
  | Alg_local_mincut  (** Theorem 3.3 *)
  | Alg_bcl_mincut  (** Proposition 7.5 *)
  | Alg_submodular  (** Proposition 7.7 *)
  | Alg_exact_bnb  (** witness-branching branch and bound (exponential) *)

val algorithm_name : algorithm -> string

type result = {
  value : Value.t;
  witness : int list option;
      (** a minimum contingency set (fact ids), when the algorithm produces
          one; submodular minimization reports only the value *)
  algorithm : algorithm;
  classification : Classify.t;
}

val solve : ?classification:Classify.t -> Graphdb.Db.t -> Automata.Nfa.t -> result
(** Computes the resilience of [Q_L] on the database. Pass [classification]
    to reuse a previously computed verdict (it must be for the same
    language). *)

val resilience : Graphdb.Db.t -> Automata.Nfa.t -> Value.t
(** Just the value. *)

val resilience_regex : Graphdb.Db.t -> string -> Value.t
(** Convenience: parse the regex and solve. *)
