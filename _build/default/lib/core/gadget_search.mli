(** Automatic search for hardness gadgets.

    Candidate gadgets are chains of L-word walks glued by shared facts:
    match i is a walk labeled by a word of L, and consecutive matches share
    one fact (or two adjacent facts). The two terminal matches start with the
    endpoint facts F_in / F_out, which forces the endpoint label to be the
    first letter of their words. Every candidate is checked with
    {!Gadgets.verify} (Definition 4.9), so any reported gadget is a genuine
    NP-hardness certificate for the (reduced) language via Proposition 4.11.

    This is the tool that produced the library's gadgets for ab|bc|ca,
    abcd|be|ef, abcd|bef and axηya|yax, and it can be pointed at languages
    the paper leaves open. *)

type share =
  | Single of int * int
      (** [Single (p, q)]: fact p of match i = fact q of match i+1 *)
  | Double of int * int
      (** two adjacent facts shared: p, p+1 of match i = q, q+1 of i+1 *)

type found = {
  gadget : Gadgets.pre_gadget;
  verification : Gadgets.verification;
  words_used : string array;  (** the word of each match in the chain *)
  shares : share array;
}

val build_candidate :
  label:char -> words:string array -> shares:share array -> Gadgets.pre_gadget
(** Materializes a candidate chain as a pre-gadget database (without
    verifying it). *)

val search :
  ?labels:char list -> ?max_matches:int -> ?max_candidates:int
  -> Automata.Nfa.t -> found option
(** Exhaustive-with-budget search: tries chains of [3, 5, …, max_matches]
    (default 7) matches over the words of the (finite) language, with
    terminal words starting with each candidate label (default: all first
    letters of words). Stops at the first verified gadget, or after
    [max_candidates] (default 2_000_000) candidates.
    Returns [None] for infinite languages and when the budget is exhausted
    — which proves nothing (gadgets may exist outside the searched shape). *)

val certify_np_hard : ?max_matches:int -> Automata.Nfa.t -> found option
(** Convenience wrapper used by the classifier extension: reduces the
    language first, requires it finite, and searches. A [Some] result is a
    machine-checked NP-hardness proof for RES_set(L) (Proposition 4.11). *)
