module Db = Graphdb.Db

let instance_of d a =
  if Automata.Nfa.nullable a then Error "\xce\xb5 \xe2\x88\x88 L: resilience is infinite"
  else
    match Graphdb.Eval.all_matches d a with
    | exception Invalid_argument msg -> Error msg
    | matches ->
        let fact_ids = Array.of_list (List.map fst (Db.facts d)) in
        let index = Hashtbl.create 64 in
        Array.iteri (fun i id -> Hashtbl.add index id i) fact_ids;
        let covers =
          List.map
            (fun m -> List.map (Hashtbl.find index) (Hypergraph.Iset.elements m))
            matches
        in
        Ok
          ( {
              Lp.Ilp.nvars = Array.length fact_ids;
              weights = Array.map (Db.mult d) fact_ids;
              covers;
            },
            fact_ids )

let solve d a =
  if Automata.Nfa.nullable a then Ok (Value.Infinite, [])
  else
    match instance_of d a with
    | Error e -> Error e
    | Ok (inst, fact_ids) -> begin
        match Lp.Ilp.solve inst with
        | Error e -> Error e
        | Ok sol ->
            let witness = ref [] in
            Array.iteri
              (fun i b -> if b then witness := fact_ids.(i) :: !witness)
              sol.Lp.Ilp.assignment;
            Ok (Value.Finite sol.Lp.Ilp.value, List.rev !witness)
      end

let lp_relaxation d a =
  match instance_of d a with
  | Error e -> Error e
  | Ok (inst, _) -> Lp.Ilp.lp_bound inst
