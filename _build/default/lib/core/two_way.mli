(** Two-way RPQs (2RPQs) — the paper's Section 8 notes that resilience for
    them "would require new techniques (these queries are not directional)";
    here we provide evaluation and {e exact} resilience so the problem can at
    least be experimented with.

    Convention: in the query language, a lowercase letter [a] traverses an
    [a]-fact forward and the corresponding uppercase letter [A] traverses an
    [a]-fact {e backward}. E.g. ["aB"] asks for nodes u → v via an a-fact
    followed by a backward b-fact (v ←b— w walked from v to w). A walk may
    traverse the same fact several times, in either direction; a contingency
    set must destroy every accepting two-way walk. *)

val satisfies : Graphdb.Db.t -> Automata.Nfa.t -> bool
(** Is there a two-way L-walk? *)

val shortest_witness : Graphdb.Db.t -> Automata.Nfa.t -> int list option
(** Fact ids of a shortest two-way L-walk (facts may repeat). *)

val matches_up_to : Graphdb.Db.t -> Automata.Nfa.t -> max_len:int -> Hypergraph.Iset.t list
(** Distinct fact sets of two-way L-walks of length at most the bound. *)

val resilience : Graphdb.Db.t -> Automata.Nfa.t -> Value.t * int list
(** Exact resilience by witness-branching branch and bound (exponential;
    no tractability theory exists yet for 2RPQs). *)
