(** Executable hardness proofs: the case analyses of Theorem 5.5 and
    Theorem 6.1 as algorithms that {e produce a verified gadget}.

    Given a reduced language, these functions replay the paper's proofs:
    they pick a maximal-gap word (Definition E.2), mirror the language when
    the proof does (Proposition E.1), stabilize four-legged witnesses
    (Lemma D.2), distinguish the overlapping/non-overlapping cases, select
    the corresponding gadget family (Figures 7–14) — and then {e verify} the
    resulting gadget against the full language with {!Gadgets.verify}, so
    that the output is a machine-checked NP-hardness certificate
    (Proposition 4.11). If a construction unexpectedly fails verification,
    the bounded {!Gadget_search} is used as a fallback. *)

type outcome = {
  mirrored : bool;
      (** the gadget certifies the mirror language; by Proposition E.1 this
          certifies the original too *)
  strategy : string;  (** which proof case produced the gadget *)
  gadget : Gadgets.pre_gadget;
  language : Automata.Nfa.t;
      (** the (possibly mirrored) reduced language the gadget was verified
          against *)
  verification : Gadgets.verification;
}

val maximal_gap_word :
  Automata.Word.t list
  -> (Automata.Word.t * char * Automata.Word.t * Automata.Word.t * Automata.Word.t) option
(** A maximal-gap word of a finite language (Definition E.2): returns
    [(word, a, β, γ, δ)] with [word = βaγaδ], maximizing first [|γ|] then
    [|word|]. [None] if no word has a repeated letter. *)

val stable_legs :
  Automata.Nfa.t
  -> char * Automata.Word.t * Automata.Word.t * Automata.Word.t * Automata.Word.t
  -> char * Automata.Word.t * Automata.Word.t * Automata.Word.t * Automata.Word.t
(** Lemma D.2: turns a four-legged witness of a reduced language into one
    with {e stable} legs (no infix of αxδ in L). *)

val four_legged_gadget :
  ?mirrored:bool
  -> Automata.Nfa.t
  -> char * Automata.Word.t * Automata.Word.t * Automata.Word.t * Automata.Word.t
  -> (outcome, string) result
(** Theorem 5.5 as an algorithm: stabilize the legs, decide case 1 / case 2
    by testing the infixes of γ'xβ', build the generic gadget and verify it.
    The language must be reduced and the witness genuine. *)

val thm61_gadget : Automata.Nfa.t -> (outcome, string) result
(** Theorem 6.1 as an algorithm: for a finite reduced language containing a
    word with a repeated letter, produce a verified hardness gadget by
    following the proof's case analysis. *)
