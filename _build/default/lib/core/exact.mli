(** Exact resilience solvers that work for {e every} regular language
    (exponential worst case; resilience is NP-hard in general, Section 4).

    These are the reference implementations used to validate the paper's
    polynomial algorithms, and the baselines of the hardness-shape
    benchmarks. All solvers handle bag semantics (fact multiplicities are
    removal costs); set semantics is the all-multiplicities-1 case. *)

val bruteforce : Graphdb.Db.t -> Automata.Nfa.t -> Value.t
(** Enumerates all subsets of live facts (≤ 22 facts).
    @raise Invalid_argument on larger databases. *)

val branch_and_bound : Graphdb.Db.t -> Automata.Nfa.t -> Value.t * int list
(** Witness-branching: while some L-walk exists, pick a shortest one and
    branch on which of its facts enters the contingency set. Memoized on the
    removed-fact set; exact for every regular language and database. Returns
    the value and a witness contingency set (empty for [Infinite]). *)

val hitting_set : Graphdb.Db.t -> Automata.Nfa.t -> Value.t * int list
(** Via the hypergraph of matches (Definition 4.7) and exact weighted
    minimum hitting set. Requires the matches to be enumerable: finite
    language or acyclic database (see {!Graphdb.Eval.all_matches}).
    @raise Invalid_argument otherwise. *)
