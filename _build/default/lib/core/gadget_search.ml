type share = Single of int * int | Double of int * int

type found = {
  gadget : Gadgets.pre_gadget;
  verification : Gadgets.verification;
  words_used : string array;
  shares : share array;
}

(* Union-find over walk positions (i, j) = node j of walk i. *)
let build_candidate ~label ~(words : string array) ~(shares : share array) =
  let k = Array.length words in
  let tbl = Hashtbl.create 64 in
  let key i j = (i * 1000) + j in
  let rec find x =
    match Hashtbl.find_opt tbl x with
    | None -> x
    | Some p ->
        let r = find p in
        if r <> p then Hashtbl.replace tbl x r;
        r
  in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then Hashtbl.replace tbl rx ry
  in
  Array.iteri
    (fun i s ->
      let glue len p q =
        for o = 0 to len do
          union (key i (p + o)) (key (i + 1) (q + o))
        done
      in
      match s with Single (p, q) -> glue 1 p q | Double (p, q) -> glue 2 p q)
    shares;
  let name i j =
    let r = find (key i j) in
    if r = find (key 0 1) then "t_in"
    else if r = find (key (k - 1) 1) then "t_out"
    else Printf.sprintf "n%d" r
  in
  let chains = ref [] in
  Array.iteri
    (fun i w ->
      (* fact 0 of the terminal walks is the completion fact, left out *)
      let start = if i = 0 || i = k - 1 then 1 else 0 in
      for j = start to String.length w - 1 do
        chains := (name i j, String.make 1 w.[j], name i (j + 1)) :: !chains
      done)
    words;
  Gadgets.build ~name:"searched gadget" ~label (List.sort_uniq compare !chains)

let shares_between w1 w2 =
  let acc = ref [] in
  String.iteri
    (fun p c1 ->
      String.iteri
        (fun q c2 ->
          if c1 = c2 then begin
            acc := Single (p, q) :: !acc;
            if p + 1 < String.length w1 && q + 1 < String.length w2 && w1.[p + 1] = w2.[q + 1]
            then acc := Double (p, q) :: !acc
          end)
        w2)
    w1;
  List.rev !acc

exception Found of found
exception Budget

let search ?labels ?(max_matches = 7) ?(max_candidates = 2_000_000) l =
  match Automata.Lang.words l with
  | None -> None
  | Some [] -> None
  | Some ws ->
      let ws = List.filter (fun w -> w <> "") ws in
      let labels =
        match labels with
        | Some ls -> ls
        | None -> List.sort_uniq compare (List.map (fun w -> w.[0]) ws)
      in
      let budget = ref max_candidates in
      let try_candidate ~label ~words ~shares =
        decr budget;
        if !budget < 0 then raise Budget;
        let g = build_candidate ~label ~words ~shares in
        match Gadgets.well_formed g with
        | Error _ -> ()
        | Ok () ->
            let v = Gadgets.verify g l in
            if v.Gadgets.ok then
              raise (Found { gadget = g; verification = v; words_used = words; shares })
      in
      let search_words words =
        let k = Array.length words in
        let options = Array.init (k - 1) (fun i -> shares_between words.(i) words.(i + 1)) in
        let label = words.(0).[0] in
        let rec go i acc =
          if i = k - 1 then
            try_candidate ~label ~words ~shares:(Array.of_list (List.rev acc))
          else List.iter (fun s -> go (i + 1) (s :: acc)) options.(i)
        in
        if words.(k - 1).[0] = label then go 0 []
      in
      let rec word_seqs n = if n = 0 then [ [] ] else
          List.concat_map (fun tail -> List.map (fun w -> w :: tail) ws) (word_seqs (n - 1))
      in
      (try
         let k = ref 3 in
         while !k <= max_matches do
           List.iter
             (fun label ->
               let terminals = List.filter (fun w -> w.[0] = label) ws in
               List.iter
                 (fun t1 ->
                   List.iter
                     (fun t2 ->
                       List.iter
                         (fun mid -> search_words (Array.of_list ((t1 :: mid) @ [ t2 ])))
                         (word_seqs (!k - 2)))
                     terminals)
                 terminals)
             labels;
           k := !k + 2
         done;
         None
       with
      | Found f -> Some f
      | Budget -> None)

let certify_np_hard ?max_matches l =
  let reduced = Automata.Reduce.nfa l in
  if Automata.Nfa.nullable reduced then None else search ?max_matches reduced
