module W = Automata.Word
module Nfa = Automata.Nfa

type outcome = {
  mirrored : bool;
  strategy : string;
  gadget : Gadgets.pre_gadget;
  language : Automata.Nfa.t;
  verification : Gadgets.verification;
}

(* ---- Maximal-gap words (Definition E.2) ---- *)

let maximal_gap_word ws =
  let best = ref None in
  List.iter
    (fun w ->
      let n = String.length w in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if w.[i] = w.[j] then begin
            let gap = j - i - 1 in
            let better =
              match !best with
              | None -> true
              | Some (g, len, _) -> gap > g || (gap = g && n > len)
            in
            if better then
              best :=
                Some
                  ( gap,
                    n,
                    ( w,
                      w.[i],
                      String.sub w 0 i,
                      String.sub w (i + 1) gap,
                      String.sub w (j + 1) (n - j - 1) ) )
          end
        done
      done)
    ws;
  Option.map (fun (_, _, d) -> d) !best

(* ---- Stable legs (Lemma D.2) ---- *)

let stable_legs l ((x, al, be, ga, de) as witness) =
  let xs = String.make 1 x in
  let w' = al ^ xs ^ de in
  (* Position of the witness's body letter in w'. *)
  let xpos = String.length al in
  let n = String.length w' in
  (* Find a strict infix of w' in L that straddles the body with non-empty
     parts on both sides; per the proof of Lemma D.2 it must have this
     shape when it exists. *)
  let found = ref None in
  for s = 0 to xpos - 1 do
    for e = xpos + 2 to n do
      if !found = None && e - s < n then begin
        let tau = String.sub w' s (e - s) in
        if Nfa.accepts l tau then found := Some (s, e)
      end
    done
  done;
  match !found with
  | None -> witness
  | Some (s, e) ->
      let alpha1 = String.sub w' s (xpos - s) in
      let delta1 = String.sub w' (xpos + 1) (e - xpos - 1) in
      if e < n then (* δ₂ ≠ ε: take (γ, δ, α₁, δ₁) *)
        (x, ga, de, alpha1, delta1)
      else (* α₂ ≠ ε: take (α₁, δ₁, α, β) *)
        (x, alpha1, delta1, al, be)

(* ---- Verification helper with search fallback ---- *)

let verified ?(mirrored = false) ~strategy l g =
  let v = Gadgets.verify g l in
  if v.Gadgets.ok then Ok { mirrored; strategy; gadget = g; language = l; verification = v }
  else
    match Gadget_search.search ~max_matches:7 l with
    | Some f ->
        Ok
          {
            mirrored;
            strategy = strategy ^ " (construction failed to condense; search fallback)";
            gadget = f.Gadget_search.gadget;
            language = l;
            verification = f.Gadget_search.verification;
          }
    | None -> Error (strategy ^ ": gadget did not verify and search found no replacement")

let infix_in_lang l w = List.exists (fun i -> i <> "" && Nfa.accepts l i) (W.infixes w)

(* ---- Theorem 5.5 as an algorithm ---- *)

let four_legged_gadget ?(mirrored = false) l witness =
  let x, al, be, ga, de = stable_legs l witness in
  let xs = String.make 1 x in
  if al = "" || be = "" || ga = "" || de = "" then
    Error "four_legged_gadget: witness has empty legs"
  else if not (Nfa.accepts l (al ^ xs ^ be) && Nfa.accepts l (ga ^ xs ^ de)) then
    Error "four_legged_gadget: witness words not in the language"
  else if Nfa.accepts l (al ^ xs ^ de) then Error "four_legged_gadget: not a violation"
  else if not (infix_in_lang l (ga ^ xs ^ be)) then
    verified ~mirrored ~strategy:"Thm 5.5 case 1" l
      (Gadgets.gadget_four_legged_case1 ~x ~alpha:al ~beta:be ~gamma:ga ~delta:de l)
  else begin
    (* Case 2. The generic construction needs |γ'| ≥ 2, or single letters. *)
    match
      try
        Some (Gadgets.gadget_four_legged_case2 ~x ~alpha:al ~beta:be ~gamma:ga ~delta:de l)
      with Invalid_argument _ -> None
    with
    | Some g -> verified ~mirrored ~strategy:"Thm 5.5 case 2" l g
    | None -> begin
        match Gadget_search.search ~max_matches:7 l with
        | Some f ->
            Ok
              {
                mirrored;
                strategy = "Thm 5.5 case 2 (searched)";
                gadget = f.Gadget_search.gadget;
                language = l;
                verification = f.Gadget_search.verification;
              }
        | None -> Error "Thm 5.5 case 2: shape not covered and search found nothing"
      end
  end

(* ---- Letter-parameterized gadget layouts used by Theorem 6.1 ---- *)

let fig3a_layout a =
  let s = String.make 1 a in
  Gadgets.build ~name:(Printf.sprintf "%s%s (Fig 3a/12 layout)" s s) ~label:a
    [ ("t_in", s, "1"); ("1", s, "2"); ("2", s, "3"); ("t_out", s, "2") ]

let fig9_layout a gamma =
  let s = String.make 1 a in
  Gadgets.build ~name:(Printf.sprintf "%s%s%s (Fig 9 layout)" s gamma s) ~label:a
    [
      ("t_in", gamma, "p1");
      ("p1", s, "q1");
      ("q1", gamma, "p2");
      ("p2", s, "q2");
      ("t_out", gamma, "p2");
    ]

let fig10_layout a gamma delta =
  let s = String.make 1 a in
  Gadgets.build ~name:(Printf.sprintf "%s%s%s%s (Fig 10 layout)" s gamma s delta) ~label:a
    [
      ("t_in", gamma, "p1");
      ("p1", s, "q1");
      ("q1", delta, "d1");
      ("q1", gamma, "p2");
      ("p2", s, "q2");
      ("q2", delta, "d2");
      ("t_out", gamma, "p2");
    ]

let fig13_layout a b =
  let sa = String.make 1 a and sb = String.make 1 b in
  Gadgets.build ~name:(Printf.sprintf "%s%s%s (Fig 13 layout)" sa sa sb) ~label:a
    [ ("t_in", sa, "1"); ("1", sb, "2"); ("3", sa, "1"); ("t_out", sa, "3"); ("3", sb, "4") ]

let fig11_layout a b =
  let sa = String.make 1 a and sb = String.make 1 b in
  Gadgets.build ~name:(Printf.sprintf "%s%s%s|%s%s%s (Fig 11 layout)" sa sb sa sb sa sb)
    ~label:a
    [
      ("t_in", sb, "1");
      ("5", sb, "1");
      ("1", sa, "2");
      ("2", sb, "3");
      ("3", sa, "4");
      ("7", sa, "4");
      ("4", sb, "6");
      ("t_out", sb, "7");
      ("8", sb, "7");
    ]

(* ---- Theorem 6.1 as an algorithm ---- *)

let rec thm61_attempt ~mirrored ~fuel l ws =
  if fuel = 0 then Error "thm61: mirroring did not terminate (bug)"
  else
    match maximal_gap_word ws with
    | None -> Error "thm61: no word has a repeated letter"
    | Some (_, a, beta, gamma, delta) ->
        let sa = String.make 1 a in
        if beta <> "" && delta <> "" then
          (* Claim E.3: four-legged with legs (βaγ, δ, β, γaδ). *)
          four_legged_gadget ~mirrored l (a, beta ^ sa ^ gamma, delta, beta, gamma ^ sa ^ delta)
        else if beta <> "" then
          (* Mirror so that β = ε (Proposition E.1). *)
          let lm = Automata.Lang.mirror l in
          thm61_attempt ~mirrored:(not mirrored) ~fuel:(fuel - 1) lm
            (List.map W.mirror ws)
        else begin
          (* w = aγaδ is maximal-gap. *)
          let gag = gamma ^ sa ^ gamma in
          if not (infix_in_lang l gag) then
            (* Lemma E.4 (Figures 9/10/13/3a depending on emptiness). *)
            let g =
              if delta = "" && gamma = "" then fig3a_layout a
              else if delta = "" then fig9_layout a gamma
              else if gamma = "" then fig13_layout_delta a delta
              else fig10_layout a gamma delta
            in
            verified ~mirrored ~strategy:"Lemma E.4" l g
          else begin
            (* Claim E.5: find γ₁aγ₂ ∈ L with γ₁ non-empty suffix and γ₂
               non-empty prefix of γ. *)
            let n = String.length gamma in
            let found = ref None in
            for s = 1 to n do
              for p = 1 to n do
                if !found = None then begin
                  let g1 = String.sub gamma (n - s) s and g2 = String.sub gamma 0 p in
                  if Nfa.accepts l (g1 ^ sa ^ g2) then found := Some (g1, g2)
                end
              done
            done;
            match !found with
            | None -> Error "thm61: Claim E.5 infix not found (language not reduced?)"
            | Some (g1, g2) ->
                if delta <> "" then
                  (* Claim E.6: four-legged with legs (γ₁, γ₂, aγ, δ). *)
                  four_legged_gadget ~mirrored l (a, g1, g2, sa ^ gamma, delta)
                else if String.length g1 + String.length g2 > n then begin
                  (* Overlapping case: γ₁ = ηη', γ₂ = η''η with η non-empty. *)
                  let o = String.length g1 + String.length g2 - n in
                  let eta = String.sub gamma (n - String.length g1) o in
                  let eta'' = String.sub gamma 0 (n - String.length g1) in
                  let eta' = String.sub gamma (String.length g2) (n - String.length g2) in
                  if eta' <> "" then
                    (* Claim E.7 first part: body = first letter of η'. *)
                    let x = eta'.[0] in
                    let sigma = String.sub eta' 1 (String.length eta' - 1) in
                    four_legged_gadget ~mirrored l
                      (x, eta, sigma ^ sa ^ eta'' ^ eta, sa ^ eta'' ^ eta, sigma ^ sa)
                  else if eta'' <> "" then
                    let x = eta''.[0] in
                    let sigma = String.sub eta'' 1 (String.length eta'' - 1) in
                    four_legged_gadget ~mirrored l
                      (x, sa, sigma ^ eta ^ sa, eta ^ sa, sigma ^ eta)
                  else if eta = sa then
                    (* η = a: the language contains aaa (Claim E.9). *)
                    verified ~mirrored ~strategy:"Claim E.9 (aaa)" l (fig3a_layout a)
                  else if String.length eta = 1 then
                    (* aba and bab (Claim E.8). *)
                    verified ~mirrored ~strategy:"Claim E.8 (aba|bab)" l (fig11_layout a eta.[0])
                  else Error "thm61: overlap longer than 1 contradicts maximal-gap (bug?)"
                end
                else begin
                  (* Non-overlapping case: γ = γ₂ηγ₁. *)
                  let eta = String.sub gamma (String.length g2) (n - String.length g2 - String.length g1) in
                  if String.length g1 >= 2 then
                    (* Claim E.10 first part: body = last letter of γ₁. *)
                    let x = g1.[String.length g1 - 1] in
                    let chi = String.sub g1 0 (String.length g1 - 1) in
                    four_legged_gadget ~mirrored l
                      (x, chi, sa ^ g2, sa ^ g2 ^ eta ^ chi, sa)
                  else if String.length g2 >= 2 then
                    let y = g2.[0] in
                    let chi = String.sub g2 1 (String.length g2 - 1) in
                    four_legged_gadget ~mirrored l
                      (y, sa, chi ^ eta ^ g1 ^ sa, g1 ^ sa, chi)
                  else begin
                    (* |γ₁| = |γ₂| = 1: L contains axηya and yax with
                       x = γ₂ and y = γ₁ (Claim E.11). *)
                    let x = g2.[0] and y = g1.[0] in
                    if y = a then
                      if x = a then verified ~mirrored ~strategy:"Claim E.9 (aaa)" l (fig3a_layout a)
                      else
                        verified ~mirrored ~strategy:"Claim E.12 (aab)" l (fig13_layout a x)
                    else if x = a then begin
                      (* Mirror and use Claim E.12/E.9 on L^R (which contains
                         x·a·y = a·a·y). *)
                      let lm = Automata.Lang.mirror l in
                      if y = a then
                        verified ~mirrored:(not mirrored) ~strategy:"Claim E.9 via mirror" lm
                          (fig3a_layout a)
                      else
                        verified ~mirrored:(not mirrored) ~strategy:"Claim E.12 via mirror" lm
                          (fig13_layout a y)
                    end
                    else
                      let g, _ = Gadgets.gadget_axeya_yax_letters ~a ~x ~y ~eta () in
                      verified ~mirrored ~strategy:"Claim E.11 (Fig 14)" l g
                  end
                end
          end
        end

and fig13_layout_delta a delta =
  (* γ = ε, δ ≠ ε: the Fig 13 layout generalized with δ-chains. *)
  let sa = String.make 1 a in
  Gadgets.build ~name:(Printf.sprintf "%s%s%s (Fig 13 layout)" sa sa delta) ~label:a
    [ ("t_in", sa, "1"); ("1", delta, "2"); ("3", sa, "1"); ("t_out", sa, "3"); ("3", delta, "4") ]

let thm61_gadget l =
  match Automata.Lang.words l with
  | None -> Error "thm61: language is infinite"
  | Some ws ->
      if not (Automata.Reduce.is_reduced_words ws) then Error "thm61: language is not reduced"
      else if not (List.exists W.has_repeated_letter ws) then
        Error "thm61: no word has a repeated letter"
      else thm61_attempt ~mirrored:false ~fuel:3 l ws
