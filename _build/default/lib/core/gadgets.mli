(** Hardness gadgets (Section 4) and their programmatic verification.

    A pre-gadget (Definition 4.3) is a database with two distinguished
    elements [t_in], [t_out] that never occur as fact heads, plus an endpoint
    label. Its completion adds endpoint facts [F_in : s_in --a--> t_in] and
    [F_out : s_out --a--> t_out]. The pre-gadget is a {e gadget} for L
    (Definition 4.9) when the hypergraph of matches of the completion
    condenses to an odd path from [F_in] to [F_out]; by Proposition 4.11 a
    gadget for a reduced L makes RES_set(L) NP-hard, by encoding minimum
    vertex cover (Definition 4.5, Proposition 4.2).

    This module reimplements the paper's companion verification code
    (reference [3]) and provides the concrete gadgets behind Propositions
    4.1, 4.12, 7.6 and 7.8, Theorem 5.5 (both cases), and the case gadgets
    of Theorem 6.1 (Figures 9–14). *)

type pre_gadget = {
  name : string;
  db : Graphdb.Db.t;
  t_in : int;
  t_out : int;
  label : char;
}

val build : name:string -> label:char -> (string * string * string) list -> pre_gadget
(** Builds a pre-gadget from word-labeled chains [(u, word, v)]: each chain
    spells its word from node [u] to node [v] through fresh intermediate
    nodes. The node names ["t_in"] and ["t_out"] denote the distinguished
    elements. *)

val well_formed : pre_gadget -> (unit, string) result
(** Checks Definition 4.3: [t_in ≠ t_out] and neither occurs as a head. *)

type completion = {
  db' : Graphdb.Db.t;
  f_in : int;  (** fact id of F_in in [db'] *)
  f_out : int;  (** fact id of F_out in [db'] *)
}

val complete : pre_gadget -> completion

type verification = {
  ok : bool;
  matches : Hypergraph.t;  (** the full hypergraph of matches on the completion *)
  condensed : Hypergraph.t;  (** after condensation protecting F_in, F_out *)
  odd_path_length : int option;  (** ℓ when the condensation is an odd path *)
  failure : string option;
}

val verify : pre_gadget -> Automata.Nfa.t -> verification
(** Definition 4.9, checked as in the paper: enumerate all matches of L on
    the completion (the completion must be acyclic or L finite), condense
    with the endpoint facts protected, and test for an odd path from F_in to
    F_out. *)

val encode : pre_gadget -> Graphs.Ugraph.t -> Graphdb.Db.t
(** Definition 4.5: encode an (arbitrarily oriented) undirected graph,
    replacing each edge by a fresh copy of the pre-gadget and each vertex
    [u] by an endpoint fact [s_u --a--> t_u]. *)

val expected_resilience : pre_gadget -> Automata.Nfa.t -> Graphs.Ugraph.t -> int
(** The value Proposition 4.11 predicts for RES_set(Q_L, encode Γ G):
    vc(G) + m·(ℓ−1)/2 where ℓ is the gadget's odd path length.
    @raise Invalid_argument if the gadget does not verify. *)

val reduction_check : pre_gadget -> Automata.Nfa.t -> Graphs.Ugraph.t -> bool
(** End-to-end check of the hardness reduction on a concrete graph: computes
    RES_set with an exact solver and compares with {!expected_resilience}. *)

(** {1 The paper's gadgets}

    Each function builds the pre-gadget together with (a default automaton
    for) the language it certifies. *)

val gadget_aa : unit -> pre_gadget * Automata.Nfa.t
(** Figure 3a: the language [aa] (Proposition 4.1). *)

val gadget_axb_cxd : unit -> pre_gadget * Automata.Nfa.t
(** The language [axb|cxd] (Proposition 4.12), built as the four-legged
    case-1 gadget. *)

val gadget_four_legged_case1 :
  x:char -> alpha:string -> beta:string -> gamma:string -> delta:string
  -> Automata.Nfa.t -> pre_gadget
(** The generic case-1 gadget of Theorem 5.5: stable legs with no infix of
    γ'xβ' in L, where α' = [alpha]·…, etc. The arguments are the {e full}
    legs α', β', γ', δ' (all non-empty). *)

val gadget_four_legged_case2 :
  x:char -> alpha:string -> beta:string -> gamma:string -> delta:string
  -> Automata.Nfa.t -> pre_gadget
(** The generic case-2 gadget of Theorem 5.5 (some infix of γ'xβ' is in L,
    which must then contain c₂xb, cf. the proof in Appendix D.1). *)

val gadget_a_gamma_a : gamma:string -> unit -> pre_gadget * Automata.Nfa.t
(** Figure 9 (Lemma E.4, δ = ε): language {aγa} with no infix of γaγ in L. *)

val gadget_a_gamma_a_delta : gamma:string -> delta:string -> unit -> pre_gadget * Automata.Nfa.t
(** Figure 10 (Lemma E.4, δ ≠ ε): language {aγaδ}. *)

val gadget_aba_bab : unit -> pre_gadget * Automata.Nfa.t
(** Figure 11 (Claim E.8): languages containing aba and bab. *)

val gadget_aaa : unit -> pre_gadget * Automata.Nfa.t
(** Figure 12 (Claim E.9): languages containing aaa. *)

val gadget_aab : unit -> pre_gadget * Automata.Nfa.t
(** Figure 13 (Claim E.12): languages containing aab, a ≠ b. *)

val gadget_axeya_yax : eta:string -> unit -> pre_gadget * Automata.Nfa.t
(** Figure 14 (Claim E.11): languages {axηya, yax} with x, y ∉ {a}. *)

val gadget_axeya_yax_letters :
  a:char -> x:char -> y:char -> eta:string -> unit -> pre_gadget * Automata.Nfa.t
(** Same construction with the three letters as parameters (used by the
    executable Theorem 6.1 case analysis, where x and y come from the
    maximal-gap decomposition and need not literally be 'x' and 'y'). *)

val gadget_ab_bc_ca : unit -> pre_gadget * Automata.Nfa.t
(** Figure 15 (Proposition 7.6): the non-bipartite chain language ab|bc|ca. *)

val gadget_abcd_be_ef : unit -> pre_gadget * Automata.Nfa.t
(** Figure 16 (Proposition 7.8): abcd|be|ef. *)

val gadget_abcd_bef : unit -> pre_gadget * Automata.Nfa.t
(** Figure 17 (Proposition 7.8): abcd|bef. *)

val all_paper_gadgets : unit -> (string * pre_gadget * Automata.Nfa.t) list
(** Every concrete gadget above with its language, for the test suite and
    the figure-regeneration benches. *)
