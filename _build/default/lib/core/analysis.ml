module Db = Graphdb.Db
module ISet = Hypergraph.Iset

let all_minimum_contingency_sets d a =
  if Automata.Nfa.nullable a then (Value.Infinite, [])
  else begin
    let h = Graphdb.Eval.match_hypergraph d a in
    let value, sets = Hypergraph.all_min_hitting_sets ~weights:(Db.mult d) h in
    (Value.Finite value, sets)
  end

let count_minimum_contingency_sets d a =
  match all_minimum_contingency_sets d a with
  | Value.Infinite, _ -> 0
  | Value.Finite _, sets -> List.length sets

(* Responsibility via the hypergraph of matches: f is counterfactual after
   removing Γ iff Γ ∪ {f} hits every match while Γ alone leaves some match
   m with m ∩ (Γ ∪ {f}) = {f}. So:

     resp(f) = min over matches m ∋ f of the minimum cost of hitting every
               match not containing f, using no vertex of m (the witness
               match must stay alive except for f itself).

   Careful: Γ must also hit the matches that contain f but are not the
   witness m — unless they are already "hit" by... they are killed when f is
   removed, but Γ itself must NOT need to hit them (the query must still
   hold on D ∖ Γ, which it does as long as some match survives Γ — and m
   survives). Γ ∪ {f} must falsify the query: every match must meet Γ ∪ {f};
   matches containing f are fine, all others must meet Γ. *)
let responsibility d a f =
  if Automata.Nfa.nullable a then Value.Infinite
  else if not (Db.is_live d f) then invalid_arg "Analysis.responsibility: dead fact"
  else begin
    let matches = Graphdb.Eval.all_matches d a in
    let with_f, without_f = List.partition (fun m -> ISet.mem f m) matches in
    let best = ref Value.Infinite in
    List.iter
      (fun m ->
        (* witness match m: Γ avoids m entirely (f ∉ Γ by construction since
           f ∈ m); Γ hits every match without f *)
        let forbidden = m in
        let feasible = ref true in
        let reduced_edges =
          List.map
            (fun m' ->
              let allowed = ISet.diff m' forbidden in
              if ISet.is_empty allowed then feasible := false;
              ISet.elements allowed)
            without_f
        in
        if !feasible then begin
          let verts = List.sort_uniq compare (List.concat reduced_edges) in
          let h = Hypergraph.make ~vertices:verts ~edges:reduced_edges in
          let cost, _ = Hypergraph.min_hitting_set ~weights:(Db.mult d) h in
          best := Value.min !best (Value.Finite cost)
        end)
      with_f;
    !best
  end

let responsibility_score d a f =
  match responsibility d a f with
  | Value.Infinite -> 0.0
  | Value.Finite k -> 1.0 /. (1.0 +. float_of_int k)

let most_responsible_facts d a =
  List.map (fun (id, _) -> (id, responsibility_score d a id)) (Db.facts d)
  |> List.sort (fun (i1, s1) (i2, s2) ->
         let c = compare s2 s1 in
         if c <> 0 then c else compare i1 i2)
