(** Finer-grained analyses on top of resilience: enumeration of all minimum
    contingency sets, and the {e responsibility} of individual facts (the
    companion notion from Freire, Gatterbauer, Immerman & Meliou, cited as
    [12] by the paper).

    All functions require enumerable matches (finite language or acyclic
    database) and are exponential in the worst case — resilience analysis
    tools for small and medium instances. *)

val all_minimum_contingency_sets :
  Graphdb.Db.t -> Automata.Nfa.t -> Value.t * Hypergraph.Iset.t list
(** Every minimum-cost contingency set (as fact-id sets). [Infinite] (with
    an empty list) when ε ∈ L. *)

val count_minimum_contingency_sets : Graphdb.Db.t -> Automata.Nfa.t -> int
(** Number of distinct minimum contingency sets (0 when resilience is
    infinite). *)

val responsibility : Graphdb.Db.t -> Automata.Nfa.t -> int -> Value.t
(** [responsibility d l f]: the minimum cost of a set Γ of facts with
    [f ∉ Γ] such that [f] is counterfactual after removing Γ — i.e. the
    query still holds on [D ∖ Γ] but fails on [D ∖ (Γ ∪ {f})]. [Finite 0]
    means removing [f] alone changes the answer; [Infinite] means [f] is
    never counterfactual. The classical responsibility score is
    [1 / (1 + k)] for [Finite k], and 0 for [Infinite]. *)

val responsibility_score : Graphdb.Db.t -> Automata.Nfa.t -> int -> float
(** The [1 / (1 + k)] normalization of {!responsibility}. *)

val most_responsible_facts : Graphdb.Db.t -> Automata.Nfa.t -> (int * float) list
(** All live facts with their responsibility scores, sorted by decreasing
    score (ties by fact id). *)
