type ptime_reason =
  | Trivial_empty
  | Trivial_eps
  | Local
  | Bipartite_chain
  | Submodular of Submod_solver.shape

type hard_reason =
  | Four_legged of char * Automata.Word.t * Automata.Word.t * Automata.Word.t * Automata.Word.t
  | Finite_repeated_letter of Automata.Word.t
  | Non_star_free
  | Neutral_dichotomy of char
  | Known_gadget of string

type verdict = PTime of ptime_reason | NPHard of hard_reason | Unclassified of string

type t = {
  verdict : verdict;
  reduced_words : Automata.Word.t list option;
  reduced : Automata.Nfa.t;
}

(* ---- Renaming / mirror matching for the ad-hoc gadget languages ---- *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (( <> ) x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let rename_words mapping ws =
  List.map (String.map (fun c -> List.assoc c mapping)) ws

let same_up_to_renaming ws1 ws2 =
  let s1 = List.sort_uniq compare ws1 and s2 = List.sort_uniq compare ws2 in
  let l1 = Automata.Cset.elements
      (List.fold_left
         (fun acc w -> Automata.Cset.union acc (Automata.Word.letters w))
         Automata.Cset.empty s1)
  in
  let l2 = Automata.Cset.elements
      (List.fold_left
         (fun acc w -> Automata.Cset.union acc (Automata.Word.letters w))
         Automata.Cset.empty s2)
  in
  List.length l1 = List.length l2
  && List.exists
       (fun perm ->
         let mapping = List.combine l1 perm in
         List.sort_uniq compare (rename_words mapping s1) = s2)
       (permutations l2)

let same_up_to_renaming_and_mirror ws1 ws2 =
  same_up_to_renaming ws1 ws2
  || same_up_to_renaming (List.map Automata.Word.mirror ws1) ws2

let known_gadget_languages =
  [
    ("ab|bc|ca (Prop 7.6)", [ "ab"; "bc"; "ca" ]);
    ("abcd|be|ef (Prop 7.8)", [ "abcd"; "be"; "ef" ]);
    ("abcd|bef (Prop 7.8)", [ "abcd"; "bef" ]);
  ]

(* ---- The decision procedure ---- *)

let classify ?four_legged_bound (a : Automata.Nfa.t) =
  let reduced = Automata.Reduce.nfa a in
  let reduced_words = Automata.Dfa.words (Automata.Dfa.of_nfa reduced) in
  let mk verdict = { verdict; reduced_words; reduced } in
  if Automata.Lang.is_empty a then mk (PTime Trivial_empty)
  else if Automata.Nfa.accepts a "" then mk (PTime Trivial_eps)
  else if Automata.Local.is_local_language reduced then mk (PTime Local)
  else begin
    match reduced_words with
    | Some ws -> begin
        (* Finite reduced language, not local. *)
        match List.find_opt Automata.Word.has_repeated_letter ws with
        | Some w -> mk (NPHard (Finite_repeated_letter w))
        | None -> begin
            let bound = List.fold_left (fun acc w -> max acc (String.length w)) 0 ws in
            match Automata.Local.four_legged_witness reduced ~bound with
            | Some (x, al, be, ga, de) -> mk (NPHard (Four_legged (x, al, be, ga, de)))
            | None ->
                if Bcl.is_bcl ws then mk (PTime Bipartite_chain)
                else begin
                  match Submod_solver.recognize ws with
                  | Some shape -> mk (PTime (Submodular shape))
                  | None -> begin
                      match
                        List.find_opt
                          (fun (_, target) -> same_up_to_renaming_and_mirror ws target)
                          known_gadget_languages
                      with
                      | Some (name, _) -> mk (NPHard (Known_gadget name))
                      | None ->
                          mk
                            (Unclassified
                               "finite, reduced, non-local, no repeated letter, not \
                                four-legged, not a BCL, no submodular shape, no known gadget")
                    end
                end
          end
      end
    | None -> begin
        (* Infinite reduced language, not local. *)
        match Automata.Starfree.is_star_free reduced with
        | Some false -> mk (NPHard Non_star_free)
        | _ -> begin
            match Automata.Neutral.neutral_letters a with
            | e :: _ -> mk (NPHard (Neutral_dichotomy e))
            | [] -> begin
                let bound =
                  match four_legged_bound with
                  | Some b -> b
                  | None ->
                      let dfa = Automata.Dfa.minimize (Automata.Dfa.of_nfa reduced) in
                      max 8 ((2 * dfa.Automata.Dfa.nstates) + 2)
                in
                match Automata.Local.four_legged_witness reduced ~bound with
                | Some (x, al, be, ga, de) -> mk (NPHard (Four_legged (x, al, be, ga, de)))
                | None ->
                    mk
                      (Unclassified
                         "infinite, reduced, non-local, star-free, no neutral letter, no \
                          bounded four-legged witness found")
              end
          end
      end
  end

let classify_regex ?four_legged_bound s =
  classify ?four_legged_bound (Automata.Lang.of_string s)

let verdict_summary = function
  | PTime Trivial_empty -> "PTIME (trivial: empty language, resilience 0)"
  | PTime Trivial_eps -> "PTIME (trivial: \xce\xb5 \xe2\x88\x88 L, resilience +\xe2\x88\x9e)"
  | PTime Local -> "PTIME (local, Thm 3.3: MinCut)"
  | PTime Bipartite_chain -> "PTIME (bipartite chain, Prop 7.5: MinCut)"
  | PTime (Submodular s) ->
      Printf.sprintf "PTIME (submodular, Prop 7.7: \xce\xb1=%s%s)" s.Submod_solver.alpha
        (if s.Submod_solver.mirrored then ", mirrored" else "")
  | NPHard (Four_legged (x, al, be, ga, de)) ->
      Printf.sprintf "NP-hard (four-legged, Thm 5.5: x=%c \xce\xb1=%s \xce\xb2=%s \xce\xb3=%s \xce\xb4=%s)" x
        al be ga de
  | NPHard (Finite_repeated_letter w) ->
      Printf.sprintf "NP-hard (finite with repeated letter, Thm 6.1: %s)" w
  | NPHard Non_star_free -> "NP-hard (non-star-free, Lem 5.6)"
  | NPHard (Neutral_dichotomy e) ->
      Printf.sprintf "NP-hard (neutral letter %c, non-local reduction, Prop 5.7)" e
  | NPHard (Known_gadget name) -> Printf.sprintf "NP-hard (gadget: %s)" name
  | Unclassified why -> Printf.sprintf "UNCLASSIFIED (%s)" why

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_summary v)
