lib/core/st_resilience.mli: Automata Graphdb Solver Value
