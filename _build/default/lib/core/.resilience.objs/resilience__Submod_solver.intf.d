lib/core/submod_solver.mli: Automata Graphdb Value
