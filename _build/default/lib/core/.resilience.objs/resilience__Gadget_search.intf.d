lib/core/gadget_search.mli: Automata Gadgets
