lib/core/solver.mli: Automata Classify Graphdb Value
