lib/core/report.ml: Automata Bcl Buffer Classify Format Gadget_search Gadgets Hardness List Option Printf String
