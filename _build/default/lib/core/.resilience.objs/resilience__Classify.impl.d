lib/core/classify.ml: Automata Bcl Format List Printf String Submod_solver
