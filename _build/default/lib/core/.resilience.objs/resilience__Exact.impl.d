lib/core/exact.ml: Array Automata Graphdb Hashtbl Hypergraph List Value
