lib/core/local_solver.ml: Automata Flow Graphdb Hashtbl List Value
