lib/core/classify.mli: Automata Format Submod_solver
