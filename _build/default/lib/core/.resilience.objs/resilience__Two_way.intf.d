lib/core/two_way.mli: Automata Graphdb Hypergraph Value
