lib/core/gadgets.mli: Automata Graphdb Graphs Hypergraph
