lib/core/exact.mli: Automata Graphdb Value
