lib/core/ilp_solver.mli: Automata Graphdb Lp Value
