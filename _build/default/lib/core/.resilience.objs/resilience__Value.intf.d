lib/core/value.mli: Flow Format
