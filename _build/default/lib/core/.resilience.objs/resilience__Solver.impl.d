lib/core/solver.ml: Automata Bcl Classify Exact Local_solver Submod_solver Value
