lib/core/local_solver.mli: Automata Flow Graphdb Value
