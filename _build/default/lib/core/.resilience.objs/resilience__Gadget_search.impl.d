lib/core/gadget_search.ml: Array Automata Gadgets Hashtbl List Printf String
