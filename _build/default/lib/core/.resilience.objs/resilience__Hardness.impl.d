lib/core/hardness.ml: Automata Gadget_search Gadgets List Option Printf String
