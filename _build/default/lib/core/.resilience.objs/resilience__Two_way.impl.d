lib/core/two_way.ml: Array Automata Char Graphdb Hashtbl Hypergraph List Queue Value
