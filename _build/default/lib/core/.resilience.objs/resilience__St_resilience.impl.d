lib/core/st_resilience.ml: Array Automata Char Exact Graphdb Hashtbl List Local_solver Option Queue Solver String Value
