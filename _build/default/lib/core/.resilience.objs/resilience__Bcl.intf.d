lib/core/bcl.mli: Automata Graphdb Value
