lib/core/gadgets.ml: Automata Exact Graphdb Graphs Hashtbl Hypergraph List Printf String Value
