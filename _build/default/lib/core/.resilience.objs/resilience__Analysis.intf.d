lib/core/analysis.mli: Automata Graphdb Hypergraph Value
