lib/core/hardness.mli: Automata Gadgets
