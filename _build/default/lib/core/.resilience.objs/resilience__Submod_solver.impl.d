lib/core/submod_solver.ml: Array Automata Fun Graphdb List Local_solver Option String Submodular Value
