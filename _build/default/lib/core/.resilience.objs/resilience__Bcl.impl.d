lib/core/bcl.ml: Array Automata Flow Graphdb Graphs Hashtbl List Queue String Value
