lib/core/ilp_solver.ml: Array Automata Graphdb Hashtbl Hypergraph List Lp Value
