lib/core/analysis.ml: Automata Graphdb Hypergraph List Value
