lib/core/value.ml: Flow Format Stdlib
