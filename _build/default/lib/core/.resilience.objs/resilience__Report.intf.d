lib/core/report.mli: Automata Classify Format
