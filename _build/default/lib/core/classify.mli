(** The complexity classifier: Figure 1 of the paper as a decision procedure.

    Given a regular language L, decide whether RES(L) is known to be in
    PTIME, known to be NP-hard, or unclassified by the paper's results. All
    classification happens on [reduce(L)] (Section 2: Q_L = Q_{reduce(L)}).
    Every NP-hard verdict carries a machine-checkable certificate. *)

type ptime_reason =
  | Trivial_empty
      (** L = ∅: the query is never satisfied, resilience is always 0 *)
  | Trivial_eps  (** ε ∈ L: the query is always satisfied, resilience is +∞ *)
  | Local  (** Theorem 3.3: MinCut via RO-εNFA *)
  | Bipartite_chain  (** Proposition 7.5: MinCut with word reversal *)
  | Submodular of Submod_solver.shape  (** Proposition 7.7 *)

type hard_reason =
  | Four_legged of char * Automata.Word.t * Automata.Word.t * Automata.Word.t * Automata.Word.t
      (** Theorem 5.5: body x and legs (α, β, γ, δ) with αxβ, γxδ ∈ reduce(L)
          but αxδ ∉ reduce(L), all legs non-empty *)
  | Finite_repeated_letter of Automata.Word.t
      (** Theorem 6.1: a word of the finite reduced language with a repeated
          letter *)
  | Non_star_free
      (** Lemma 5.6: reduced non-star-free regular languages are four-legged *)
  | Neutral_dichotomy of char
      (** Proposition 5.7: L has this neutral letter and reduce(L) is not
          local *)
  | Known_gadget of string
      (** Propositions 7.6 and 7.8: equal, up to letter renaming and
          mirroring, to ab|bc|ca, abcd|be|ef or abcd|bef *)

type verdict =
  | PTime of ptime_reason
  | NPHard of hard_reason
  | Unclassified of string
      (** not covered by the paper's results; the string summarizes which
          tests were inconclusive *)

type t = {
  verdict : verdict;
  reduced_words : Automata.Word.t list option;
      (** explicit reduce(L) when finite *)
  reduced : Automata.Nfa.t;  (** automaton for reduce(L) *)
}

val classify : ?four_legged_bound:int -> Automata.Nfa.t -> t
(** Runs the full decision procedure. [four_legged_bound] caps the length of
    the words examined by the four-legged witness search for infinite
    languages (default: [max 8 (2 × minimal DFA size + 2)]). *)

val classify_regex : ?four_legged_bound:int -> string -> t
(** Convenience: parse then classify. *)

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_summary : verdict -> string
(** One-line rendering, e.g. ["PTIME (local, Thm 3.3)"]. *)

val same_up_to_renaming_and_mirror : Automata.Word.t list -> Automata.Word.t list -> bool
(** Do two finite languages coincide up to a letter bijection, possibly
    composing with the mirror operation? Both preserve resilience complexity
    (renaming trivially; mirror by Proposition E.1). *)
