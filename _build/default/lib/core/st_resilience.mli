(** Resilience of {e non-Boolean} RPQs with fixed endpoints — the paper's
    Section 8 future-work direction.

    Here the query asks for an L-walk {e from [src] to [dst]}, and resilience
    is the minimum cost of facts to remove so that no such walk remains. We
    reduce to the Boolean problem by guarding the endpoints with fresh
    letters: RES_st(L, D, s, t) = RES(⟨g₁⟩·L·⟨g₂⟩, D + two undeletable guard
    facts), where "undeletable" is modeled by a multiplicity larger than the
    whole database. Locality is preserved by the guarding, so the Theorem 3.3
    MinCut algorithm still applies to local languages; other languages fall
    back to the exact solver. (The paper conjectures more cases become
    tractable with fixed endpoints — e.g. [aa]; here hard languages are
    simply handled exactly.) *)

val satisfies : Graphdb.Db.t -> Automata.Nfa.t -> src:int -> dst:int -> bool
(** Is there an L-walk from [src] to [dst]? (ε ∈ L and [src = dst] counts.) *)

type result = {
  value : Value.t;
  witness : int list option;
  algorithm : Solver.algorithm;
}

val solve : Graphdb.Db.t -> Automata.Nfa.t -> src:int -> dst:int -> result
(** Fixed-endpoint resilience: MinCut for local languages, exact branch and
    bound otherwise. Witness facts refer to the original database's ids. *)

val resilience : Graphdb.Db.t -> Automata.Nfa.t -> src:int -> dst:int -> Value.t
