lib/graphdb/serialize.ml: Buffer Db List Printf String
