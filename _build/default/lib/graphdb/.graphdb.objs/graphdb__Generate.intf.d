lib/graphdb/generate.mli: Db
