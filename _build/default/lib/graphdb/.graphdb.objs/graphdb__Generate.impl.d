lib/graphdb/generate.ml: Array Db List Random
