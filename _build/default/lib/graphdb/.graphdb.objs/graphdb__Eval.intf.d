lib/graphdb/eval.mli: Automata Db Hypergraph
