lib/graphdb/eval.ml: Array Automata Db Hashtbl Hypergraph List Queue String
