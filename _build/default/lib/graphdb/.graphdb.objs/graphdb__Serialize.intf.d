lib/graphdb/serialize.mli: Db
