lib/graphdb/db.ml: Array Automata Format Hashtbl List Printf String
