lib/graphdb/db.mli: Automata Format
