(** Workload generators for tests, examples and benchmarks. *)

val random :
  nnodes:int -> nfacts:int -> alphabet:char list -> ?max_mult:int -> seed:int -> unit -> Db.t
(** Random database: facts drawn uniformly (duplicates merge, so the fact
    count may be lower); multiplicities uniform in [1, max_mult]
    (default 1). *)

val random_acyclic :
  nnodes:int -> nfacts:int -> alphabet:char list -> ?max_mult:int -> seed:int -> unit -> Db.t
(** Random DAG database: all facts go from a lower to a higher node id. *)

val flow_grid : width:int -> depth:int -> ?max_mult:int -> seed:int -> unit -> Db.t
(** The MinCut-correspondence workload of the introduction: [width] source
    nodes with [a]-facts in, a [width × depth] grid of [x]-facts, and
    [b]-facts out to sinks. The query [ax*b] on this database is exactly a
    source-sink MinCut instance. *)

val layered :
  layers:char list -> width:int -> ?density:float -> ?max_mult:int -> seed:int -> unit -> Db.t
(** A layered database: one letter per consecutive layer pair, each layer
    with [width] nodes; each possible fact is kept with probability
    [density] (default 0.5). Good workload for chain languages like
    [ab|bc]. *)

val social : nusers:int -> ?density:float -> seed:int -> unit -> Db.t
(** A small social-network style database with letters: [f]ollows,
    [m]entions, [b]locks between random users. *)
