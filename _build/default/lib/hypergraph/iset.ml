(** Sets of integers (fact ids, vertex ids), shared across the libraries. *)
include Set.Make (Int)

let pp ppf s =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (elements s)))
