lib/hypergraph/iset.ml: Format Int List Set String
