lib/hypergraph/hypergraph.mli: Format Set
