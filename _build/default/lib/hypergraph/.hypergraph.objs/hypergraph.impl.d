lib/hypergraph/hypergraph.ml: Array Format Hashtbl Iset List Option Printf String
