(* Cross-checks between all resilience solvers: the polynomial algorithms of
   the paper (Thm 3.3, Prop 7.5, Prop 7.7) must agree with the exact
   exponential baselines on randomized databases, in set and bag semantics. *)
open Resilience
module Db = Graphdb.Db

let lang = Automata.Lang.of_string
let check = Alcotest.(check bool)

let vcheck name expected got =
  Alcotest.check (Alcotest.testable Value.pp Value.equal) name expected got

(* ---- Hand-computed examples ---- *)

let test_aa_path () =
  (* a path of 4 a-facts: 0-1-2-3-4; matches: 3 pairs; resilience 2 *)
  let d = Db.make ~nnodes:5 ~facts:[ (0, 'a', 1); (1, 'a', 2); (2, 'a', 3); (3, 'a', 4) ] in
  vcheck "aa path" (Value.Finite 2) (fst (Exact.branch_and_bound d (lang "aa")))

let test_axb_flow () =
  (* introduction example: resilience of ax*b = min cut *)
  let b = Db.Builder.create () in
  Db.Builder.add b "s1" 'a' "u";
  Db.Builder.add b "s2" 'a' "u";
  Db.Builder.add b "u" 'x' "v";
  Db.Builder.add b "v" 'b' "t";
  let d = Db.Builder.build b in
  (* cutting the single x-fact kills both walks *)
  (match Local_solver.solve d (lang "ax*b") with
  | Ok (v, w) ->
      vcheck "mincut value" (Value.Finite 1) v;
      check "witness size 1" true (List.length w = 1);
      let d' = Db.restrict d ~removed:(fun id -> List.mem id w) in
      check "witness works" true (not (Graphdb.Eval.satisfies d' (lang "ax*b")))
  | Error e -> Alcotest.fail e)

let test_infinite_resilience () =
  let d = Db.make ~nnodes:1 ~facts:[] in
  vcheck "eps in L" Value.Infinite (Solver.resilience d (lang "a*"));
  vcheck "empty language" (Value.Finite 0) (Solver.resilience d (lang "!"))

let test_trivially_false () =
  let d = Db.make ~nnodes:3 ~facts:[ (0, 'z', 1) ] in
  vcheck "no match" (Value.Finite 0) (Solver.resilience d (lang "ab"))

let test_bag_multiplicities () =
  (* one heavy fact vs two light ones *)
  let d = Db.make_bag ~nnodes:4 ~facts:[ (0, 'a', 1, 5); (1, 'b', 2, 1); (1, 'b', 3, 1) ] in
  (* killing ab: remove both b-facts (cost 2) beats the a-fact (cost 5) *)
  vcheck "bag" (Value.Finite 2) (fst (Exact.branch_and_bound d (lang "ab")));
  match Local_solver.solve d (lang "ab") with
  | Ok (v, _) -> vcheck "bag mincut" (Value.Finite 2) v
  | Error e -> Alcotest.fail e

let test_solver_dispatch () =
  let d = Graphdb.Generate.random ~nnodes:5 ~nfacts:8 ~alphabet:[ 'a'; 'b'; 'x' ] ~seed:3 () in
  let r = Solver.solve d (lang "ax*b") in
  check "local dispatch" true (r.Solver.algorithm = Solver.Alg_local_mincut);
  let r2 = Solver.solve d (lang "ab|bc") in
  check "bcl dispatch" true (r2.Solver.algorithm = Solver.Alg_bcl_mincut);
  let r3 = Solver.solve d (lang "abc|be") in
  check "submodular dispatch" true (r3.Solver.algorithm = Solver.Alg_submodular);
  let r4 = Solver.solve d (lang "aa") in
  check "hard dispatch" true (r4.Solver.algorithm = Solver.Alg_exact_bnb);
  let r5 = Solver.solve d (lang "a*") in
  check "trivial dispatch" true (r5.Solver.algorithm = Solver.Alg_trivial)

let test_st_resilience () =
  (* path 0 -a-> 1 -a-> 2: Boolean RES(aa) = 1, but with endpoints (0,2) we
     must cut one of the two facts: also 1. With endpoints (0,1): no aa-walk
     at all, resilience 0. *)
  let d = Db.make ~nnodes:3 ~facts:[ (0, 'a', 1); (1, 'a', 2) ] in
  let l = lang "aa" in
  check "st sat" true (St_resilience.satisfies d l ~src:0 ~dst:2);
  check "st unsat" false (St_resilience.satisfies d l ~src:0 ~dst:1);
  vcheck "st 0->2" (Value.Finite 1) (St_resilience.resilience d l ~src:0 ~dst:2);
  vcheck "st 0->1" (Value.Finite 0) (St_resilience.resilience d l ~src:0 ~dst:1);
  (* local language: solved by MinCut on the guarded instance *)
  let d2 = Graphdb.Generate.flow_grid ~width:2 ~depth:2 ~seed:4 () in
  let r = St_resilience.solve d2 (lang "ax*b") ~src:0 ~dst:(Db.nnodes d2 - 1) in
  check "st local mincut" true (r.St_resilience.algorithm = Solver.Alg_local_mincut);
  (* eps with equal endpoints is unremovable *)
  vcheck "eps same endpoint" Value.Infinite (St_resilience.resilience d (lang "a*") ~src:1 ~dst:1);
  (* eps with distinct endpoints behaves like the plain language *)
  vcheck "eps diff endpoints" (Value.Finite 1)
    (St_resilience.resilience d (lang "a*") ~src:0 ~dst:2)

(* Brute-force reference for (s,t)-resilience. *)
let st_bruteforce d l ~src ~dst =
  let live = Array.of_list (List.map fst (Db.facts d)) in
  let n = Array.length live in
  let best = ref Value.Infinite in
  for mask = 0 to (1 lsl n) - 1 do
    let cost = ref 0 and removed = ref [] in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        cost := !cost + Db.mult d live.(i);
        removed := live.(i) :: !removed
      end
    done;
    if Value.compare (Value.Finite !cost) !best < 0 then begin
      let d2 = Db.restrict d ~removed:(fun id -> List.mem id !removed) in
      if not (St_resilience.satisfies d2 l ~src ~dst) then best := Value.Finite !cost
    end
  done;
  !best

let test_chain_word_extraction () =
  (* Lemma F.2 on chain languages, including εNFAs built by union/concat *)
  List.iter
    (fun s ->
      let a = lang s in
      match (Bcl.words_of_chain_nfa a, Automata.Lang.words a) with
      | Ok ws, Some expected ->
          Alcotest.(check (list string)) ("words of " ^ s) (List.sort compare expected)
            (List.sort compare ws)
      | Ok _, None -> Alcotest.fail (s ^ ": expected finite")
      | Error e, _ -> Alcotest.fail (s ^ ": " ^ e))
    [ "ab|bc"; "axyb|bztc|cd|dea"; "ab|bc|ca"; "a"; "ab"; "a|bc"; "axb|byc"; "~|ab" ];
  (* a genuinely non-chain language with a productive cycle must error *)
  check "a* rejected" true (Result.is_error (Bcl.words_of_chain_nfa (lang "a(xy)*b")));
  (* minimal DFAs merging pre-final states must still work (axb|ayb) *)
  let m = Automata.Dfa.to_nfa (Automata.Dfa.minimize (Automata.Dfa.of_nfa (lang "axb|ayb"))) in
  (match Bcl.words_of_chain_nfa m with
  | Ok ws -> Alcotest.(check (list string)) "merged pre-final" [ "axb"; "ayb" ] (List.sort compare ws)
  | Error e -> Alcotest.fail e)

let test_local_network_structure () =
  (* Theorem 3.3 construction: one finite edge per live fact whose letter has
     a transition, +∞ edges for ε / source / sink wiring. *)
  let d = Db.make_bag ~nnodes:3 ~facts:[ (0, 'a', 1, 2); (1, 'x', 2, 1); (0, 'z', 2, 1) ] in
  let ro = Automata.Local.ro_enfa (lang "ax*b") in
  let nw = Local_solver.build_network d ~ro in
  (* z has no transition in the automaton: only a and x facts get edges *)
  Alcotest.(check int) "fact edges" 2 (List.length nw.Local_solver.fact_edge);
  List.iter
    (fun (eid, fid) ->
      let _, _, c = Flow.Network.edge_info nw.Local_solver.net eid in
      check "capacity = multiplicity" true (c = Flow.Network.Finite (Db.mult d fid)))
    nw.Local_solver.fact_edge;
  (* non-read-once automata are rejected *)
  check "read-once required" true
    (try
       ignore (Local_solver.build_network d ~ro:(lang "aa"));
       false
     with Invalid_argument _ -> true)

let test_submod_recognize () =
  let r ws = Submod_solver.recognize ws in
  (match r [ "abc"; "be" ] with
  | Some s ->
      check "alpha" true (s.Submod_solver.alpha = "abc");
      check "letters" true (s.Submod_solver.a_pre = 'b' && s.Submod_solver.a_new = 'e');
      check "not mirrored" true (not s.Submod_solver.mirrored)
  | None -> Alcotest.fail "abc|be should be recognized");
  (* the mirror shape: cba|eb *)
  (match r [ "cba"; "eb" ] with
  | Some s -> check "mirrored" true s.Submod_solver.mirrored
  | None -> Alcotest.fail "cba|eb should be recognized via mirroring");
  check "wrong second word" true (r [ "abc"; "ce" ] = None);
  (* ce pairs with abcd, not abc *)
  check "abcd|ce ok" true (r [ "abcd"; "ce" ] <> None);
  check "repeated letters rejected" true (r [ "aba"; "be" ] = None);
  check "fresh letter must be fresh" true (r [ "abc"; "ba" ] = None);
  check "three words rejected" true (r [ "abc"; "be"; "xy" ] = None)

let test_classifier_bound_parameter () =
  (* With a tiny bound the four-legged search cannot see the witness of
     b(aa)*d-like languages... but those are caught by star-freeness; use a
     star-free four-legged language with long witnesses instead. *)
  let s = "abcdexfghij|kxl" in
  (* four-legged with long legs; bound 3 is too small to find the witness *)
  let c_small = Classify.classify ~four_legged_bound:3 (lang s) in
  let c_big = Classify.classify ~four_legged_bound:12 (lang s) in
  ignore c_small;
  (* regardless of the small bound, the language must never be classified
     PTIME *)
  check "not ptime (small bound)" true
    (match c_small.Classify.verdict with Classify.PTime _ -> false | _ -> true);
  check "hard with big bound" true
    (match c_big.Classify.verdict with Classify.NPHard _ -> true | _ -> false)

(* ---- Randomized cross-checks ---- *)

let qcheck = QCheck_alcotest.to_alcotest

let arb_db ?(alphabet = [ 'a'; 'b'; 'c'; 'x' ]) ?(max_mult = 1) ~max_facts () =
  QCheck.make
    ~print:(fun (d : Db.t) -> Format.asprintf "%a" Db.pp d)
    QCheck.Gen.(
      let* seed = int_bound 1000000 in
      let* nnodes = int_range 2 5 in
      let* nfacts = int_range 1 max_facts in
      return (Graphdb.Generate.random ~nnodes ~nfacts ~alphabet ~max_mult ~seed ()))

(* B&B agrees with subset brute force on arbitrary small instances, for a mix
   of tractable and hard languages, set semantics. *)
let prop_bnb_vs_bruteforce =
  let langs = [ "aa"; "ax*b"; "ab|bc"; "abc|be"; "axb|cxd"; "ab|bc|ca"; "b(aa)*d"; "abc" ] in
  QCheck.Test.make ~name:"branch&bound = brute force (set)" ~count:120
    (QCheck.pair (arb_db ~max_facts:9 ()) (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      Value.equal (fst (Exact.branch_and_bound d l)) (Exact.bruteforce d l))

let prop_bnb_vs_bruteforce_bag =
  let langs = [ "aa"; "ax*b"; "ab|bc"; "abc|be"; "axb|cxd" ] in
  QCheck.Test.make ~name:"branch&bound = brute force (bag)" ~count:100
    (QCheck.pair (arb_db ~max_mult:4 ~max_facts:8 ()) (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      Value.equal (fst (Exact.branch_and_bound d l)) (Exact.bruteforce d l))

let prop_hitting_set_vs_bnb =
  let langs = [ "aa"; "ab|bc"; "abc|be"; "axb|cxd"; "abc"; "ab|bc|ca" ] in
  QCheck.Test.make ~name:"hitting-set solver = branch&bound (finite languages)" ~count:120
    (QCheck.pair (arb_db ~max_mult:3 ~max_facts:9 ()) (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      Value.equal (fst (Exact.hitting_set d l)) (fst (Exact.branch_and_bound d l)))

let prop_local_mincut_vs_exact =
  let langs = [ "ax*b"; "ab|ad|cd"; "abc"; "a"; "axb|axc"; "x*y" ] in
  QCheck.Test.make ~name:"Thm 3.3 MinCut = exact (local languages, bag)" ~count:150
    (QCheck.pair (arb_db ~alphabet:[ 'a'; 'b'; 'c'; 'd'; 'x'; 'y' ] ~max_mult:3 ~max_facts:9 ())
       (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      match Local_solver.solve d l with
      | Ok (v, w) ->
          Value.equal v (fst (Exact.branch_and_bound d l))
          &&
          (* the witness really is a contingency set of matching cost *)
          let d' = Db.restrict d ~removed:(fun id -> List.mem id w) in
          (not (Graphdb.Eval.satisfies d' l))
          && Value.equal v (Value.Finite (List.fold_left (fun a id -> a + Db.mult d id) 0 w))
      | Error e -> QCheck.Test.fail_report e)

let prop_chain_extraction_agrees =
  (* On random small finite languages, whenever the Lemma F.2 extraction
     succeeds it must return exactly the language. *)
  QCheck.Test.make ~name:"Lemma F.2 extraction = determinization when it succeeds" ~count:150
    (QCheck.make
       ~print:(String.concat "|")
       QCheck.Gen.(
         list_size (int_range 1 3)
           (map Automata.Word.of_list (list_size (int_range 1 4) (oneofl [ 'a'; 'b'; 'c' ])))))
    (fun ws ->
      let a = Automata.Nfa.of_words ws in
      match Bcl.words_of_chain_nfa a with
      | Ok extracted ->
          Some (List.sort compare extracted)
          = Option.map (List.sort compare) (Automata.Lang.words a)
      | Error _ -> true)

let prop_bcl_vs_exact =
  let langs = [ "ab|bc"; "axyb|bztc|cd|dea"; "ab|bc|a"; "ab"; "abc|ca" ] in
  QCheck.Test.make ~name:"Prop 7.5 BCL MinCut = exact (bag)" ~count:120
    (QCheck.pair
       (arb_db ~alphabet:[ 'a'; 'b'; 'c'; 'd'; 'x'; 'y'; 'z'; 't'; 'e' ] ~max_mult:3 ~max_facts:8 ())
       (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      match Bcl.solve d l with
      | Ok (v, w) ->
          Value.equal v (fst (Exact.branch_and_bound d l))
          &&
          let d' = Db.restrict d ~removed:(fun id -> List.mem id w) in
          not (Graphdb.Eval.satisfies d' l)
      | Error e -> QCheck.Test.fail_report e)

let prop_submodular_vs_exact =
  let langs = [ "abc|be"; "abcd|ce"; "ab|ac" ] in
  (* note: ab|ac is NOT the submodular shape; filter via recognize *)
  QCheck.Test.make ~name:"Prop 7.7 submodular solver = exact (bag)" ~count:100
    (QCheck.pair (arb_db ~alphabet:[ 'a'; 'b'; 'c'; 'd'; 'e' ] ~max_mult:3 ~max_facts:8 ())
       (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      match Submod_solver.solve d l with
      | Ok v -> Value.equal v (fst (Exact.branch_and_bound d l))
      | Error _ -> s = "ab|ac")

let prop_submodular_oracle_is_submodular =
  QCheck.Test.make ~name:"Prop 7.7 objective is submodular (Lemma F.5)" ~count:60
    (arb_db ~alphabet:[ 'a'; 'b'; 'c'; 'e' ] ~max_mult:2 ~max_facts:8 ())
    (fun d ->
      match Submod_solver.recognize [ "abc"; "be" ] with
      | None -> false
      | Some shape ->
          let ground, f = Submod_solver.oracle d shape in
          let n = List.length ground in
          n > 8 || Submodular.Sfm.is_submodular ~n f)

let prop_mirror_invariance =
  let langs = [ "aa"; "ab|bc"; "abc|be"; "axb|cxd"; "abc" ] in
  QCheck.Test.make ~name:"Prop E.1: resilience invariant under mirroring" ~count:100
    (QCheck.pair (arb_db ~max_facts:8 ()) (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      let lm = Automata.Lang.of_regex (Automata.Regex.mirror (Automata.Regex.parse s)) in
      Value.equal
        (fst (Exact.branch_and_bound d l))
        (fst (Exact.branch_and_bound (Db.reverse d) lm)))

let prop_solver_agrees_with_exact =
  let langs = [ "ax*b"; "ab|bc"; "abc|be"; "aa"; "ab|ad|cd"; "axb|cxd" ] in
  QCheck.Test.make ~name:"dispatching solver = exact baseline" ~count:100
    (QCheck.pair (arb_db ~max_mult:2 ~max_facts:8 ()) (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      Value.equal (Solver.resilience d l) (fst (Exact.branch_and_bound d l)))

let prop_reduction_preserves_resilience =
  (* Q_L = Q_reduce(L): resilience must agree on the original language. *)
  let langs = [ "a|aa"; "abbc|bb"; "ab|abc"; "a*"; "aa|aaa|b" ] in
  QCheck.Test.make ~name:"resilience of L = resilience of reduce(L)" ~count:80
    (QCheck.pair (arb_db ~max_facts:7 ()) (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      let r = Automata.Reduce.nfa l in
      if Automata.Nfa.nullable l then true
      else
        Value.equal (fst (Exact.branch_and_bound d l)) (fst (Exact.branch_and_bound d r)))

let prop_st_vs_bruteforce =
  let langs = [ "aa"; "ax*b"; "ab|bc"; "abc" ] in
  QCheck.Test.make ~name:"(s,t)-resilience = brute force" ~count:80
    (QCheck.pair (arb_db ~max_mult:2 ~max_facts:7 ()) (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      let src = 0 and dst = Db.nnodes d - 1 in
      Value.equal (St_resilience.resilience d l ~src ~dst) (st_bruteforce d l ~src ~dst))

let prop_witness_is_minimal_contingency =
  let langs = [ "aa"; "ax*b"; "ab|bc" ] in
  QCheck.Test.make ~name:"B&B witness is a contingency set of optimal cost" ~count:100
    (QCheck.pair (arb_db ~max_mult:3 ~max_facts:8 ()) (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      let v, w = Exact.branch_and_bound d l in
      match v with
      | Value.Infinite -> false
      | Value.Finite cost ->
          let d' = Db.restrict d ~removed:(fun id -> List.mem id w) in
          (not (Graphdb.Eval.satisfies d' l))
          && cost = List.fold_left (fun a id -> a + Db.mult d id) 0 w)

(* Full-pipeline fuzz: random finite languages through classification and
   dispatch; the dispatching solver must agree with the exact baseline no
   matter which algorithm the classifier picked. *)
let arb_lang =
  QCheck.make
    ~print:(String.concat "|")
    QCheck.Gen.(
      list_size (int_range 1 3)
        (map Automata.Word.of_list (list_size (int_range 1 4) (oneofl [ 'a'; 'b'; 'c' ]))))

let prop_pipeline_fuzz =
  QCheck.Test.make ~name:"pipeline fuzz: dispatch = exact on random languages" ~count:150
    (QCheck.pair (arb_db ~alphabet:[ 'a'; 'b'; 'c' ] ~max_mult:2 ~max_facts:7 ()) arb_lang)
    (fun (d, ws) ->
      let l = Automata.Nfa.of_words ws in
      Value.equal (Solver.resilience d l) (fst (Exact.branch_and_bound d l)))

let prop_thm61_fuzz =
  (* For every random reduced language with a repeated-letter word, the
     Theorem 6.1 pipeline either produces a verified gadget or fails
     gracefully (no exception); certificates are verified by construction. *)
  QCheck.Test.make ~name:"Thm 6.1 pipeline fuzz (no crashes, gadgets verified)" ~count:60
    arb_lang
    (fun ws ->
      let ws = Automata.Reduce.words ws in
      let l = Automata.Nfa.of_words ws in
      if not (List.exists Automata.Word.has_repeated_letter ws) then true
      else
        match Hardness.thm61_gadget l with
        | Ok o -> o.Hardness.verification.Gadgets.ok
        | Error _ -> true)

let () =
  Alcotest.run "solvers"
    [
      ( "examples",
        [
          Alcotest.test_case "aa on a path" `Quick test_aa_path;
          Alcotest.test_case "ax*b flow example" `Quick test_axb_flow;
          Alcotest.test_case "infinite resilience" `Quick test_infinite_resilience;
          Alcotest.test_case "trivially false" `Quick test_trivially_false;
          Alcotest.test_case "bag multiplicities" `Quick test_bag_multiplicities;
          Alcotest.test_case "dispatch" `Quick test_solver_dispatch;
          Alcotest.test_case "(s,t)-resilience" `Quick test_st_resilience;
          Alcotest.test_case "Lemma F.2 word extraction" `Quick test_chain_word_extraction;
          Alcotest.test_case "Thm 3.3 network structure" `Quick test_local_network_structure;
          Alcotest.test_case "Prop 7.7 shape recognizer" `Quick test_submod_recognize;
          Alcotest.test_case "classifier bound parameter" `Quick test_classifier_bound_parameter;
        ] );
      ( "cross-checks",
        List.map qcheck
          [
            prop_bnb_vs_bruteforce;
            prop_bnb_vs_bruteforce_bag;
            prop_hitting_set_vs_bnb;
            prop_local_mincut_vs_exact;
            prop_chain_extraction_agrees;
            prop_bcl_vs_exact;
            prop_submodular_vs_exact;
            prop_submodular_oracle_is_submodular;
            prop_mirror_invariance;
            prop_solver_agrees_with_exact;
            prop_reduction_preserves_resilience;
            prop_witness_is_minimal_contingency;
            prop_st_vs_bruteforce;
            prop_pipeline_fuzz;
            prop_thm61_fuzz;
          ] );
    ]
