(* Tests for submodular function minimization (Fujishige–Wolfe vs brute
   force) on standard submodular families. *)
open Submodular

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let size s = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 s

(* Cut function of a directed graph with weights: f(S) = w(δ⁺(S)). *)
let cut_fn edges s =
  List.fold_left
    (fun acc (u, v, w) -> if s.(u) && not s.(v) then acc + w else acc)
    0 edges

(* Coverage-style: f(S) = |∪_{i∈S} A_i| (monotone submodular), shifted. *)
let coverage_fn sets s =
  let u = Hashtbl.create 16 in
  Array.iteri (fun i b -> if b then List.iter (fun x -> Hashtbl.replace u x ()) sets.(i)) s;
  Hashtbl.length u

let test_bruteforce_modular () =
  (* modular function: f(S) = Σ w_i - shifted: minimum picks negatives *)
  let w = [| 3; -2; 5; -1 |] in
  let f s =
    let acc = ref 0 in
    Array.iteri (fun i b -> if b then acc := !acc + w.(i)) s;
    !acc
  in
  let v, s = Sfm.minimize_bruteforce ~n:4 f in
  check_int "modular min" (-3) v;
  check "picked negatives" true (s.(1) && s.(3) && (not s.(0)) && not s.(2))

let test_is_submodular () =
  check "cut is submodular" true
    (Sfm.is_submodular ~n:4 (cut_fn [ (0, 1, 2); (1, 2, 1); (2, 3, 4); (0, 3, 1) ]));
  check "coverage is submodular" true
    (Sfm.is_submodular ~n:3 (coverage_fn [| [ 1; 2 ]; [ 2; 3 ]; [ 4 ] |]));
  (* a supermodular counterexample: f(S) = |S|² *)
  let f s = size s * size s in
  check "square not submodular" false (Sfm.is_submodular ~n:3 f)

let test_wolfe_known () =
  let f = cut_fn [ (0, 1, 2); (1, 2, 1); (2, 0, 3) ] in
  let v, _ = Sfm.minimize ~n:3 f in
  let bv, _ = Sfm.minimize_bruteforce ~n:3 f in
  check_int "wolfe = brute (cycle cut)" bv v;
  (* empty ground set *)
  let v0, _ = Sfm.minimize ~n:0 (fun _ -> 42) in
  check_int "empty ground set" 42 v0

let qcheck = QCheck_alcotest.to_alcotest

let gen_cut =
  QCheck.Gen.(
    let* n = int_range 1 7 in
    let* m = int_range 0 12 in
    let* edges =
      list_repeat m
        (let* u = int_bound (n - 1) in
         let* v = int_bound (n - 1) in
         let* w = int_range 1 6 in
         return (u, v, w))
    in
    return (n, List.filter (fun (u, v, _) -> u <> v) edges))

let arb_cut =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d [%s]" n
        (String.concat ";" (List.map (fun (u, v, w) -> Printf.sprintf "%d->%d:%d" u v w) es)))
    gen_cut

let prop_cut_submodular =
  QCheck.Test.make ~name:"directed cut functions are submodular" ~count:100 arb_cut
    (fun (n, edges) -> Sfm.is_submodular ~n (cut_fn edges))

let prop_wolfe_equals_brute_cut =
  QCheck.Test.make ~name:"Fujishige–Wolfe = brute force on cut functions" ~count:150 arb_cut
    (fun (n, edges) ->
      let f = cut_fn edges in
      fst (Sfm.minimize ~n f) = fst (Sfm.minimize_bruteforce ~n f))

(* Cut plus modular offset: minimum can be non-trivial on both sides. *)
let prop_wolfe_equals_brute_mixed =
  QCheck.Test.make ~name:"Fujishige–Wolfe = brute force on cut + modular" ~count:150
    (QCheck.pair arb_cut (QCheck.make QCheck.Gen.(int_range (-3) 3)))
    (fun ((n, edges), shift) ->
      let f s = cut_fn edges s + (shift * size s) in
      fst (Sfm.minimize ~n f) = fst (Sfm.minimize_bruteforce ~n f))

let prop_wolfe_returned_set_matches_value =
  QCheck.Test.make ~name:"returned set evaluates to returned value" ~count:150 arb_cut
    (fun (n, edges) ->
      let f = cut_fn edges in
      let v, s = Sfm.minimize ~n f in
      f s = v)

let () =
  Alcotest.run "submodular"
    [
      ( "sfm",
        [
          Alcotest.test_case "brute force modular" `Quick test_bruteforce_modular;
          Alcotest.test_case "submodularity checker" `Quick test_is_submodular;
          Alcotest.test_case "wolfe known cases" `Quick test_wolfe_known;
        ] );
      ( "properties",
        List.map qcheck
          [
            prop_cut_submodular;
            prop_wolfe_equals_brute_cut;
            prop_wolfe_equals_brute_mixed;
            prop_wolfe_returned_set_matches_value;
          ] );
    ]
