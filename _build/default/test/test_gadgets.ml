(* Verification of every hardness gadget of the paper (the companion-artifact
   role of this library), plus end-to-end Vertex Cover reductions. *)
open Resilience

let lang = Automata.Lang.of_string
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- framework ---- *)

let test_well_formed () =
  let g, _ = Gadgets.gadget_aa () in
  check "aa well-formed" true (Gadgets.well_formed g = Ok ());
  (* a gadget with t_in as a head is rejected *)
  let bad = Gadgets.build ~name:"bad" ~label:'a' [ ("u", "a", "t_in"); ("t_out", "a", "v") ] in
  check "bad rejected" true (Gadgets.well_formed bad <> Ok ())

let test_completion () =
  let g, _ = Gadgets.gadget_aa () in
  let c = Gadgets.complete g in
  check_int "two extra facts" (Graphdb.Db.fact_count g.Gadgets.db + 2)
    (Graphdb.Db.fact_count c.Gadgets.db');
  let fin = Graphdb.Db.fact c.Gadgets.db' c.Gadgets.f_in in
  check "F_in points to t_in" true (fin.Graphdb.Db.dst = g.Gadgets.t_in);
  check "F_in labeled" true (fin.Graphdb.Db.label = g.Gadgets.label)

let test_verify_aa_details () =
  let g, l = Gadgets.gadget_aa () in
  let v = Gadgets.verify g l in
  check "valid" true v.Gadgets.ok;
  Alcotest.(check (option int)) "odd path length 5" (Some 5) v.Gadgets.odd_path_length;
  (* the raw hypergraph of matches has 5 hyperedges (Fig 3b) *)
  check_int "5 matches" 5 (Hypergraph.edge_count v.Gadgets.matches)

let test_invalid_gadget_detected () =
  (* the aa pre-gadget used with language aaaa is not a gadget *)
  let g, _ = Gadgets.gadget_aa () in
  let v = Gadgets.verify g (lang "aaaa") in
  check "invalid" false v.Gadgets.ok

(* ---- all paper gadgets ---- *)

let test_all_paper_gadgets () =
  List.iter
    (fun (name, g, l) ->
      let v = Gadgets.verify g l in
      check (name ^ " verifies") true v.Gadgets.ok;
      (match v.Gadgets.odd_path_length with
      | Some len -> check (name ^ " odd length") true (len mod 2 = 1)
      | None -> Alcotest.fail (name ^ ": no path length"));
      (* the language certified must be reduced (hypothesis of Prop 4.11) *)
      check (name ^ " language reduced") true (Automata.Reduce.is_reduced l))
    (Gadgets.all_paper_gadgets ())

let test_expected_lengths () =
  let find name =
    let _, g, l =
      List.find (fun (n, _, _) -> n = name) (Gadgets.all_paper_gadgets ())
    in
    (Gadgets.verify g l).Gadgets.odd_path_length
  in
  Alcotest.(check (option int)) "aa has the paper's length 5" (Some 5) (find "aa (Fig 3a)");
  Alcotest.(check (option int)) "aba|bab length 5" (Some 5) (find "aba|bab (Fig 11)")

(* Generic four-legged case 1 on further instances. *)
let test_case1_instances () =
  let cases =
    [
      ("axb|cxd", 'x', "a", "b", "c", "d");
      ("aexfb|cgxhd", 'x', "ae", "fb", "cg", "hd");
      ("abxcb|dxeb", 'x', "ab", "cb", "d", "eb");
      ("ayb|cyd", 'y', "a", "b", "c", "d");
    ]
  in
  List.iter
    (fun (s, x, al, be, ga, de) ->
      let l = lang s in
      let g = Gadgets.gadget_four_legged_case1 ~x ~alpha:al ~beta:be ~gamma:ga ~delta:de l in
      check (s ^ " case-1 gadget") true (Gadgets.verify g l).Gadgets.ok)
    cases

let test_case2_instances () =
  let l = lang "axb|ccxd|cxb" in
  let g = Gadgets.gadget_four_legged_case2 ~x:'x' ~alpha:"a" ~beta:"b" ~gamma:"cc" ~delta:"d" l in
  check "case-2 gadget verifies" true (Gadgets.verify g l).Gadgets.ok;
  (* |γ'| = 1 with single-letter legs: the searched gadget *)
  let l1 = lang "axb|cxd|cxb" in
  let g1 = Gadgets.gadget_four_legged_case2 ~x:'x' ~alpha:"a" ~beta:"b" ~gamma:"c" ~delta:"d" l1 in
  check "short case-2 gadget verifies" true (Gadgets.verify g1 l1).Gadgets.ok;
  (* |γ'| = 1 with longer legs is out of scope for the generic construction *)
  check "short gamma with long legs rejected" true
    (try
       ignore
         (Gadgets.gadget_four_legged_case2 ~x:'x' ~alpha:"ae" ~beta:"b" ~gamma:"c" ~delta:"d" l);
       false
     with Invalid_argument _ -> true)

(* Gadgets for the Theorem 6.1 case analysis on more instances. *)
let test_thm61_gadget_family () =
  List.iter
    (fun gamma ->
      let g, l = Gadgets.gadget_a_gamma_a ~gamma () in
      check ("a" ^ gamma ^ "a gadget") true (Gadgets.verify g l).Gadgets.ok)
    [ ""; "b"; "bc"; "bcd" ];
  List.iter
    (fun (gamma, delta) ->
      let g, l = Gadgets.gadget_a_gamma_a_delta ~gamma ~delta () in
      check ("a" ^ gamma ^ "a" ^ delta ^ " gadget") true (Gadgets.verify g l).Gadgets.ok)
    [ ("b", "c"); ("b", "d"); ("bc", "d"); ("", "b") ]

(* ---- encodings and the end-to-end reduction (Prop 4.11) ---- *)

let test_fig14_family () =
  List.iter
    (fun eta ->
      let g, l = Gadgets.gadget_axeya_yax ~eta () in
      check (g.Gadgets.name ^ " verifies") true (Gadgets.verify g l).Gadgets.ok)
    [ ""; "c"; "cd"; "cde" ]

let test_encode_structure () =
  let g, _ = Gadgets.gadget_aa () in
  let graph = Graphs.Ugraph.cycle 3 in
  let xi = Gadgets.encode g graph in
  (* 3 vertex facts + 3 copies of the 4-fact pre-gadget *)
  check_int "encoding size" (3 + (3 * 4)) (Graphdb.Db.fact_count xi);
  check "acyclic" true (Graphdb.Db.is_acyclic xi)

let test_reduction_aa () =
  let g, l = Gadgets.gadget_aa () in
  List.iter
    (fun graph -> check "Prop 4.11 check" true (Gadgets.reduction_check g l graph))
    [ Graphs.Ugraph.cycle 3; Graphs.Ugraph.path 4; Graphs.Ugraph.complete 3;
      Graphs.Ugraph.make ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3); (0, 2) ] ]

let test_reduction_values () =
  (* RES_set(aa, encode(triangle)) = vc(C3) + 3·(5−1)/2 = 2 + 6 = 8 *)
  let g, l = Gadgets.gadget_aa () in
  check_int "expected value on triangle" 8
    (Gadgets.expected_resilience g l (Graphs.Ugraph.cycle 3));
  let xi = Gadgets.encode g (Graphs.Ugraph.cycle 3) in
  let v, _ = Exact.hitting_set xi l in
  check "matches expectation" true (Value.equal v (Value.Finite 8))

let test_reduction_other_gadgets () =
  let graph = Graphs.Ugraph.path 3 in
  List.iter
    (fun (name, g, l) ->
      check (name ^ " reduction on P3") true (Gadgets.reduction_check g l graph))
    (* keep the expensive end-to-end run to a representative subset *)
    (List.filter
       (fun (name, _, _) ->
         List.exists
           (fun p -> p = name)
           [ "aa (Fig 3a)"; "aab (Fig 13)"; "ab|bc|ca (Fig 15)"; "aba|bab (Fig 11)" ])
       (Gadgets.all_paper_gadgets ()))

let qcheck = QCheck_alcotest.to_alcotest

let arb_graph =
  QCheck.make
    ~print:(fun g -> Format.asprintf "%a" Graphs.Ugraph.pp g)
    QCheck.Gen.(
      let* n = int_range 2 5 in
      let* seed = int_bound 10000 in
      return (Graphs.Ugraph.random ~n ~p:0.5 ~seed))

let prop_aa_reduction_random =
  QCheck.Test.make ~name:"Prop 4.11 on random graphs (aa gadget)" ~count:25 arb_graph (fun graph ->
      let g, l = Gadgets.gadget_aa () in
      Gadgets.reduction_check g l graph)

let () =
  Alcotest.run "gadgets"
    [
      ( "framework",
        [
          Alcotest.test_case "well-formed" `Quick test_well_formed;
          Alcotest.test_case "completion" `Quick test_completion;
          Alcotest.test_case "verify aa (Fig 3a/3b)" `Quick test_verify_aa_details;
          Alcotest.test_case "invalid detected" `Quick test_invalid_gadget_detected;
        ] );
      ( "paper gadgets",
        [
          Alcotest.test_case "all verify" `Quick test_all_paper_gadgets;
          Alcotest.test_case "expected lengths" `Quick test_expected_lengths;
          Alcotest.test_case "case-1 instances" `Quick test_case1_instances;
          Alcotest.test_case "case-2 instances" `Quick test_case2_instances;
          Alcotest.test_case "Thm 6.1 families" `Quick test_thm61_gadget_family;
          Alcotest.test_case "Fig 14 family" `Quick test_fig14_family;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "encode structure" `Quick test_encode_structure;
          Alcotest.test_case "aa on graphs" `Slow test_reduction_aa;
          Alcotest.test_case "values" `Quick test_reduction_values;
          Alcotest.test_case "other gadgets" `Slow test_reduction_other_gadgets;
        ] );
      ("properties", List.map qcheck [ prop_aa_reduction_random ]);
    ]
