test/test_hypergraph.ml: Alcotest Fun Hypergraph List Printf QCheck QCheck_alcotest String
