test/test_flow.ml: Alcotest Array Flow List Network Printf Push_relabel QCheck QCheck_alcotest String
