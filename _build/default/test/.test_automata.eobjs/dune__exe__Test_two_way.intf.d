test/test_two_way.mli:
