test/test_graphdb.ml: Alcotest Automata Db Eval Format Fun Generate Graphdb Hypergraph List QCheck QCheck_alcotest Result Serialize String
