test/test_misc.ml: Alcotest Automata Char Classify Flow Format Graphdb Hypergraph Report Resilience Result Solver String Value
