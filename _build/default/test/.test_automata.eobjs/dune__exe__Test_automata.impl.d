test/test_automata.ml: Alcotest Automata Cset Deriv Dfa Lang List Local Neutral Nfa Printf QCheck QCheck_alcotest Reduce Regex Starfree String To_regex Word
