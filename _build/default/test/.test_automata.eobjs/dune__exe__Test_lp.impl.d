test/test_lp.ml: Alcotest Array Automata Format Graphdb Ilp List Lp Printf QCheck QCheck_alcotest Resilience Result Simplex String
