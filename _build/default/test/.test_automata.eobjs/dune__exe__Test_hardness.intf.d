test/test_hardness.mli:
