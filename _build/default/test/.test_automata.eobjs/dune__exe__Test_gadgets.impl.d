test/test_gadgets.ml: Alcotest Automata Exact Format Gadgets Graphdb Graphs Hypergraph List QCheck QCheck_alcotest Resilience Value
