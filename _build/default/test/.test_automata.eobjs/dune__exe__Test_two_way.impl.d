test/test_two_way.ml: Alcotest Array Automata Exact Format Graphdb List QCheck QCheck_alcotest Resilience Two_way Value
