test/test_graphs.ml: Alcotest Array Format Graphs List QCheck QCheck_alcotest Ugraph
