test/test_analysis.ml: Alcotest Analysis Array Automata Exact Format Graphdb Hypergraph List QCheck QCheck_alcotest Resilience Value
