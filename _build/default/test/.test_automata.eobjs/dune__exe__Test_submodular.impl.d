test/test_submodular.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Sfm String Submodular
