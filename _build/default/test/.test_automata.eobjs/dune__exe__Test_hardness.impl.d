test/test_hardness.ml: Alcotest Automata Classify Gadget_search Gadgets Graphs Hardness List Printf Report Resilience String
