test/test_submodular.mli:
