test/test_classify.ml: Alcotest Automata Bcl Classify List QCheck QCheck_alcotest Resilience String
