(* Tests for the simplex / ILP substrate and the ILP resilience baseline. *)
open Lp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let approx a b = abs_float (a -. b) < 1e-6

(* ---- simplex ---- *)

let test_simplex_basic () =
  (* min x + y  s.t. x + y >= 1, x >= 0.3: optimum 1 *)
  let p =
    {
      Simplex.ncols = 2;
      objective = [| 1.0; 1.0 |];
      rows = [ ([| 1.0; 1.0 |], 1.0); ([| 1.0; 0.0 |], 0.3) ];
      upper = [| None; None |];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal { value; solution } ->
      check "value 1" true (approx value 1.0);
      check "x >= 0.3" true (solution.(0) >= 0.3 -. 1e-9)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_upper_bounds () =
  (* min x + 2y  s.t. x + y >= 3, x <= 1: forces y >= 2: optimum 1 + 4 = 5 *)
  let p =
    {
      Simplex.ncols = 2;
      objective = [| 1.0; 2.0 |];
      rows = [ ([| 1.0; 1.0 |], 3.0) ];
      upper = [| Some 1.0; None |];
    }
  in
  match Simplex.solve p with
  | Simplex.Optimal { value; _ } -> check "value 5" true (approx value 5.0)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  (* x <= 1 (via upper) and x >= 2 *)
  let p =
    {
      Simplex.ncols = 1;
      objective = [| 1.0 |];
      rows = [ ([| 1.0 |], 2.0) ];
      upper = [| Some 1.0 |];
    }
  in
  check "infeasible" true (Simplex.solve p = Simplex.Infeasible)

let test_simplex_fractional_cover () =
  (* LP relaxation of the odd cycle cover {1,2},{2,3},{1,3}: optimum 1.5 *)
  let p =
    Simplex.lp_relaxation_of_cover ~nvars:3 ~weights:[| 1.0; 1.0; 1.0 |]
      ~sets:[ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]
  in
  match Simplex.solve p with
  | Simplex.Optimal { value; _ } -> check "value 1.5" true (approx value 1.5)
  | _ -> Alcotest.fail "expected optimal"

(* ---- ILP ---- *)

let test_ilp_triangle () =
  (* integral optimum of the triangle cover is 2 (vs LP bound 1.5) *)
  let inst =
    { Ilp.nvars = 3; weights = [| 1; 1; 1 |]; covers = [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] }
  in
  match Ilp.solve inst with
  | Ok sol ->
      check_int "value 2" 2 sol.Ilp.value;
      check "lp bound 1.5" true (approx sol.Ilp.lp_bound 1.5);
      (* assignment covers *)
      check "covers" true
        (List.for_all
           (fun s -> List.exists (fun i -> sol.Ilp.assignment.(i)) s)
           inst.Ilp.covers)
  | Error e -> Alcotest.fail e

let test_ilp_weighted () =
  (* covering {0,1} with weights 5,1: pick 1 *)
  let inst = { Ilp.nvars = 2; weights = [| 5; 1 |]; covers = [ [ 0; 1 ] ] } in
  match Ilp.solve inst with
  | Ok sol ->
      check_int "value 1" 1 sol.Ilp.value;
      check "picked cheap" true (sol.Ilp.assignment.(1) && not sol.Ilp.assignment.(0))
  | Error e -> Alcotest.fail e

let test_ilp_infeasible () =
  check "empty cover" true
    (Result.is_error (Ilp.solve { Ilp.nvars = 1; weights = [| 1 |]; covers = [ [] ] }))

(* ---- properties ---- *)

let qcheck = QCheck_alcotest.to_alcotest

let gen_cover =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* m = int_range 0 8 in
    let* covers = list_repeat m (list_size (int_range 1 3) (int_bound (n - 1))) in
    let* weights = array_repeat n (int_range 1 5) in
    return { Ilp.nvars = n; weights; covers })

let arb_cover =
  QCheck.make
    ~print:(fun i ->
      Printf.sprintf "n=%d w=[%s] covers=[%s]" i.Ilp.nvars
        (String.concat ";" (Array.to_list (Array.map string_of_int i.Ilp.weights)))
        (String.concat "|"
           (List.map (fun s -> String.concat "," (List.map string_of_int s)) i.Ilp.covers)))
    gen_cover

(* Reference: brute force over assignments. *)
let brute inst =
  let n = inst.Ilp.nvars in
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    let ok =
      List.for_all (fun s -> List.exists (fun i -> mask land (1 lsl i) <> 0) s) inst.Ilp.covers
    in
    if ok then begin
      let v = ref 0 in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then v := !v + inst.Ilp.weights.(i)
      done;
      if !v < !best then best := !v
    end
  done;
  !best

let prop_ilp_vs_brute =
  QCheck.Test.make ~name:"ILP branch&bound = brute force" ~count:200 arb_cover (fun inst ->
      match Ilp.solve inst with Ok sol -> sol.Ilp.value = brute inst | Error _ -> false)

let prop_lp_lower_bound =
  QCheck.Test.make ~name:"LP relaxation lower-bounds the ILP optimum" ~count:200 arb_cover
    (fun inst ->
      match (Ilp.solve inst, Ilp.lp_bound inst) with
      | Ok sol, Ok lp -> lp <= float_of_int sol.Ilp.value +. 1e-6
      | _ -> false)

(* ---- the ILP resilience baseline ---- *)

let lang = Automata.Lang.of_string

let test_ilp_resilience () =
  let d =
    Graphdb.Db.make ~nnodes:5
      ~facts:[ (0, 'a', 1); (1, 'a', 2); (2, 'a', 3); (3, 'a', 4) ]
  in
  (match Resilience.Ilp_solver.solve d (lang "aa") with
  | Ok (v, w) ->
      check "value 2" true (Resilience.Value.equal v (Resilience.Value.Finite 2));
      (* witness is a real contingency set *)
      let d' = Graphdb.Db.restrict d ~removed:(fun id -> List.mem id w) in
      check "witness" true (not (Graphdb.Eval.satisfies d' (lang "aa")))
  | Error e -> Alcotest.fail e);
  (* ε ∈ L *)
  match Resilience.Ilp_solver.solve d (lang "a*") with
  | Ok (v, _) -> check "infinite" true (v = Resilience.Value.Infinite)
  | Error e -> Alcotest.fail e

let arb_db =
  QCheck.make
    ~print:(fun (d : Graphdb.Db.t) -> Format.asprintf "%a" Graphdb.Db.pp d)
    QCheck.Gen.(
      let* seed = int_bound 100000 in
      let* nnodes = int_range 2 5 in
      let* nfacts = int_range 1 8 in
      return
        (Graphdb.Generate.random ~nnodes ~nfacts ~alphabet:[ 'a'; 'b'; 'c' ] ~max_mult:3 ~seed ()))

let prop_ilp_resilience_vs_exact =
  let langs = [ "aa"; "ab|bc"; "abc"; "ab|bc|ca" ] in
  QCheck.Test.make ~name:"ILP resilience = branch&bound resilience" ~count:120
    (QCheck.pair arb_db (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      match Resilience.Ilp_solver.solve d l with
      | Ok (v, _) -> Resilience.Value.equal v (fst (Resilience.Exact.branch_and_bound d l))
      | Error _ -> false)

let prop_lp_bound_below_resilience =
  QCheck.Test.make ~name:"LP relaxation <= resilience" ~count:100
    (QCheck.pair arb_db (QCheck.oneofl [ "aa"; "ab|bc" ]))
    (fun (d, s) ->
      let l = lang s in
      match (Resilience.Ilp_solver.lp_relaxation d l, Resilience.Exact.branch_and_bound d l) with
      | Ok lp, (Resilience.Value.Finite v, _) -> lp <= float_of_int v +. 1e-6
      | _ -> false)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic" `Quick test_simplex_basic;
          Alcotest.test_case "upper bounds" `Quick test_simplex_upper_bounds;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "fractional cover" `Quick test_simplex_fractional_cover;
        ] );
      ( "ilp",
        [
          Alcotest.test_case "triangle" `Quick test_ilp_triangle;
          Alcotest.test_case "weighted" `Quick test_ilp_weighted;
          Alcotest.test_case "infeasible" `Quick test_ilp_infeasible;
        ] );
      ( "resilience baseline",
        [ Alcotest.test_case "aa path" `Quick test_ilp_resilience ] );
      ( "properties",
        List.map qcheck
          [
            prop_ilp_vs_brute;
            prop_lp_lower_bound;
            prop_ilp_resilience_vs_exact;
            prop_lp_bound_below_resilience;
          ] );
    ]
