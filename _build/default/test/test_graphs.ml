(* Tests for undirected graphs: vertex cover, subdivisions (Prop 4.2),
   bipartiteness. *)
open Graphs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_make () =
  let g = Ugraph.make ~n:3 ~edges:[ (0, 1); (1, 0); (1, 2) ] in
  check_int "dedup" 2 (Ugraph.edge_count g);
  check "self loop rejected" true
    (try
       ignore (Ugraph.make ~n:2 ~edges:[ (0, 0) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (list int)) "neighbors" [ 0; 2 ] (List.sort compare (Ugraph.neighbors g 1))

let test_vertex_cover_known () =
  check_int "triangle" 2 (Ugraph.vertex_cover_number (Ugraph.cycle 3));
  check_int "C5" 3 (Ugraph.vertex_cover_number (Ugraph.cycle 5));
  check_int "P4 (3 edges)" 2 (Ugraph.vertex_cover_number (Ugraph.path 4));
  check_int "K4" 3 (Ugraph.vertex_cover_number (Ugraph.complete 4));
  check_int "K5" 4 (Ugraph.vertex_cover_number (Ugraph.complete 5));
  check_int "empty" 0 (Ugraph.vertex_cover_number (Ugraph.make ~n:4 ~edges:[]));
  (* star K_{1,4} *)
  check_int "star" 1
    (Ugraph.vertex_cover_number (Ugraph.make ~n:5 ~edges:[ (0, 1); (0, 2); (0, 3); (0, 4) ]))

let test_is_vertex_cover () =
  let g = Ugraph.cycle 4 in
  check "alternating cover" true (Ugraph.is_vertex_cover g [ 0; 2 ]);
  check "not a cover" false (Ugraph.is_vertex_cover g [ 0 ])

let test_subdivide () =
  let g = Ugraph.cycle 3 in
  let g3 = Ugraph.subdivide g 3 in
  check_int "C3 3-subdivision = C9 vertices" 9 (Ugraph.n g3);
  check_int "C9 edges" 9 (Ugraph.edge_count g3);
  check_int "identity" 3 (Ugraph.edge_count (Ugraph.subdivide g 1));
  (* Proposition 4.2 on the triangle with l = 3: vc = k + m(l-1)/2 = 2 + 3 = 5 *)
  check_int "Prop 4.2 triangle l=3" 5 (Ugraph.vertex_cover_number g3)

let test_bipartite () =
  check "even cycle" true (Ugraph.is_bipartite (Ugraph.cycle 4));
  check "odd cycle" false (Ugraph.is_bipartite (Ugraph.cycle 5));
  check "path" true (Ugraph.is_bipartite (Ugraph.path 6));
  check "triangle" false (Ugraph.is_bipartite (Ugraph.complete 3));
  check "empty" true (Ugraph.is_bipartite (Ugraph.make ~n:3 ~edges:[]));
  match Ugraph.bipartition (Ugraph.path 3) with
  | Some (color, _) -> check "proper coloring" true (color.(0) <> color.(1) && color.(1) <> color.(2))
  | None -> Alcotest.fail "path is bipartite"

let qcheck = QCheck_alcotest.to_alcotest

let gen_graph =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* seed = int_bound 10000 in
    let* pi = int_bound 10 in
    let p = float_of_int pi /. 10.0 in
    return (Ugraph.random ~n ~p ~seed))

let arb_graph =
  QCheck.make ~print:(fun g -> Format.asprintf "%a" Ugraph.pp g) gen_graph

let prop_vc_equals_brute =
  QCheck.Test.make ~name:"vertex cover B&B = brute force" ~count:200 arb_graph (fun g ->
      Ugraph.vertex_cover_number g = Ugraph.vertex_cover_bruteforce g)

let prop_subdivision_formula =
  QCheck.Test.make ~name:"Prop 4.2: vc(l-subdivision) = vc + m(l-1)/2" ~count:80
    (QCheck.pair arb_graph (QCheck.make QCheck.Gen.(oneofl [ 3; 5 ])))
    (fun (g, l) ->
      let k = Ugraph.vertex_cover_number g and m = Ugraph.edge_count g in
      Ugraph.vertex_cover_number (Ugraph.subdivide g l) = k + (m * (l - 1) / 2))

let prop_odd_subdivision_bipartite_like =
  QCheck.Test.make ~name:"2-subdivision is always bipartite" ~count:100 arb_graph (fun g ->
      Ugraph.is_bipartite (Ugraph.subdivide g 2))

let () =
  Alcotest.run "graphs"
    [
      ( "ugraph",
        [
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "vertex cover (known)" `Quick test_vertex_cover_known;
          Alcotest.test_case "is_vertex_cover" `Quick test_is_vertex_cover;
          Alcotest.test_case "subdivide" `Quick test_subdivide;
          Alcotest.test_case "bipartite" `Quick test_bipartite;
        ] );
      ( "properties",
        List.map qcheck
          [ prop_vc_equals_brute; prop_subdivision_formula; prop_odd_subdivision_bipartite_like ]
      );
    ]
