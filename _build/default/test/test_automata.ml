(* Tests for the automata substrate: words, regexes, NFAs, DFAs, reduction,
   locality, star-freeness, neutral letters. *)
open Automata

let lang = Lang.of_string

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---- Word ---- *)

let test_word_basics () =
  check_str "mirror" "cba" (Word.mirror "abc");
  check_str "mirror eps" "" (Word.mirror "");
  check "prefix" true (Word.is_prefix "ab" "abc");
  check "prefix eps" true (Word.is_prefix "" "abc");
  check "not prefix" false (Word.is_prefix "bc" "abc");
  check "suffix" true (Word.is_suffix "bc" "abc");
  check "not suffix" false (Word.is_suffix "ab" "abc");
  check "infix" true (Word.is_infix "b" "abc");
  check "infix self" true (Word.is_infix "abc" "abc");
  check "strict infix" true (Word.is_strict_infix "b" "abc");
  check "strict infix not self" false (Word.is_strict_infix "abc" "abc");
  check "not infix" false (Word.is_infix "ac" "abc")

let test_word_repeats () =
  check "aa repeats" true (Word.has_repeated_letter "aa");
  check "aba repeats" true (Word.has_repeated_letter "aba");
  check "abc no repeat" false (Word.has_repeated_letter "abc");
  check "eps no repeat" false (Word.has_repeated_letter "");
  check "all distinct" true (Word.all_distinct "abcd");
  (match Word.repeated_letter_gap "abca" with
  | Some (c, g) ->
      check "gap letter" true (c = 'a');
      check_int "gap" 2 g
  | None -> Alcotest.fail "expected a repeated letter");
  check "no gap" true (Word.repeated_letter_gap "abc" = None)

let test_word_infixes () =
  check_int "infix count abc" 7 (List.length (Word.infixes "abc"));
  (* ε a b c ab bc abc *)
  check_int "strict infix count" 6 (List.length (Word.strict_infixes "abc"));
  check_int "prefixes" 4 (List.length (Word.prefixes "abc"));
  check_int "suffixes" 4 (List.length (Word.suffixes "abc"))

(* ---- Regex ---- *)

let test_regex_parse () =
  check "roundtrip ax*b|cxd" true
    (Regex.equal (Regex.parse "ax*b|cxd") (Regex.parse (Regex.to_string (Regex.parse "ax*b|cxd"))));
  check "roundtrip b(aa)*d" true
    (Regex.equal (Regex.parse "b(aa)*d")
       (Regex.parse (Regex.to_string (Regex.parse "b(aa)*d"))));
  check "nullable a*" true (Regex.nullable (Regex.parse "a*"));
  check "not nullable ab" false (Regex.nullable (Regex.parse "ab"));
  check "parse failure" true (Regex.parse_opt "a|" = None);
  check "parse failure parens" true (Regex.parse_opt "(ab" = None);
  check "empty syntactic" true (Regex.is_empty_syntactic (Regex.parse "!"));
  check "letters" true (Cset.equal (Regex.letters (Regex.parse "ax*b|cxd")) (Cset.of_string "abcdx"))

let test_regex_mirror () =
  let m = Regex.mirror (Regex.parse "abc|de") in
  let l = Nfa.of_regex m in
  check "mirror abc" true (Nfa.accepts l "cba");
  check "mirror de" true (Nfa.accepts l "ed");
  check "mirror not abc" false (Nfa.accepts l "abc")

let test_regex_of_words () =
  let l = Nfa.of_regex (Regex.of_words [ "ab"; "cd"; "" ]) in
  check "ab" true (Nfa.accepts l "ab");
  check "cd" true (Nfa.accepts l "cd");
  check "eps" true (Nfa.accepts l "");
  check "not ac" false (Nfa.accepts l "ac")

(* ---- NFA / DFA ---- *)

let test_nfa_membership () =
  let a = lang "ax*b|cxd" in
  List.iter (fun w -> check ("mem " ^ w) true (Nfa.accepts a w)) [ "ab"; "axb"; "axxxxb"; "cxd" ];
  List.iter (fun w -> check ("not mem " ^ w) false (Nfa.accepts a w))
    [ ""; "a"; "cxxd"; "cd"; "axd"; "cxb"; "abb" ]

let test_trim () =
  (* A language with dead states after union with the empty language. *)
  let a = Nfa.union (lang "ab") (lang "!") in
  let t = Nfa.trim a in
  check "trim preserves" true (Nfa.accepts t "ab" && not (Nfa.accepts t "a"));
  check "trim shrinks" true (Nfa.size t <= Nfa.size a)

let test_remove_eps () =
  let a = lang "a*b|c" in
  let b = Nfa.remove_eps a in
  check "no eps left" true (Nfa.eps_transitions b = []);
  List.iter
    (fun w -> check ("same lang: " ^ w) true (Nfa.accepts a w = Nfa.accepts b w))
    [ ""; "b"; "ab"; "aab"; "c"; "ac"; "cb" ]

let test_dfa_ops () =
  let d1 = Dfa.of_nfa (lang "ab|cd") and d2 = Dfa.of_nfa (lang "ab") in
  check "subset" true (Dfa.subset d2 d1);
  check "not subset" false (Dfa.subset d1 d2);
  check "equiv self" true (Dfa.equiv d1 d1);
  check "inter" true (Dfa.equiv (Dfa.inter d1 d2) d2);
  check "union" true (Dfa.equiv (Dfa.union d1 d2) d1);
  check "diff" true (Dfa.equiv (Dfa.diff d1 d2) (Dfa.of_nfa (lang "cd")));
  let c = Dfa.complement d2 in
  check "complement ab" false (Dfa.accepts c "ab");
  check "complement ba" true (Dfa.accepts c "ba");
  check "complement eps" true (Dfa.accepts c "");
  (* complement is relative to the DFA's own alphabet {a, b} *)
  check "complement cd outside alphabet" false (Dfa.accepts c "cd");
  let cbig = Dfa.complement (Dfa.extend_alphabet (Cset.of_string "cd") d2) in
  check "complement cd after extension" true (Dfa.accepts cbig "cd")

let test_dfa_minimize () =
  let d = Dfa.of_nfa (lang "a*b|b|ab") in
  let m = Dfa.minimize d in
  check "min equiv" true (Dfa.equiv d m);
  check "min smaller" true (m.Dfa.nstates <= d.Dfa.nstates);
  (* minimal DFA of a*b over {a,b}: 3 states (start, accept, sink) *)
  check_int "a*b minimal size" 3 (Dfa.minimize (Dfa.of_nfa (lang "a*b"))).Dfa.nstates

let test_dfa_finiteness () =
  check "finite ab|cd" true (Dfa.is_finite (Dfa.of_nfa (lang "ab|cd")));
  check "infinite a*" false (Dfa.is_finite (Dfa.of_nfa (lang "a*")));
  check "finite empty" true (Dfa.is_finite (Dfa.of_nfa (lang "!")));
  match Dfa.words (Dfa.of_nfa (lang "ab|ad|cd")) with
  | Some ws -> Alcotest.(check (list string)) "word list" [ "ab"; "ad"; "cd" ] ws
  | None -> Alcotest.fail "expected finite"

let test_dfa_enumeration () =
  let d = Dfa.of_nfa (lang "a*b") in
  Alcotest.(check (list string)) "words up to 3" [ "b"; "ab"; "aab" ] (Dfa.words_up_to d 3);
  Alcotest.(check (option string)) "shortest" (Some "b") (Dfa.shortest_word d);
  Alcotest.(check (option string)) "shortest empty" None (Dfa.shortest_word (Dfa.of_nfa (lang "!")))

let test_extend_alphabet () =
  let d = Dfa.extend_alphabet (Cset.of_string "xyz") (Dfa.of_nfa (lang "ab")) in
  check "still ab" true (Dfa.accepts d "ab");
  check "not x" false (Dfa.accepts d "x");
  check "not axb" false (Dfa.accepts d "axb")

(* ---- Reduce ---- *)

let test_reduce_words () =
  Alcotest.(check (list string)) "reduce abbc|bb" [ "bb" ] (Reduce.words [ "abbc"; "bb" ]);
  Alcotest.(check (list string)) "reduce a|aa" [ "a" ] (Reduce.words [ "a"; "aa" ]);
  Alcotest.(check (list string)) "reduce eps" [ "" ] (Reduce.words [ ""; "a"; "ab" ]);
  Alcotest.(check (list string)) "already reduced" [ "ab"; "cd" ] (Reduce.words [ "ab"; "cd" ]);
  check "is_reduced" true (Reduce.is_reduced_words [ "ab"; "cd" ]);
  check "not reduced" false (Reduce.is_reduced_words [ "a"; "ab" ])

let test_reduce_nfa () =
  let r = Reduce.nfa (lang "abbc|bb") in
  check "reduce nfa" true (Lang.equiv r (lang "bb"));
  let r2 = Reduce.nfa (lang "a|aa") in
  check "reduce a|aa" true (Lang.equiv r2 (lang "a"));
  (* infinite case: reduce of a* is eps only; reduce of aa* is just a *)
  check "reduce a*" true (Lang.equiv (Reduce.nfa (lang "a*")) (lang "~"));
  check "reduce aa*" true (Lang.equiv (Reduce.nfa (lang "aa*")) (lang "a"));
  (* reduce(ax*b) = ax*b: no word is an infix of another *)
  check "ax*b reduced" true (Reduce.is_reduced (lang "ax*b"));
  (* b(aa)*d is reduced *)
  check "b(aa)*d reduced" true (Reduce.is_reduced (lang "b(aa)*d"))

(* ---- Local ---- *)

let test_profile () =
  let p = Local.profile (lang "ax*b|cd") in
  check "starts" true (Cset.equal p.Local.starts (Cset.of_string "ac"));
  check "ends" true (Cset.equal p.Local.ends (Cset.of_string "bd"));
  check "eps" false p.Local.has_eps;
  let pairs = p.Local.pairs in
  check "pairs" true
    (List.sort compare pairs = [ ('a', 'b'); ('a', 'x'); ('c', 'd'); ('x', 'b'); ('x', 'x') ])

let test_ro_enfa () =
  let a = lang "ax*b" in
  let ro = Local.ro_enfa a in
  check "read-once" true (Nfa.is_read_once ro);
  check "same language" true (Lang.equiv ro a);
  (* For a non-local language the RO-εNFA over-approximates. *)
  let a2 = lang "aa" in
  let ro2 = Local.ro_enfa a2 in
  check "superset" true (Lang.subset a2 ro2);
  check "strictly larger" false (Lang.subset ro2 a2);
  check "aaa in ro(aa)" true (Nfa.accepts ro2 "aaa")

let test_is_local () =
  List.iter
    (fun s -> check ("local " ^ s) true (Local.is_local_language (lang s)))
    [ "ax*b"; "ab|ad|cd"; "a"; "a|b"; "x*"; "axb|axc"; "abc" ];
  List.iter
    (fun s -> check ("not local " ^ s) false (Local.is_local_language (lang s)))
    [ "aa"; "ab|bc"; "abc|be"; "axb|cxd"; "b(aa)*d"; "aaaa"; "ab|bc|ca" ]

let test_local_dfa_check () =
  (* The subset-construction DFA of a local language need not be a local DFA,
     but the minimal DFA of ab|ad|cd is (Fig 2b). *)
  check "local dfa ab|ad|cd" true (Dfa.is_local_dfa (Dfa.minimize (Dfa.of_nfa (lang "ab|ad|cd"))));
  check "aa dfa not local" false (Dfa.is_local_dfa (Dfa.minimize (Dfa.of_nfa (lang "aa"))))

let test_four_legged () =
  (match Local.four_legged_witness (lang "axb|cxd") ~bound:3 with
  | Some (x, al, be, ga, de) ->
      check "witness checks" true
        (let l = lang "axb|cxd" in
         Nfa.accepts l (al ^ String.make 1 x ^ be)
         && Nfa.accepts l (ga ^ String.make 1 x ^ de)
         && (not (Nfa.accepts l (al ^ String.make 1 x ^ de)))
         && al <> "" && be <> "" && ga <> "" && de <> "")
  | None -> Alcotest.fail "axb|cxd should be four-legged");
  check "aa not four-legged" true (Local.four_legged_witness (lang "aa") ~bound:4 = None);
  check "ab|bc not four-legged" true (Local.four_legged_witness (lang "ab|bc") ~bound:4 = None);
  check "abc|be not four-legged" true (Local.four_legged_witness (lang "abc|be") ~bound:5 = None);
  check "b(aa)*d four-legged" true (Local.four_legged_witness (lang "b(aa)*d") ~bound:8 <> None);
  (* letter-Cartesian violations (legs may be empty) exist for ab|bc *)
  check "ab|bc cartesian violation" true (Local.letter_cartesian_violation (lang "ab|bc") ~bound:2 <> None);
  check "ax*b no violation" true (Local.letter_cartesian_violation (lang "ax*b") ~bound:6 = None)

let test_letter_cartesian_exact () =
  check "aa violates on a" false (Local.letter_cartesian_for (lang "aa") 'a');
  check "axb|cxd violates on x" false (Local.letter_cartesian_for (lang "axb|cxd") 'x');
  check "axb|cxd fine on a" true (Local.letter_cartesian_for (lang "axb|cxd") 'a');
  check "ax*b fine on x" true (Local.letter_cartesian_for (lang "ax*b") 'x');
  check "absent letter trivially fine" true (Local.letter_cartesian_for (lang "ab") 'z');
  check "local language all letters" true (Local.is_letter_cartesian (lang "ab|ad|cd"))

let test_prop_g1_reduction () =
  (* letter-Cartesian for 'a' on the constructed automaton iff L2 ⊆ L1 *)
  let pairs =
    [
      ("0|01", "0", true);
      ("0|01", "1", false);
      ("(0|1)(0|1)", "00|11", true);
      ("00|11", "(0|1)(0|1)", false);
      ("0*1", "001", true);
      ("0*1", "0", false);
    ]
  in
  List.iter
    (fun (s1, s2, expected) ->
      let g = Local.inclusion_to_cartesian ~l1:(lang s1) ~l2:(lang s2) in
      check
        (Printf.sprintf "G.1 for %s / %s" s1 s2)
        expected
        (Local.letter_cartesian_for g 'a'))
    pairs

(* ---- Star-freeness ---- *)

let test_star_free () =
  List.iter
    (fun s -> check ("star-free " ^ s) true (Starfree.is_star_free (lang s) = Some true))
    [ "ax*b"; "ab|cd"; "a*"; "abc|be"; "aa"; "(ab)*" ];
  List.iter
    (fun s -> check ("not star-free " ^ s) true (Starfree.is_star_free (lang s) = Some false))
    [ "b(aa)*d"; "(aa)*"; "(aa)*b" ]

let test_monoid_size () =
  (* the minimal DFA of a* has 1 useful state + sink; its monoid is tiny *)
  match Starfree.monoid_size (lang "a*") with
  | Some n -> check "monoid small" true (n <= 4)
  | None -> Alcotest.fail "monoid should be computable"

(* ---- Neutral letters ---- *)

let test_neutral () =
  check "e neutral in e*" true (Neutral.is_neutral (lang "e*") 'e');
  check "e neutral e*ae*" true (Neutral.is_neutral (lang "e*ae*") 'e');
  check "a not neutral" false (Neutral.is_neutral (lang "e*ae*") 'a');
  check "no neutral in ab" true (Neutral.neutral_letters (lang "ab") = []);
  (* L1 from Appendix D: e*be*ce*|e*de*fe* has neutral letter e *)
  check "neutral in L1" true (Neutral.is_neutral (lang "e*be*ce*|e*de*fe*") 'e');
  Alcotest.(check (list char)) "neutral letters list" [ 'e' ]
    (Neutral.neutral_letters (lang "e*(a|c)e*(a|d)e*"))

(* ---- Property-based tests ---- *)

let qcheck = QCheck_alcotest.to_alcotest

(* Random small regexes over {a, b, c}. *)
let gen_regex =
  let open QCheck.Gen in
  sized_size (int_bound 8) (fix (fun self n ->
      if n <= 1 then
        frequency
          [ (5, map (fun c -> Regex.Letter c) (oneofl [ 'a'; 'b'; 'c' ])); (1, return Regex.Eps) ]
      else
        frequency
          [
            (3, map2 (fun a b -> Regex.Union (a, b)) (self (n / 2)) (self (n / 2)));
            (4, map2 (fun a b -> Regex.Concat (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map (fun a -> Regex.Star a) (self (n - 1)));
          ]))

let arb_regex = QCheck.make ~print:Regex.to_string gen_regex

let gen_word = QCheck.Gen.(map (fun l -> Word.of_list l) (list_size (int_bound 6) (oneofl [ 'a'; 'b'; 'c' ])))
let arb_word = QCheck.make ~print:(fun w -> w) gen_word

(* Reference regex membership by direct recursion on the AST. *)
let rec ref_mem (e : Regex.t) (w : string) =
  match e with
  | Regex.Empty -> false
  | Regex.Eps -> w = ""
  | Regex.Letter c -> w = String.make 1 c
  | Regex.Union (a, b) -> ref_mem a w || ref_mem b w
  | Regex.Concat (a, b) ->
      let n = String.length w in
      let rec split i =
        i <= n
        && ((ref_mem a (String.sub w 0 i) && ref_mem b (String.sub w i (n - i))) || split (i + 1))
      in
      split 0
  | Regex.Star a ->
      w = ""
      ||
      let n = String.length w in
      let rec split i =
        i <= n && i > 0
        && ((ref_mem a (String.sub w 0 i) && ref_mem (Regex.Star a) (String.sub w i (n - i)))
           || split (i + 1))
      in
      split 1

let prop_thompson_correct =
  QCheck.Test.make ~name:"Thompson NFA agrees with reference membership" ~count:300
    (QCheck.pair arb_regex arb_word)
    (fun (e, w) -> Nfa.accepts (Nfa.of_regex e) w = ref_mem e w)

let prop_dfa_agrees =
  QCheck.Test.make ~name:"subset-construction DFA agrees with NFA" ~count:300
    (QCheck.pair arb_regex arb_word)
    (fun (e, w) ->
      let a = Nfa.of_regex e in
      Dfa.accepts (Dfa.of_nfa a) w = Nfa.accepts a w)

let prop_minimize_preserves =
  QCheck.Test.make ~name:"minimization preserves the language" ~count:200 arb_regex (fun e ->
      let d = Dfa.of_nfa (Nfa.of_regex e) in
      Dfa.equiv d (Dfa.minimize d))

let prop_remove_eps_preserves =
  QCheck.Test.make ~name:"ε-removal preserves the language" ~count:200
    (QCheck.pair arb_regex arb_word)
    (fun (e, w) ->
      let a = Nfa.of_regex e in
      Nfa.accepts (Nfa.remove_eps a) w = Nfa.accepts a w)

let prop_reverse_mirror =
  QCheck.Test.make ~name:"NFA reversal recognizes the mirror language" ~count:200
    (QCheck.pair arb_regex arb_word)
    (fun (e, w) -> Nfa.accepts (Nfa.reverse (Nfa.of_regex e)) w = ref_mem e (Word.mirror w))

let prop_reduce_infix_free =
  QCheck.Test.make ~name:"reduce(L) is infix-free" ~count:100 arb_regex (fun e ->
      let r = Reduce.nfa (Nfa.of_regex e) in
      let ws = Dfa.words_up_to (Dfa.of_nfa r) 6 in
      List.for_all
        (fun w -> not (List.exists (fun w' -> Word.is_strict_infix w' w) ws))
        ws)

let prop_reduce_subset =
  QCheck.Test.make ~name:"reduce(L) ⊆ L" ~count:100 arb_regex (fun e ->
      let a = Nfa.of_regex e in
      Lang.subset (Reduce.nfa a) a)

let prop_local_dfas_letter_cartesian =
  QCheck.Test.make ~name:"local languages are letter-Cartesian on samples" ~count:60 arb_regex
    (fun e ->
      let a = Nfa.of_regex e in
      if not (Local.is_local_language a) then true
      else Local.letter_cartesian_violation a ~bound:5 = None)

let prop_ro_enfa_superset =
  QCheck.Test.make ~name:"L ⊆ L(RO-εNFA) (Lemma B.4)" ~count:100 arb_regex (fun e ->
      let a = Nfa.of_regex e in
      Lang.subset a (Local.ro_enfa a))

let prop_letter_cartesian_equals_local =
  (* Proposition B.7: letter-Cartesian = local; two independent deciders. *)
  QCheck.Test.make ~name:"Prop B.7: is_letter_cartesian = is_local_language" ~count:100
    arb_regex (fun e ->
      let a = Nfa.of_regex e in
      Local.is_letter_cartesian a = Local.is_local_language a)

let prop_reduction_preserves_locality =
  (* Lemma 3.4: if L is local then reduce(L) is local. *)
  QCheck.Test.make ~name:"Lemma 3.4: reduction preserves locality" ~count:80 arb_regex (fun e ->
      let a = Nfa.of_regex e in
      (not (Local.is_local_language a)) || Local.is_local_language (Reduce.nfa a))

let prop_finite_repeated_not_local =
  (* Lemma 6.2: finite languages with a repeated-letter word are not local. *)
  QCheck.Test.make ~name:"Lemma 6.2: finite + repeated letter => not local" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 3)
           (map Word.of_list (list_size (int_range 1 5) (oneofl [ 'a'; 'b' ])))))
    (fun ws ->
      let a = Nfa.of_words ws in
      (not (List.exists Word.has_repeated_letter ws)) || not (Local.is_local_language a))

let prop_mirror_star_free =
  (* star-freeness is preserved by mirroring *)
  QCheck.Test.make ~name:"mirror preserves star-freeness" ~count:60 arb_regex (fun e ->
      Starfree.is_star_free (Nfa.of_regex e)
      = Starfree.is_star_free (Nfa.of_regex (Regex.mirror e)))

let prop_ro_enfa_equality_iff_local =
  QCheck.Test.make ~name:"L(RO-εNFA) = L iff L local (Lemma B.4)" ~count:100 arb_regex (fun e ->
      let a = Nfa.of_regex e in
      Lang.equiv a (Local.ro_enfa a) = Local.is_local_language a)

(* ---- to_regex / counting / growth ---- *)

let test_to_regex_examples () =
  List.iter
    (fun s ->
      let a = lang s in
      let e = To_regex.of_nfa a in
      check ("roundtrip " ^ s) true (Lang.equiv (Nfa.of_regex e) a))
    [ "ax*b|cxd"; "b(aa)*d"; "abc|be"; "!"; "~"; "(a|b)*abb" ]

let test_count_words () =
  Alcotest.(check (list int)) "ab|ad|cd lengths" [ 0; 0; 3; 0 ]
    (To_regex.count_words (Dfa.of_nfa (lang "ab|ad|cd")) 3);
  Alcotest.(check (list int)) "(a|b)* doubling" [ 1; 2; 4; 8; 16 ]
    (To_regex.count_words (Dfa.of_nfa (lang "(a|b)*")) 4);
  Alcotest.(check (list int)) "a* ones" [ 1; 1; 1 ] (To_regex.count_words (Dfa.of_nfa (lang "a*")) 2)

let test_growth () =
  check "empty" true (To_regex.growth (Dfa.of_nfa (lang "!")) = `Empty);
  check "finite" true (To_regex.growth (Dfa.of_nfa (lang "ab|cd")) = `Finite 2);
  check "poly a*" true (To_regex.growth (Dfa.of_nfa (lang "a*")) = `Polynomial);
  check "poly ax*b" true (To_regex.growth (Dfa.of_nfa (lang "ax*b")) = `Polynomial);
  check "poly a*b*" true (To_regex.growth (Dfa.of_nfa (lang "a*b*")) = `Polynomial);
  check "expo (a|b)*" true (To_regex.growth (Dfa.of_nfa (lang "(a|b)*")) = `Exponential);
  check "expo (aa|ab)*" true (To_regex.growth (Dfa.of_nfa (lang "(aa|ab)*")) = `Exponential)

let prop_to_regex_roundtrip =
  QCheck.Test.make ~name:"state elimination roundtrips" ~count:80 arb_regex (fun e ->
      let a = Nfa.of_regex e in
      Lang.equiv (Nfa.of_regex (To_regex.of_nfa a)) a)

let prop_count_matches_enumeration =
  QCheck.Test.make ~name:"count_words agrees with enumeration" ~count:80 arb_regex (fun e ->
      let d = Dfa.of_nfa (Nfa.of_regex e) in
      let counts = To_regex.count_words d 4 in
      let ws = Dfa.words_up_to d 4 in
      List.for_all
        (fun len ->
          List.nth counts len = List.length (List.filter (fun w -> String.length w = len) ws))
        [ 0; 1; 2; 3; 4 ])

(* ---- Brzozowski derivatives ---- *)

let test_deriv_basics () =
  let e = Regex.parse "ax*b|cxd" in
  check "deriv a" true (Deriv.mem (Deriv.deriv 'a' e) "xxb");
  check "deriv a not" false (Deriv.mem (Deriv.deriv 'a' e) "xd");
  check "deriv_word" true (Regex.nullable (Deriv.deriv_word "axb" e));
  check "mem" true (Deriv.mem e "cxd");
  check "not mem" false (Deriv.mem e "cxb");
  (* normalization idempotent and language-preserving on a sample *)
  let n = Deriv.normalize (Regex.parse "(a|a)b|!c|~d") in
  check "normalize" true (Deriv.normalize n = n)

let prop_deriv_mem_agrees =
  QCheck.Test.make ~name:"derivative membership = NFA membership" ~count:300
    (QCheck.pair arb_regex arb_word)
    (fun (e, w) -> Deriv.mem e w = Nfa.accepts (Nfa.of_regex e) w)

let prop_deriv_dfa_equiv =
  QCheck.Test.make ~name:"derivative DFA = subset-construction DFA" ~count:150 arb_regex
    (fun e -> Dfa.equiv (Deriv.dfa e) (Dfa.of_nfa (Nfa.of_regex e)))

let prop_normalize_preserves =
  QCheck.Test.make ~name:"similarity normalization preserves the language" ~count:200
    (QCheck.pair arb_regex arb_word)
    (fun (e, w) -> ref_mem e w = ref_mem (Deriv.normalize e) w)

let () =
  Alcotest.run "automata"
    [
      ( "word",
        [
          Alcotest.test_case "basics" `Quick test_word_basics;
          Alcotest.test_case "repeats" `Quick test_word_repeats;
          Alcotest.test_case "infixes" `Quick test_word_infixes;
        ] );
      ( "regex",
        [
          Alcotest.test_case "parse/print" `Quick test_regex_parse;
          Alcotest.test_case "mirror" `Quick test_regex_mirror;
          Alcotest.test_case "of_words" `Quick test_regex_of_words;
        ] );
      ( "nfa-dfa",
        [
          Alcotest.test_case "membership" `Quick test_nfa_membership;
          Alcotest.test_case "trim" `Quick test_trim;
          Alcotest.test_case "remove_eps" `Quick test_remove_eps;
          Alcotest.test_case "dfa ops" `Quick test_dfa_ops;
          Alcotest.test_case "minimize" `Quick test_dfa_minimize;
          Alcotest.test_case "finiteness" `Quick test_dfa_finiteness;
          Alcotest.test_case "enumeration" `Quick test_dfa_enumeration;
          Alcotest.test_case "extend alphabet" `Quick test_extend_alphabet;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "words" `Quick test_reduce_words;
          Alcotest.test_case "nfa" `Quick test_reduce_nfa;
        ] );
      ( "local",
        [
          Alcotest.test_case "profile" `Quick test_profile;
          Alcotest.test_case "ro-enfa" `Quick test_ro_enfa;
          Alcotest.test_case "is_local" `Quick test_is_local;
          Alcotest.test_case "local dfa check" `Quick test_local_dfa_check;
          Alcotest.test_case "four-legged" `Quick test_four_legged;
          Alcotest.test_case "exact letter-Cartesian" `Quick test_letter_cartesian_exact;
          Alcotest.test_case "Prop G.1 reduction" `Quick test_prop_g1_reduction;
        ] );
      ( "starfree-neutral",
        [
          Alcotest.test_case "star-free" `Quick test_star_free;
          Alcotest.test_case "monoid size" `Quick test_monoid_size;
          Alcotest.test_case "neutral letters" `Quick test_neutral;
        ] );
      ( "deriv",
        [ Alcotest.test_case "basics" `Quick test_deriv_basics ] );
      ( "to_regex",
        [
          Alcotest.test_case "examples" `Quick test_to_regex_examples;
          Alcotest.test_case "counting" `Quick test_count_words;
          Alcotest.test_case "growth" `Quick test_growth;
        ] );
      ( "properties",
        List.map qcheck
          [
            prop_to_regex_roundtrip;
            prop_count_matches_enumeration;
            prop_deriv_mem_agrees;
            prop_deriv_dfa_equiv;
            prop_normalize_preserves;
            prop_thompson_correct;
            prop_dfa_agrees;
            prop_minimize_preserves;
            prop_remove_eps_preserves;
            prop_reverse_mirror;
            prop_reduce_infix_free;
            prop_reduce_subset;
            prop_local_dfas_letter_cartesian;
            prop_ro_enfa_superset;
            prop_ro_enfa_equality_iff_local;
            prop_letter_cartesian_equals_local;
            prop_reduction_preserves_locality;
            prop_finite_repeated_not_local;
            prop_mirror_star_free;
          ] );
    ]
