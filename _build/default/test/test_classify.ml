(* The classifier must reproduce Figure 1 of the paper cell for cell, plus
   the other languages classified in the text. *)
open Resilience

let check = Alcotest.(check bool)

let verdict s = (Classify.classify_regex s).Classify.verdict

let is_ptime = function Classify.PTime _ -> true | _ -> false
let is_hard = function Classify.NPHard _ -> true | _ -> false
let is_open = function Classify.Unclassified _ -> true | _ -> false

let expect_ptime reason_check name =
  let v = verdict name in
  check (name ^ " is PTIME") true (is_ptime v);
  check (name ^ " reason") true (reason_check v)

let local = function Classify.PTime Classify.Local -> true | _ -> false
let bcl = function Classify.PTime Classify.Bipartite_chain -> true | _ -> false
let submod = function Classify.PTime (Classify.Submodular _) -> true | _ -> false
let any _ = true

let expect_hard reason_check name =
  let v = verdict name in
  check (name ^ " is NP-hard") true (is_hard v);
  check (name ^ " reason") true (reason_check v)

let four_legged = function Classify.NPHard (Classify.Four_legged _) -> true | _ -> false
let repeated = function Classify.NPHard (Classify.Finite_repeated_letter _) -> true | _ -> false
let non_star_free = function Classify.NPHard Classify.Non_star_free -> true | _ -> false
let known_gadget = function Classify.NPHard (Classify.Known_gadget _) -> true | _ -> false

(* ---- Figure 1, cell by cell ---- *)

let test_fig1_ptime_infinite () = expect_ptime local "ax*b"

let test_fig1_ptime_finite () =
  List.iter (expect_ptime local) [ "abc|abd"; "ab|ad|cd"; "abc" ];
  List.iter (expect_ptime submod) [ "abc|be"; "abcd|ce" ];
  List.iter (expect_ptime bcl) [ "ab|bc"; "axb|byc"; "axyb|bztc|cd|dea" ]

let test_fig1_unclassified () =
  List.iter
    (fun s -> check (s ^ " unclassified") true (is_open (verdict s)))
    [ "ax*b|xd"; "abc|bcd"; "abcd|be"; "abc|bef" ]

let test_fig1_hard_infinite () =
  expect_hard four_legged "ax*b|cxd";
  expect_hard non_star_free "b(aa)*d"

let test_fig1_hard_finite () =
  List.iter (expect_hard repeated) [ "aaaa"; "aa"; "abca|cab" ];
  expect_hard four_legged "axb|cxd";
  expect_hard known_gadget "ab|bc|ca";
  expect_hard known_gadget "abcd|be|ef";
  expect_hard known_gadget "abcd|bef"

(* ---- Other languages from the text ---- *)

let test_text_examples () =
  (* reduce(a|aa) = a is local (Section 3) *)
  expect_ptime local "a|aa";
  (* trivial cases *)
  check "empty" true
    (match verdict "!" with Classify.PTime Classify.Trivial_empty -> true | _ -> false);
  check "eps" true
    (match verdict "a*" with Classify.PTime Classify.Trivial_eps -> true | _ -> false);
  (* a|b: PTIME mentioned in Section 2 *)
  expect_ptime any "a|b";
  (* axb|cxd|cxb is four-legged (Example 5.4) *)
  expect_hard four_legged "axb|cxd|cxb";
  (* neutral-letter languages: e*be*ce*|e*de*fe* reduces to be*c|de*f which is
     four-legged (Appendix D); our classifier may find it non-star-free?? no:
     it is star-free; it should be found four-legged or by neutrality *)
  check "neutral letter language hard" true (is_hard (verdict "e*be*ce*|e*de*fe*"));
  (* aba|bab: covered by Thm 6.1 *)
  expect_hard repeated "aba|bab";
  (* aab *)
  expect_hard repeated "aab"

let test_certificates () =
  (* every four-legged verdict carries a genuine witness *)
  List.iter
    (fun s ->
      match verdict s with
      | Classify.NPHard (Classify.Four_legged (x, al, be, ga, de)) ->
          let l = Automata.Lang.of_string s in
          let r = Automata.Reduce.nfa l in
          let xs = String.make 1 x in
          check (s ^ " witness valid") true
            (Automata.Nfa.accepts r (al ^ xs ^ be)
            && Automata.Nfa.accepts r (ga ^ xs ^ de)
            && (not (Automata.Nfa.accepts r (al ^ xs ^ de)))
            && al <> "" && be <> "" && ga <> "" && de <> "")
      | _ -> Alcotest.fail (s ^ ": expected four-legged"))
    [ "axb|cxd"; "ax*b|cxd" ];
  (* repeated-letter certificates belong to the reduced language *)
  List.iter
    (fun s ->
      match verdict s with
      | Classify.NPHard (Classify.Finite_repeated_letter w) ->
          let r = Automata.Reduce.nfa (Automata.Lang.of_string s) in
          check (s ^ " word in reduce(L)") true
            (Automata.Nfa.accepts r w && Automata.Word.has_repeated_letter w)
      | _ -> Alcotest.fail (s ^ ": expected repeated-letter"))
    [ "aa"; "aaaa"; "abca|cab"; "aba|bab" ]

let test_classification_is_on_reduced () =
  (* abbc|bb reduces to bb: hard by Thm 6.1 even though abbc|bb "contains"
     a four-legged-looking structure *)
  check "abbc|bb hard" true (is_hard (verdict "abbc|bb"));
  (* aa|a reduces to a: local *)
  expect_ptime local "aa|a"

let test_renaming_matcher () =
  check "same" true (Classify.same_up_to_renaming_and_mirror [ "ab"; "bc"; "ca" ] [ "ab"; "bc"; "ca" ]);
  check "renamed" true
    (Classify.same_up_to_renaming_and_mirror [ "xy"; "yz"; "zx" ] [ "ab"; "bc"; "ca" ]);
  check "mirror" true (Classify.same_up_to_renaming_and_mirror [ "dcba"; "fe"; "eb" ] [ "abcd"; "be"; "ef" ]);
  check "different" false (Classify.same_up_to_renaming_and_mirror [ "ab"; "bc" ] [ "ab"; "bc"; "ca" ]);
  check "structure differs" false
    (Classify.same_up_to_renaming_and_mirror [ "ab"; "cd" ] [ "ab"; "bc" ])

(* A soundness net: on random small finite languages the classifier's PTIME
   and NP-hard answers must be consistent with brute-force checks of the
   certificate properties. *)
let qcheck = QCheck_alcotest.to_alcotest

let arb_words =
  QCheck.make
    ~print:(fun ws -> String.concat "|" ws)
    QCheck.Gen.(
      list_size (int_range 1 3)
        (map Automata.Word.of_list (list_size (int_range 1 4) (oneofl [ 'a'; 'b'; 'c' ]))))

let prop_bcl_subsets =
  (* Lemma 7.4: subsets of BCLs are BCLs. *)
  QCheck.Test.make ~name:"Lemma 7.4: subsets of a BCL are BCLs" ~count:100
    (QCheck.make QCheck.Gen.(int_bound 31))
    (fun mask ->
      let full = [ "ab"; "bc"; "axyb"; "cd"; "dea" ] in
      if not (Bcl.is_bcl full) then QCheck.Test.fail_report "base not BCL"
      else
        let sub = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) full in
        Bcl.is_bcl sub)

let prop_classifier_sound_on_finite =
  QCheck.Test.make ~name:"classifier coherence on random finite languages" ~count:150 arb_words
    (fun ws ->
      let l = Automata.Nfa.of_words ws in
      let c = Classify.classify l in
      match (c.Classify.verdict, c.Classify.reduced_words) with
      | Classify.PTime Classify.Local, _ -> Automata.Local.is_local_language c.Classify.reduced
      | Classify.NPHard (Classify.Finite_repeated_letter w), Some rws ->
          List.mem w rws && Automata.Word.has_repeated_letter w
      | Classify.PTime Classify.Bipartite_chain, Some rws -> Bcl.is_bcl rws
      | _ -> true)

let () =
  Alcotest.run "classify"
    [
      ( "figure 1",
        [
          Alcotest.test_case "PTIME infinite" `Quick test_fig1_ptime_infinite;
          Alcotest.test_case "PTIME finite" `Quick test_fig1_ptime_finite;
          Alcotest.test_case "unclassified" `Quick test_fig1_unclassified;
          Alcotest.test_case "NP-hard infinite" `Quick test_fig1_hard_infinite;
          Alcotest.test_case "NP-hard finite" `Quick test_fig1_hard_finite;
        ] );
      ( "text examples",
        [
          Alcotest.test_case "assorted" `Quick test_text_examples;
          Alcotest.test_case "certificates" `Quick test_certificates;
          Alcotest.test_case "reduction first" `Quick test_classification_is_on_reduced;
          Alcotest.test_case "renaming matcher" `Quick test_renaming_matcher;
        ] );
      ("properties", List.map qcheck [ prop_classifier_sound_on_finite; prop_bcl_subsets ]);
    ]
