(* Tests for the Dinic max-flow / min-cut solver. *)
open Flow

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk n edges =
  let net = Network.create () in
  for _ = 1 to n do
    ignore (Network.add_vertex net)
  done;
  let ids = List.map (fun (s, d, c) -> Network.add_edge net ~src:s ~dst:d c) edges in
  (net, ids)

let cut_value net ~source ~sink =
  (Network.min_cut net ~source ~sink).Network.value

let test_single_edge () =
  let net, _ = mk 2 [ (0, 1, Network.Finite 5) ] in
  check "value" true (cut_value net ~source:0 ~sink:1 = Network.Finite 5)

let test_disconnected () =
  let net, _ = mk 2 [] in
  check "zero" true (cut_value net ~source:0 ~sink:1 = Network.Finite 0)

let test_infinite () =
  let net, _ = mk 2 [ (0, 1, Network.Inf) ] in
  check "inf" true (cut_value net ~source:0 ~sink:1 = Network.Inf);
  check "no edges" true ((Network.min_cut net ~source:0 ~sink:1).Network.edges = [])

let test_diamond () =
  (* classic: 0 -> {1, 2} -> 3 *)
  let net, _ =
    mk 4
      [
        (0, 1, Network.Finite 3);
        (0, 2, Network.Finite 2);
        (1, 3, Network.Finite 2);
        (2, 3, Network.Finite 3);
        (1, 2, Network.Finite 1);
      ]
  in
  check "diamond" true (cut_value net ~source:0 ~sink:3 = Network.Finite 5)

let test_inf_middle () =
  (* finite cut forced around an infinite middle edge *)
  let net, ids =
    mk 4 [ (0, 1, Network.Finite 7); (1, 2, Network.Inf); (2, 3, Network.Finite 4) ]
  in
  let cut = Network.min_cut net ~source:0 ~sink:3 in
  check "value 4" true (cut.Network.value = Network.Finite 4);
  check_int "one cut edge" 1 (List.length cut.Network.edges);
  check "cut edge is last" true (cut.Network.edges = [ List.nth ids 2 ])

let test_parallel_edges () =
  let net, _ = mk 2 [ (0, 1, Network.Finite 2); (0, 1, Network.Finite 3) ] in
  check "parallel" true (cut_value net ~source:0 ~sink:1 = Network.Finite 5)

let test_cut_is_valid () =
  let net, ids =
    mk 6
      [
        (0, 1, Network.Finite 10);
        (0, 2, Network.Finite 10);
        (1, 3, Network.Finite 4);
        (2, 3, Network.Finite 9);
        (1, 4, Network.Finite 8);
        (4, 3, Network.Finite 3);
        (4, 5, Network.Finite 2);
        (5, 3, Network.Finite 10);
      ]
  in
  let cut = Network.min_cut net ~source:0 ~sink:3 in
  (* removing the cut edges must disconnect source from sink *)
  let removed = cut.Network.edges in
  let adj = Array.make 6 [] in
  List.iteri
    (fun i id ->
      ignore i;
      if not (List.mem id removed) then begin
        let s, d, _ = Network.edge_info net id in
        adj.(s) <- d :: adj.(s)
      end)
    ids;
  let seen = Array.make 6 false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go adj.(v)
    end
  in
  go 0;
  check "disconnects" true (not seen.(3))

(* Reference: brute-force min cut over all subsets of finite edges. *)
let brute_min_cut n edges ~source ~sink =
  let m = List.length edges in
  let arr = Array.of_list edges in
  let best = ref Network.Inf in
  for mask = 0 to (1 lsl m) - 1 do
    let cost = ref 0 in
    let adj = Array.make n [] in
    Array.iteri
      (fun i (s, d, c) ->
        if mask land (1 lsl i) <> 0 then
          match c with
          | Network.Finite x -> cost := !cost + x
          | Network.Inf -> cost := max_int / 2
        else adj.(s) <- d :: adj.(s))
      arr;
    let seen = Array.make n false in
    let rec go v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter go adj.(v)
      end
    in
    go source;
    if (not seen.(sink)) && !cost < max_int / 4 then
      if Network.cap_compare (Network.Finite !cost) !best < 0 then best := Network.Finite !cost
  done;
  !best

let qcheck = QCheck_alcotest.to_alcotest

let gen_net =
  QCheck.Gen.(
    let* n = int_range 2 6 in
    let* m = int_range 0 10 in
    let* edges =
      list_repeat m
        (let* s = int_bound (n - 1) in
         let* d = int_bound (n - 1) in
         let* c = frequency [ (5, map (fun x -> Network.Finite (x + 1)) (int_bound 5)); (1, return Network.Inf) ] in
         return (s, d, c))
    in
    return (n, List.filter (fun (s, d, _) -> s <> d) edges))

let arb_net =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d %s" n
        (String.concat ";"
           (List.map
              (fun (s, d, c) ->
                Printf.sprintf "%d->%d(%s)" s d
                  (match c with Network.Finite x -> string_of_int x | Network.Inf -> "inf"))
              es)))
    gen_net

let prop_dinic_vs_brute =
  QCheck.Test.make ~name:"Dinic min cut = brute-force min cut" ~count:300 arb_net
    (fun (n, edges) ->
      let net, _ = mk n edges in
      Network.cap_compare (cut_value net ~source:0 ~sink:(n - 1)) (brute_min_cut n edges ~source:0 ~sink:(n - 1)) = 0)

let prop_cut_edges_cost =
  QCheck.Test.make ~name:"reported cut edges have cost = cut value" ~count:300 arb_net
    (fun (n, edges) ->
      let net, ids = mk n edges in
      let cut = Network.min_cut net ~source:0 ~sink:(n - 1) in
      match cut.Network.value with
      | Network.Inf -> true
      | Network.Finite v ->
          let cost =
            List.fold_left
              (fun acc id ->
                ignore ids;
                let _, _, c = Network.edge_info net id in
                match c with Network.Finite x -> acc + x | Network.Inf -> max_int / 2)
              0 cut.Network.edges
          in
          cost = v)

let prop_push_relabel_vs_dinic =
  QCheck.Test.make ~name:"push-relabel = Dinic" ~count:400 arb_net (fun (n, edges) ->
      let net, _ = mk n edges in
      let d = Network.min_cut net ~source:0 ~sink:(n - 1) in
      let net2, _ = mk n edges in
      let p = Push_relabel.min_cut net2 ~source:0 ~sink:(n - 1) in
      Network.cap_compare d.Network.value p.Network.value = 0)

let prop_push_relabel_cut_valid =
  QCheck.Test.make ~name:"push-relabel cut disconnects source from sink" ~count:200 arb_net
    (fun (n, edges) ->
      let net, ids = mk n edges in
      let cut = Push_relabel.min_cut net ~source:0 ~sink:(n - 1) in
      match cut.Network.value with
      | Network.Inf -> true
      | Network.Finite _ ->
          let adj = Array.make n [] in
          List.iter
            (fun id ->
              if not (List.mem id cut.Network.edges) then begin
                let s, d, _ = Network.edge_info net id in
                adj.(s) <- d :: adj.(s)
              end)
            ids;
          let seen = Array.make n false in
          let rec go v =
            if not seen.(v) then begin
              seen.(v) <- true;
              List.iter go adj.(v)
            end
          in
          go 0;
          not seen.(n - 1))

let () =
  Alcotest.run "flow"
    [
      ( "mincut",
        [
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "infinite" `Quick test_infinite;
          Alcotest.test_case "diamond" `Quick test_diamond;
          Alcotest.test_case "infinite middle" `Quick test_inf_middle;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
          Alcotest.test_case "cut disconnects" `Quick test_cut_is_valid;
        ] );
      ( "properties",
        List.map qcheck
          [
            prop_dinic_vs_brute;
            prop_cut_edges_cost;
            prop_push_relabel_vs_dinic;
            prop_push_relabel_cut_valid;
          ] );
    ]
