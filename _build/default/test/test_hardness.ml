(* Tests for the executable hardness proofs (Theorem 5.5 / Theorem 6.1 case
   analyses) and the automatic gadget search. *)
open Resilience

let lang = Automata.Lang.of_string
let check = Alcotest.(check bool)

(* ---- maximal-gap words (Definition E.2) ---- *)

let test_maximal_gap () =
  (match Hardness.maximal_gap_word [ "abca"; "cab" ] with
  | Some (w, a, beta, gamma, delta) ->
      check "word" true (w = "abca");
      check "letter" true (a = 'a');
      check "decomposition" true (beta = "" && gamma = "bc" && delta = "")
  | None -> Alcotest.fail "expected a repeated letter");
  (match Hardness.maximal_gap_word [ "aa"; "aba" ] with
  | Some (w, _, _, gamma, _) ->
      (* aba has gap 1 > aa's gap 0 *)
      check "prefers larger gap" true (w = "aba" && gamma = "b")
  | None -> Alcotest.fail "expected");
  (* tie on gap: longer word wins *)
  (match Hardness.maximal_gap_word [ "aba"; "abab" ] with
  | Some (w, _, _, _, _) -> check "longer word wins ties" true (w = "abab")
  | None -> Alcotest.fail "expected");
  check "no repeats" true (Hardness.maximal_gap_word [ "abc"; "de" ] = None)

(* ---- stable legs (Lemma D.2) ---- *)

let test_stable_legs () =
  (* Appendix D's counterexample: L = x|axb|cxd with legs (a,b,c,d) is not
     stable; stabilization must produce legs with no infix of αxδ in L. *)
  let l = lang "x|axb|cxd" in
  ignore l;
  (* but that L is not reduced; use the reduced four-legged axb|cxd where the
     original legs are already stable *)
  let l2 = lang "axb|cxd" in
  let x, al, be, ga, de = Hardness.stable_legs l2 ('x', "a", "b", "c", "d") in
  check "already stable unchanged" true
    ((x, al, be, ga, de) = ('x', "a", "b", "c", "d"));
  (* a case that needs stabilization: L = axb|cxd|exd with witness
     (x, a, b, ce, ?) hmm — use the generic property instead *)
  let stable_property l witness =
    let x, al, _, _, de = Hardness.stable_legs l witness in
    let w = al ^ String.make 1 x ^ de in
    not (List.exists (fun i -> i <> "" && Automata.Nfa.accepts l i) (Automata.Word.infixes w))
  in
  check "axb|cxd stable" true (stable_property l2 ('x', "a", "b", "c", "d"));
  (* abcbd from the Thm 6.1 battery: witness derived by the analysis *)
  let l3 = lang "aaaa" in
  check "aaaa witness stabilizes" true (stable_property l3 ('a', "a", "aa", "aa", "a"))

(* ---- four-legged gadget pipeline ---- *)

let test_four_legged_pipeline () =
  let cases =
    [
      ("axb|cxd", ('x', "a", "b", "c", "d"));
      ("aexfb|cgxhd", ('x', "ae", "fb", "cg", "hd"));
      ("axb|ccxd|cxb", ('x', "a", "b", "cc", "d"));
      ("axb|cxd|cxb", ('x', "a", "b", "c", "d"));
    ]
  in
  List.iter
    (fun (s, w) ->
      match Hardness.four_legged_gadget (lang s) w with
      | Ok o -> check (s ^ " verified") true o.Hardness.verification.Gadgets.ok
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    cases;
  (* a non-witness is rejected *)
  (match Hardness.four_legged_gadget (lang "axb|cxd") ('x', "a", "b", "a", "b") with
  | Error _ -> check "non-violation rejected" true true
  | Ok _ -> Alcotest.fail "expected rejection")

(* ---- Theorem 6.1 executable case analysis ---- *)

let thm61_battery =
  [
    ("aa", "Lemma E.4");
    ("aaa", "Claim E.9");
    ("aab", "Lemma E.4");
    ("aba", "Lemma E.4");
    ("abba", "Lemma E.4");
    ("aba|bab", "Claim E.8");
    ("abca|cab", "Claim E.11");
    ("abab", "Lemma E.4");
    ("abcabd", "Lemma E.4");
    ("aabc", "Lemma E.4");
    ("abcda", "Lemma E.4");
    ("abcbd", "Thm 5.5 case 1");
    ("aa|bb", "Lemma E.4");
    ("abcadbce", "Thm 5.5 case 1");
  ]

let test_thm61_battery () =
  List.iter
    (fun (s, expected_prefix) ->
      match Hardness.thm61_gadget (lang s) with
      | Ok o ->
          check (s ^ " verified") true o.Hardness.verification.Gadgets.ok;
          let p = expected_prefix in
          let got = o.Hardness.strategy in
          check
            (Printf.sprintf "%s strategy %s starts with %s" s got p)
            true
            (String.length got >= String.length p && String.sub got 0 (String.length p) = p)
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    thm61_battery

let test_thm61_mirrored () =
  (* A language needing the mirror step: maximal-gap word with β ≠ ε, δ = ε:
     e.g. bcaa: β = bc? decomposition of bcaa: a@2, a@3: β = "bc", γ = "",
     δ = "" — δ = ε, β ≠ ε → mirror. *)
  match Hardness.thm61_gadget (lang "bcaa") with
  | Ok o ->
      check "mirrored" true o.Hardness.mirrored;
      check "verified" true o.Hardness.verification.Gadgets.ok
  | Error e -> Alcotest.fail e

let test_thm61_rejections () =
  (match Hardness.thm61_gadget (lang "abc|ca") with
  | Error _ -> check "no repeated letter rejected" true true
  | Ok _ -> Alcotest.fail "expected rejection");
  (match Hardness.thm61_gadget (lang "abcda|cd") with
  | Error _ -> check "non-reduced rejected" true true
  | Ok _ -> Alcotest.fail "expected rejection");
  match Hardness.thm61_gadget (lang "a(bb)*c") with
  | Error _ -> check "infinite rejected" true true
  | Ok _ -> Alcotest.fail "expected rejection"

(* The produced gadget really proves hardness: end-to-end reduction check. *)
let test_thm61_end_to_end () =
  List.iter
    (fun s ->
      match Hardness.thm61_gadget (lang s) with
      | Ok o ->
          let g = o.Hardness.gadget and l = o.Hardness.language in
          check (s ^ " reduction") true (Gadgets.reduction_check g l (Graphs.Ugraph.path 3))
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    [ "aa"; "aab"; "aba"; "abca|cab" ]

(* ---- gadget search ---- *)

let test_search_rediscovers () =
  List.iter
    (fun s ->
      match Gadget_search.certify_np_hard (lang s) with
      | Some f -> check (s ^ " found") true f.Gadget_search.verification.Gadgets.ok
      | None -> Alcotest.fail (s ^ ": search failed"))
    [ "aa"; "aba|bab"; "ab|bc|ca" ]

let test_search_respects_budget () =
  (* with a tiny budget the search gives up (soundly) *)
  match Gadget_search.search ~max_candidates:1 (lang "ab|bc|ca") with
  | None -> check "budget respected" true true
  | Some _ -> check "found within 1 candidate (fine too)" true true

let test_search_rejects_infinite () =
  check "infinite language" true (Gadget_search.search (lang "ax*b") = None)

let test_candidate_builder_double_share () =
  (* Double shares glue two adjacent facts: rebuild the aba|bab cluster where
     the guard matches of Fig 11 share two facts with their neighbors. *)
  let g =
    Gadget_search.build_candidate ~label:'a'
      ~words:[| "aba"; "bab"; "aba"; "bab"; "aba" |]
      ~shares:
        [|
          Gadget_search.Double (1, 0);
          Gadget_search.Double (1, 0);
          Gadget_search.Double (1, 0);
          Gadget_search.Double (1, 0);
        |]
  in
  (* not necessarily a valid gadget, but it must be structurally sound *)
  check "well-formed or rejected cleanly" true
    (match Gadgets.well_formed g with Ok () | Error _ -> true);
  (* the search with only Double shares available must still terminate *)
  match Gadget_search.search ~max_matches:3 (lang "aba|bab") with
  | Some f -> check "found verifies" true f.Gadget_search.verification.Gadgets.ok
  | None -> check "none at k=3 is fine" true true

let test_report_unclassified () =
  match Report.analyze "abcd|be" with
  | Ok r ->
      check "verdict open" true
        (match r.Report.verdict with Classify.Unclassified _ -> true | _ -> false);
      check "no gadget found" true (r.Report.gadget = None)
  | Error e -> Alcotest.fail e

let test_candidate_builder () =
  (* rebuilding the aa chain by hand through the public API *)
  let g =
    Gadget_search.build_candidate ~label:'a'
      ~words:[| "aa"; "aa"; "aa"; "aa"; "aa" |]
      ~shares:
        [|
          Gadget_search.Single (1, 0);
          Gadget_search.Single (1, 0);
          Gadget_search.Single (1, 1);
          Gadget_search.Single (0, 1);
        |]
  in
  check "well-formed" true (Gadgets.well_formed g = Ok ());
  check "verifies" true (Gadgets.verify g (lang "aa")).Gadgets.ok

let () =
  Alcotest.run "hardness"
    [
      ( "ingredients",
        [
          Alcotest.test_case "maximal-gap words" `Quick test_maximal_gap;
          Alcotest.test_case "stable legs" `Quick test_stable_legs;
        ] );
      ( "four-legged",
        [ Alcotest.test_case "Thm 5.5 pipeline" `Quick test_four_legged_pipeline ] );
      ( "thm61",
        [
          Alcotest.test_case "battery" `Quick test_thm61_battery;
          Alcotest.test_case "mirroring" `Quick test_thm61_mirrored;
          Alcotest.test_case "rejections" `Quick test_thm61_rejections;
          Alcotest.test_case "end-to-end reductions" `Slow test_thm61_end_to_end;
        ] );
      ( "search",
        [
          Alcotest.test_case "rediscovers known gadgets" `Quick test_search_rediscovers;
          Alcotest.test_case "budget" `Quick test_search_respects_budget;
          Alcotest.test_case "infinite" `Quick test_search_rejects_infinite;
          Alcotest.test_case "candidate builder" `Quick test_candidate_builder;
          Alcotest.test_case "double shares" `Quick test_candidate_builder_double_share;
          Alcotest.test_case "report on open case" `Slow test_report_unclassified;
        ] );
    ]
