(* Small-surface tests: Value arithmetic, Cset, pretty-printers, report
   rendering, CLI-facing helpers. *)
open Resilience

let lang = Automata.Lang.of_string
let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_value () =
  let open Value in
  check "add fin" true (equal (add (Finite 2) (Finite 3)) (Finite 5));
  check "add inf" true (equal (add (Finite 2) Infinite) Infinite);
  check "min" true (equal (min (Finite 2) Infinite) (Finite 2));
  check "compare" true (compare (Finite 5) Infinite < 0);
  check "compare eq" true (compare Infinite Infinite = 0);
  check_str "to_string" "7" (to_string (Finite 7));
  check "of capacity" true (equal (of_capacity (Flow.Network.Finite 3)) (Finite 3));
  check "of inf capacity" true (equal (of_capacity Flow.Network.Inf) Infinite)

let test_cset () =
  let open Automata.Cset in
  check "of_string dedups" true (cardinal (of_string "aabbc") = 3);
  check_str "to_string sorted" "abc" (to_string (of_string "cba"));
  check_str "pp" "{a,b}" (Format.asprintf "%a" pp (of_string "ba"))

let test_word_pp () =
  check_str "word" "ab" (Format.asprintf "%a" Automata.Word.pp "ab");
  check "eps rendered" true (Format.asprintf "%a" Automata.Word.pp "" <> "")

let test_printers_smoke () =
  (* the pretty-printers must at least produce non-empty output *)
  let nonempty s = String.length s > 0 in
  check "nfa pp" true (nonempty (Format.asprintf "%a" Automata.Nfa.pp (lang "ab|c*")));
  check "dfa pp" true
    (nonempty (Format.asprintf "%a" Automata.Dfa.pp (Automata.Dfa.of_nfa (lang "ab"))));
  let d = Graphdb.Db.make ~nnodes:2 ~facts:[ (0, 'a', 1) ] in
  check "db pp" true (nonempty (Format.asprintf "%a" Graphdb.Db.pp d));
  let net = Flow.Network.create () in
  let v1 = Flow.Network.add_vertex net and v2 = Flow.Network.add_vertex net in
  ignore (Flow.Network.add_edge net ~src:v1 ~dst:v2 (Flow.Network.Finite 1));
  check "network pp" true (nonempty (Format.asprintf "%a" Flow.Network.pp net));
  check "capacity pp" true
    (nonempty (Format.asprintf "%a" Flow.Network.pp_capacity Flow.Network.Inf));
  check "iset pp" true
    (nonempty (Format.asprintf "%a" Hypergraph.Iset.pp (Hypergraph.Iset.of_list [ 1; 2 ])))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_report () =
  (match Report.analyze "abca|cab" with
  | Ok r ->
      let md = Report.to_markdown r in
      check "mentions verdict" true (contains md "NP-hard" && contains md "gadget")
  | Error e -> Alcotest.fail e);
  (match Report.analyze ~try_gadget:false "ax*b" with
  | Ok r ->
      check "local reported" true r.Report.local;
      check "no gadget attempted" true (r.Report.gadget = None)
  | Error _ -> Alcotest.fail "analyze failed");
  check "syntax error" true (Result.is_error (Report.analyze "a|"))

let test_solver_reuse_classification () =
  let l = lang "ax*b" in
  let c = Classify.classify l in
  let d = Graphdb.Generate.flow_grid ~width:2 ~depth:2 ~seed:1 () in
  let r1 = Solver.solve ~classification:c d l in
  let r2 = Solver.solve d l in
  check "same value" true (Value.equal r1.Solver.value r2.Solver.value)

let test_nfa_misc () =
  let a = lang "ab" in
  let a2 = Automata.Nfa.with_alphabet (Automata.Cset.of_string "xyz") a in
  check "alphabet grew" true (Automata.Cset.cardinal a2.Automata.Nfa.alphabet = 5);
  check "language unchanged" true (Automata.Lang.equiv a a2);
  check "size positive" true (Automata.Nfa.size a > 0);
  let r = Automata.Nfa.rename (fun c -> Char.uppercase_ascii c) a in
  check "renamed" true (Automata.Nfa.accepts r "AB" && not (Automata.Nfa.accepts r "ab"))

let test_word_conversions () =
  Alcotest.(check (list char)) "to_list" [ 'a'; 'b' ] (Automata.Word.to_list "ab");
  check_str "of_list" "ab" (Automata.Word.of_list [ 'a'; 'b' ]);
  Alcotest.(check int) "length" 2 (Automata.Word.length "ab")

let () =
  Alcotest.run "misc"
    [
      ( "small modules",
        [
          Alcotest.test_case "Value" `Quick test_value;
          Alcotest.test_case "Cset" `Quick test_cset;
          Alcotest.test_case "Word pp" `Quick test_word_pp;
          Alcotest.test_case "printers" `Quick test_printers_smoke;
          Alcotest.test_case "word conversions" `Quick test_word_conversions;
          Alcotest.test_case "nfa misc" `Quick test_nfa_misc;
        ] );
      ( "report & solver",
        [
          Alcotest.test_case "report" `Quick test_report;
          Alcotest.test_case "classification reuse" `Quick test_solver_reuse_classification;
        ] );
    ]
