(* Tests for two-way RPQs (uppercase = backward traversal). *)
open Resilience
module Db = Graphdb.Db

let lang = Automata.Lang.of_string
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let vcheck name expected got =
  Alcotest.check (Alcotest.testable Value.pp Value.equal) name expected got

let test_satisfies () =
  (* 0 -a-> 1 <-b- 2: the 2RPQ aB goes 0 →a 1, then backward along b to 2 *)
  let d = Db.make ~nnodes:3 ~facts:[ (0, 'a', 1); (2, 'b', 1) ] in
  check "aB" true (Two_way.satisfies d (lang "aB"));
  check "ab" false (Two_way.satisfies d (lang "ab"));
  check "Ba" false (Two_way.satisfies d (lang "Ba"));
  (* backward b from 1 reaches 2, but no a-fact enters 2 *)
  check "BA" false (Two_way.satisfies d (lang "BA"));
  (* bounce across the b-fact in both directions: a, backward b, forward b *)
  check "aBb" true (Two_way.satisfies d (lang "aBb"));
  (* bounce on a single fact: a then A returns to the start *)
  let d1 = Db.make ~nnodes:2 ~facts:[ (0, 'a', 1) ] in
  check "aA" true (Two_way.satisfies d1 (lang "aA"));
  check "Aa" true (Two_way.satisfies d1 (lang "Aa"));
  check "aa" false (Two_way.satisfies d1 (lang "aa"))

let test_one_way_agrees () =
  (* on lowercase-only queries, two-way = one-way evaluation *)
  let d = Graphdb.Generate.random ~nnodes:5 ~nfacts:10 ~alphabet:[ 'a'; 'b' ] ~seed:3 () in
  List.iter
    (fun s ->
      check ("agree " ^ s) true
        (Two_way.satisfies d (lang s) = Graphdb.Eval.satisfies d (lang s)))
    [ "ab"; "a*b"; "aa"; "ab|ba" ]

let test_witness () =
  let d = Db.make ~nnodes:2 ~facts:[ (0, 'a', 1) ] in
  (match Two_way.shortest_witness d (lang "aA") with
  | Some w ->
      check_int "two steps" 2 (List.length w);
      check_int "one distinct fact" 1 (List.length (List.sort_uniq compare w))
  | None -> Alcotest.fail "expected witness");
  check "eps" true (Two_way.shortest_witness d (lang "~") = Some []);
  check "none" true (Two_way.shortest_witness d (lang "b") = None)

let test_matches () =
  let d = Db.make ~nnodes:3 ~facts:[ (0, 'a', 1); (2, 'a', 1) ] in
  (* aA walks: 0→1→0 (fact 0 twice), 0→1→2 (facts 0,1), 2→1→2, 2→1→0 *)
  let ms = Two_way.matches_up_to d (lang "aA") ~max_len:2 in
  check_int "three distinct fact sets" 3 (List.length ms)

let test_resilience () =
  (* aA is satisfied as long as ANY a-fact remains: resilience = #a-facts *)
  let d = Db.make ~nnodes:4 ~facts:[ (0, 'a', 1); (2, 'a', 3) ] in
  vcheck "aA" (Value.Finite 2) (fst (Two_way.resilience d (lang "aA")));
  (* aB needs a and b facts consecutively sharing the head *)
  let d2 = Db.make ~nnodes:3 ~facts:[ (0, 'a', 1); (2, 'b', 1) ] in
  vcheck "aB" (Value.Finite 1) (fst (Two_way.resilience d2 (lang "aB")));
  vcheck "eps" Value.Infinite (fst (Two_way.resilience d2 (lang "a*")));
  (* witness is a contingency set *)
  let v, w = Two_way.resilience d (lang "aA") in
  let d' = Db.restrict d ~removed:(fun id -> List.mem id w) in
  check "witness works" true (not (Two_way.satisfies d' (lang "aA")));
  vcheck "witness cost" v (Value.Finite (List.fold_left (fun a id -> a + Db.mult d id) 0 w))

(* brute-force cross-check *)
let brute d l =
  let live = Array.of_list (List.map fst (Db.facts d)) in
  let n = Array.length live in
  let best = ref Value.Infinite in
  for mask = 0 to (1 lsl n) - 1 do
    let cost = ref 0 and removed = ref [] in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        cost := !cost + Db.mult d live.(i);
        removed := live.(i) :: !removed
      end
    done;
    if Value.compare (Value.Finite !cost) !best < 0 then begin
      let d' = Db.restrict d ~removed:(fun id -> List.mem id !removed) in
      if not (Two_way.satisfies d' l) then best := Value.Finite !cost
    end
  done;
  !best

let qcheck = QCheck_alcotest.to_alcotest

let arb_db =
  QCheck.make
    ~print:(fun (d : Db.t) -> Format.asprintf "%a" Db.pp d)
    QCheck.Gen.(
      let* seed = int_bound 100000 in
      let* nnodes = int_range 2 4 in
      let* nfacts = int_range 1 6 in
      return (Graphdb.Generate.random ~nnodes ~nfacts ~alphabet:[ 'a'; 'b' ] ~max_mult:2 ~seed ()))

let prop_two_way_resilience_vs_brute =
  let langs = [ "aA"; "aB|Ba"; "Ab"; "aBa"; "AA" ] in
  QCheck.Test.make ~name:"two-way resilience = brute force" ~count:80
    (QCheck.pair arb_db (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      Value.equal (fst (Two_way.resilience d l)) (brute d l))

let prop_two_way_generalizes_one_way =
  let langs = [ "aa"; "ab"; "ab|ba" ] in
  QCheck.Test.make ~name:"two-way resilience = one-way on forward-only queries" ~count:80
    (QCheck.pair arb_db (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      Value.equal (fst (Two_way.resilience d l)) (fst (Exact.branch_and_bound d l)))

let () =
  Alcotest.run "two_way"
    [
      ( "evaluation",
        [
          Alcotest.test_case "satisfies" `Quick test_satisfies;
          Alcotest.test_case "agrees with one-way" `Quick test_one_way_agrees;
          Alcotest.test_case "witness" `Quick test_witness;
          Alcotest.test_case "matches" `Quick test_matches;
        ] );
      ("resilience", [ Alcotest.test_case "examples" `Quick test_resilience ]);
      ( "properties",
        List.map qcheck [ prop_two_way_resilience_vs_brute; prop_two_way_generalizes_one_way ] );
    ]
