(* Tests for contingency-set enumeration and responsibility. *)
open Resilience
module Db = Graphdb.Db
module ISet = Hypergraph.Iset

let lang = Automata.Lang.of_string
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let vcheck name expected got =
  Alcotest.check (Alcotest.testable Value.pp Value.equal) name expected got

(* The running example: a path of three a-facts 0-1-2-3, language aa.
   Matches: {0,1}, {1,2}. Minimum contingency sets: {1} (the middle fact)
   — and also {0,2}? cost 2, not minimum. So exactly one minimum set. *)
let path3 () = Db.make ~nnodes:4 ~facts:[ (0, 'a', 1); (1, 'a', 2); (2, 'a', 3) ]

let test_enumeration () =
  let d = path3 () in
  let v, sets = Analysis.all_minimum_contingency_sets d (lang "aa") in
  vcheck "value" (Value.Finite 1) v;
  check_int "one minimum set" 1 (List.length sets);
  check "it is the middle fact" true (List.hd sets = ISet.singleton 1);
  check_int "count" 1 (Analysis.count_minimum_contingency_sets d (lang "aa"));
  (* two a-facts in parallel for the language a: two minimum sets? no —
     both facts are matches, both must go: unique minimum set of size 2 *)
  let d2 = Db.make ~nnodes:4 ~facts:[ (0, 'a', 1); (2, 'a', 3) ] in
  check_int "both must go" 1 (Analysis.count_minimum_contingency_sets d2 (lang "a"));
  (* ab with two b-options: 0-a->1, 1-b->2, 1-b->3: minimum sets: {a-fact}
     or {both b-facts}? cost 1 vs 2: only {a}: 1 set. With mult a = 2:
     minimum is the pair of b's. *)
  let d3 = Db.make_bag ~nnodes:4 ~facts:[ (0, 'a', 1, 2); (1, 'b', 2, 1); (1, 'b', 3, 1) ] in
  let v3, sets3 = Analysis.all_minimum_contingency_sets d3 (lang "ab") in
  vcheck "weighted value" (Value.Finite 2) v3;
  check_int "two minimum sets" 2 (List.length sets3);
  (* infinite *)
  let vi, si = Analysis.all_minimum_contingency_sets d2 (lang "a*") in
  check "inf" true (vi = Value.Infinite && si = [])

let test_enumeration_all_hit () =
  let d = path3 () in
  let _, sets = Analysis.all_minimum_contingency_sets d (lang "aa") in
  List.iter
    (fun s ->
      let d' = Db.restrict d ~removed:(fun id -> ISet.mem id s) in
      check "each set falsifies" true (not (Graphdb.Eval.satisfies d' (lang "aa"))))
    sets

let test_responsibility () =
  let d = path3 () in
  let l = lang "aa" in
  (* fact 1 (middle): removing it alone falsifies: but responsibility needs
     f counterfactual: D\{} satisfies, D\{1} does not: resp = 0 *)
  vcheck "middle fact" (Value.Finite 0) (Analysis.responsibility d l 1);
  (* fact 0: D\Γ must satisfy Q and removing 0 too must falsify. Γ = {2}:
     D\{2} has matches {0,1} only; removing 0 kills it: resp = 1 *)
  vcheck "end fact" (Value.Finite 1) (Analysis.responsibility d l 0);
  check "scores ordered" true
    (Analysis.responsibility_score d l 1 > Analysis.responsibility_score d l 0);
  (* a fact not in any match has zero responsibility score; fact ids are
     sorted by (src, label, dst), so the b-fact (0,b,3) gets id 1 *)
  let d2 = Db.make ~nnodes:4 ~facts:[ (0, 'a', 1); (1, 'a', 2); (0, 'b', 3) ] in
  check "irrelevant fact" true (Analysis.responsibility d2 (lang "aa") 1 = Value.Infinite);
  check "score zero" true (Analysis.responsibility_score d2 (lang "aa") 1 = 0.0)

let test_most_responsible () =
  let d = path3 () in
  match Analysis.most_responsible_facts d (lang "aa") with
  | (top, s) :: _ ->
      check_int "middle is most responsible" 1 top;
      check "score 1" true (s = 1.0)
  | [] -> Alcotest.fail "expected facts"

(* Brute-force responsibility for cross-checking. *)
let brute_responsibility d l f =
  let live = List.filter (fun id -> id <> f) (List.map fst (Db.facts d)) in
  let live = Array.of_list live in
  let n = Array.length live in
  let best = ref Value.Infinite in
  for mask = 0 to (1 lsl n) - 1 do
    let cost = ref 0 and removed = ref [] in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        cost := !cost + Db.mult d live.(i);
        removed := live.(i) :: !removed
      end
    done;
    if Value.compare (Value.Finite !cost) !best < 0 then begin
      let d_g = Db.restrict d ~removed:(fun id -> List.mem id !removed) in
      let d_gf = Db.restrict d ~removed:(fun id -> id = f || List.mem id !removed) in
      if Graphdb.Eval.satisfies d_g l && not (Graphdb.Eval.satisfies d_gf l) then
        best := Value.Finite !cost
    end
  done;
  !best

let qcheck = QCheck_alcotest.to_alcotest

let arb_db =
  QCheck.make
    ~print:(fun (d : Db.t) -> Format.asprintf "%a" Db.pp d)
    QCheck.Gen.(
      let* seed = int_bound 100000 in
      let* nnodes = int_range 2 4 in
      let* nfacts = int_range 1 7 in
      return (Graphdb.Generate.random ~nnodes ~nfacts ~alphabet:[ 'a'; 'b' ] ~max_mult:2 ~seed ()))

let prop_responsibility_vs_brute =
  let langs = [ "aa"; "ab"; "ab|ba"; "aab" ] in
  QCheck.Test.make ~name:"responsibility = brute force" ~count:100
    (QCheck.pair arb_db (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      List.for_all
        (fun (id, _) -> Value.equal (Analysis.responsibility d l id) (brute_responsibility d l id))
        (Db.facts d))

let prop_enumerated_sets_are_optimal =
  let langs = [ "aa"; "ab"; "ab|ba" ] in
  QCheck.Test.make ~name:"enumerated contingency sets are exactly the optima" ~count:80
    (QCheck.pair arb_db (QCheck.oneofl langs))
    (fun (d, s) ->
      let l = lang s in
      match Analysis.all_minimum_contingency_sets d l with
      | Value.Infinite, _ -> false
      | Value.Finite v, sets ->
          Value.equal (Value.Finite v) (fst (Exact.branch_and_bound d l))
          && sets <> []
          && List.for_all
               (fun set ->
                 let cost = ISet.fold (fun id acc -> acc + Db.mult d id) set 0 in
                 let d' = Db.restrict d ~removed:(fun id -> ISet.mem id set) in
                 cost = v && not (Graphdb.Eval.satisfies d' l))
               sets)

let () =
  Alcotest.run "analysis"
    [
      ( "contingency sets",
        [
          Alcotest.test_case "enumeration" `Quick test_enumeration;
          Alcotest.test_case "sets falsify" `Quick test_enumeration_all_hit;
        ] );
      ( "responsibility",
        [
          Alcotest.test_case "examples" `Quick test_responsibility;
          Alcotest.test_case "ranking" `Quick test_most_responsible;
        ] );
      ( "properties",
        List.map qcheck [ prop_responsibility_vs_brute; prop_enumerated_sets_are_optimal ] );
    ]
