(* rpq: command-line front-end for the RPQ-resilience library.

   Subcommands:
     classify REGEX...         classify languages (Figure 1)
     solve --db FILE REGEX     resilience of a database file
     gen                       emit a vertex-cover hardness instance
     reduce REGEX              print reduce(L)
     words REGEX               enumerate (finite) languages
     gadgets                   verify every hardness gadget of the paper

   Database file format: one fact per line, `src label dst [multiplicity]`,
   where src/dst are arbitrary node names and label is one character.
   Lines starting with # are comments.

   Exit codes: 0 = exact answer, 3 = certified bounds only (budget
   exhausted), 2 = input error (bad database file, unknown node, ...). *)

open Cmdliner
open Resilience
module Db = Graphdb.Db
module Ser = Graphdb.Serialize

(* Exact answers exit 0; a [Bounded] outcome of `solve --timeout/--steps`
   exits 3 so scripts can tell the two apart; malformed input exits 2. *)
let exit_bounded = 3
let exit_input_error = 2

let input_error fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("rpq: error: " ^ msg);
      exit_input_error)
    fmt

let parse_db_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
      (* [Ser.parse] errors start with "<line>:", so prefixing the path
         yields a standard file:line diagnostic. *)
      Result.map_error (fun e -> Printf.sprintf "%s:%s" path e) (Ser.parse contents)

(* Every subcommand accepts --trace; tracing is also reachable via
   RPQ_TRACE for tools that cannot pass flags (see Obs.Trace). *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a trace of solver stages and runner events to $(docv): a JSONL event stream if            the name ends in .jsonl, otherwise a Chrome trace_event JSON array loadable in            Perfetto (ui.perfetto.dev) or about:tracing.")

let configure_trace = function None -> () | Some path -> Obs.Trace.configure_file path

(* Structured-log controls for the long-running subcommands. RPQ_LOG
   (level[,file]) works for tools that cannot pass flags; these flags
   override it. Records below the threshold still reach the flight
   recorder (see Obs.Log / Obs.Flight). *)
let log_level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Minimum severity of structured log records: one of $(b,debug), $(b,info), \
           $(b,warn) (the default), $(b,error). Suppressed records still reach the flight \
           recorder. Overrides RPQ_LOG.")

let log_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-file" ] ~docv:"FILE"
        ~doc:"Append structured log records (JSON lines) to $(docv) instead of stderr.")

(* Continuation style so an unknown level is an ordinary exit-2 input
   error from inside command bodies that return exit codes. *)
let configure_log level file k =
  match Option.map (fun s -> (s, Obs.Log.level_of_string s)) level with
  | Some (s, None) -> input_error "unknown log level %S (debug, info, warn, error)" s
  | parsed ->
      (match parsed with Some (_, Some l) -> Obs.Log.set_level (Some l) | _ -> ());
      (match file with None -> () | Some f -> Obs.Log.set_file f);
      k ()

(* Shared by solve --json / batch / serve: the worker memory ceiling. *)
let max_heap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-heap-mb" ] ~docv:"MB"
        ~doc:
          "Memory ceiling per job: a Gc-alarm watchdog converts a major heap beyond $(docv) \
           megabytes into budget exhaustion, so an OOM-bound job settles as a certified \
           $(i,bounded) reply instead of dying to the OOM killer. Applies to the JSON reply \
           paths (workers of $(b,batch)/$(b,serve), and $(b,solve --json)).")

let regex_arg =
  let parse s =
    match Automata.Regex.parse_opt s with
    | Some _ -> Ok s
    | None -> Error (`Msg (Printf.sprintf "invalid regular expression %S" s))
  in
  Arg.conv (parse, Fmt.string)

(* ---- classify ---- *)

let classify_cmd =
  let regexes =
    Arg.(non_empty & pos_all regex_arg [] & info [] ~docv:"REGEX" ~doc:"Languages to classify.")
  in
  let run regexes =
    List.iter
      (fun s ->
        let c = Classify.classify_regex s in
        Format.printf "%-20s %s@." s (Classify.verdict_summary c.Classify.verdict))
      regexes;
    0
  in
  Cmd.v (Cmd.info "classify" ~doc:"Classify the resilience complexity of RPQs (Figure 1).")
    Term.(const run $ regexes)

(* ---- solve ---- *)

(* `solve --json` runs the job through the same code path as a batch/serve
   worker (minus the fork), so its reply line is schema-identical to
   theirs: downstream tooling needs one parser, not three. *)
let solve_json ~db_file ~query ~timeout ~steps ~memo_cap =
  match In_channel.with_open_text db_file In_channel.input_all with
  | exception Sys_error e -> input_error "%s" e
  | db ->
      let job =
        {
          Runner.Proto.id = db_file;
          db;
          query;
          budget = { Runner.Proto.deadline = timeout; steps; memo_cap };
          faults = None;
          deadline_ms = None;
          priority = Runner.Proto.default_priority;
          trace = None;
        }
      in
      let t0 = Runner.now_s () in
      let r = Runner.run_job_locally job in
      let r = { r with Runner.Proto.wall_s = Runner.now_s () -. t0 } in
      print_endline (Runner.Proto.reply_to_json r);
      (match r.Runner.Proto.verdict with
      | Runner.Proto.V_exact _ -> 0
      | Runner.Proto.V_bounded _ -> exit_bounded
      | Runner.Proto.V_failed _ -> exit_input_error)

let print_fact_removals db names w =
  List.iter
    (fun id ->
      let f = Db.fact db id in
      Format.printf "  remove %s --%c--> %s (cost %d)@." (names f.Db.src) f.Db.label
        (names f.Db.dst) (Db.mult db id))
    w

let solve_cmd =
  let db_file =
    Arg.(required & opt (some file) None & info [ "db" ] ~docv:"FILE" ~doc:"Database file.")
  in
  let regex =
    Arg.(required & pos 0 (some regex_arg) None & info [] ~docv:"REGEX" ~doc:"The RPQ.")
  in
  let witness = Arg.(value & flag & info [ "witness" ] ~doc:"Print a minimum contingency set.") in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "CPU-time budget. On exhaustion the solver reports certified lower/upper bounds \
             instead of an exact value and exits with status 3.")
  in
  let steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "steps" ] ~docv:"N"
          ~doc:
            "Work budget: search nodes, simplex pivots and oracle calls all count. Same \
             degradation behavior as $(b,--timeout).")
  in
  let memo_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "memo-cap" ] ~docv:"N" ~doc:"Cap on memo-table entries (default 2^20).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one machine-readable JSON reply line (the same schema as $(b,rpq batch) and \
             $(b,rpq serve) replies) instead of the human-readable report.")
  in
  let run db_file s witness timeout steps memo_cap json max_heap trace =
    configure_trace trace;
    match max_heap with
    | Some mb when mb < 1 -> input_error "solve: max heap must be at least 1 MB"
    | mh ->
    Runner.set_max_heap_mb mh;
    if json then solve_json ~db_file ~query:s ~timeout ~steps ~memo_cap
    else
    match parse_db_file db_file with
    | Error e -> input_error "%s" e
    | Ok p -> begin
        let db = p.Ser.db in
        let l = Automata.Lang.of_string s in
        match
          match (timeout, steps, memo_cap) with
          | None, None, None -> None
          | _ -> Some (Budget.create ?deadline:timeout ?steps ?memo_cap ())
        with
        | exception Invalid_argument e -> input_error "%s" e
        | budget -> begin
            Format.printf "language    : %s@." s;
            match Solver.solve_bounded ?budget db l with
            | Solver.Exact r ->
                Format.printf "verdict     : %s@."
                  (Classify.verdict_summary r.Solver.classification.Classify.verdict);
                Format.printf "algorithm   : %s@." (Solver.algorithm_name r.Solver.algorithm);
                Format.printf "resilience  : %a@." Value.pp r.Solver.value;
                (if witness then
                   match r.Solver.witness with
                   | Some w -> print_fact_removals db p.Ser.node_name w
                   | None -> Format.printf "  (this algorithm reports no witness)@.");
                0
            | Solver.Bounded { lower; upper; upper_witness; spent; reason; cert = _ } ->
                Format.printf "outcome     : bounds only (budget exhausted: %s)@."
                  (Budget.exhaustion_name reason);
                Format.printf "resilience  : %a <= RES <= %a@." Value.pp lower Value.pp upper;
                Format.printf "spent       : %d steps, %.3fs@." spent.Budget.steps
                  spent.Budget.elapsed;
                (if witness then
                   match upper_witness with
                   | Some w -> print_fact_removals db p.Ser.node_name w
                   | None -> Format.printf "  (no upper-bound witness)@.");
                exit_bounded
          end
      end
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Compute the resilience of an RPQ on a database file, exactly or within a time/work \
          budget.")
    Term.(
      const run $ db_file $ regex $ witness $ timeout $ steps $ memo_cap $ json $ max_heap_arg
      $ trace_arg)

(* ---- gen ---- *)

let gen_cmd =
  let nvertices =
    Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Number of graph vertices.")
  in
  let prob =
    Arg.(
      value
      & opt (some float) None
      & info [ "p" ] ~docv:"P"
          ~doc:"Erdős–Rényi edge probability; omit for the complete graph.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Random seed (with --p).") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the database here instead of stdout.")
  in
  let run n p seed out =
    if n < 2 then input_error "gen: need at least 2 vertices, got %d" n
    else begin
      match p with
      | Some p when not (p >= 0.0 && p <= 1.0) ->
          input_error "gen: edge probability %g not in [0, 1]" p
      | _ ->
      let g =
        match p with
        | None -> Graphs.Ugraph.complete n
        | Some p -> Graphs.Ugraph.random ~n ~p ~seed
      in
      let pre, _ = Gadgets.gadget_aa () in
      let db = Gadgets.encode pre g in
      let text =
        Printf.sprintf
          "# Vertex-cover hardness instance (Definition 4.5): each of the %d edges of a\n\
           # %d-vertex graph becomes a copy of the `aa` gadget (Proposition 4.1).\n\
           # Solve with: rpq solve --db <this file> aa\n\
           %s"
          (Graphs.Ugraph.edge_count g) n (Ser.to_string db)
      in
      (match out with
      | None -> print_string text
      | Some f -> Out_channel.with_open_text f (fun oc -> output_string oc text));
      0
    end
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate an NP-hard resilience instance (vertex-cover encoding for the language aa).")
    Term.(const run $ nvertices $ prob $ seed $ out)

(* ---- reduce ---- *)

let reduce_cmd =
  let regex =
    Arg.(required & pos 0 (some regex_arg) None & info [] ~docv:"REGEX" ~doc:"The language.")
  in
  let run s =
    let r = Automata.Reduce.nfa (Automata.Lang.of_string s) in
    (match Automata.Lang.words r with
    | Some ws -> Format.printf "reduce(%s) = {%s}@." s (String.concat ", " ws)
    | None ->
        Format.printf "reduce(%s) is infinite; words up to length 6: {%s}, ...@." s
          (String.concat ", " (Automata.Lang.words_up_to r 6)));
    0
  in
  Cmd.v (Cmd.info "reduce" ~doc:"Compute the reduced (infix-free) sublanguage.")
    Term.(const run $ regex)

(* ---- words ---- *)

let words_cmd =
  let regex =
    Arg.(required & pos 0 (some regex_arg) None & info [] ~docv:"REGEX" ~doc:"The language.")
  in
  let limit =
    Arg.(value & opt int 8 & info [ "limit" ] ~docv:"N" ~doc:"Length bound for infinite languages.")
  in
  let run s limit =
    let l = Automata.Lang.of_string s in
    (match Automata.Lang.words l with
    | Some ws -> Format.printf "{%s}@." (String.concat ", " ws)
    | None -> Format.printf "{%s, ...}@." (String.concat ", " (Automata.Lang.words_up_to l limit)));
    0
  in
  Cmd.v (Cmd.info "words" ~doc:"Enumerate the words of a language.") Term.(const run $ regex $ limit)

(* ---- certify ---- *)

let certify_cmd =
  let regex =
    Arg.(required & pos 0 (some regex_arg) None & info [] ~docv:"REGEX" ~doc:"The language.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one classification record (JSON, $(b,\"kind\":\"classification\")) instead of \
             the human-readable report. An $(i,np-hard) verdict carries a replayable hardness \
             transcript re-checkable by $(b,rpq_certcheck) and exits 0; $(i,inconclusive) \
             carries no certificate and exits 3.")
  in
  (* The JSON path only reports np-hard when the gadget transcript
     serialized: a classification record's claim must be exactly as strong
     as its certificate. *)
  let run_json s l =
    let emit c_verdict c_cert =
      print_endline (Runner.Proto.classification_to_json
                       { Runner.Proto.c_language = s; c_verdict; c_cert })
    in
    match Hardness.thm61_gadget l with
    | Ok o -> begin
        match Certify.hardness ~language:s o with
        | Ok cert ->
            emit "np-hard" (Some cert);
            0
        | Error _ ->
            emit "inconclusive" None;
            exit_bounded
      end
    | Error _ ->
        emit "inconclusive" None;
        exit_bounded
  in
  let run s json =
    let l = Automata.Lang.of_string s in
    if json then run_json s l
    else begin
      Format.printf "%-20s %s@." s
        (Classify.verdict_summary (Classify.classify l).Classify.verdict);
      (match Hardness.thm61_gadget l with
      | Ok o ->
          Format.printf "Theorem 6.1 pipeline: %s (mirrored=%b), gadget with odd path length %s@."
            o.Hardness.strategy o.Hardness.mirrored
            (match o.Hardness.verification.Gadgets.odd_path_length with
            | Some len -> string_of_int len
            | None -> "?")
      | Error e1 -> begin
          Format.printf "Theorem 6.1 pipeline: %s@." e1;
          match Gadget_search.certify_np_hard l with
          | Some f ->
              Format.printf "Gadget search: verified gadget found (%d matches) => NP-hard@."
                (Array.length f.Gadget_search.words_used)
          | None -> Format.printf "Gadget search: nothing found within budget@."
        end);
      0
    end
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Try to produce a machine-checked NP-hardness gadget (Thm 6.1 pipeline + search).")
    Term.(const run $ regex $ json)

(* ---- report ---- *)

let report_cmd =
  let regexes =
    Arg.(non_empty & pos_all regex_arg [] & info [] ~docv:"REGEX" ~doc:"Languages to analyze.")
  in
  let no_gadget =
    Arg.(value & flag & info [ "no-gadget" ] ~doc:"Skip the hardness-gadget attempt (faster).")
  in
  let run regexes no_gadget =
    List.iter
      (fun s ->
        match Report.analyze ~try_gadget:(not no_gadget) s with
        | Ok r -> print_string (Report.to_markdown r)
        | Error e -> Format.printf "%s: %s@." s e)
      regexes;
    0
  in
  Cmd.v (Cmd.info "report" ~doc:"Full analysis report for a language (markdown).")
    Term.(const run $ regexes $ no_gadget)

(* ---- st-solve ---- *)

let st_solve_cmd =
  let db_file =
    Arg.(required & opt (some file) None & info [ "db" ] ~docv:"FILE" ~doc:"Database file.")
  in
  let regex =
    Arg.(required & pos 0 (some regex_arg) None & info [] ~docv:"REGEX" ~doc:"The RPQ.")
  in
  let src =
    Arg.(required & opt (some string) None & info [ "from" ] ~docv:"NODE" ~doc:"Source node.")
  in
  let dst =
    Arg.(required & opt (some string) None & info [ "to" ] ~docv:"NODE" ~doc:"Target node.")
  in
  let run db_file s src dst =
    match parse_db_file db_file with
    | Error e -> input_error "%s" e
    | Ok p -> begin
        match (p.Ser.node_id src, p.Ser.node_id dst) with
        | None, _ -> input_error "%s: unknown node %S" db_file src
        | _, None -> input_error "%s: unknown node %S" db_file dst
        | Some src_id, Some dst_id ->
            let l = Automata.Lang.of_string s in
            let r = St_resilience.solve p.Ser.db l ~src:src_id ~dst:dst_id in
            Format.printf "resilience of %s from %s to %s: %a  [%s]@." s src dst Value.pp
              r.St_resilience.value
              (Solver.algorithm_name r.St_resilience.algorithm);
            0
      end
  in
  Cmd.v
    (Cmd.info "st-solve" ~doc:"Fixed-endpoint resilience (Section 8 future work).")
    Term.(const run $ db_file $ regex $ src $ dst)

(* ---- dot ---- *)

let dot_cmd =
  let regex =
    Arg.(value & opt (some regex_arg) None & info [ "regex" ] ~docv:"REGEX" ~doc:"Render an automaton.")
  in
  let db_file =
    Arg.(value & opt (some file) None & info [ "db" ] ~docv:"FILE" ~doc:"Render a database.")
  in
  let minimize = Arg.(value & flag & info [ "dfa" ] ~doc:"Render the minimal DFA instead of the NFA.") in
  let run regex db_file minimize =
    (match regex with
    | Some s ->
        let a = Automata.Lang.of_string s in
        if minimize then
          print_string (Automata.Dot.of_dfa (Automata.Dfa.minimize (Automata.Dfa.of_nfa a)))
        else print_string (Automata.Dot.of_nfa a)
    | None -> ());
    match db_file with
    | Some f -> begin
        match parse_db_file f with
        | Error e -> input_error "%s" e
        | Ok p ->
            print_string (Ser.to_dot ~names:p.Ser.node_name p.Ser.db);
            0
      end
    | None -> 0
  in
  Cmd.v (Cmd.info "dot" ~doc:"Export automata or databases as Graphviz DOT.")
    Term.(const run $ regex $ db_file $ minimize)

(* ---- gadgets ---- *)

let gadgets_cmd =
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Print databases and hypergraphs.") in
  let run verbose =
    List.iter
      (fun (name, g, l) ->
        let v = Gadgets.verify g l in
        Format.printf "%-36s %s%s@." name
          (if v.Gadgets.ok then "VALID" else "INVALID")
          (match v.Gadgets.odd_path_length with
          | Some len -> Printf.sprintf " (odd path length %d)" len
          | None -> "");
        if verbose then begin
          let c = Gadgets.complete g in
          Format.printf "%a@." Db.pp c.Gadgets.db';
          Format.printf "%a@." Hypergraph.pp v.Gadgets.condensed
        end)
      (Gadgets.all_paper_gadgets ());
    0
  in
  Cmd.v (Cmd.info "gadgets" ~doc:"Verify the paper's hardness gadgets (Definition 4.9).")
    Term.(const run $ verbose)

(* ---- batch / serve (supervised execution) ---- *)

(* Jobfile grammar, one job per line (# comments, blank lines ignored):
     <db-file> <regex> [timeout=S] [steps=N] [memo=N] [faults=PLAN]
   Job ids are j<lineno>, so a journal from an interrupted run lines up
   with a re-read of the same file. The database text is loaded here and
   shipped to the workers, which parse it themselves: a malformed db is a
   structured per-job error, not a batch abort. *)
let parse_jobfile path =
  let ( let* ) = Result.bind in
  let* lines =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e -> Error e
    | text -> Ok (String.split_on_char '\n' text)
  in
  let parse_line lineno line =
    let line = match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [] -> Ok None
    | [ _ ] -> Error (Printf.sprintf "%s:%d: expected '<db-file> <regex> [key=value...]'" path lineno)
    | db_file :: regex :: opts ->
        let* db =
          match In_channel.with_open_text db_file In_channel.input_all with
          | exception Sys_error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e)
          | db -> Ok db
        in
        let* budget, faults, deadline_ms, priority =
          List.fold_left
            (fun acc opt ->
              let* (b : Runner.Proto.budget_spec), faults, dl, prio = acc in
              let bad () =
                Error (Printf.sprintf "%s:%d: bad job option %S" path lineno opt)
              in
              match String.index_opt opt '=' with
              | None -> bad ()
              | Some i ->
                  let k = String.sub opt 0 i in
                  let v = String.sub opt (i + 1) (String.length opt - i - 1) in
                  (match k with
                  | "timeout" -> (
                      match float_of_string_opt v with
                      | Some f when Float.is_finite f && f >= 0.0 ->
                          Ok ({ b with Runner.Proto.deadline = Some f }, faults, dl, prio)
                      | _ -> bad ())
                  | "steps" -> (
                      match int_of_string_opt v with
                      | Some n when n >= 0 ->
                          Ok ({ b with Runner.Proto.steps = Some n }, faults, dl, prio)
                      | _ -> bad ())
                  | "memo" -> (
                      match int_of_string_opt v with
                      | Some n when n >= 0 ->
                          Ok ({ b with Runner.Proto.memo_cap = Some n }, faults, dl, prio)
                      | _ -> bad ())
                  | "faults" -> (
                      match Faults.parse v with
                      | Ok _ -> Ok (b, Some v, dl, prio)
                      | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
                  | "deadline" -> (
                      match int_of_string_opt v with
                      | Some ms when ms >= 0 -> Ok (b, faults, Some ms, prio)
                      | _ -> bad ())
                  | "priority" ->
                      if List.mem v Runner.Proto.priorities then Ok (b, faults, dl, v) else bad ()
                  | _ -> bad ()))
            (Ok (Runner.Proto.no_budget, None, None, Runner.Proto.default_priority))
            opts
        in
        Ok
          (Some
             {
               Runner.Proto.id = Printf.sprintf "j%d" lineno;
               db;
               query = regex;
               budget;
               faults;
               deadline_ms;
               priority;
               trace = None;
             })
  in
  let rec loop lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let* job = parse_line lineno line in
        loop (lineno + 1) (match job with Some j -> j :: acc | None -> acc) rest
  in
  loop 1 [] lines

let workers_arg =
  Arg.(
    value
    & opt int Runner.default_config.Runner.workers
    & info [ "workers" ] ~docv:"N" ~doc:"Worker pool size.")

let retries_arg =
  Arg.(
    value
    & opt int Runner.default_config.Runner.retries
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retries per job after a worker crash or timeout; each retry shrinks the job's budget \
           so persistent crashers degrade to certified bounds.")

let queue_cap_arg =
  Arg.(
    value
    & opt int Runner.default_config.Runner.queue_cap
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:"Admission limit: $(b,rpq serve) sheds jobs beyond this with an `overloaded' reply.")

let job_timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "job-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock limit per job attempt, enforced by the supervisor: the worker is SIGTERMed \
           and, failing that, SIGKILLed.")

let journal_sync_arg =
  let policies =
    [
      ("never", Runner.Journal.Never);
      ("per_line", Runner.Journal.Per_line);
      ("per_job", Runner.Journal.Per_job);
    ]
  in
  Arg.(
    value
    & opt (enum policies) Runner.default_config.Runner.journal_sync
    & info [ "journal-sync" ] ~docv:"POLICY"
        ~doc:
          "Journal durability policy: $(b,never) (flush to the OS only), $(b,per_line) (fsync \
           every record), or $(b,per_job) (fsync on settlements only; the default).")

let runner_config workers retries queue_cap job_timeout journal_sync max_heap =
  if workers < 1 then Error "need at least one worker"
  else if retries < 0 then Error "negative retries"
  else if queue_cap < 1 then Error "queue cap must be at least 1"
  else if (match max_heap with Some mb -> mb < 1 | None -> false) then
    Error "max heap must be at least 1 MB"
  else
    Ok
      {
        Runner.default_config with
        Runner.workers;
        retries;
        queue_cap;
        job_timeout;
        journal_sync;
        max_heap_mb = max_heap;
      }

let batch_cmd =
  let jobfile =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOBFILE"
          ~doc:"One job per line: <db-file> <regex> [timeout=S] [steps=N] [memo=N] [faults=PLAN].")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Write-ahead journal: every dispatch and settlement is appended here, and a rerun \
             with the same journal skips already-settled jobs (re-verified unless RPQ_CHECK=off).")
  in
  let run jobfile journal workers retries queue_cap job_timeout journal_sync max_heap trace
      log_level log_file =
    configure_trace trace;
    configure_log log_level log_file @@ fun () ->
    match runner_config workers retries queue_cap job_timeout journal_sync max_heap with
    | Error e -> input_error "batch: %s" e
    | Ok cfg -> begin
        match parse_jobfile jobfile with
        | Error e -> input_error "%s" e
        | Ok [] -> input_error "%s: no jobs" jobfile
        | Ok jobs -> begin
            match
              Obs.Trace.with_span ~args:[ ("jobs", Obs.Jtext.Int (List.length jobs)) ] "batch"
                (fun () -> Runner.run_batch ?journal cfg jobs)
            with
            (* An unreadable/corrupt/locked journal is an input problem
               (exit 2, file:line in the message), not a crash. *)
            | exception Invalid_argument e -> input_error "%s" e
            | replies, stats ->
                List.iter (fun r -> print_endline (Runner.Proto.reply_to_json r)) replies;
                Printf.eprintf "batch: %d jobs (%d run, %d resumed), %d failures\n%!"
                  (List.length replies) stats.Runner.ran stats.Runner.resumed
                  stats.Runner.failures;
                if stats.Runner.failures = 0 then 0 else 1
          end
      end
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a file of resilience jobs under the supervised worker pool: fork isolation, \
          retries with budget degradation, and journal-based crash recovery. Emits one JSON \
          reply line per job, in jobfile order. Exits 0 iff every job settled without error.")
    Term.(
      const run $ jobfile $ journal $ workers_arg $ retries_arg $ queue_cap_arg $ job_timeout_arg
      $ journal_sync_arg $ max_heap_arg $ trace_arg $ log_level_arg $ log_file_arg)

let serve_cmd =
  let listen_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"PATH"
          ~doc:
            "Listen for clients on a Unix-domain socket at $(docv) (a stale socket file is \
             replaced). With $(b,--listen) or $(b,--tcp), stdin/stdout are not served; without \
             either, jobs come from stdin as before.")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:"Listen for clients on loopback TCP port $(docv) (0 picks a free port).")
  in
  let cache_entries_arg =
    Arg.(
      value
      & opt int Runner.default_serve_config.Runner.cache_entries
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:
            "Result-cache capacity: settled replies are cached under the job's canonical \
             digest and an identical resubmission (from any client) is answered from the \
             cache — but only after the cached certificate re-checks; a failing entry is \
             evicted and the job recomputed. 0 disables the cache.")
  in
  let client_inflight_arg =
    Arg.(
      value
      & opt int Runner.default_serve_config.Runner.client_inflight
      & info [ "client-inflight" ] ~docv:"N"
          ~doc:
            "Per-client cap on outstanding jobs; admission into the worker pool is \
             round-robin across clients, so one chatty client cannot monopolize it.")
  in
  let drain_grace_arg =
    Arg.(
      value
      & opt float Runner.default_serve_config.Runner.drain_grace
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:
            "Graceful-drain budget on SIGTERM/SIGINT: stop accepting, shed queued jobs with \
             retriable `overloaded' replies, wait up to $(docv) for inflight jobs to settle, \
             flush, release the journal lock, exit 0.")
  in
  let serve_journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append every settlement here (under the client's original job id and the \
             canonical job digest) and pre-seed the result cache from it on start; a seeded \
             entry is still certificate-checked on every use, so a tampered journal entry \
             can be seeded but never served.")
  in
  let hedge_after_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-after" ] ~docv:"SECONDS"
          ~doc:
            "Certificate-gated hedging: when a job has been running $(docv) seconds, a \
             worker is idle and nothing is waiting to dispatch, launch a speculative \
             duplicate attempt; the first reply whose certificate re-checks wins and the \
             loser is killed. Exactly one reply is emitted and journaled either way. \
             Off by default.")
  in
  let brownout_after_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "brownout-after" ] ~docv:"SECONDS"
          ~doc:
            "Load watchdog: once the admission queue has stayed at or above half of \
             $(b,--queue-cap) for $(docv) seconds, shed new $(b,batch) jobs with retriable \
             `overloaded' replies and degrade non-interactive step budgets until the queue \
             drains. Off by default.")
  in
  let run workers retries queue_cap job_timeout journal_sync max_heap listen tcp cache_entries
      client_inflight drain_grace journal hedge_after brownout_after trace log_level log_file =
    configure_trace trace;
    configure_log log_level log_file @@ fun () ->
    match runner_config workers retries queue_cap job_timeout journal_sync max_heap with
    | Error e -> input_error "serve: %s" e
    | Ok cfg ->
        if cache_entries < 0 then input_error "serve: negative cache size"
        else if client_inflight < 1 then
          input_error "serve: client inflight cap must be at least 1"
        else if drain_grace < 0.0 then input_error "serve: negative drain grace"
        else if (match hedge_after with Some s -> s < 0.0 | None -> false) then
          input_error "serve: negative hedge delay"
        else if (match brownout_after with Some s -> s < 0.0 | None -> false) then
          input_error "serve: negative brownout threshold"
        else begin
          let scfg =
            {
              Runner.base = { cfg with Runner.hedge_after };
              listen;
              tcp;
              cache_entries;
              client_inflight;
              drain_grace;
              write_timeout = Runner.default_serve_config.Runner.write_timeout;
              serve_journal = journal;
              brownout_after;
            }
          in
          let stdio = if listen = None && tcp = None then Some (stdin, stdout) else None in
          match Runner.serve_sockets ?stdio scfg with
          | () -> 0
          | exception Invalid_argument e -> input_error "%s" e
        end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve resilience jobs (one JSON job per line in, one JSON reply per line out, in \
          settlement order) under the supervised worker pool — from stdin, a Unix-domain \
          socket ($(b,--listen)), a loopback TCP port ($(b,--tcp)), or several at once. \
          Multi-client: admission is round-robin with a per-client inflight cap, a malformed \
          line poisons only the client that sent it, a disconnect cancels only that client's \
          queued jobs, and settled replies are cached under a certificate gate \
          ($(b,--cache-entries)). Jobs carry end-to-end deadlines and priorities \
          (admission is weighted-fair across $(b,interactive)/$(b,normal)/$(b,batch)); \
          $(b,--hedge-after) arms certificate-gated hedging and $(b,--brownout-after) the \
          overload watchdog. SIGTERM/SIGINT drain gracefully ($(b,--drain-grace)). A \
          line $(b,{\"stats\":true}) answers immediately with the metrics snapshot \
          (job/cache/client counters and gauges); a line $(b,GET /metrics) draws the same \
          snapshot as a Prometheus text-format HTTP response (see $(b,rpq stats)).")
    Term.(
      const run $ workers_arg $ retries_arg $ queue_cap_arg $ job_timeout_arg $ journal_sync_arg
      $ max_heap_arg $ listen_arg $ tcp_arg $ cache_entries_arg $ client_inflight_arg
      $ drain_grace_arg $ serve_journal_arg $ hedge_after_arg $ brownout_after_arg $ trace_arg
      $ log_level_arg $ log_file_arg)

(* ---- stats / submit: socket clients of a running serve ---- *)

let connect_args =
  let sock =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:"Connect to a server listening on the Unix-domain socket at $(docv).")
  in
  let tcp =
    Arg.(
      value
      & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT" ~doc:"Connect to a server on loopback TCP port $(docv).")
  in
  (sock, tcp)

(* A metrics scrape is one "GET <target>" line on the same line-framed
   socket jobs travel on; the server answers with a complete HTTP/1.0
   response and closes. Read to EOF, check the status line, strip the
   header block at the first blank line. *)
let http_get ~connect target =
  match connect () with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | (ic, oc) ->
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic;
          close_out_noerr oc)
        (fun () ->
          output_string oc (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target);
          flush oc;
          let raw = In_channel.input_all ic in
          let len = String.length raw in
          let rec find_body i =
            if i + 4 > len then None
            else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
            else find_body (i + 1)
          in
          match find_body 0 with
          | None -> Error "malformed response (no header/body separator)"
          | Some body_at ->
              if String.starts_with ~prefix:"HTTP/1.0 200" raw then
                Ok (String.sub raw body_at (len - body_at))
              else
                Error
                  (match String.index_opt raw '\r' with
                  | Some i -> String.sub raw 0 i
                  | None -> "malformed status line"))

let stats_cmd =
  let sock, tcp = connect_args in
  let counters =
    Arg.(
      value & flag
      & info [ "counters" ]
          ~doc:
            "Scrape $(b,/metrics/counters) instead of $(b,/metrics): counters only, no \
             gauges or latency histograms — the subset whose bytes are deterministic across \
             two seeded runs.")
  in
  let watch =
    Arg.(
      value
      & opt (some float) None
      & info [ "watch" ] ~docv:"SECONDS"
          ~doc:
            "Re-scrape every $(docv) seconds (reconnecting each time) until interrupted or \
             the server goes away, printing each snapshot.")
  in
  let run sock tcp counters watch =
    match (sock, tcp) with
    | None, None -> input_error "stats: need --connect PATH or --tcp PORT"
    | _ when watch <> None && Option.get watch <= 0.0 ->
        input_error "stats: watch period must be positive"
    | _ ->
        let connect () =
          match sock with
          | Some path -> Runner.Transport.connect_unix path
          | None -> Runner.Transport.connect_tcp (Option.get tcp)
        in
        let target = if counters then "/metrics/counters" else "/metrics" in
        let scrape () =
          match http_get ~connect target with
          | Ok body ->
              print_string body;
              flush stdout;
              true
          | Error e ->
              Printf.eprintf "rpq: stats: %s\n%!" e;
              false
        in
        let rec loop ok =
          match watch with
          | Some period when ok ->
              Unix.sleepf period;
              loop (scrape ())
          | _ -> if ok then 0 else 1
        in
        loop (scrape ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Scrape a running $(b,rpq serve)'s metrics endpoint ($(b,GET /metrics) over its job \
          socket) and print the Prometheus text-format exposition: job/retry/death and \
          cache/transport counters, queue gauges, latency summaries. Families are emitted in \
          sorted order with locale-independent number formatting, so equal snapshots are \
          byte-equal.")
    Term.(const run $ sock $ tcp $ counters $ watch)

(* Shed kinds: the server refused or expired the job without running it
   to an answer; the client may resubmit. `submit' reports these with
   exit 3 so scripts can tell "resubmit later" from hard failures. *)
let submit_shed_kinds = [ "overloaded"; "deadline_exceeded" ]
let exit_some_shed = 3

let submit_cmd =
  let sock, tcp = connect_args in
  let jobfile =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"JOBFILE"
          ~doc:"Same format as $(b,rpq batch): one job per line, <db-file> <regex> [key=value].")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Stamp an end-to-end deadline of $(docv) milliseconds on every job that has no \
             per-line $(b,deadline=) key. The clock starts at the server's admission: a job \
             still queued at expiry is shed with a retriable `deadline_exceeded' reply, and \
             a dispatched job has its wall and step budgets clamped to the remaining time.")
  in
  let priority_arg =
    Arg.(
      value
      & opt (some (enum (List.map (fun p -> (p, p)) Runner.Proto.priorities))) None
      & info [ "priority" ] ~docv:"CLASS"
          ~doc:
            "Stamp this priority class ($(b,batch), $(b,normal) or $(b,interactive)) on every \
             job that has no per-line $(b,priority=) key. The server dequeues weighted-fair \
             across classes and sheds $(b,batch) first under overload.")
  in
  let run jobfile sock tcp deadline priority trace log_level log_file =
    configure_trace trace;
    configure_log log_level log_file @@ fun () ->
    match (sock, tcp) with
    | None, None -> input_error "submit: need --connect PATH or --tcp PORT"
    | _ when (match deadline with Some ms -> ms < 0 | None -> false) ->
        input_error "submit: negative deadline"
    | _ -> begin
        match parse_jobfile jobfile with
        | Error e -> input_error "%s" e
        | Ok [] -> input_error "%s: no jobs" jobfile
        | Ok jobs -> begin
            let jobs =
              List.map
                (fun (j : Runner.Proto.job) ->
                  let deadline_ms =
                    match j.Runner.Proto.deadline_ms with Some _ as d -> d | None -> deadline
                  in
                  let priority =
                    if j.Runner.Proto.priority <> Runner.Proto.default_priority then
                      j.Runner.Proto.priority
                    else Option.value priority ~default:j.Runner.Proto.priority
                  in
                  { j with Runner.Proto.deadline_ms; priority })
                jobs
            in
            let connect () =
              match sock with
              | Some path -> Runner.Transport.connect_unix path
              | None -> Runner.Transport.connect_tcp (Option.get tcp)
            in
            match connect () with
            | exception Unix.Unix_error (e, _, _) ->
                input_error "submit: connect: %s" (Unix.error_message e)
            | (ic, oc) ->
                (* One client-side "request" span per job, its context
                   stamped into the wire job so the server parents its own
                   request span (and, transitively, the worker's solve
                   span) under ours: the client's trace id threads the
                   whole pipeline. *)
                let spans = Hashtbl.create 16 in
                List.iter
                  (fun (j : Runner.Proto.job) ->
                    let h =
                      Obs.Trace.open_span
                        ~args:[ ("id", Obs.Jtext.Str j.Runner.Proto.id) ]
                        "request"
                    in
                    Option.iter (fun h -> Hashtbl.replace spans j.Runner.Proto.id h) h;
                    let trace =
                      Option.map (fun h -> Obs.Trace.ctx_to_string (Obs.Trace.handle_ctx h)) h
                    in
                    output_string oc
                      (Runner.Proto.job_to_wire_json { j with Runner.Proto.trace });
                    output_char oc '\n')
                  jobs;
                flush oc;
                (* No half-close here: the server cancels a disconnected
                   client's queued jobs, so EOF from us may come only
                   after the last reply is in hand. *)
                let failures = ref 0 and shed = ref 0 in
                let rec read_n n =
                  if n = 0 then Ok ()
                  else
                    match input_line ic with
                    | exception End_of_file ->
                        Error
                          (Printf.sprintf "server closed the connection with %d replies outstanding"
                             n)
                    | line -> begin
                        match Runner.Proto.reply_of_json line with
                        | Error e -> Error (Printf.sprintf "bad reply line: %s" e)
                        | Ok r ->
                            (match Hashtbl.find_opt spans r.Runner.Proto.id with
                            | Some h ->
                                Hashtbl.remove spans r.Runner.Proto.id;
                                Obs.Trace.close_span
                                  ~args:
                                    [
                                      ( "outcome",
                                        Obs.Jtext.Str
                                          (Runner.Proto.verdict_name r.Runner.Proto.verdict) );
                                    ]
                                  h
                            | None -> ());
                            (match r.Runner.Proto.verdict with
                            | Runner.Proto.V_failed { kind; _ }
                              when List.mem kind submit_shed_kinds ->
                                incr shed
                            | Runner.Proto.V_failed _ -> incr failures
                            | _ -> ());
                            print_endline (Runner.Proto.reply_to_json r);
                            read_n (n - 1)
                      end
                in
                let res = read_n (List.length jobs) in
                close_in_noerr ic;
                close_out_noerr oc;
                (match res with
                | Error e ->
                    Hashtbl.iter
                      (fun _ h ->
                        Obs.Trace.close_span
                          ~args:[ ("outcome", Obs.Jtext.Str "lost") ]
                          h)
                      spans;
                    input_error "submit: %s" e
                | Ok () ->
                    if !failures > 0 then 1
                    else if !shed > 0 then exit_some_shed
                    else 0)
          end
      end
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a jobfile to a running $(b,rpq serve) over its socket and print one JSON \
          reply line per job, in settlement order. $(b,--deadline) and $(b,--priority) stamp \
          end-to-end deadlines and scheduling classes on the submitted jobs. With \
          $(b,--trace), each job runs under a client-side request span whose context rides \
          the wire: concatenating the client's and the server's trace files yields one \
          multi-process trace that $(b,rpq trace-check) validates end to end. Exits 0 when \
          every job settled without error, 3 when the only failures were retriable sheds \
          (`overloaded'/`deadline_exceeded' — resubmit later), 1 on any other job failure, \
          and 2 on transport or input errors.")
    Term.(
      const run $ jobfile $ sock $ tcp $ deadline_arg $ priority_arg $ trace_arg $ log_level_arg
      $ log_file_arg)

(* ---- journal: inspect / compact ---- *)

module Journal = Runner.Journal

let journal_file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"JOURNAL" ~doc:"Journal file.")

(* One line of JSON stats. [live_md5] digests the settled id -> (digest,
   reply) map in sorted order, so CI can assert in one comparison that a
   compaction changed the journal's bytes but not its meaning. *)
let journal_inspect_line path (rep : Journal.report) =
  let tbl = Journal.completed rep.Journal.entries in
  let live =
    List.sort compare (Hashtbl.fold (fun id (digest, reply) acc ->
        (id, digest, reply) :: acc) tbl [])
  in
  (* Per-entry certificate accounting: how many live settled answers carry
     a certificate, and how many of those re-check. [certs] counts
     presence; a gap between [certs] and [cert_valid] is a red flag that
     `compact' will refuse to drop history for. *)
  let certs, cert_valid =
    List.fold_left
      (fun (present, valid) (_, _, (reply : Runner.Proto.reply)) ->
        match reply.Runner.Proto.cert with
        | None -> (present, valid)
        | Some _ ->
            ( present + 1,
              valid + if Result.is_ok (Cert.Checker.check_reply reply) then 1 else 0 ))
      (0, 0) live
  in
  let live_md5 =
    Digest.to_hex
      (Digest.string
         (String.concat "\n"
            (List.map
               (fun (id, digest, reply) ->
                 Printf.sprintf "%s %s %s" id digest (Runner.Proto.reply_to_json reply))
               live)))
  in
  let started =
    List.length
      (List.filter (function Journal.Started _ -> true | _ -> false) rep.Journal.entries)
  in
  let module J = Runner.Proto.Json in
  J.to_string
    (J.Obj
       [
         ("path", J.Str path);
         ("version", J.Str (match rep.Journal.version with Journal.V1 -> "v1" | Journal.V2 -> "v2"));
         ("records", J.Int rep.Journal.records);
         ("started", J.Int started);
         ("done", J.Int (rep.Journal.records - started));
         ("live", J.Int (List.length live));
         ("certs", J.Int certs);
         ("cert_valid", J.Int cert_valid);
         ("cert_invalid", J.Int (certs - cert_valid));
         ("bytes", J.Int rep.Journal.bytes);
         ("dead_bytes", J.Int rep.Journal.dead_bytes);
         ("torn_bytes", J.Int rep.Journal.torn_bytes);
         ( "torn",
           match rep.Journal.torn with
           | None -> J.Null
           | Some Journal.Truncated -> J.Str "truncated"
           | Some Journal.Bad_checksum -> J.Str "bad-checksum" );
         ("last_seq", J.Int rep.Journal.last_seq);
         ("live_md5", J.Str live_md5);
       ])

let journal_inspect_cmd =
  let run file =
    match Journal.load file with
    | Error e -> input_error "%s" e
    | Ok rep ->
        print_endline (journal_inspect_line file rep);
        0
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Print one JSON line of journal statistics: format version, record/live counts, dead \
          and torn bytes, and a digest of the settled-answer map ($(b,live_md5)) that is \
          invariant under $(b,compact).")
    Term.(const run $ journal_file_arg)

let journal_compact_cmd =
  let force =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "Compact even when a live settled answer's certificate fails to re-check (a \
             warning per failing entry goes to stderr). Without $(b,--force) such a journal \
             is refused: compaction would discard the history needed to diagnose the bad \
             record.")
  in
  (* Compaction keeps only the last Done per id — after it, a bad settled
     answer can no longer be cross-checked against earlier records. So a
     live entry whose certificate fails re-check blocks compaction unless
     forced. *)
  let cert_failures file =
    match Journal.load file with
    | Error e -> Error e
    | Ok rep ->
        let tbl = Journal.completed rep.Journal.entries in
        Ok
          (List.sort compare
             (Hashtbl.fold
                (fun id (_, reply) acc ->
                  match Cert.Checker.check_reply reply with
                  | Ok () -> acc
                  | Error msg -> (id, msg) :: acc)
                tbl []))
  in
  let run file force =
    match cert_failures file with
    | Error e -> input_error "%s" e
    | Ok failures ->
        List.iter
          (fun (id, msg) ->
            prerr_endline
              (Printf.sprintf "rpq: journal compact: job %S: certificate fails re-check: %s" id
                 msg))
          failures;
        if failures <> [] && not force then
          input_error
            "journal compact: %d live entr%s failed certificate re-check (use --force to \
             compact anyway)"
            (List.length failures)
            (if List.length failures = 1 then "y" else "ies")
        else begin
          match Journal.compact file with
          | Error e -> input_error "%s" e
          | Ok s ->
              let module J = Runner.Proto.Json in
              print_endline
                (J.to_string
                   (J.Obj
                      [
                        ("path", J.Str file);
                        ("kept", J.Int s.Journal.kept);
                        ("dropped", J.Int s.Journal.dropped);
                        ("before_bytes", J.Int s.Journal.before_bytes);
                        ("after_bytes", J.Int s.Journal.after_bytes);
                      ]));
              0
        end
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Rewrite the journal to only the last $(i,Done) record per job id (atomic: temp + \
          fsync + rename), reclaiming dead bytes; also migrates v1 journals to the v2 \
          checksummed format. The settled-answer map is unchanged — $(b,inspect)'s \
          $(b,live_md5) agrees before and after. Refuses (exit 2) when a live settled \
          answer's certificate fails re-check, unless $(b,--force).")
    Term.(const run $ journal_file_arg $ force)

let journal_cmd =
  Cmd.group
    (Cmd.info "journal"
       ~doc:
         "Inspect or compact a write-ahead batch journal (see $(b,rpq batch --journal) and \
          $(b,rpq chaos)).")
    [ journal_inspect_cmd; journal_compact_cmd ]

(* ---- chaos: deterministic crash-recovery harness ---- *)

let m_chaos_crashes = Obs.Metrics.counter "chaos.crashes"

let status_to_string = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

(* Reply lines a child [rpq batch] wrote to its redirected stdout. *)
let read_replies path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun line ->
         match Runner.Proto.reply_of_json line with
         | Ok r -> r
         | Error e ->
             prerr_endline (Printf.sprintf "rpq: chaos: bad reply line in %s: %s" path e);
             exit 1)

(* Volatile fields zeroed (trace contexts embed pids), so
   equal-modulo-time replies print identically and two chaos runs with
   the same seed diff byte-for-byte. *)
let normalized_reply (r : Runner.Proto.reply) =
  Runner.Proto.reply_to_json { r with Runner.Proto.wall_s = 0.0; stages = []; trace = None }

(* Children inherit our environment minus any ambient fault, trace, or
   flight-recorder plan — the chaos schedule owns fault injection, and
   [flight] arms the child's own black box at a path this harness will
   assert on after each injected crash. *)
let chaos_child_env ?flight faults =
  let keep =
    Array.to_list (Unix.environment ())
    |> List.filter (fun kv ->
           not
             (String.starts_with ~prefix:"RPQ_FAULTS=" kv
             || String.starts_with ~prefix:"RPQ_TRACE=" kv
             || String.starts_with ~prefix:"RPQ_FLIGHT=" kv))
  in
  let extra =
    ("RPQ_FAULTS=" ^ faults)
    :: (match flight with Some p -> [ "RPQ_FLIGHT=" ^ p ] | None -> [])
  in
  Array.of_list (extra @ keep)

let rec chaos_waitpid pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> chaos_waitpid pid

(* ---- chaos --churn: client churn over a live socket server ----

   The harness starts this very binary as `rpq serve --listen ...` with a
   content-invariant net fault armed ([net:partial_write:P] halves every
   socket flush — the suffix stays buffered, so payloads are unchanged),
   then drives a seeded schedule at it: victims connect, submit, and
   vanish mid-stream; two survivors (one a slow reader) split every job
   and read their replies; a finishing client resubmits every job so the
   journal's settled map is total despite the cancellations. Assertions:
   every reply a surviving client reads carries a valid certificate, the
   server drains cleanly on SIGTERM (exit 0, journal lock released), and
   the journal's settled answers equal a churn-free reference serve run
   modulo wall-clock fields. Everything printed is a pure function of the
   seed and the jobfile, so two runs diff byte-identically. *)
let run_churn ~jobs ~kills ~seed ~net_period ~hedge_after ~(cfg : Runner.config) =
  let die fmt =
    Printf.ksprintf
      (fun msg ->
        prerr_endline ("rpq: chaos: " ^ msg);
        exit 1)
      fmt
  in
  (* A victim's vanished reader must surface as EPIPE in the server, and
     a vanished server as EPIPE here — never as SIGPIPE. *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> ());
  let njobs = List.length jobs in
  let job_arr = Array.of_list jobs in
  let tmpdir = Filename.temp_file "rpq_churn" "" in
  Sys.remove tmpdir;
  Unix.mkdir tmpdir 0o700;
  let sock = Filename.concat tmpdir "churn.sock" in
  let journal = Filename.concat tmpdir "churn.journal" in
  let ref_sock = Filename.concat tmpdir "ref.sock" in
  let ref_journal = Filename.concat tmpdir "ref.journal" in
  let cleanup () =
    List.iter
      (fun f -> if Sys.file_exists f then Sys.remove f)
      [ sock; journal; journal ^ ".tmp"; ref_sock; ref_journal; ref_journal ^ ".tmp" ];
    match Unix.rmdir tmpdir with
    | () -> ()
    | exception Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let start_server ~faults ~hedged ~sock ~journal =
    let argv =
      [
        Sys.executable_name; "serve";
        "--listen"; sock;
        "--journal"; journal;
        "--workers"; string_of_int cfg.Runner.workers;
        "--retries"; string_of_int cfg.Runner.retries;
        "--queue-cap"; string_of_int cfg.Runner.queue_cap;
        "--cache-entries"; "256";
        "--client-inflight"; "4";
        "--drain-grace"; "30";
      ]
      @ (match cfg.Runner.job_timeout with
        | Some s -> [ "--job-timeout"; string_of_float s ]
        | None -> [])
      (* The churned server hedges; the reference never does. The final
         journal diff is then exactly the claim the hedge design makes:
         under a deterministic fault plan, hedged and unhedged serving
         settle every job identically (modulo wall clock). *)
      @ (match if hedged then hedge_after else None with
        | Some s -> [ "--hedge-after"; string_of_float s ]
        | None -> [])
    in
    let pid =
      Unix.create_process_env Sys.executable_name (Array.of_list argv)
        (chaos_child_env faults) Unix.stdin Unix.stderr Unix.stderr
    in
    (* Poll for the socket file rather than blocking in waitpid: reap
       only if the child is already gone. *)
    let rec wait_sock n =
      if Sys.file_exists sock then ()
      else if n > 400 then die "server never created its socket at %s" sock
      else begin
        (match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ -> ()
        | _, st -> die "server died before listening (%s)" (status_to_string st)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        Unix.sleepf 0.025;
        wait_sock (n + 1)
      end
    in
    wait_sock 0;
    pid
  in
  let connect sock =
    let rec go n =
      match Runner.Transport.connect_unix sock with
      | conn -> conn
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when n < 200 ->
          Unix.sleepf 0.025;
          go (n + 1)
    in
    go 0
  in
  let send_job oc (j : Runner.Proto.job) =
    output_string oc (Runner.Proto.job_to_json j);
    output_char oc '\n';
    flush oc
  in
  let read_reply ic =
    match input_line ic with
    | exception End_of_file -> die "server closed a surviving client's connection"
    | line -> begin
        match Runner.Proto.reply_of_json line with
        | Ok r -> r
        | Error e -> die "bad reply line from server: %s" e
      end
  in
  let check_cert (r : Runner.Proto.reply) =
    (match r.Runner.Proto.verdict with
    | Runner.Proto.V_failed _ ->
        die "job %S came back failed: %s" r.Runner.Proto.id (normalized_reply r)
    | Runner.Proto.V_exact _ | Runner.Proto.V_bounded _ -> ());
    match Cert.Checker.check_reply r with
    | Ok () -> ()
    | Error msg ->
        die "reply %S carries an invalid certificate: %s" r.Runner.Proto.id msg
  in
  Printf.printf "chaos churn: seed %d, %d jobs, %d kills, net:partial_write:%d%s\n" seed njobs
    kills net_period
    (match hedge_after with
    | Some s -> Printf.sprintf ", hedge-after %g" s
    | None -> "");
  let server =
    start_server
      ~faults:(Printf.sprintf "net:partial_write:%d" net_period)
      ~hedged:true ~sock ~journal
  in
  (* Same LCG construction as the crash schedule: high bits of a 48-bit
     stream, printed up front so two runs of one seed diff clean. *)
  let lcg = ref ((seed land max_int) lxor 0x2545F4914F6CDD1D) in
  let draw bound =
    lcg := ((!lcg * 25214903917) + 11) land 0xFFFFFFFFFFFF;
    !lcg lsr 16 mod bound
  in
  for k = 1 to kills do
    let nsub = 1 + draw (min 4 njobs) in
    let start = draw njobs in
    let read_first = draw 2 = 1 in
    Printf.printf "kill %d: victim submits %d job(s) from index %d%s\n" k nsub start
      (if read_first then ", reads one reply" else "");
    let ic, oc = connect sock in
    for i = 0 to nsub - 1 do
      send_job oc job_arr.((start + i) mod njobs)
    done;
    if read_first then check_cert (read_reply ic);
    (* Vanish mid-stream: queued jobs get cancelled server-side, inflight
       ones settle into journal and cache with nobody to deliver to. *)
    close_out_noerr oc;
    close_in_noerr ic
  done;
  (* Survivors: two clients split every job; the second reads slowly.
     Each must get exactly its replies, every certificate valid. *)
  let ic1, oc1 = connect sock in
  let ic2, oc2 = connect sock in
  Array.iteri (fun i j -> send_job (if i mod 2 = 0 then oc1 else oc2) j) job_arr;
  let n1 = (njobs + 1) / 2 in
  let n2 = njobs / 2 in
  for _ = 1 to n1 do
    check_cert (read_reply ic1)
  done;
  for _ = 1 to n2 do
    Unix.sleepf 0.002;
    check_cert (read_reply ic2)
  done;
  close_out_noerr oc1;
  close_in_noerr ic1;
  close_out_noerr oc2;
  close_in_noerr ic2;
  Printf.printf "survivors: %d + %d replies, all certificates valid\n" n1 n2;
  (* Finisher: resubmit everything under the original ids so the settled
     map is total; cancelled jobs compute now, settled ones come from the
     certificate-gated cache. *)
  let icf, ocf = connect sock in
  Array.iter (send_job ocf) job_arr;
  for _ = 1 to njobs do
    check_cert (read_reply icf)
  done;
  close_out_noerr ocf;
  close_in_noerr icf;
  Unix.kill server Sys.sigterm;
  (match chaos_waitpid server with
  | Unix.WEXITED 0 -> ()
  | st -> die "server did not drain cleanly on SIGTERM (%s)" (status_to_string st));
  print_endline "server drained cleanly on SIGTERM";
  (* Reference: same jobs, one client, no churn, no faults. *)
  let ref_server =
    start_server ~faults:"off" ~hedged:false ~sock:ref_sock ~journal:ref_journal
  in
  let icr, ocr = connect ref_sock in
  Array.iter (send_job ocr) job_arr;
  for _ = 1 to njobs do
    check_cert (read_reply icr)
  done;
  close_out_noerr ocr;
  close_in_noerr icr;
  Unix.kill ref_server Sys.sigterm;
  (match chaos_waitpid ref_server with
  | Unix.WEXITED 0 -> ()
  | st -> die "reference server did not drain cleanly (%s)" (status_to_string st));
  let settled path =
    match Runner.Journal.load path with
    | Error e -> die "journal %s refuses to load: %s" path e
    | Ok rep ->
        let tbl = Runner.Journal.completed rep.Runner.Journal.entries in
        List.sort
          (fun (a, _, _) (b, _, _) -> compare a b)
          (Hashtbl.fold (fun id (digest, reply) acc -> (id, digest, reply) :: acc) tbl [])
  in
  let churned = settled journal in
  let reference = settled ref_journal in
  let diffs = ref 0 in
  let rec cmp a b =
    match (a, b) with
    | [], [] -> ()
    | (ida, _, _) :: ta, [] ->
        Printf.printf "diff %s: settled only under churn\n" ida;
        incr diffs;
        cmp ta []
    | [], (idb, _, _) :: tb ->
        Printf.printf "diff %s: settled only in reference\n" idb;
        incr diffs;
        cmp [] tb
    | (ida, dga, ra) :: ta, (idb, dgb, rb) :: tb ->
        if ida = idb then begin
          if dga <> dgb || not (Runner.Proto.reply_equal_ignoring_time ra rb) then begin
            Printf.printf "diff %s:\n  reference %s\n  churned   %s\n" ida
              (normalized_reply rb) (normalized_reply ra);
            incr diffs
          end;
          cmp ta tb
        end
        else if ida < idb then begin
          Printf.printf "diff %s: settled only under churn\n" ida;
          incr diffs;
          cmp ta b
        end
        else begin
          Printf.printf "diff %s: settled only in reference\n" idb;
          incr diffs;
          cmp a tb
        end
  in
  cmp churned reference;
  List.iter (fun (_, _, r) -> print_endline (normalized_reply r)) churned;
  Printf.printf "chaos churn: %d jobs, %d kills, diffs: %d\n" njobs kills !diffs;
  if !diffs = 0 then 0 else 1

(* The harness re-executes this very binary ([batch] in a child process)
   with RPQ_FAULTS armed at a seeded crash site, so the supervisor truly
   dies mid-write (_exit 70, no unwinding) and recovery runs against
   whatever bytes made it to the journal — the closest deterministic
   approximation of a power cut the test harness can stage. *)
let chaos_cmd =
  let jobs_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "jobs" ] ~docv:"FILE" ~doc:"Jobfile, in $(b,rpq batch) format.")
  in
  let crashes_arg =
    Arg.(
      value & opt int 8
      & info [ "crashes" ] ~docv:"N" ~doc:"Number of crashed supervisor runs to inject.")
  in
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"S"
          ~doc:"Seed for the crash schedule (site and hit count of each injected crash).")
  in
  let churn_arg =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:
            "Client-churn mode: instead of crashing batch supervisors, run a live \
             $(b,rpq serve --listen) server (with a content-invariant $(b,net:partial_write) \
             fault armed) and drive a seeded schedule of clients at it — $(b,--kills) victims \
             that vanish mid-stream, two survivors (one reading slowly) that must get exactly \
             their certificate-valid replies, and a finishing client that resubmits every \
             job. Asserts a clean SIGTERM drain and a final journal equal to a churn-free \
             reference run (modulo wall-clock fields).")
  in
  let kills_arg =
    Arg.(
      value & opt int 8
      & info [ "kills" ] ~docv:"N"
          ~doc:"Client kills to inject in $(b,--churn) mode.")
  in
  let net_period_arg =
    Arg.(
      value & opt int 3
      & info [ "net-period" ] ~docv:"P"
          ~doc:"Period of the $(b,net:partial_write) fault armed in the churn server.")
  in
  let hedge_after_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-after" ] ~docv:"SECONDS"
          ~doc:
            "Arm certificate-gated hedging in the $(b,--churn) server (the reference server \
             stays unhedged), so the final journal diff asserts that hedged and unhedged \
             serving settle every job identically modulo wall clock.")
  in
  let run jobfile crashes seed workers retries queue_cap job_timeout churn kills net_period
      hedge_after =
    match runner_config workers retries queue_cap job_timeout Runner.Journal.Per_line None with
    | Error e -> input_error "chaos: %s" e
    | Ok cfg -> begin
        match parse_jobfile jobfile with
        | Error e -> input_error "%s" e
        | Ok [] -> input_error "%s: no jobs" jobfile
        | Ok _ when crashes < 0 -> input_error "chaos: negative crash count"
        | Ok _ when churn && kills < 0 -> input_error "chaos: negative kill count"
        | Ok _ when churn && net_period < 1 -> input_error "chaos: net period must be positive"
        | Ok _ when (match hedge_after with Some s -> s < 0.0 | None -> false) ->
            input_error "chaos: negative hedge delay"
        | Ok jobs when churn -> run_churn ~jobs ~kills ~seed ~net_period ~hedge_after ~cfg
        | Ok jobs ->
            let journal = Filename.temp_file "rpq_chaos" ".journal" in
            let out_file = Filename.temp_file "rpq_chaos" ".jsonl" in
            let flight_file = Filename.temp_file "rpq_chaos" ".flight" in
            Sys.remove journal;
            Sys.remove flight_file;
            let cleanup () =
              List.iter
                (fun f -> if Sys.file_exists f then Sys.remove f)
                [ journal; journal ^ ".tmp"; out_file; flight_file; flight_file ^ ".tmp" ]
            in
            Fun.protect ~finally:cleanup @@ fun () ->
            let run_child ?flight ~faults ~with_journal ~out () =
              let argv =
                [ Sys.executable_name; "batch"; jobfile ]
                @ (if with_journal then [ "--journal"; journal ] else [])
                @ [
                    "--workers"; string_of_int cfg.Runner.workers;
                    "--retries"; string_of_int cfg.Runner.retries;
                    "--queue-cap"; string_of_int cfg.Runner.queue_cap;
                    "--journal-sync"; "per_line";
                  ]
                @ (match cfg.Runner.job_timeout with
                  | Some s -> [ "--job-timeout"; string_of_float s ]
                  | None -> [])
              in
              let fd_out = Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
              let pid =
                Unix.create_process_env Sys.executable_name (Array.of_list argv)
                  (chaos_child_env ?flight faults) Unix.stdin fd_out Unix.stderr
              in
              Unix.close fd_out;
              let rec wait () =
                match Unix.waitpid [] pid with
                | _, status -> status
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
              in
              wait ()
            in
            let die fmt =
              Printf.ksprintf
                (fun msg ->
                  prerr_endline ("rpq: chaos: " ^ msg);
                  exit 1)
                fmt
            in
            (* Every answer that survived a crash must carry a certificate
               that re-checks: a settled record whose evidence does not
               hold is exactly the corruption the journal + certificate
               machinery exists to rule out. *)
            let load_settled () =
              match Journal.load journal with
              | Error e -> die "crash left a journal that refuses to load: %s" e
              | Ok rep ->
                  let tbl = Journal.completed rep.Journal.entries in
                  Hashtbl.iter
                    (fun id (_, reply) ->
                      match Cert.Checker.check_reply reply with
                      | Ok () -> ()
                      | Error msg ->
                          die "settled job %S survived a crash with a bad certificate: %s" id msg)
                    tbl;
                  Hashtbl.length tbl
            in
            (* The library's crash hook dumps the flight recorder before
               _exit 70, so every injected crash must leave a parseable
               black box at the path we arm the child with. *)
            let validate_flight () =
              match In_channel.with_open_text flight_file In_channel.input_all with
              | exception Sys_error _ -> die "crash left no flight dump at %s" flight_file
              | contents -> begin
                  match Runner.Proto.Json.parse contents with
                  | Error e -> die "crash left an unparseable flight dump: %s" e
                  | Ok v ->
                      let get f conv = Option.bind (Runner.Proto.Json.member f v) conv in
                      (match get "v" Runner.Proto.Json.to_int_opt with
                      | Some 1 -> ()
                      | _ -> die "flight dump lacks version 1");
                      (match get "reason" Runner.Proto.Json.to_str_opt with
                      | Some r when String.starts_with ~prefix:"crash:" r -> ()
                      | Some r -> die "flight dump has unexpected reason %S" r
                      | None -> die "flight dump lacks a reason");
                      (match Runner.Proto.Json.member "events" v with
                      | Some (Runner.Proto.Json.List _) -> ()
                      | _ -> die "flight dump lacks an events array");
                      Sys.remove flight_file
                end
            in
            (* Reference: the same batch, no journal, no faults. *)
            (match run_child ~faults:"off" ~with_journal:false ~out:out_file () with
            | Unix.WEXITED (0 | 1) -> ()
            | st -> die "reference run died unexpectedly (%s)" (status_to_string st));
            let reference = read_replies out_file in
            (* Seeded schedule: same LCG construction as Resilience.Faults
               (high bits of a 48-bit stream). Printed up front so two runs
               of the same seed diff byte-identically. *)
            (* [journal.mid_compact] is excluded from the random schedule:
               whether auto-compaction runs at all depends on journal
               geometry, so a drawn hit count would usually never fire and
               the round would inject nothing. The unit suite covers that
               site directly. *)
            let sites =
              Array.of_list
                (List.filter (fun s -> s <> "journal.mid_compact") Faults.crash_sites)
            in
            let lcg = ref ((seed land max_int) lxor 0x2545F4914F6CDD1D) in
            let draw bound =
              lcg := ((!lcg * 25214903917) + 11) land 0xFFFFFFFFFFFF;
              (!lcg lsr 16) mod bound
            in
            Printf.printf "chaos: seed %d, %d planned crashes, %d jobs\n" seed crashes
              (List.length jobs);
            let settled_floor = ref 0 in
            let flight_dumps = ref 0 in
            let fired = ref 0 in
            for i = 1 to crashes do
              let remaining = List.length jobs - !settled_floor in
              if remaining = 0 then
                (* Everything is settled: no append or dispatch can happen,
                   so no crash site can fire — injecting would be vacuous. *)
                Printf.printf "crash %d: skipped (journal already complete)\n" i
              else begin
                let site = sites.(draw (Array.length sites)) in
                (* Hit counts bounded by the work actually left — ~2 journal
                   appends (Started/Done) per unsettled job, at least one
                   dispatch each — so every drawn site count is reachable
                   and the child really dies mid-write. *)
                let bound =
                  if site = "pool.post_dispatch" then remaining else 2 * remaining
                in
                let hits = 1 + draw bound in
                let spec = Printf.sprintf "crash:%s:%d" site hits in
                Printf.printf "crash %d: %s\n" i spec;
                (match
                   run_child ~flight:flight_file ~faults:spec ~with_journal:true ~out:out_file ()
                 with
                | Unix.WEXITED 70 ->
                    incr fired;
                    Obs.Metrics.incr m_chaos_crashes;
                    validate_flight ();
                    incr flight_dumps
                | Unix.WEXITED (0 | 1) ->
                    (* The site never reached its hit count: the batch simply
                       completed. Later resumes reuse its journal. *)
                    ()
                | st -> die "crashed run %d died unexpectedly (%s)" i (status_to_string st));
                let settled = load_settled () in
                Printf.eprintf "chaos: after crash %d: %d settled\n%!" i settled;
                if settled < !settled_floor then
                  die "settled answers went backwards (%d after %d): journal lost data" settled
                    !settled_floor;
                settled_floor := settled
              end
            done;
            if crashes > 0 && !fired = 0 then
              die "no crash site ever fired: the schedule injected nothing";
            (* Final resume, fault-free: must converge and agree with the
               reference modulo wall_s/stages. *)
            (match run_child ~faults:"off" ~with_journal:true ~out:out_file () with
            | Unix.WEXITED 0 -> ()
            | Unix.WEXITED 1 -> die "final resume settled with structured failures"
            | st -> die "final resume died (%s)" (status_to_string st));
            let final = read_replies out_file in
            if List.length final <> List.length reference then
              die "final resume emitted %d replies, reference %d" (List.length final)
                (List.length reference);
            List.iter
              (fun (r : Runner.Proto.reply) ->
                match Cert.Checker.check_reply r with
                | Ok () -> ()
                | Error msg ->
                    die "final reply %S carries an invalid certificate: %s" r.Runner.Proto.id msg)
              final;
            let diffs =
              List.fold_left2
                (fun acc (r : Runner.Proto.reply) (f : Runner.Proto.reply) ->
                  if Runner.Proto.reply_equal_ignoring_time r f then acc
                  else begin
                    Printf.printf "diff %s:\n  reference %s\n  resumed   %s\n" r.Runner.Proto.id
                      (normalized_reply r) (normalized_reply f);
                    acc + 1
                  end)
                0 reference final
            in
            List.iter (fun r -> print_endline (normalized_reply r)) final;
            Printf.printf "chaos: %d flight dumps validated\n" !flight_dumps;
            Printf.printf "chaos: %d jobs, %d of %d planned crashes fired, diffs: %d\n"
              (List.length jobs) !fired crashes diffs;
            if diffs = 0 then 0 else 1
      end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Deterministic crash-recovery harness: run the jobfile as $(b,rpq batch) in a child \
          process over and over, crashing the supervisor at seeded fault-injection sites \
          ($(b,crash:SITE:N) via RPQ_FAULTS, _exit 70 mid-write), resuming from the journal \
          each time, and finally asserting that a fault-free resume converges to replies \
          byte-identical to an uncrashed reference run (modulo wall-clock fields). Exits 0 \
          iff there are zero diffs.")
    Term.(
      const run $ jobs_arg $ crashes_arg $ seed_arg $ workers_arg $ retries_arg $ queue_cap_arg
      $ job_timeout_arg $ churn_arg $ kills_arg $ net_period_arg $ hedge_after_arg)

(* ---- trace-check ---- *)

(* CI validator for trace files; all the checking lives in
   [Runner.Trace_check] so tests exercise the same code path. *)
let trace_check_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Trace file (.jsonl event stream — possibly the concatenation of several \
             processes' files — or Chrome JSON array).")
  in
  let run file =
    match Runner.Trace_check.check_file file with
    | Error msg ->
        prerr_endline ("rpq: error: " ^ msg);
        exit_input_error
    | Ok st ->
        Printf.printf
          "trace-check: %s: %d events, %d spans, %d processes, %d traces, nesting OK\n" file
          st.Runner.Trace_check.events st.Runner.Trace_check.spans
          st.Runner.Trace_check.processes st.Runner.Trace_check.traces;
        0
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a trace file written by $(b,--trace) or $(b,RPQ_TRACE): every event must \
          parse, spans must nest within their process, and cross-process parent links \
          ($(b,psid)) must resolve to containing spans in the same trace — orphan spans \
          reject the file (used by CI on traced batch and serve runs).")
    Term.(const run $ file)

let () =
  Obs.Trace.configure_from_env ();
  Obs.Log.configure_from_env ();
  Obs.Flight.configure_from_env ();
  at_exit Obs.Trace.finish;
  at_exit Obs.Log.close_file;
  (* With a flight recorder armed (RPQ_FLIGHT), a fatal signal dumps the
     black box before dying, like the in-library crash sites do. Pool
     workers reset these to defaults and disable their ring, and serve
     installs its own graceful-drain handlers on top. *)
  if Obs.Flight.enabled () then
    List.iter
      (fun (sg, name) ->
        Sys.set_signal sg
          (Sys.Signal_handle
             (fun _ ->
               Obs.Flight.dump ~reason:("signal:" ^ name) ();
               exit 1)))
      [ (Sys.sigterm, "term"); (Sys.sigint, "int") ];
  let doc = "Resilience of regular path queries (PODS 2025 reproduction)" in
  let info = Cmd.info "rpq" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            classify_cmd;
            report_cmd;
            solve_cmd;
            gen_cmd;
            st_solve_cmd;
            reduce_cmd;
            words_cmd;
            gadgets_cmd;
            certify_cmd;
            dot_cmd;
            batch_cmd;
            serve_cmd;
            submit_cmd;
            stats_cmd;
            journal_cmd;
            chaos_cmd;
            trace_check_cmd;
          ]))
