(* Lint driver: whole-program analysis of lib/ and bin/ — leaf rules,
   layering contract, module cycles, transitive capability reach.

   Usage: rpq_lint [--json | --graph | --explain RULE] [REPO_ROOT]

   Without a root argument, walks up from the current directory to the
   nearest dune-project. Exit codes: 0 clean, 1 findings (for --graph:
   dependency cycles), 2 analyzer or usage errors (unreadable tree,
   unparseable dune file). *)

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_root parent

let usage () =
  prerr_endline "usage: rpq_lint [--json | --graph | --explain RULE] [REPO_ROOT]";
  exit 2

type mode = Text | Json | Graph | Explain of string

let () =
  let mode, root_arg =
    match Array.to_list Sys.argv with
    | [ _ ] -> (Text, None)
    | [ _; "--json" ] -> (Json, None)
    | [ _; "--graph" ] -> (Graph, None)
    | [ _; "--explain"; rule ] -> (Explain rule, None)
    | [ _; "--json"; dir ] -> (Json, Some dir)
    | [ _; "--graph"; dir ] -> (Graph, Some dir)
    | [ _; "--explain"; rule; dir ] -> (Explain rule, Some dir)
    | [ _; dir ] when String.length dir > 0 && dir.[0] <> '-' -> (Text, Some dir)
    | _ -> usage ()
  in
  (match mode with
  | Explain rule -> (
      match Lint.explain rule with
      | Some text ->
          Printf.printf "%s\n\n%s\n" rule text;
          exit 0
      | None ->
          Printf.eprintf "rpq_lint: unknown rule %S; known rules:\n" rule;
          List.iter (fun r -> Printf.eprintf "  %s\n" r) Lint.all_rules;
          exit 2)
  | Text | Json | Graph -> ());
  let root =
    match root_arg with
    | Some dir -> Some dir
    | None -> find_root (Sys.getcwd ())
  in
  match root with
  | None ->
      prerr_endline "rpq_lint: no dune-project above the current directory";
      exit 2
  | Some root -> (
      match Lint.analyze ~root ~policy:Lint_policy.default with
      | exception Lint.Lint_error (file, line, msg) ->
          Printf.eprintf "rpq_lint: %s\n" (Lint.error_to_string (file, line, msg));
          exit 2
      | analysis -> (
          let findings =
            Lint.filter_allowlist ~allowlist:Lint.default_allowlist analysis.Lint.findings
          in
          let analysis = { analysis with Lint.findings } in
          match mode with
          | Json ->
              print_string (Lint.analysis_json analysis);
              if findings <> [] then exit 1
          | Graph ->
              print_string (Lint.analysis_dot analysis);
              let cycles =
                List.filter (fun f -> f.Lint.rule = Lint.rule_cycle) findings
              in
              List.iter
                (fun f -> Printf.eprintf "%s\n" (Lint.finding_to_string f))
                cycles;
              if cycles <> [] then exit 1
          | Text ->
              List.iter (fun f -> print_endline (Lint.finding_to_string f)) findings;
              if findings = [] then print_endline "rpq_lint: clean"
              else begin
                Printf.printf "rpq_lint: %d finding(s)\n" (List.length findings);
                exit 1
              end
          | Explain _ -> ()))
