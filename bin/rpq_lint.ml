(* Lint driver: scans lib/ for banned constructs and missing interfaces.
   Usage: rpq_lint [REPO_ROOT]. Without an argument, walks up from the
   current directory to the nearest dune-project. Exit code 1 on findings. *)

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_root parent

let () =
  let root =
    match Array.to_list Sys.argv with
    | [ _; dir ] -> Some dir
    | [ _ ] -> find_root (Sys.getcwd ())
    | _ ->
        prerr_endline "usage: rpq_lint [REPO_ROOT]";
        exit 2
  in
  match root with
  | None ->
      prerr_endline "rpq_lint: no dune-project above the current directory";
      exit 2
  | Some root ->
      let lib_root = Filename.concat root "lib" in
      if not (Sys.file_exists lib_root && Sys.is_directory lib_root) then begin
        Printf.eprintf "rpq_lint: %s is not a directory\n" lib_root;
        exit 2
      end;
      let findings =
        Lint.filter_allowlist ~allowlist:Lint.default_allowlist
          (Lint.scan_lib ~lib_root)
      in
      List.iter (fun f -> print_endline (Lint.finding_to_string f)) findings;
      if findings = [] then print_endline "rpq_lint: clean"
      else begin
        Printf.printf "rpq_lint: %d finding(s)\n" (List.length findings);
        exit 1
      end
