(* rpq_certcheck — independent, offline verifier for RPQ reply streams.

   Reads line-delimited JSON replies (rpq solve --json / batch / serve
   output, or classification records from rpq certify --json) and
   re-derives each answer's validity from its embedded certificate alone.
   This binary deliberately links only the [cert] library — no solver
   code — so it audits solver output without sharing any of the code
   under audit; rpq_lint's exec-dep-contract rule keeps it that way.

   Exit codes: 0 every line valid, 2 any invalid line or I/O error. *)

let usage () =
  prerr_string
    "usage: rpq_certcheck [FILE ...]\n\
     \n\
     Validates a stream of JSON replies by re-checking each line's answer\n\
     certificate (cut weak duality, hitting-set coverage + LP duality,\n\
     gadget transcript replay). Reads stdin when no file is given; '-'\n\
     names stdin explicitly. Diagnostics are file:line prefixed.\n\
     \n\
     Exit codes: 0 all lines valid; 2 any invalid line or I/O error.\n"

type totals = { mutable lines : int; mutable bad : int; mutable kinds : (string * int) list }

let bump t what =
  t.kinds <-
    (match List.assoc_opt what t.kinds with
    | Some n -> (what, n + 1) :: List.remove_assoc what t.kinds
    | None -> (what, 1) :: t.kinds)

let check_channel totals ~path ic =
  let lineno = ref 0 in
  try
    while true do
      let line = input_line ic in
      incr lineno;
      if String.trim line <> "" then begin
        totals.lines <- totals.lines + 1;
        match Cert.Checker.check_line line with
        | Ok what -> bump totals what
        | Error msg ->
            totals.bad <- totals.bad + 1;
            Printf.eprintf "%s:%d: %s\n" path !lineno msg
      end
    done
  with End_of_file -> ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.exists (fun a -> a = "-h" || a = "--help") args then begin
    usage ();
    exit 0
  end;
  (match List.find_opt (fun a -> String.length a > 1 && a.[0] = '-') args with
  | Some flag ->
      Printf.eprintf "rpq_certcheck: unknown option %s\n" flag;
      usage ();
      exit 2
  | None -> ());
  let totals = { lines = 0; bad = 0; kinds = [] } in
  let ok_io = ref true in
  (match args with
  | [] -> check_channel totals ~path:"<stdin>" stdin
  | files ->
      List.iter
        (fun file ->
          if file = "-" then check_channel totals ~path:"<stdin>" stdin
          else
            match open_in file with
            | ic ->
                Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
                    check_channel totals ~path:file ic)
            | exception Sys_error msg ->
                ok_io := false;
                Printf.eprintf "rpq_certcheck: %s\n" msg)
        files);
  let breakdown =
    match List.sort compare totals.kinds with
    | [] -> ""
    | kinds ->
        Printf.sprintf " (%s)"
          (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%d %s" n k) kinds))
  in
  Printf.printf "rpq_certcheck: %d line(s), %d invalid%s\n" totals.lines totals.bad breakdown;
  exit (if totals.bad = 0 && !ok_io then 0 else 2)
