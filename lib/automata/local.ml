type profile = {
  starts : Cset.t;
  ends : Cset.t;
  pairs : (char * char) list;
  has_eps : bool;
}

(* All computations are done on the trimmed automaton so that every
   transition is on some accepting run (proof of Lemma B.4). *)
let profile a =
  let a = Nfa.trim a in
  if a.Nfa.nstates = 0 then { starts = Cset.empty; ends = Cset.empty; pairs = []; has_eps = false }
  else begin
    let letter_out = Array.make a.Nfa.nstates [] in
    let eps_out = Array.make a.Nfa.nstates [] in
    let eps_in = Array.make a.Nfa.nstates [] in
    let letter_in = Array.make a.Nfa.nstates [] in
    List.iter
      (fun (s, sym, s') ->
        match sym with
        | Nfa.Eps ->
            eps_out.(s) <- s' :: eps_out.(s);
            eps_in.(s') <- s :: eps_in.(s')
        | Nfa.Ch c ->
            letter_out.(s) <- (c, s') :: letter_out.(s);
            letter_in.(s') <- (c, s) :: letter_in.(s'))
      a.Nfa.trans;
    let closure adj states =
      let seen = Array.make a.Nfa.nstates false in
      let rec go s =
        if not seen.(s) then begin
          seen.(s) <- true;
          List.iter go adj.(s)
        end
      in
      List.iter go states;
      seen
    in
    (* Letters on transitions leaving the forward ε-closure of a state set. *)
    let letters_leaving states =
      let seen = closure eps_out states in
      let acc = ref Cset.empty in
      Array.iteri
        (fun s in_set ->
          if in_set then List.iter (fun (c, _) -> acc := Cset.add c !acc) letter_out.(s))
        seen;
      !acc
    in
    let letters_entering states =
      let seen = closure eps_in states in
      let acc = ref Cset.empty in
      Array.iteri
        (fun s in_set ->
          if in_set then List.iter (fun (c, _) -> acc := Cset.add c !acc) letter_in.(s))
        seen;
      !acc
    in
    let starts = letters_leaving a.Nfa.initial in
    let ends = letters_entering a.Nfa.final in
    (* Π: for each letter a, the letters reachable right after an a-transition. *)
    let pairs = ref [] in
    Cset.iter
      (fun c ->
        let heads =
          List.filter_map
            (fun (s, sym, s') -> if sym = Nfa.Ch c then (ignore s; Some s') else None)
            a.Nfa.trans
        in
        if heads <> [] then
          Cset.iter (fun c' -> pairs := (c, c') :: !pairs) (letters_leaving heads))
      a.Nfa.alphabet;
    { starts; ends; pairs = List.sort_uniq compare !pairs; has_eps = Nfa.nullable a }
  end

let ro_enfa_of_profile sigma p =
  (* States: for the i-th letter of Σ, s_in = 2i and s_out = 2i + 1;
     plus one extra state for ε if needed (Lemma B.4). *)
  let alpha = Array.of_list (Cset.elements sigma) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i c -> Hashtbl.add index c i) alpha;
  let idx c =
    match Hashtbl.find_opt index c with
    | Some i -> i
    | None -> Invariant.internal_error "Local.ro_enfa_of_profile: letter %C not in \xce\xa3" c
  in
  let s_in c = 2 * idx c and s_out c = (2 * idx c) + 1 in
  let nletters = Array.length alpha in
  let eps_state = 2 * nletters in
  let nstates = (2 * nletters) + if p.has_eps then 1 else 0 in
  let trans = ref [] in
  Array.iter (fun c -> trans := (s_in c, Nfa.Ch c, s_out c) :: !trans) alpha;
  List.iter (fun (c, c') -> trans := (s_out c, Nfa.Eps, s_in c') :: !trans) p.pairs;
  let initial =
    Cset.fold (fun c acc -> s_in c :: acc) p.starts (if p.has_eps then [ eps_state ] else [])
  in
  let final =
    Cset.fold (fun c acc -> s_out c :: acc) p.ends (if p.has_eps then [ eps_state ] else [])
  in
  Nfa.create ~nstates:(max nstates 1) ~alphabet:sigma ~initial ~final ~trans:!trans

let ro_enfa a = ro_enfa_of_profile a.Nfa.alphabet (profile a)

let is_local_language a =
  (* L(A) ⊆ L(A') always holds (Lemma B.4), so only the converse is tested. *)
  Lang.subset (ro_enfa a) a

(* Exact letter-Cartesian test for one letter, via the complete DFA:
   U_x = { u | ∃v. uxv ∈ L } is read off states whose x-successor is
   co-accessible; V_x symmetrically; then test U_x · x · V_x ⊆ L. *)
let letter_cartesian_for a x =
  let d = Dfa.of_nfa a in
  let xi =
    (* index of x in the DFA's alphabet; if absent, no word contains x *)
    let rec find i =
      if i >= Array.length d.Dfa.alpha then None
      else if d.Dfa.alpha.(i) = x then Some i
      else find (i + 1)
    in
    find 0
  in
  match xi with
  | None -> true
  | Some xi ->
      (* co-accessible states of the (complete) DFA *)
      let n = d.Dfa.nstates in
      let inc = Array.make n [] in
      Array.iteri (fun s row -> Array.iter (fun s' -> inc.(s') <- s :: inc.(s')) row) d.Dfa.delta;
      let coacc = Array.make n false in
      let rec back s =
        if not coacc.(s) then begin
          coacc.(s) <- true;
          List.iter back inc.(s)
        end
      in
      Array.iteri (fun s f -> if f then back s) d.Dfa.final;
      let base_trans = ref [] in
      Array.iteri
        (fun s row ->
          Array.iteri (fun li s' -> base_trans := (s, Nfa.Ch d.Dfa.alpha.(li), s') :: !base_trans)
            row)
        d.Dfa.delta;
      let finals_of pred =
        List.filter pred (List.init n Fun.id)
      in
      let sigma = Dfa.alphabet d in
      let u_nfa =
        Nfa.create ~nstates:n ~alphabet:sigma ~initial:[ d.Dfa.init ]
          ~final:(finals_of (fun s -> coacc.(d.Dfa.delta.(s).(xi))))
          ~trans:!base_trans
      in
      let v_initials =
        List.sort_uniq compare
          (List.filter_map
             (fun s -> if coacc.(d.Dfa.delta.(s).(xi)) then Some d.Dfa.delta.(s).(xi) else None)
             (List.init n Fun.id))
      in
      if v_initials = [] then true
      else begin
        let v_nfa =
          Nfa.create ~nstates:n ~alphabet:sigma ~initial:v_initials
            ~final:(finals_of (fun s -> d.Dfa.final.(s)))
            ~trans:!base_trans
        in
        let x_nfa =
          Nfa.create ~nstates:2 ~alphabet:sigma ~initial:[ 0 ] ~final:[ 1 ]
            ~trans:[ (0, Nfa.Ch x, 1) ]
        in
        Lang.subset (Nfa.concat u_nfa (Nfa.concat x_nfa v_nfa)) a
      end

let is_letter_cartesian a = Cset.for_all (letter_cartesian_for a) a.Nfa.alphabet

(* Proposition G.1's reduction: L(l2) ⊆ L(l1) iff the language
   b·L1·a·(0|1) ∪ b·L2·a·0 is letter-Cartesian for the letter a. The letters
   a and b must be fresh; following the paper we use 'a'/'b' with L1, L2
   over {0, 1}. *)
let inclusion_to_cartesian ~l1 ~l2 =
  let letter c =
    Nfa.create ~nstates:2 ~alphabet:(Cset.singleton c) ~initial:[ 0 ] ~final:[ 1 ]
      ~trans:[ (0, Nfa.Ch c, 1) ]
  in
  let zero_or_one = Nfa.union (letter '0') (letter '1') in
  Nfa.union
    (Nfa.concat (letter 'b') (Nfa.concat l1 (Nfa.concat (letter 'a') zero_or_one)))
    (Nfa.concat (letter 'b') (Nfa.concat l2 (Nfa.concat (letter 'a') (letter '0'))))

(* Bounded search for letter-Cartesian violations. We collect, for each
   letter x, the (left, right) context pairs of occurrences of x in bounded
   words of L, then test cross-products for membership on the automaton. *)
let violation_search ~nonempty_legs a ~bound =
  let ws = Lang.words_up_to a bound in
  let contexts = Hashtbl.create 16 in
  List.iter
    (fun w ->
      String.iteri
        (fun i x ->
          let left = String.sub w 0 i in
          let right = String.sub w (i + 1) (String.length w - i - 1) in
          if (not nonempty_legs) || (left <> "" && right <> "") then begin
            let prev = Option.value ~default:[] (Hashtbl.find_opt contexts x) in
            Hashtbl.replace contexts x ((left, right) :: prev)
          end)
        w)
    ws;
  let result = ref None in
  (try
     Hashtbl.iter
       (fun x ctxs ->
         let ctxs = List.sort_uniq compare ctxs in
         List.iter
           (fun (alpha, beta) ->
             List.iter
               (fun (gamma, delta) ->
                 if beta <> delta || alpha <> gamma then
                   let cross = alpha ^ String.make 1 x ^ delta in
                   if not (Nfa.accepts a cross) then begin
                     result := Some (x, alpha, beta, gamma, delta);
                     raise Exit
                   end)
               ctxs)
           ctxs)
       contexts
   with Exit -> ());
  !result

let letter_cartesian_violation a ~bound = violation_search ~nonempty_legs:false a ~bound
let four_legged_witness a ~bound = violation_search ~nonempty_legs:true a ~bound
