(** Nondeterministic finite automata with ε-transitions (εNFAs).

    This is the central automaton representation of the library: the paper's
    constructions (Lemma B.4's RO-εNFA, the product network of Theorem 3.3,
    reduction of languages, ...) all consume or produce εNFAs. States are
    integers in [0, nstates). *)

type sym = Eps | Ch of char

type t = private {
  nstates : int;
  alphabet : Cset.t;  (** the ambient alphabet Σ (may strictly contain the used letters) *)
  initial : int list;
  final : int list;
  trans : (int * sym * int) list;
}

val create :
  nstates:int -> alphabet:Cset.t -> initial:int list -> final:int list
  -> trans:(int * sym * int) list -> t
(** Builds an εNFA; checks that all states are in range and that all letter
    transitions use letters of [alphabet].
    @raise Invalid_argument otherwise. *)

val size : t -> int
(** |A| = number of states + number of transitions. *)

val with_alphabet : Cset.t -> t -> t
(** Enlarges the ambient alphabet (the union is taken); the language over the
    larger alphabet is unchanged. *)

val of_regex : ?alphabet:Cset.t -> Regex.t -> t
(** Thompson construction. The alphabet defaults to the letters of the
    expression. *)

val of_words : ?alphabet:Cset.t -> Word.t list -> t
(** Trie-shaped automaton for an explicit finite language. *)

val eps_closure : t -> int list -> int list
(** Forward ε-closure of a set of states (sorted, duplicate-free). *)

val accepts : t -> Word.t -> bool
(** Word membership by on-the-fly subset simulation. *)

val trim : t -> t
(** Keeps only useful (accessible and co-accessible) states, per Claim B.6.
    The language is preserved. The result may have 0 states if L(A) = ∅. *)

val reverse : t -> t
(** Automaton for the mirror language (Proposition E.1). *)

val union : t -> t -> t
val concat : t -> t -> t
val star : t -> t
val sigma_star : Cset.t -> t
val sigma_plus : Cset.t -> t

val remove_eps : t -> t
(** Equivalent NFA without ε-transitions (standard closure construction). *)

val is_read_once : t -> bool
(** Is the automaton an RO-εNFA (Definition 3.6): at most one letter
    transition per letter of Σ? *)

val nullable : t -> bool
(** Does the automaton accept ε? *)

val letter_transitions : t -> (int * char * int) list
(** The non-ε transitions. *)

val eps_transitions : t -> (int * int) list
(** The ε transitions. *)

val rename : (char -> char) -> t -> t
(** Applies an injective letter renaming to all transitions and the alphabet. *)

val unsafe_create :
  nstates:int -> alphabet:Cset.t -> initial:int list -> final:int list
  -> trans:(int * sym * int) list -> t
(** Builds the record with {e no} well-formedness checks. Only for tests of
    {!validate} and trusted deserialization paths; everything else must use
    {!create}. *)

val validate : t -> (unit, Invariant.violation list) result
(** Machine-checks the structural invariants: every state of [initial],
    [final] and [trans] lies in [0, nstates), every letter transition uses a
    letter of [alphabet], and the ε-closure of the initial set is sound
    (contains the initial states and is closed under ε-edges). Automata
    built by {!create} and the combinators always validate. *)

val pp : Format.formatter -> t -> unit
