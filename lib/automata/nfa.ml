type sym = Eps | Ch of char

type t = {
  nstates : int;
  alphabet : Cset.t;
  initial : int list;
  final : int list;
  trans : (int * sym * int) list;
}

let sort_states = List.sort_uniq compare

let create ~nstates ~alphabet ~initial ~final ~trans =
  let check_state s =
    if s < 0 || s >= nstates then invalid_arg (Printf.sprintf "Nfa.create: state %d out of range" s)
  in
  List.iter check_state initial;
  List.iter check_state final;
  List.iter
    (fun (s, sym, s') ->
      check_state s;
      check_state s';
      match sym with
      | Eps -> ()
      | Ch c ->
          if not (Cset.mem c alphabet) then
            invalid_arg (Printf.sprintf "Nfa.create: letter %C not in alphabet" c))
    trans;
  {
    nstates;
    alphabet;
    initial = sort_states initial;
    final = sort_states final;
    trans = List.sort_uniq compare trans;
  }

let size a = a.nstates + List.length a.trans
let with_alphabet sigma a = { a with alphabet = Cset.union sigma a.alphabet }

(* Adjacency: for each state the outgoing (sym, target) pairs. *)
let out_array a =
  let arr = Array.make (max a.nstates 1) [] in
  List.iter (fun (s, sym, s') -> arr.(s) <- (sym, s') :: arr.(s)) a.trans;
  arr

let in_array a =
  let arr = Array.make (max a.nstates 1) [] in
  List.iter (fun (s, sym, s') -> arr.(s') <- (sym, s) :: arr.(s')) a.trans;
  arr

let eps_closure_arr out states =
  let n = Array.length out in
  let seen = Array.make n false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter (function Eps, s' -> go s' | Ch _, _ -> ()) out.(s)
    end
  in
  List.iter go states;
  seen

let bools_to_list seen =
  let acc = ref [] in
  for i = Array.length seen - 1 downto 0 do
    if seen.(i) then acc := i :: !acc
  done;
  !acc

let eps_closure a states = bools_to_list (eps_closure_arr (out_array a) states)

let accepts a w =
  if a.nstates = 0 then false
  else begin
    let out = out_array a in
    let step seen c =
      let next = ref [] in
      Array.iteri
        (fun s in_set ->
          if in_set then
            List.iter (function Ch c', s' when c' = c -> next := s' :: !next | _ -> ()) out.(s))
        seen;
      eps_closure_arr out !next
    in
    let seen = ref (eps_closure_arr out a.initial) in
    String.iter (fun c -> seen := step !seen c) w;
    List.exists (fun f -> !seen.(f)) a.final
  end

let trim a =
  if a.nstates = 0 then a
  else begin
    let out = out_array a and inc = in_array a in
    let reach_from init adj =
      let seen = Array.make a.nstates false in
      let rec go s =
        if not seen.(s) then begin
          seen.(s) <- true;
          List.iter (fun (_, s') -> go s') adj.(s)
        end
      in
      List.iter go init;
      seen
    in
    let acc = reach_from a.initial out in
    let coacc = reach_from a.final inc in
    let useful = Array.init a.nstates (fun i -> acc.(i) && coacc.(i)) in
    let remap = Array.make a.nstates (-1) in
    let count = ref 0 in
    Array.iteri
      (fun i u ->
        if u then begin
          remap.(i) <- !count;
          incr count
        end)
      useful;
    let map_states l = List.filter_map (fun s -> if useful.(s) then Some remap.(s) else None) l in
    {
      nstates = !count;
      alphabet = a.alphabet;
      initial = map_states a.initial;
      final = map_states a.final;
      trans =
        List.filter_map
          (fun (s, sym, s') ->
            if useful.(s) && useful.(s') then Some (remap.(s), sym, remap.(s')) else None)
          a.trans;
    }
  end

let reverse a =
  {
    a with
    initial = a.final;
    final = a.initial;
    trans = List.map (fun (s, sym, s') -> (s', sym, s)) a.trans;
  }

(* Disjoint renumbering: [b]'s states are shifted by [a.nstates]. *)
let shift off a =
  {
    a with
    initial = List.map (( + ) off) a.initial;
    final = List.map (( + ) off) a.final;
    trans = List.map (fun (s, sym, s') -> (s + off, sym, s' + off)) a.trans;
  }

let union a b =
  let b' = shift a.nstates b in
  {
    nstates = a.nstates + b.nstates;
    alphabet = Cset.union a.alphabet b.alphabet;
    initial = a.initial @ b'.initial;
    final = a.final @ b'.final;
    trans = a.trans @ b'.trans;
  }

let concat a b =
  let b' = shift a.nstates b in
  let bridge = List.concat_map (fun f -> List.map (fun i -> (f, Eps, i)) b'.initial) a.final in
  {
    nstates = a.nstates + b.nstates;
    alphabet = Cset.union a.alphabet b.alphabet;
    initial = a.initial;
    final = b'.final;
    trans = a.trans @ b'.trans @ bridge;
  }

let star a =
  (* A fresh state that is both initial and final, looping back. *)
  let fresh = a.nstates in
  let back = List.map (fun f -> (f, Eps, fresh)) a.final in
  let fwd = List.map (fun i -> (fresh, Eps, i)) a.initial in
  {
    nstates = a.nstates + 1;
    alphabet = a.alphabet;
    initial = [ fresh ];
    final = [ fresh ];
    trans = a.trans @ back @ fwd;
  }

let sigma_star sigma =
  {
    nstates = 1;
    alphabet = sigma;
    initial = [ 0 ];
    final = [ 0 ];
    trans = Cset.fold (fun c acc -> (0, Ch c, 0) :: acc) sigma [];
  }

let sigma_plus sigma =
  {
    nstates = 2;
    alphabet = sigma;
    initial = [ 0 ];
    final = [ 1 ];
    trans = Cset.fold (fun c acc -> (0, Ch c, 1) :: (1, Ch c, 1) :: acc) sigma [];
  }

let rec of_regex_build sigma (e : Regex.t) : t =
  match e with
  | Empty -> { nstates = 1; alphabet = sigma; initial = [ 0 ]; final = []; trans = [] }
  | Eps -> { nstates = 1; alphabet = sigma; initial = [ 0 ]; final = [ 0 ]; trans = [] }
  | Letter c ->
      { nstates = 2; alphabet = sigma; initial = [ 0 ]; final = [ 1 ]; trans = [ (0, Ch c, 1) ] }
  | Union (x, y) -> union (of_regex_build sigma x) (of_regex_build sigma y)
  | Concat (x, y) -> concat (of_regex_build sigma x) (of_regex_build sigma y)
  | Star x -> star (of_regex_build sigma x)

let of_regex ?alphabet e =
  let sigma =
    match alphabet with Some s -> Cset.union s (Regex.letters e) | None -> Regex.letters e
  in
  of_regex_build sigma e

let of_words ?alphabet ws = of_regex ?alphabet (Regex.of_words ws)
let remove_eps a =
  if a.nstates = 0 then a
  else begin
    let out = out_array a in
    let closure_of = Array.init a.nstates (fun s -> eps_closure_arr out [ s ]) in
    let final_set = Array.make a.nstates false in
    List.iter (fun f -> final_set.(f) <- true) a.final;
    let new_final = ref [] in
    let new_trans = ref [] in
    for s = 0 to a.nstates - 1 do
      let cl = closure_of.(s) in
      let is_final = ref false in
      Array.iteri
        (fun t in_cl ->
          if in_cl then begin
            if final_set.(t) then is_final := true;
            List.iter
              (function Ch c, s' -> new_trans := (s, Ch c, s') :: !new_trans | Eps, _ -> ())
              out.(t)
          end)
        cl;
      if !is_final then new_final := s :: !new_final
    done;
    trim
      {
        nstates = a.nstates;
        alphabet = a.alphabet;
        initial = a.initial;
        final = sort_states !new_final;
        trans = List.sort_uniq compare !new_trans;
      }
  end

let is_read_once a =
  let seen = Array.make 256 false in
  List.for_all
    (fun (_, sym, _) ->
      match sym with
      | Eps -> true
      | Ch c ->
          let i = Char.code c in
          if seen.(i) then false
          else begin
            seen.(i) <- true;
            true
          end)
    a.trans

let nullable a =
  if a.nstates = 0 then false
  else
    let closure = eps_closure_arr (out_array a) a.initial in
    List.exists (fun f -> closure.(f)) a.final

let letter_transitions a =
  List.filter_map (fun (s, sym, s') -> match sym with Ch c -> Some (s, c, s') | Eps -> None) a.trans

let eps_transitions a =
  List.filter_map (fun (s, sym, s') -> match sym with Eps -> Some (s, s') | Ch _ -> None) a.trans

let rename f a =
  {
    a with
    alphabet = Cset.map f a.alphabet;
    trans = List.map (fun (s, sym, s') -> (s, (match sym with Eps -> Eps | Ch c -> Ch (f c)), s')) a.trans;
  }

let unsafe_create ~nstates ~alphabet ~initial ~final ~trans =
  { nstates; alphabet; initial; final; trans }

let validate a =
  let module C = Invariant.Collector in
  let c = C.create "Nfa" in
  C.check c (a.nstates >= 0) ~invariant:"state-count" "nstates = %d is negative" a.nstates;
  let in_range s = s >= 0 && s < a.nstates in
  List.iter
    (fun s ->
      C.check c (in_range s) ~invariant:"initial-range" "initial state %d outside [0,%d)" s
        a.nstates)
    a.initial;
  List.iter
    (fun s ->
      C.check c (in_range s) ~invariant:"final-range" "final state %d outside [0,%d)" s a.nstates)
    a.final;
  List.iter
    (fun (s, sym, s') ->
      C.check c
        (in_range s && in_range s')
        ~invariant:"transition-range" "transition %d -> %d outside [0,%d)" s s' a.nstates;
      match sym with
      | Eps -> ()
      | Ch ch ->
          C.check c (Cset.mem ch a.alphabet) ~invariant:"alphabet-containment"
            "transition letter %C not in the ambient alphabet" ch)
    a.trans;
  (* ε-closure soundness: only meaningful once all states are in range. *)
  let ranges_ok =
    List.for_all in_range a.initial
    && List.for_all (fun (s, _, s') -> in_range s && in_range s') a.trans
  in
  if ranges_ok && a.nstates > 0 then begin
    let cl = eps_closure a a.initial in
    let mem s = List.mem s cl in
    List.iter
      (fun s ->
        C.check c (mem s) ~invariant:"eps-closure" "closure of the initial set misses %d" s)
      a.initial;
    List.iter
      (function
        | s, Eps, s' when mem s ->
            C.check c (mem s') ~invariant:"eps-closure"
              "closure not closed under the ε-edge %d -> %d" s s'
        | _ -> ())
      a.trans
  end;
  C.result c

let pp ppf a =
  Format.fprintf ppf "@[<v>states: %d, alphabet: %a@,initial: %a@,final: %a@,transitions:@,"
    a.nstates Cset.pp a.alphabet
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    a.initial
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
    a.final;
  List.iter
    (fun (s, sym, s') ->
      match sym with
      | Eps -> Format.fprintf ppf "  %d --\xce\xb5--> %d@," s s'
      | Ch c -> Format.fprintf ppf "  %d --%c--> %d@," s c s')
    a.trans;
  Format.fprintf ppf "@]"
