(** Complete deterministic finite automata.

    A DFA here is always {e complete} over its alphabet (every state has
    exactly one transition per letter; a rejecting sink is added as needed).
    This makes complementation, products and the transition-monoid
    construction for star-freeness straightforward. *)

type t = private {
  nstates : int;
  alpha : char array;  (** the alphabet, sorted increasing *)
  init : int;
  final : bool array;
  delta : int array array;  (** [delta.(s).(i)] is the successor of [s] on [alpha.(i)] *)
}

val of_nfa : Nfa.t -> t
(** Subset construction (with ε-closures). *)

val of_regex : ?alphabet:Cset.t -> Regex.t -> t

val to_nfa : t -> Nfa.t
(** Forgets determinism; the result is trimmed. *)

val alphabet : t -> Cset.t
val accepts : t -> Word.t -> bool

val extend_alphabet : Cset.t -> t -> t
(** Complete DFA over the union alphabet; added letters lead to a rejecting
    sink, so the language is unchanged. *)

val minimize : t -> t
(** Canonical minimal complete DFA (unreachable-state removal followed by
    Moore partition refinement). *)

val complement : t -> t

val product : (bool -> bool -> bool) -> t -> t -> t
(** Boolean combination of two DFAs; their alphabets are aligned first. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
(** Is the recognized language empty? *)

val subset : t -> t -> bool
(** Language inclusion. *)

val equiv : t -> t -> bool
(** Language equivalence. *)

val is_finite : t -> bool
(** Is the recognized language finite? *)

val words : t -> Word.t list option
(** All words of the language if it is finite (sorted by length then
    lexicographically), [None] otherwise. *)

val words_up_to : t -> int -> Word.t list
(** All accepted words of length at most the bound, sorted by length then
    lexicographically. *)

val shortest_word : t -> Word.t option
(** A shortest accepted word, if the language is non-empty. *)

val is_local_dfa : t -> bool
(** Syntactic test of Definition 3.1 on the {e useful} part of the automaton:
    for every letter [a], all [a]-transitions between useful states share the
    same target. (This tests whether this DFA is a local DFA, not whether the
    language is local; see {!Local.is_local_language} for the latter.) *)

val unsafe_create :
  nstates:int -> alpha:char array -> init:int -> final:bool array -> delta:int array array -> t
(** Builds the record with {e no} well-formedness checks. Only for tests of
    {!validate} and trusted deserialization paths. *)

val validate : ?expect_reachable:bool -> t -> (unit, Invariant.violation list) result
(** Machine-checks completeness: at least one state, the alphabet strictly
    sorted (required by the binary search of [accepts]), [final] and [delta]
    of length [nstates], every row total with in-range targets. With
    [~expect_reachable:true] additionally demands that every state be
    reachable from [init], which holds for the interning constructions
    ({!of_nfa}, {!minimize}) but not necessarily for {!product}. *)

val pp : Format.formatter -> t -> unit
