open Regex

(* Smart constructors enforcing similarity-normal form. *)

let rec flatten_union = function
  | Union (a, b) -> flatten_union a @ flatten_union b
  | e -> [ e ]

let mk_union es =
  let es = List.sort_uniq compare (List.filter (( <> ) Empty) es) in
  match es with
  | [] -> Empty
  | [ e ] -> e
  | e :: rest -> List.fold_left (fun acc x -> Union (acc, x)) e rest

let mk_concat a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Eps, e | e, Eps -> e
  | _ -> Concat (a, b)

let mk_star = function
  | Empty | Eps -> Eps
  | Star _ as e -> e
  | e -> Star e

let rec normalize = function
  | (Empty | Eps | Letter _) as e -> e
  | Union _ as e -> mk_union (List.map normalize (flatten_union e))
  | Concat (a, b) -> mk_concat (normalize a) (normalize b)
  | Star a -> mk_star (normalize a)

let rec deriv_raw c = function
  | Empty | Eps -> Empty
  | Letter c' -> if c = c' then Eps else Empty
  | Union (a, b) -> mk_union [ deriv_raw c a; deriv_raw c b ]
  | Concat (a, b) ->
      let da_b = mk_concat (deriv_raw c a) b in
      if Regex.nullable a then mk_union [ da_b; deriv_raw c b ] else da_b
  | Star a as s -> mk_concat (deriv_raw c a) s

let deriv c e = normalize (deriv_raw c (normalize e))

let deriv_word w e = String.fold_left (fun acc c -> deriv c acc) (normalize e) w
let mem e w = Regex.nullable (deriv_word w e)

let dfa ?(max_states = 10_000) e =
  let sigma = Regex.letters e in
  let alpha = Array.of_list (Cset.elements sigma) in
  let nletters = Array.length alpha in
  let tbl = Hashtbl.create 64 in
  let states = ref [] and count = ref 0 in
  let intern e =
    match Hashtbl.find_opt tbl e with
    | Some id -> (id, false)
    | None ->
        if !count >= max_states then
          Invariant.internal_error "Deriv.dfa: state bound %d exceeded" max_states;
        let id = !count in
        incr count;
        Hashtbl.add tbl e id;
        states := (id, e) :: !states;
        (id, true)
  in
  let rows = Hashtbl.create 64 in
  let rec explore e id =
    let row = Array.make nletters 0 in
    Array.iteri
      (fun li c ->
        let e' = deriv c e in
        let id', fresh = intern e' in
        row.(li) <- id';
        if fresh then explore e' id')
      alpha;
    Hashtbl.replace rows id row
  in
  let e0 = normalize e in
  let id0, _ = intern e0 in
  explore e0 id0;
  let n = !count in
  let final = Array.make n false in
  List.iter (fun (id, e) -> final.(id) <- Regex.nullable e) !states;
  let delta =
    Array.init n (fun id ->
        match Hashtbl.find_opt rows id with
        | Some row -> row
        | None -> Invariant.internal_error "Deriv.dfa: unexplored state %d" id)
  in
  (* Reuse the NFA -> DFA path only for the record construction: build via
     an NFA whose determinization is trivial. Simpler: go through Dfa by
     constructing an equivalent NFA. *)
  let trans = ref [] in
  Array.iteri
    (fun s row -> Array.iteri (fun li s' -> trans := (s, Nfa.Ch alpha.(li), s') :: !trans) row)
    delta;
  let finals = ref [] in
  Array.iteri (fun i f -> if f then finals := i :: !finals) final;
  Dfa.of_nfa
    (Nfa.create ~nstates:(max n 1) ~alphabet:sigma ~initial:[ id0 ] ~final:!finals ~trans:!trans)
