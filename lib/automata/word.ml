type t = string

let epsilon = ""
let length = String.length
let letters = Cset.of_string

let mirror w =
  let n = String.length w in
  String.init n (fun i -> w.[n - 1 - i])

let is_prefix a b =
  String.length a <= String.length b && String.sub b 0 (String.length a) = a

let is_suffix a b =
  let la = String.length a and lb = String.length b in
  la <= lb && String.sub b (lb - la) la = a

let is_infix a b =
  let la = String.length a and lb = String.length b in
  if la > lb then false
  else
    let rec go i = i + la <= lb && (String.sub b i la = a || go (i + 1)) in
    go 0

let is_strict_infix a b = String.length a < String.length b && is_infix a b

let dedup ws = List.sort_uniq compare ws

let infixes w =
  let n = String.length w in
  let acc = ref [ "" ] in
  for i = 0 to n - 1 do
    for len = 1 to n - i do
      acc := String.sub w i len :: !acc
    done
  done;
  dedup !acc

let strict_infixes w = List.filter (fun a -> String.length a < String.length w) (infixes w)

let prefixes w = List.init (String.length w + 1) (fun i -> String.sub w 0 i)

let suffixes w =
  let n = String.length w in
  List.init (n + 1) (fun i -> String.sub w (n - i) i)

let has_repeated_letter w =
  let seen = Array.make 256 false in
  let rec go i =
    if i >= String.length w then false
    else
      let c = Char.code w.[i] in
      if seen.(c) then true
      else begin
        seen.(c) <- true;
        go (i + 1)
      end
  in
  go 0

let repeated_letter_gap w =
  let n = String.length w in
  let best = ref None in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if w.[i] = w.[j] then
        let gap = j - i - 1 in
        match !best with
        | Some (_, g) when g >= gap -> ()
        | _ -> best := Some (w.[i], gap)
    done
  done;
  !best

let all_distinct w = not (has_repeated_letter w)
let to_list w = List.init (String.length w) (String.get w)
let of_list cs =
  let b = Buffer.create (List.length cs) in
  List.iter (Buffer.add_char b) cs;
  Buffer.contents b
let pp ppf w = Format.pp_print_string ppf (if w = "" then "\xce\xb5" else w)
