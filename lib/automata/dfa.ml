type t = {
  nstates : int;
  alpha : char array;
  init : int;
  final : bool array;
  delta : int array array;
}

let alphabet d = Array.fold_left (fun acc c -> Cset.add c acc) Cset.empty d.alpha

let letter_index d c =
  (* Binary search in the sorted alphabet. *)
  let lo = ref 0 and hi = ref (Array.length d.alpha - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if d.alpha.(mid) = c then begin
      res := mid;
      lo := !hi + 1
    end
    else if d.alpha.(mid) < c then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let accepts d w =
  let rec go s i =
    if i = String.length w then d.final.(s)
    else
      let li = letter_index d w.[i] in
      if li < 0 then false else go d.delta.(s).(li) (i + 1)
  in
  go d.init 0

let of_nfa (a : Nfa.t) =
  let alpha = Array.of_list (Cset.elements a.alphabet) in
  let nletters = Array.length alpha in
  if a.nstates = 0 then
    (* Empty language: a single rejecting sink. *)
    { nstates = 1; alpha; init = 0; final = [| false |]; delta = [| Array.make nletters 0 |] }
  else begin
    let out = Array.make a.nstates [] in
    List.iter (fun (s, sym, s') -> out.(s) <- (sym, s') :: out.(s)) a.trans;
    let closure states =
      let seen = Array.make a.nstates false in
      let rec go s =
        if not seen.(s) then begin
          seen.(s) <- true;
          List.iter (function Nfa.Eps, s' -> go s' | Nfa.Ch _, _ -> ()) out.(s)
        end
      in
      List.iter go states;
      seen
    in
    let key seen =
      let b = Buffer.create a.nstates in
      Array.iter (fun x -> Buffer.add_char b (if x then '1' else '0')) seen;
      Buffer.contents b
    in
    let tbl = Hashtbl.create 64 in
    let states = ref [] and count = ref 0 in
    let finals = ref [] in
    let intern seen =
      let k = key seen in
      match Hashtbl.find_opt tbl k with
      | Some id -> (id, false)
      | None ->
          let id = !count in
          incr count;
          Hashtbl.add tbl k id;
          states := (id, seen) :: !states;
          finals := (id, List.exists (fun f -> seen.(f)) a.final) :: !finals;
          (id, true)
    in
    let rows = Hashtbl.create 64 in
    let rec explore seen id =
      let row = Array.make nletters 0 in
      Array.iteri
        (fun li c ->
          let next = ref [] in
          Array.iteri
            (fun s in_set ->
              if in_set then
                List.iter
                  (function Nfa.Ch c', s' when c' = c -> next := s' :: !next | _ -> ())
                  out.(s))
            seen;
          let nseen = closure !next in
          let nid, fresh = intern nseen in
          row.(li) <- nid;
          if fresh then explore nseen nid)
        alpha;
      Hashtbl.replace rows id row
    in
    let init_seen = closure a.initial in
    let init_id, _ = intern init_seen in
    explore init_seen init_id;
    let n = !count in
    let final = Array.make n false in
    List.iter (fun (id, f) -> final.(id) <- f) !finals;
    let delta =
      Array.init n (fun id ->
          match Hashtbl.find_opt rows id with
          | Some row -> row
          | None -> Invariant.internal_error "Dfa.of_nfa: unexplored subset state %d" id)
    in
    { nstates = n; alpha; init = init_id; final; delta }
  end

let of_regex ?alphabet e = of_nfa (Nfa.of_regex ?alphabet e)

let to_nfa d =
  let trans = ref [] in
  Array.iteri
    (fun s row -> Array.iteri (fun li s' -> trans := (s, Nfa.Ch d.alpha.(li), s') :: !trans) row)
    d.delta;
  Nfa.trim
    (Nfa.create ~nstates:d.nstates ~alphabet:(alphabet d) ~initial:[ d.init ]
       ~final:
         (Array.to_list d.final
         |> List.mapi (fun i f -> (i, f))
         |> List.filter_map (fun (i, f) -> if f then Some i else None))
       ~trans:!trans)

let extend_alphabet sigma d =
  let sigma' = Cset.union sigma (alphabet d) in
  if Cset.equal sigma' (alphabet d) then d
  else begin
    let alpha = Array.of_list (Cset.elements sigma') in
    let nletters = Array.length alpha in
    (* New letters go to a fresh rejecting sink. *)
    let sink = d.nstates in
    let n = d.nstates + 1 in
    let delta =
      Array.init n (fun s ->
          Array.init nletters (fun li ->
              if s = sink then sink
              else
                let old = letter_index d alpha.(li) in
                if old < 0 then sink else d.delta.(s).(old)))
    in
    let final = Array.init n (fun s -> s <> sink && d.final.(s)) in
    { nstates = n; alpha; init = d.init; final; delta }
  end

(* Remove states unreachable from the initial state, then Moore refinement. *)
let minimize d =
  let nletters = Array.length d.alpha in
  (* Reachability *)
  let seen = Array.make d.nstates false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      Array.iter go d.delta.(s)
    end
  in
  go d.init;
  let remap = Array.make d.nstates (-1) in
  let count = ref 0 in
  Array.iteri
    (fun i r ->
      if r then begin
        remap.(i) <- !count;
        incr count
      end)
    seen;
  let n = !count in
  let delta = Array.make_matrix n nletters 0 in
  let final = Array.make n false in
  Array.iteri
    (fun i r ->
      if r then begin
        let id = remap.(i) in
        final.(id) <- d.final.(i);
        Array.iteri (fun li s' -> delta.(id).(li) <- remap.(s')) d.delta.(i)
      end)
    seen;
  let init = remap.(d.init) in
  (* Moore partition refinement; [cls] maps each state to its class id. *)
  let distinct arr = List.length (List.sort_uniq compare (Array.to_list arr)) in
  let cls = ref (Array.init n (fun s -> if final.(s) then 1 else 0)) in
  let continue = ref true in
  while !continue do
    let old = !cls in
    let tbl = Hashtbl.create n in
    let fresh = ref 0 in
    let newcls =
      Array.init n (fun s ->
          let signature = (old.(s), Array.map (fun s' -> old.(s')) delta.(s)) in
          match Hashtbl.find_opt tbl signature with
          | Some id -> id
          | None ->
              let id = !fresh in
              incr fresh;
              Hashtbl.add tbl signature id;
              id)
    in
    if !fresh = distinct old then continue := false;
    cls := newcls
  done;
  let cls = !cls in
  let m = distinct cls in
  (* One representative state per class. *)
  let repr = Array.make m (-1) in
  Array.iteri (fun s c -> if repr.(c) = -1 then repr.(c) <- s) cls;
  let delta' = Array.init m (fun c -> Array.map (fun s' -> cls.(s')) delta.(repr.(c))) in
  let final' = Array.init m (fun c -> final.(repr.(c))) in
  { nstates = m; alpha = d.alpha; init = cls.(init); final = final'; delta = delta' }

let complement d =
  { d with final = Array.map not d.final }

let product op d1 d2 =
  let sigma = Cset.union (alphabet d1) (alphabet d2) in
  let d1 = extend_alphabet sigma d1 and d2 = extend_alphabet sigma d2 in
  let nletters = Array.length d1.alpha in
  let n = d1.nstates * d2.nstates in
  let pair s1 s2 = (s1 * d2.nstates) + s2 in
  let delta =
    Array.init n (fun p ->
        let s1 = p / d2.nstates and s2 = p mod d2.nstates in
        Array.init nletters (fun li -> pair d1.delta.(s1).(li) d2.delta.(s2).(li)))
  in
  let final =
    Array.init n (fun p -> op d1.final.(p / d2.nstates) d2.final.(p mod d2.nstates))
  in
  { nstates = n; alpha = d1.alpha; init = pair d1.init d2.init; final; delta }

let inter = product ( && )
let union = product ( || )
let diff = product (fun a b -> a && not b)

let is_empty d =
  let seen = Array.make d.nstates false in
  let found = ref false in
  let rec go s =
    if not seen.(s) then begin
      seen.(s) <- true;
      if d.final.(s) then found := true;
      Array.iter go d.delta.(s)
    end
  in
  go d.init;
  not !found

let subset d1 d2 = is_empty (diff d1 d2)
let equiv d1 d2 = subset d1 d2 && subset d2 d1

(* Useful states: reachable from init and leading to a final state. *)
let useful_states d =
  let reach = Array.make d.nstates false in
  let rec go s =
    if not reach.(s) then begin
      reach.(s) <- true;
      Array.iter go d.delta.(s)
    end
  in
  go d.init;
  let inc = Array.make d.nstates [] in
  Array.iteri (fun s row -> Array.iter (fun s' -> inc.(s') <- s :: inc.(s')) row) d.delta;
  let coacc = Array.make d.nstates false in
  let rec back s =
    if not coacc.(s) then begin
      coacc.(s) <- true;
      List.iter back inc.(s)
    end
  in
  Array.iteri (fun s f -> if f then back s) d.final;
  Array.init d.nstates (fun s -> reach.(s) && coacc.(s))

let is_finite d =
  (* Finite iff the subgraph induced by useful states is acyclic. *)
  let useful = useful_states d in
  let color = Array.make d.nstates 0 in
  (* 0 = white, 1 = gray, 2 = black *)
  let cyclic = ref false in
  let rec dfs s =
    if useful.(s) then
      if color.(s) = 1 then cyclic := true
      else if color.(s) = 0 then begin
        color.(s) <- 1;
        Array.iter dfs d.delta.(s);
        color.(s) <- 2
      end
  in
  if useful.(d.init) then dfs d.init;
  not !cyclic

let words_up_to d bound =
  let acc = ref [] in
  let useful = useful_states d in
  let rec go s prefix len =
    if useful.(s) then begin
      if d.final.(s) then acc := prefix :: !acc;
      if len < bound then
        Array.iteri (fun li s' -> go s' (prefix ^ String.make 1 d.alpha.(li)) (len + 1)) d.delta.(s)
    end
  in
  go d.init "" 0;
  List.sort
    (fun a b ->
      let c = compare (String.length a) (String.length b) in
      if c <> 0 then c else compare a b)
    !acc

let words d = if is_finite d then Some (words_up_to d d.nstates) else None

let shortest_word d =
  (* BFS from the initial state, recording one shortest witness per state. *)
  let witness = Array.make d.nstates None in
  let queue = Queue.create () in
  witness.(d.init) <- Some "";
  Queue.add d.init queue;
  let result = ref None in
  (try
     while not (Queue.is_empty queue) do
       let s = Queue.pop queue in
       let w =
         match witness.(s) with
         | Some w -> w
         | None -> Invariant.internal_error "Dfa.shortest_word: queued state %d has no witness" s
       in
       if d.final.(s) then begin
         result := Some w;
         raise Exit
       end;
       Array.iteri
         (fun li s' ->
           if witness.(s') = None then begin
             witness.(s') <- Some (w ^ String.make 1 d.alpha.(li));
             Queue.add s' queue
           end)
         d.delta.(s)
     done
   with Exit -> ());
  !result

let is_local_dfa d =
  let useful = useful_states d in
  let nletters = Array.length d.alpha in
  let target = Array.make nletters (-1) in
  let ok = ref true in
  Array.iteri
    (fun s row ->
      if useful.(s) then
        Array.iteri
          (fun li s' ->
            if useful.(s') then
              if target.(li) = -1 then target.(li) <- s'
              else if target.(li) <> s' then ok := false)
          row)
    d.delta;
  !ok

let unsafe_create ~nstates ~alpha ~init ~final ~delta =
  { nstates; alpha; init; final; delta }

let validate ?(expect_reachable = false) d =
  let module C = Invariant.Collector in
  let c = C.create "Dfa" in
  let nletters = Array.length d.alpha in
  C.check c (d.nstates >= 1) ~invariant:"state-count"
    "a complete DFA needs at least one state, got %d" d.nstates;
  C.check c
    (d.init >= 0 && d.init < d.nstates)
    ~invariant:"initial-range" "initial state %d outside [0,%d)" d.init d.nstates;
  for i = 0 to nletters - 2 do
    C.check c
      (d.alpha.(i) < d.alpha.(i + 1))
      ~invariant:"alphabet-sorted" "alphabet not strictly increasing at index %d (%C >= %C)" i
      d.alpha.(i)
      d.alpha.(i + 1)
  done;
  C.check c
    (Array.length d.final = d.nstates)
    ~invariant:"final-length" "final array has length %d, expected %d" (Array.length d.final)
    d.nstates;
  C.check c
    (Array.length d.delta = d.nstates)
    ~invariant:"totality" "delta has %d rows, expected %d" (Array.length d.delta) d.nstates;
  Array.iteri
    (fun s row ->
      C.check c
        (Array.length row = nletters)
        ~invariant:"totality" "state %d has %d transitions, expected one per letter (%d)" s
        (Array.length row) nletters;
      Array.iteri
        (fun li s' ->
          C.check c
            (s' >= 0 && s' < d.nstates)
            ~invariant:"transition-range" "delta(%d, %d) = %d outside [0,%d)" s li s' d.nstates)
        row)
    d.delta;
  (* Reachable-state accounting: constructions that intern states on the fly
     (of_nfa, minimize) must not leave orphans. *)
  if expect_reachable && C.violations c = [] then begin
    let seen = Array.make d.nstates false in
    let rec go s =
      if not seen.(s) then begin
        seen.(s) <- true;
        Array.iter go d.delta.(s)
      end
    in
    go d.init;
    let reached = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen in
    C.check c (reached = d.nstates) ~invariant:"reachability"
      "%d of %d states unreachable from the initial state" (d.nstates - reached) d.nstates
  end;
  C.result c

let pp ppf d =
  Format.fprintf ppf "@[<v>DFA: %d states over %a, init %d@," d.nstates Cset.pp (alphabet d)
    d.init;
  Array.iteri
    (fun s row ->
      Format.fprintf ppf "  %d%s:" s (if d.final.(s) then " (final)" else "");
      Array.iteri (fun li s' -> Format.fprintf ppf " %c->%d" d.alpha.(li) s') row;
      Format.fprintf ppf "@,")
    d.delta;
  Format.fprintf ppf "@]"
