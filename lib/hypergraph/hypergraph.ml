module Iset = Iset
module ISet = Iset

type t = { verts : ISet.t; edge_sets : ISet.t list (* sorted, duplicate-free *) }

let bnb_nodes = Obs.Metrics.counter "hypergraph.bnb_nodes"

let normalize_edges edges = List.sort_uniq ISet.compare edges

let make ~vertices ~edges =
  let verts = ISet.of_list vertices in
  let edge_sets =
    List.map
      (fun e ->
        let s = ISet.of_list e in
        ISet.iter
          (fun v ->
            if not (ISet.mem v verts) then
              invalid_arg (Printf.sprintf "Hypergraph.make: edge uses undeclared vertex %d" v))
          s;
        s)
      edges
  in
  { verts; edge_sets = normalize_edges edge_sets }

let unsafe_make ~vertices ~edges =
  { verts = ISet.of_list vertices; edge_sets = List.map ISet.of_list edges }

let validate t =
  let module C = Invariant.Collector in
  let c = C.create "Hypergraph" in
  List.iteri
    (fun i e ->
      ISet.iter
        (fun v ->
          C.check c (ISet.mem v t.verts) ~invariant:"vertex-containment"
            "edge %d uses undeclared vertex %d" i v)
        e)
    t.edge_sets;
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        if ISet.compare a b >= 0 then false else sorted rest
    | _ -> true
  in
  C.check c (sorted t.edge_sets) ~invariant:"edge-order"
    "edge list not strictly sorted (normalization broken)";
  C.result c

let vertices t = ISet.elements t.verts
let edges t = List.map ISet.elements t.edge_sets
let edge_count t = List.length t.edge_sets
let vertex_count t = ISet.cardinal t.verts

let pp ppf t =
  Format.fprintf ppf "@[<v>hypergraph: %d vertices, %d edges@," (vertex_count t) (edge_count t);
  List.iter
    (fun e ->
      Format.fprintf ppf "  {%s}@,"
        (String.concat "," (List.map string_of_int (ISet.elements e))))
    t.edge_sets;
  Format.fprintf ppf "@]"

(* Keep only inclusion-minimal edges (edge-domination rule applied fully). *)
let minimal_edges_trace edge_sets =
  let edge_sets = normalize_edges edge_sets in
  List.partition
    (fun e ->
      not (List.exists (fun e' -> (not (ISet.equal e e')) && ISet.subset e' e) edge_sets))
    edge_sets

let minimal_edges edge_sets = fst (minimal_edges_trace edge_sets)

(* One application of node-domination, if possible. Returns the updated
   hypergraph or None. Prefers removing non-protected vertices; on mutual
   domination (E(v) = E(v')), removes the vertex with the larger id. *)
type step = Removed_edge of int list | Removed_vertex of int * int

let pp_step ppf = function
  | Removed_edge e ->
      Format.fprintf ppf "edge-domination removed {%s}"
        (String.concat "," (List.map string_of_int e))
  | Removed_vertex (v, v') ->
      Format.fprintf ppf "node-domination removed %d (dominated by %d)" v v'

let node_dominate_once prot t =
  let indexed = List.mapi (fun i e -> (i, e)) t.edge_sets in
  let incidence_ids v =
    ISet.of_list (List.filter_map (fun (i, e) -> if ISet.mem v e then Some i else None) indexed)
  in
  let inc = ISet.fold (fun v acc -> (v, incidence_ids v) :: acc) t.verts [] in
  let dominated =
    List.filter_map
      (fun (v, ev) ->
        if ISet.mem v prot then None
        else
          List.find_opt
            (fun (v', ev') ->
              v' <> v
              && ISet.subset ev ev'
              && ((not (ISet.equal ev ev')) || ISet.mem v' prot || v > v'))
            inc
          |> Option.map (fun (v', _) -> (v, v')))
      inc
  in
  match dominated with
  | [] -> None
  | first :: _ as candidates ->
      (* Definition 4.9 asks for the existence of SOME condensation order;
         prefer removals that do not shrink an edge to a singleton (which
         would edge-dominate away its neighbors and can destroy odd paths
         that another order preserves). *)
      let creates_singleton v =
        List.exists (fun e -> ISet.mem v e && ISet.cardinal e = 2) t.edge_sets
      in
      let v, v' =
        Option.value ~default:first
          (List.find_opt (fun (v, _) -> not (creates_singleton v)) candidates)
      in
      Some
        ( {
            verts = ISet.remove v t.verts;
            edge_sets = normalize_edges (List.map (fun e -> ISet.remove v e) t.edge_sets);
          },
          (v, v') )

let condense_trace ?(protected = []) t =
  let prot = ISet.of_list protected in
  let rec fixpoint t acc =
    let kept, removed = minimal_edges_trace t.edge_sets in
    let acc = List.rev_append (List.map (fun e -> Removed_edge (ISet.elements e)) removed) acc in
    let t = { t with edge_sets = kept } in
    match node_dominate_once prot t with
    | None -> (t, List.rev acc)
    | Some (t', (v, v')) -> fixpoint t' (Removed_vertex (v, v') :: acc)
  in
  fixpoint t []

let condense ?protected t = fst (condense_trace ?protected t)

let path_endpoints_length t =
  if not (List.for_all (fun e -> ISet.cardinal e = 2) t.edge_sets) then None
  else if t.edge_sets = [] then None
  else begin
    let adj = Hashtbl.create 16 in
    let add_adj u v =
      Hashtbl.replace adj u (v :: Option.value ~default:[] (Hashtbl.find_opt adj u))
    in
    List.iter
      (fun e ->
        match ISet.elements e with
        | [ u; v ] ->
            add_adj u v;
            add_adj v u
        | vs ->
            Invariant.internal_error
              "Hypergraph.path_endpoints_length: edge of cardinality %d among checked 2-edges"
              (List.length vs))
      t.edge_sets;
    let degree v = List.length (Option.value ~default:[] (Hashtbl.find_opt adj v)) in
    let touched = Hashtbl.fold (fun v _ acc -> v :: acc) adj [] in
    let deg1 = List.filter (fun v -> degree v = 1) touched in
    let all_le2 = List.for_all (fun v -> degree v <= 2) touched in
    match (deg1, all_le2) with
    | [ a; b ], true ->
        (* Walk from a; a simple path visits every edge exactly once. *)
        let rec walk prev cur len =
          if degree cur = 1 && len > 0 then (cur, len)
          else
            let neighbors = Option.value ~default:[] (Hashtbl.find_opt adj cur) in
            let nexts = List.filter (fun v -> v <> prev) neighbors in
            match nexts with [ next ] -> walk cur next (len + 1) | _ -> (cur, -1)
        in
        let endpoint, len = walk (-1) a 0 in
        if endpoint = b && len = List.length t.edge_sets then Some (a, b, len) else None
    | _ -> None
  end

let is_odd_path t ~src ~dst =
  match path_endpoints_length t with
  | Some (a, b, len) ->
      len mod 2 = 1 && ((a = src && b = dst) || (a = dst && b = src))
  | None -> false

exception No_hitting_set

let solve_branch_and_bound ?(fuel = fun () -> ()) weights edge_sets =
  (* Work on inclusion-minimal edges. *)
  let edge_sets = minimal_edges edge_sets in
  if List.exists ISet.is_empty edge_sets then raise No_hitting_set;
  let best = ref max_int and best_set = ref [] in
  let min_weight_in e = ISet.fold (fun v acc -> min acc (weights v)) e max_int in
  (* Greedy disjoint-edge lower bound. *)
  let lower_bound remaining =
    let rec go used acc = function
      | [] -> acc
      | e :: rest ->
          if ISet.is_empty (ISet.inter e used) then
            go (ISet.union e used) (acc + min_weight_in e) rest
          else go used acc rest
    in
    go ISet.empty 0 remaining
  in
  let rec branch cost chosen remaining =
    fuel ();
    Obs.Metrics.incr bnb_nodes;
    match remaining with
    | [] ->
        if cost < !best then begin
          best := cost;
          best_set := chosen
        end
    | _ ->
        if cost + lower_bound remaining < !best then begin
          (* Pick a smallest remaining edge and branch on its vertices. *)
          let pick =
            List.fold_left
              (fun acc e ->
                match acc with
                | None -> Some e
                | Some e' -> if ISet.cardinal e < ISet.cardinal e' then Some e else acc)
              None remaining
          in
          match pick with
          | None -> ()
          | Some e ->
              ISet.iter
                (fun v ->
                  let remaining' = List.filter (fun e' -> not (ISet.mem v e')) remaining in
                  branch (cost + weights v) (v :: chosen) remaining')
                e
        end
  in
  branch 0 [] edge_sets;
  (!best, !best_set)

let min_hitting_set ?(weights = fun _ -> 1) ?fuel t =
  (* Node-domination is only sound for uniform weights, so only apply the
     always-sound edge-domination here; branch and bound handles the rest. *)
  try solve_branch_and_bound ?fuel weights t.edge_sets
  with No_hitting_set -> invalid_arg "Hypergraph.min_hitting_set: empty edge"

let greedy_hitting_set ?(weights = fun _ -> 1) t =
  let edges = ref (minimal_edges t.edge_sets) in
  if List.exists ISet.is_empty !edges then invalid_arg "Hypergraph.greedy_hitting_set: empty edge";
  let chosen = ref [] and cost = ref 0 in
  while !edges <> [] do
    (* Pick the vertex maximizing covered-edges per unit weight (compared
       cross-multiplied to stay in integers); ties break toward the smaller
       vertex id for determinism. *)
    let count = Hashtbl.create 16 in
    List.iter
      (fun e ->
        ISet.iter
          (fun v ->
            Hashtbl.replace count v (1 + Option.value ~default:0 (Hashtbl.find_opt count v)))
          e)
      !edges;
    let pick =
      Hashtbl.fold
        (fun v k acc ->
          match acc with
          | None -> Some (v, k)
          | Some (v', k') ->
              let better =
                let l = k * weights v' and r = k' * weights v in
                l > r || (l = r && v < v')
              in
              if better then Some (v, k) else acc)
        count None
    in
    match pick with
    | None -> Invariant.internal_error "Hypergraph.greedy_hitting_set: no vertex in live edges"
    | Some (v, _) ->
        chosen := v :: !chosen;
        cost := !cost + weights v;
        edges := List.filter (fun e -> not (ISet.mem v e)) !edges
  done;
  (!cost, List.rev !chosen)

let all_min_hitting_sets ?(weights = fun _ -> 1) t =
  let edge_sets = minimal_edges t.edge_sets in
  if List.exists ISet.is_empty edge_sets then
    invalid_arg "Hypergraph.all_min_hitting_sets: empty edge";
  let best, _ = solve_branch_and_bound weights edge_sets in
  (* Enumerate optimal sets: branch on the smallest uncovered edge, keeping
     only partial solutions that can still reach [best]. A chosen set may
     over-hit; canonicalize and deduplicate at the end. *)
  let results = ref [] in
  let rec branch cost chosen remaining =
    if cost <= best then
      match remaining with
      | [] -> if cost = best then results := chosen :: !results
      | e :: rest ->
          if ISet.exists (fun v -> ISet.mem v chosen) e then branch cost chosen rest
          else
            ISet.iter
              (fun v ->
                let c = cost + weights v in
                if c <= best then branch c (ISet.add v chosen) rest)
              e
  in
  branch 0 ISet.empty edge_sets;
  (best, List.sort_uniq ISet.compare !results)

let min_hitting_set_bruteforce ?(weights = fun _ -> 1) t =
  let vs = Array.of_list (vertices t) in
  let n = Array.length vs in
  if n > 25 then invalid_arg "min_hitting_set_bruteforce: too many vertices";
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    let chosen = ref ISet.empty and cost = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        chosen := ISet.add vs.(i) !chosen;
        cost := !cost + weights vs.(i)
      end
    done;
    if !cost < !best && List.for_all (fun e -> not (ISet.is_empty (ISet.inter e !chosen))) t.edge_sets
    then best := !cost
  done;
  if !best = max_int then invalid_arg "min_hitting_set_bruteforce: no hitting set" else !best
