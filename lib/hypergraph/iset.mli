(** Sets of integers (fact ids, vertex ids), shared across the libraries. *)

include Set.S with type elt = int

val pp : Format.formatter -> t -> unit
(** [{1,2,3}]-style rendering. *)
