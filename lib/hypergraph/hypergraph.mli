(** Hypergraphs, hitting sets, and the condensation rules of Section 4.3.

    The hypergraph of matches [H_{L,D}] has one vertex per fact of the
    database and one hyperedge per match (fact set of an L-walk);
    [RES_set(Q_L, D)] equals its minimum hitting set (Definition 4.7). *)

module Iset : sig
  include Set.S with type elt = int

  val pp : Format.formatter -> t -> unit
end
(** Sets of integers (fact ids / vertex ids), shared across the libraries. *)

type t
(** An immutable hypergraph over integer vertices. *)

val make : vertices:int list -> edges:int list list -> t
(** Vertices are arbitrary integers; each edge is the list of its vertices
    (deduplicated; edges must only use declared vertices).
    @raise Invalid_argument if an edge uses an undeclared vertex. *)

val vertices : t -> int list
(** Sorted, duplicate-free. *)

val edges : t -> int list list
(** Each edge sorted; the edge list is sorted and duplicate-free. *)

val edge_count : t -> int
val vertex_count : t -> int
val pp : Format.formatter -> t -> unit

val unsafe_make : vertices:int list -> edges:int list list -> t
(** {!make} without the undeclared-vertex check and without edge
    normalization. Only for tests of {!validate} and trusted
    deserialization paths. *)

val validate : t -> (unit, Invariant.violation list) result
(** Machine-checks that every edge only uses declared vertices and that the
    edge list is strictly sorted and duplicate-free (the normalization the
    condensation rules rely on). *)

(** {1 Condensation (Section 4.3)} *)

val condense : ?protected:int list -> t -> t
(** Applies the two condensation rules to a fixpoint:
    {ul
    {- {b edge-domination}: remove an edge that strictly contains another
       edge;}
    {- {b node-domination}: remove a vertex [v] when some other vertex [v']
       has [E(v) ⊆ E(v')].}}
    Vertices in [protected] are never removed by node-domination (the
    endpoint facts of gadget completions, cf. the proof of Claim C.1).
    By Claim 4.8 the minimum hitting-set size is preserved. *)

type step =
  | Removed_edge of int list
      (** an edge deleted by edge-domination (it contained another edge) *)
  | Removed_vertex of int * int
      (** [Removed_vertex (v, v')]: v deleted by node-domination, dominated
          by v' *)

val condense_trace : ?protected:int list -> t -> t * step list
(** Like {!condense} but also returns the sequence of rule applications, in
    order — the narrative style of the paper's Appendix C.6. *)

val pp_step : Format.formatter -> step -> unit

val is_odd_path : t -> src:int -> dst:int -> bool
(** Does the hypergraph consist only of size-2 edges forming a simple path
    from [src] to [dst] with an odd number of edges (Definition 4.9's odd
    path)? Isolated vertices are tolerated (they never constrain hitting
    sets). *)

val path_endpoints_length : t -> (int * int * int) option
(** If the non-isolated part of the hypergraph is a simple path of size-2
    edges, returns [(endpoint, endpoint, length)]. *)

(** {1 Hitting sets} *)

val min_hitting_set : ?weights:(int -> int) -> ?fuel:(unit -> unit) -> t -> int * int list
(** Exact minimum-weight hitting set by branch and bound on a condensed copy
    (default weight 1 per vertex). Returns the optimal weight and a witness.
    [fuel] is called once per branch node; it may raise (e.g.
    [Resilience.Budget.Exhausted]) to abort an over-budget search — the
    exception propagates unchanged. If some edge is empty, no hitting set
    exists:
    @raise Invalid_argument in that case. *)

val greedy_hitting_set : ?weights:(int -> int) -> t -> int * int list
(** Polynomial greedy upper bound: repeatedly takes the vertex covering the
    most still-unhit edges per unit weight. The returned set hits every edge
    (it is a certified upper bound on {!min_hitting_set}, within the
    classical [H_d] approximation factor), and the returned weight is the
    exact weight of that set.
    @raise Invalid_argument if some edge is empty. *)

val min_hitting_set_bruteforce : ?weights:(int -> int) -> t -> int
(** Reference implementation enumerating all vertex subsets; exponential,
    for tests only. *)

val all_min_hitting_sets : ?weights:(int -> int) -> t -> int * Iset.t list
(** The optimal weight together with {e every} inclusion-wise distinct
    minimum-weight hitting set (restricted to vertices that occur in some
    edge — vertices outside all edges never help). Exponential output in the
    worst case; intended for analysis of small instances.
    @raise Invalid_argument if some edge is empty. *)
