(** RPQ evaluation: does the database contain an L-walk (Section 2)?

    Implemented by reachability in the product of the database with an
    ε-free NFA for L (cf. Appendix A, citing Mendelzon & Wood). Also
    provides witness extraction (used by the branch-and-bound solver) and
    exhaustive match enumeration (used by the gadget verifier and the
    hitting-set solver for finite languages). *)

val satisfies : Db.t -> Automata.Nfa.t -> bool
(** [satisfies d a] iff some walk of [d] is labeled by a word of [L(a)].
    If ε ∈ L(a), every database (even empty) satisfies the query. *)

val shortest_witness : Db.t -> Automata.Nfa.t -> int list option
(** A shortest L-walk, as the sequence of its fact ids (the same fact may
    repeat). [Some []] when ε ∈ L(a). *)

val matches_up_to :
  ?fuel:(unit -> unit) -> Db.t -> Automata.Nfa.t -> max_len:int -> Hypergraph.Iset.t list
(** All distinct {e fact sets} of L-walks of length ≤ [max_len]
    (the hyperedges of the hypergraph of matches, Definition 4.7).
    Exponential; intended for small databases. [fuel] is called once per
    explored product node; it may raise (e.g.
    [Resilience.Budget.Exhausted]) to abort an over-budget enumeration —
    the exception propagates unchanged. *)

val all_matches : ?fuel:(unit -> unit) -> Db.t -> Automata.Nfa.t -> Hypergraph.Iset.t list
(** All match fact-sets, for databases where this is finite and enumerable:
    either the database is acyclic (walks are simple paths) or the language
    is finite (walk length is bounded by the longest word).
    @raise Invalid_argument when neither holds. *)

val match_hypergraph : ?fuel:(unit -> unit) -> Db.t -> Automata.Nfa.t -> Hypergraph.t
(** The hypergraph of matches [H_{L,D}] (vertices = live fact ids), using
    {!all_matches}. *)
