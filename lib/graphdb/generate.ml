module Prng = Invariant.Prng

let pick_mult st max_mult = if max_mult <= 1 then 1 else 1 + Prng.int st max_mult

let random ~nnodes ~nfacts ~alphabet ?(max_mult = 1) ~seed () =
  let st = Prng.make seed in
  let alpha = Array.of_list alphabet in
  let facts =
    List.init nfacts (fun _ ->
        ( Prng.int st nnodes,
          alpha.(Prng.int st (Array.length alpha)),
          Prng.int st nnodes,
          pick_mult st max_mult ))
  in
  Db.make_bag ~nnodes ~facts

let random_acyclic ~nnodes ~nfacts ~alphabet ?(max_mult = 1) ~seed () =
  let st = Prng.make seed in
  let alpha = Array.of_list alphabet in
  let facts =
    List.init nfacts (fun _ ->
        let u = Prng.int st (nnodes - 1) in
        let v = u + 1 + Prng.int st (nnodes - u - 1) in
        (u, alpha.(Prng.int st (Array.length alpha)), v, pick_mult st max_mult))
  in
  Db.make_bag ~nnodes ~facts

let flow_grid ~width ~depth ?(max_mult = 1) ~seed () =
  let st = Prng.make seed in
  (* Nodes: 2 * width source/sink shells + width * depth grid nodes. *)
  let grid l i = (2 * width) + (l * width) + i in
  let src i = i and dst i = width + i in
  let nnodes = (2 * width) + (width * depth) in
  let facts = ref [] in
  let add s c d = facts := (s, c, d, pick_mult st max_mult) :: !facts in
  for i = 0 to width - 1 do
    add (src i) 'a' (grid 0 i);
    add (grid (depth - 1) i) 'b' (dst i)
  done;
  for l = 0 to depth - 2 do
    for i = 0 to width - 1 do
      add (grid l i) 'x' (grid (l + 1) i);
      if i + 1 < width then add (grid l i) 'x' (grid (l + 1) (i + 1))
    done
  done;
  Db.make_bag ~nnodes ~facts:!facts

let layered ~layers ~width ?(density = 0.5) ?(max_mult = 1) ~seed () =
  let st = Prng.make seed in
  let nlayers = List.length layers + 1 in
  let node l i = (l * width) + i in
  let facts = ref [] in
  List.iteri
    (fun l c ->
      for i = 0 to width - 1 do
        for j = 0 to width - 1 do
          if Prng.float st 1.0 < density then
            facts := (node l i, c, node (l + 1) j, pick_mult st max_mult) :: !facts
        done
      done)
    layers;
  Db.make_bag ~nnodes:(nlayers * width) ~facts:!facts

let social ~nusers ?(density = 0.08) ~seed () =
  let st = Prng.make seed in
  let facts = ref [] in
  let letters = [| 'f'; 'm'; 'b' |] in
  for u = 0 to nusers - 1 do
    for v = 0 to nusers - 1 do
      if u <> v then
        Array.iter
          (fun c -> if Prng.float st 1.0 < density then facts := (u, c, v, 1) :: !facts)
          letters
    done
  done;
  Db.make_bag ~nnodes:nusers ~facts:!facts
