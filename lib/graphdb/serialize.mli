(** Text serialization of graph databases.

    Format: one fact per line, [src label dst [multiplicity]], where src and
    dst are arbitrary whitespace-free node names and label is a single
    character; [#] starts a comment line. This is the format read by the
    `rpq solve` command. *)

val to_string : ?names:(int -> string) -> Db.t -> string
(** Serializes the live facts (default node names: [n<i>]). *)

type parsed = {
  db : Db.t;
  node_name : int -> string;  (** node id → declared name *)
  node_id : string -> int option;  (** declared name → node id *)
}

val parse : string -> (parsed, string) result
(** Parses a database. Rejects malformed lines and multiplicities < 1;
    error messages start with ["<line>:"] so callers can prefix a file name
    and report a standard [file:line] diagnostic. *)

val of_string : string -> (Db.t * (int -> string), string) result
(** Parses a database; returns it with the node-naming function. *)

val to_dot : ?names:(int -> string) -> Db.t -> string
(** Graphviz rendering with edge labels [letter(xmult)]. *)
