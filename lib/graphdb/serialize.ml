let default_name i = Printf.sprintf "n%d" i

let to_string ?(names = default_name) d =
  let b = Buffer.create 256 in
  List.iter
    (fun (id, (f : Db.fact)) ->
      if Db.mult d id = 1 then
        Buffer.add_string b
          (Printf.sprintf "%s %c %s\n" (names f.Db.src) f.Db.label (names f.Db.dst))
      else
        Buffer.add_string b
          (Printf.sprintf "%s %c %s %d\n" (names f.Db.src) f.Db.label (names f.Db.dst)
             (Db.mult d id)))
    (Db.facts d);
  Buffer.contents b

type parsed = { db : Db.t; node_name : int -> string; node_id : string -> int option }

let parse s =
  let b = Db.Builder.create () in
  let error = ref None in
  (* Error messages start with "<line>:" so a caller can prefix the file
     name and get a standard file:line diagnostic. *)
  List.iteri
    (fun lineno line ->
      if !error = None then begin
        let line = String.trim line in
        if line <> "" && line.[0] <> '#' then
          match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
          | [ src; label; dst ] when String.length label = 1 -> Db.Builder.add b src label.[0] dst
          | [ src; label; dst; m ] when String.length label = 1 -> begin
              match int_of_string_opt m with
              | Some m when m >= 1 -> Db.Builder.add b ~mult:m src label.[0] dst
              | _ ->
                  error :=
                    Some
                      (Printf.sprintf "%d: bad multiplicity %S (expected an integer >= 1)"
                         (lineno + 1) m)
            end
          | _ ->
              error :=
                Some
                  (Printf.sprintf
                     "%d: expected `src label dst [mult]` with a single-character label"
                     (lineno + 1))
      end)
    (String.split_on_char '\n' s);
  match !error with
  | Some e -> Error e
  | None ->
      Ok { db = Db.Builder.build b; node_name = Db.Builder.node_name b; node_id = Db.Builder.find_node b }

let of_string s =
  Result.map (fun p -> (p.db, p.node_name)) (parse s)

let to_dot ?(names = default_name) d =
  let b = Buffer.create 256 in
  Buffer.add_string b "digraph db {\n  rankdir=LR;\n";
  for v = 0 to Db.nnodes d - 1 do
    Buffer.add_string b (Printf.sprintf "  v%d [label=\"%s\"];\n" v (names v))
  done;
  List.iter
    (fun (id, (f : Db.fact)) ->
      let label =
        if Db.mult d id = 1 then String.make 1 f.Db.label
        else Printf.sprintf "%c(x%d)" f.Db.label (Db.mult d id)
      in
      Buffer.add_string b (Printf.sprintf "  v%d -> v%d [label=\"%s\"];\n" f.Db.src f.Db.dst label))
    (Db.facts d);
  Buffer.add_string b "}\n";
  Buffer.contents b
