(** Graph databases (Section 2 of the paper).

    A graph database over Σ is a set of labeled edges ("facts")
    [v --a--> v'], optionally with multiplicities (bag semantics: the
    multiplicity of a fact is the cost of removing it). Nodes and fact ids
    are dense integers; a name-based builder is provided for examples.

    Removing facts ({!restrict}) keeps the id space intact and marks facts
    dead, so fact ids remain stable across sub-databases — this is what the
    resilience solvers rely on to report contingency sets. *)

type fact = { src : int; label : char; dst : int }

type t
(** Immutable database. Fact ids are [0 .. fact_count - 1]; some may be dead
    in a restriction. *)

val make : nnodes:int -> facts:(int * char * int) list -> t
(** Set database: every fact has multiplicity 1. Duplicate facts are merged.
    @raise Invalid_argument on out-of-range nodes. *)

val make_bag : nnodes:int -> facts:(int * char * int * int) list -> t
(** Bag database: [(src, label, dst, multiplicity)] with multiplicity ≥ 1.
    Duplicate facts have their multiplicities added. *)

val nnodes : t -> int

val fact_count : t -> int
(** Size of the fact id space (live and dead facts). *)

val live_count : t -> int
val is_live : t -> int -> bool
val fact : t -> int -> fact
val mult : t -> int -> int
(** Multiplicity (removal cost) of a fact id. *)

val total_mult : t -> int
(** Sum of multiplicities of the live facts. *)

val facts : t -> (int * fact) list
(** Live [(id, fact)] pairs in id order. *)

val alphabet : t -> Automata.Cset.t
(** Letters used by the live facts. *)

val out_edges : t -> int -> (int * fact) list
(** Outgoing live facts of a node, as [(id, fact)]. *)

val is_acyclic : t -> bool
(** No directed cycle among live facts (every walk is then a simple path). *)

val restrict : t -> removed:(int -> bool) -> t
(** Sub-database marking the selected live facts dead. *)

val remove : t -> int list -> t
(** Convenience: {!restrict} by an explicit id list. *)

val with_unit_mults : t -> t
(** Same facts, all multiplicities forced to 1 (set-semantics view). *)

val reverse : t -> t
(** Reverses the direction of every fact (Proposition E.1's reduction). *)

val unsafe_make_bag : nnodes:int -> facts:(int * char * int * int) list -> t
(** {!make_bag} without range/multiplicity checks and without duplicate
    merging. Only for tests of {!validate} and trusted deserialization
    paths; out-of-range {e source} nodes are silently dropped from the
    adjacency index (so that even corrupt inputs build a value to
    validate). *)

val validate : t -> (unit, Invariant.violation list) result
(** Machine-checks the database invariants: parallel array lengths, node
    ranges of every fact, multiplicities ≥ 1, canonical fact order, and the
    outgoing-edge index being in sync with the alive mask (which {!restrict}
    and the solvers rely on). *)

val pp : Format.formatter -> t -> unit

(** {1 Name-based builder} *)

module Builder : sig
  type db = t
  type t

  val create : unit -> t

  val node : t -> string -> int
  (** Returns (creating if needed) the node with this name. *)

  val find_node : t -> string -> int option
  (** Looks the name up without creating it. *)

  val add : t -> ?mult:int -> string -> char -> string -> unit
  (** [add b "u" 'a' "v"] adds the fact [u --a--> v]. *)

  val add_word_path : t -> string -> Automata.Word.t -> string -> unit
  (** [add_word_path b "u" "abc" "v"] adds a chain of fresh intermediate
      nodes spelling the word from [u] to [v]; with the empty word, [u] and
      [v] must be the same node. *)

  val build : t -> db
  val node_name : t -> int -> string
end
