type fact = { src : int; label : char; dst : int }

type t = {
  nnodes : int;
  all_facts : fact array;
  mults : int array;
  alive : bool array;
  out : (int * fact) list array;  (* outgoing live facts per node, kept in sync *)
}

let compute_out nnodes all_facts alive =
  let out = Array.make (max nnodes 1) [] in
  Array.iteri
    (fun id f -> if alive.(id) then out.(f.src) <- (id, f) :: out.(f.src))
    all_facts;
  Array.map List.rev out

let of_mult_list nnodes fact_mults =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (src, label, dst, m) ->
      if src < 0 || src >= nnodes || dst < 0 || dst >= nnodes then
        invalid_arg "Db.make: node out of range";
      if m < 1 then invalid_arg "Db.make: multiplicity must be >= 1";
      let key = (src, label, dst) in
      Hashtbl.replace tbl key (Option.value ~default:0 (Hashtbl.find_opt tbl key) + m))
    fact_mults;
  let entries = Hashtbl.fold (fun k m acc -> (k, m) :: acc) tbl [] in
  let entries = List.sort compare entries in
  let all_facts = Array.of_list (List.map (fun ((s, l, d), _) -> { src = s; label = l; dst = d }) entries) in
  let mults = Array.of_list (List.map snd entries) in
  let alive = Array.make (Array.length all_facts) true in
  { nnodes; all_facts; mults; alive; out = compute_out nnodes all_facts alive }

let make ~nnodes ~facts = of_mult_list nnodes (List.map (fun (s, l, d) -> (s, l, d, 1)) facts)
let make_bag ~nnodes ~facts = of_mult_list nnodes facts

let unsafe_make_bag ~nnodes ~facts =
  let entries = List.sort compare facts in
  let all_facts =
    Array.of_list (List.map (fun (s, l, d, _) -> { src = s; label = l; dst = d }) entries)
  in
  let mults = Array.of_list (List.map (fun (_, _, _, m) -> m) entries) in
  let alive = Array.make (Array.length all_facts) true in
  let out = Array.make (max nnodes 1) [] in
  Array.iteri
    (fun id f -> if f.src >= 0 && f.src < Array.length out then out.(f.src) <- (id, f) :: out.(f.src))
    all_facts;
  { nnodes; all_facts; mults; alive; out = Array.map List.rev out }
let nnodes t = t.nnodes
let fact_count t = Array.length t.all_facts
let live_count t = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.alive
let is_live t id = t.alive.(id)
let fact t id = t.all_facts.(id)
let mult t id = t.mults.(id)

let total_mult t =
  let acc = ref 0 in
  Array.iteri (fun id a -> if a then acc := !acc + t.mults.(id)) t.alive;
  !acc

let facts t =
  let acc = ref [] in
  for id = Array.length t.all_facts - 1 downto 0 do
    if t.alive.(id) then acc := (id, t.all_facts.(id)) :: !acc
  done;
  !acc

let alphabet t =
  List.fold_left (fun acc (_, f) -> Automata.Cset.add f.label acc) Automata.Cset.empty (facts t)

let out_edges t v = t.out.(v)

let is_acyclic t =
  let color = Array.make (max t.nnodes 1) 0 in
  let cyclic = ref false in
  let rec dfs v =
    if color.(v) = 1 then cyclic := true
    else if color.(v) = 0 then begin
      color.(v) <- 1;
      List.iter (fun (_, f) -> dfs f.dst) t.out.(v);
      color.(v) <- 2
    end
  in
  for v = 0 to t.nnodes - 1 do
    dfs v
  done;
  not !cyclic

let restrict t ~removed =
  let alive = Array.mapi (fun id a -> a && not (removed id)) t.alive in
  { t with alive; out = compute_out t.nnodes t.all_facts alive }

let remove t ids = restrict t ~removed:(fun id -> List.mem id ids)
let with_unit_mults t = { t with mults = Array.map (fun _ -> 1) t.mults }

let reverse t =
  let all_facts = Array.map (fun f -> { src = f.dst; label = f.label; dst = f.src }) t.all_facts in
  { t with all_facts; out = compute_out t.nnodes all_facts t.alive }

let validate t =
  let module C = Invariant.Collector in
  let c = C.create "Graphdb.Db" in
  let nfacts = Array.length t.all_facts in
  C.check c (t.nnodes >= 0) ~invariant:"node-count" "nnodes = %d is negative" t.nnodes;
  C.check c
    (Array.length t.mults = nfacts)
    ~invariant:"array-lengths" "mults has length %d, expected %d" (Array.length t.mults) nfacts;
  C.check c
    (Array.length t.alive = nfacts)
    ~invariant:"array-lengths" "alive has length %d, expected %d" (Array.length t.alive) nfacts;
  Array.iteri
    (fun id f ->
      C.check c
        (f.src >= 0 && f.src < t.nnodes && f.dst >= 0 && f.dst < t.nnodes)
        ~invariant:"node-range" "fact %d: %d --%C--> %d outside [0,%d)" id f.src f.label f.dst
        t.nnodes)
    t.all_facts;
  Array.iteri
    (fun id m ->
      if id < nfacts then
        C.check c (m >= 1) ~invariant:"multiplicity" "fact %d has multiplicity %d < 1" id m)
    t.mults;
  (* Strictly increasing: [make_bag] sorts and merges duplicates, so equal
     adjacent facts mean the merge step was bypassed. *)
  for id = 0 to nfacts - 2 do
    C.check c
      (compare t.all_facts.(id) t.all_facts.(id + 1) < 0)
      ~invariant:"fact-order" "facts %d and %d out of canonical order (or unmerged duplicates)"
      id (id + 1)
  done;
  (* The out index must stay in sync with the alive mask. *)
  if C.violations c = [] then begin
    let expected = compute_out t.nnodes t.all_facts t.alive in
    C.check c
      (Array.length t.out = Array.length expected)
      ~invariant:"out-index" "out index has %d rows, expected %d" (Array.length t.out)
      (Array.length expected);
    if Array.length t.out = Array.length expected then
      Array.iteri
        (fun v row ->
          C.check c
            (row = expected.(v))
            ~invariant:"out-index" "out index of node %d disagrees with the live facts" v)
        t.out
  end;
  C.result c

let pp ppf t =
  Format.fprintf ppf "@[<v>db: %d nodes, %d facts@," t.nnodes (live_count t);
  List.iter
    (fun (id, f) ->
      Format.fprintf ppf "  f%d: %d --%c--> %d (x%d)@," id f.src f.label f.dst t.mults.(id))
    (facts t);
  Format.fprintf ppf "@]"

module Builder = struct
  type db = t

  type t = {
    names : (string, int) Hashtbl.t;
    mutable rev_names : string list;
    mutable next_node : int;
    mutable fact_list : (int * char * int * int) list;
    mutable fresh : int;
  }

  let create () =
    { names = Hashtbl.create 16; rev_names = []; next_node = 0; fact_list = []; fresh = 0 }

  let find_node b name = Hashtbl.find_opt b.names name

  let node b name =
    match Hashtbl.find_opt b.names name with
    | Some id -> id
    | None ->
        let id = b.next_node in
        b.next_node <- id + 1;
        Hashtbl.add b.names name id;
        b.rev_names <- name :: b.rev_names;
        id

  let add b ?(mult = 1) u label v =
    let us = node b u and vs = node b v in
    b.fact_list <- (us, label, vs, mult) :: b.fact_list

  let add_word_path b u w v =
    if w = "" then begin
      if u <> v then invalid_arg "Builder.add_word_path: empty word needs equal endpoints"
    end
    else begin
      let n = String.length w in
      let mid i =
        b.fresh <- b.fresh + 1;
        Printf.sprintf "__%s_%s_%d_%d" u v b.fresh i
      in
      let nodes = Array.of_list ((u :: List.init (n - 1) mid) @ [ v ]) in
      String.iteri (fun i c -> add b nodes.(i) c nodes.(i + 1)) w
    end

  let build b = of_mult_list b.next_node (List.rev b.fact_list)

  let node_name b id =
    let arr = Array.of_list (List.rev b.rev_names) in
    if id >= 0 && id < Array.length arr then arr.(id) else Printf.sprintf "#%d" id
end
