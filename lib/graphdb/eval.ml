module ISet = Hypergraph.Iset

let steps = Obs.Metrics.counter "eval.steps"

(* Evaluation works on the ε-free version of the automaton: states of the
   product are (node, state) pairs. *)

let satisfies d (a : Automata.Nfa.t) =
  let a = Automata.Nfa.remove_eps a in
  if Automata.Nfa.nullable a then true
  else begin
    let n = a.Automata.Nfa.nstates in
    if n = 0 then false
    else begin
      let finals = Array.make n false in
      List.iter (fun f -> finals.(f) <- true) a.Automata.Nfa.final;
      let by_letter = Hashtbl.create 16 in
      List.iter
        (fun (s, c, s') ->
          Hashtbl.replace by_letter (c, s)
            (s' :: Option.value ~default:[] (Hashtbl.find_opt by_letter (c, s))))
        (Automata.Nfa.letter_transitions a);
      let seen = Hashtbl.create 64 in
      let queue = Queue.create () in
      let push v s =
        if not (Hashtbl.mem seen (v, s)) then begin
          Hashtbl.add seen (v, s) ();
          Queue.add (v, s) queue
        end
      in
      for v = 0 to Db.nnodes d - 1 do
        List.iter (fun s -> push v s) a.Automata.Nfa.initial
      done;
      let found = ref false in
      while (not !found) && not (Queue.is_empty queue) do
        let v, s = Queue.pop queue in
        if finals.(s) then found := true
        else
          List.iter
            (fun (_, (f : Db.fact)) ->
              match Hashtbl.find_opt by_letter (f.Db.label, s) with
              | Some succs -> List.iter (fun s' -> push f.Db.dst s') succs
              | None -> ())
            (Db.out_edges d v)
      done;
      !found
    end
  end

let shortest_witness d (a : Automata.Nfa.t) =
  let a = Automata.Nfa.remove_eps a in
  if Automata.Nfa.nullable a then Some []
  else begin
    let n = a.Automata.Nfa.nstates in
    if n = 0 then None
    else begin
      let finals = Array.make n false in
      List.iter (fun f -> finals.(f) <- true) a.Automata.Nfa.final;
      let by_letter = Hashtbl.create 16 in
      List.iter
        (fun (s, c, s') ->
          Hashtbl.replace by_letter (c, s)
            (s' :: Option.value ~default:[] (Hashtbl.find_opt by_letter (c, s))))
        (Automata.Nfa.letter_transitions a);
      (* BFS with parent pointers: parent maps (v, s) to (fact id, previous (v, s)). *)
      let parent : (int * int, (int * (int * int)) option) Hashtbl.t = Hashtbl.create 64 in
      let queue = Queue.create () in
      let push key p =
        if not (Hashtbl.mem parent key) then begin
          Hashtbl.add parent key p;
          Queue.add key queue
        end
      in
      for v = 0 to Db.nnodes d - 1 do
        List.iter (fun s -> push (v, s) None) a.Automata.Nfa.initial
      done;
      let result = ref None in
      (try
         while not (Queue.is_empty queue) do
           let ((v, s) as key) = Queue.pop queue in
           if finals.(s) then begin
             (* Reconstruct the fact sequence. *)
             let rec build key acc =
               match Hashtbl.find_opt parent key with
               | None | Some None -> acc
               | Some (Some (fid, prev)) -> build prev (fid :: acc)
             in
             result := Some (build key []);
             raise Exit
           end;
           List.iter
             (fun (fid, (f : Db.fact)) ->
               match Hashtbl.find_opt by_letter (f.Db.label, s) with
               | Some succs -> List.iter (fun s' -> push (f.Db.dst, s') (Some (fid, key))) succs
               | None -> ())
             (Db.out_edges d v)
         done
       with Exit -> ());
      !result
    end
  end

let matches_up_to ?(fuel = fun () -> ()) d (a : Automata.Nfa.t) ~max_len =
  let a = Automata.Nfa.remove_eps a in
  let results = ref [] in
  if Automata.Nfa.nullable a then results := [ ISet.empty ]
  else if a.Automata.Nfa.nstates > 0 then begin
    let finals = Array.make a.Automata.Nfa.nstates false in
    List.iter (fun f -> finals.(f) <- true) a.Automata.Nfa.final;
    let by_letter = Hashtbl.create 16 in
    List.iter
      (fun (s, c, s') ->
        Hashtbl.replace by_letter (c, s)
          (s' :: Option.value ~default:[] (Hashtbl.find_opt by_letter (c, s))))
      (Automata.Nfa.letter_transitions a);
    let seen = Hashtbl.create 64 in
    let rec go v s len fact_set =
      fuel ();
      Obs.Metrics.incr steps;
      if finals.(s) && not (Hashtbl.mem seen fact_set) then begin
        Hashtbl.add seen fact_set ();
        results := fact_set :: !results
      end;
      if len < max_len then
        List.iter
          (fun (fid, (f : Db.fact)) ->
            match Hashtbl.find_opt by_letter (f.Db.label, s) with
            | Some succs ->
                List.iter (fun s' -> go f.Db.dst s' (len + 1) (ISet.add fid fact_set)) succs
            | None -> ())
          (Db.out_edges d v)
    in
    for v = 0 to Db.nnodes d - 1 do
      List.iter (fun s -> go v s 0 ISet.empty) a.Automata.Nfa.initial
    done
  end;
  List.sort_uniq ISet.compare !results

let all_matches ?fuel d a =
  if Db.is_acyclic d then matches_up_to ?fuel d a ~max_len:(max 1 (Db.nnodes d))
  else begin
    let dfa = Automata.Dfa.of_nfa a in
    match Automata.Dfa.words dfa with
    | Some ws ->
        let max_len = List.fold_left (fun acc w -> max acc (String.length w)) 0 ws in
        matches_up_to ?fuel d a ~max_len
    | None ->
        invalid_arg "Eval.all_matches: cyclic database with an infinite language"
  end

let match_hypergraph ?fuel d a =
  let vertices = List.map fst (Db.facts d) in
  let edges = List.map ISet.elements (all_matches ?fuel d a) in
  Hypergraph.make ~vertices ~edges
