module Db = Graphdb.Db

type pre_gadget = {
  name : string;
  db : Db.t;
  t_in : int;
  t_out : int;
  label : char;
}

(* ---- Construction helper: named nodes and word-labeled chains ---- *)

(* A gadget spec is a list of chains (u, word, v): the word spelled by fresh
   intermediate nodes from u to v. Node names "t_in" / "t_out" are the
   distinguished elements. *)
let build ~name ~label chains =
  let b = Db.Builder.create () in
  let t_in = Db.Builder.node b "t_in" in
  let t_out = Db.Builder.node b "t_out" in
  List.iter (fun (u, w, v) -> Db.Builder.add_word_path b u w v) chains;
  { name; db = Db.Builder.build b; t_in; t_out; label }

let well_formed g =
  if g.t_in = g.t_out then Error "t_in = t_out"
  else if
    List.exists
      (fun (_, (f : Db.fact)) -> f.Db.dst = g.t_in || f.Db.dst = g.t_out)
      (Db.facts g.db)
  then Error "t_in or t_out occurs as the head of a fact"
  else Ok ()

type completion = { db' : Db.t; f_in : int; f_out : int }

let complete g =
  let n = Db.nnodes g.db in
  let s_in = n and s_out = n + 1 in
  let facts =
    (s_in, g.label, g.t_in, 1)
    :: (s_out, g.label, g.t_out, 1)
    :: List.map (fun (id, (f : Db.fact)) -> (f.Db.src, f.Db.label, f.Db.dst, Db.mult g.db id))
         (Db.facts g.db)
  in
  let db' = Db.make_bag ~nnodes:(n + 2) ~facts in
  let find src dst =
    match
      List.find_opt
        (fun (_, (f : Db.fact)) -> f.Db.src = src && f.Db.label = g.label && f.Db.dst = dst)
        (Db.facts db')
    with
    | Some (id, _) -> id
    | None ->
        Invariant.internal_error "Gadgets: embedded fact %d --%c--> %d missing from product db"
          src g.label dst
  in
  { db'; f_in = find s_in g.t_in; f_out = find s_out g.t_out }

type verification = {
  ok : bool;
  matches : Hypergraph.t;
  condensed : Hypergraph.t;
  odd_path_length : int option;
  failure : string option;
}

let verify g lang =
  match well_formed g with
  | Error e ->
      let empty = Hypergraph.make ~vertices:[] ~edges:[] in
      { ok = false; matches = empty; condensed = empty; odd_path_length = None; failure = Some e }
  | Ok () ->
      let { db'; f_in; f_out } = complete g in
      let matches = Graphdb.Eval.match_hypergraph db' lang in
      let condensed = Hypergraph.condense ~protected:[ f_in; f_out ] matches in
      let ok = Hypergraph.is_odd_path condensed ~src:f_in ~dst:f_out in
      let odd_path_length =
        match Hypergraph.path_endpoints_length condensed with
        | Some (_, _, len) when ok -> Some len
        | _ -> None
      in
      {
        ok;
        matches;
        condensed;
        odd_path_length;
        failure = (if ok then None else Some "condensation is not an odd F_in--F_out path");
      }

let encode g (graph : Graphs.Ugraph.t) =
  let b = Db.Builder.create () in
  let node_t u = Printf.sprintf "t_%d" u in
  let node_s u = Printf.sprintf "s_%d" u in
  (* Step 1: one endpoint fact per vertex of the graph. *)
  for u = 0 to Graphs.Ugraph.n graph - 1 do
    Db.Builder.add b (node_s u) g.label (node_t u)
  done;
  (* Step 2: one fresh copy of the pre-gadget per edge, with t_in ↦ t_u and
     t_out ↦ t_v. *)
  List.iteri
    (fun i (u, v) ->
      let rename w =
        if w = g.t_in then node_t u
        else if w = g.t_out then node_t v
        else Printf.sprintf "g%d_%d" i w
      in
      List.iter
        (fun (id, (f : Db.fact)) ->
          Db.Builder.add b ~mult:(Db.mult g.db id) (rename f.Db.src) f.Db.label
            (rename f.Db.dst))
        (Db.facts g.db))
    (Graphs.Ugraph.edges graph);
  Db.Builder.build b

let expected_resilience g lang graph =
  match (verify g lang).odd_path_length with
  | None -> invalid_arg "Gadgets.expected_resilience: gadget does not verify"
  | Some l ->
      let k = Graphs.Ugraph.vertex_cover_number graph in
      let m = Graphs.Ugraph.edge_count graph in
      k + (m * (l - 1) / 2)

let reduction_check g lang graph =
  let xi = encode g graph in
  let value, _ = Exact.hitting_set xi lang in
  Value.equal value (Value.Finite (expected_resilience g lang graph))

(* ---- Concrete gadgets from the paper ---- *)

let lang s = Automata.Lang.of_string s

(* Figure 3a: the 4-fact pre-gadget for aa (Proposition 4.1). *)
let gadget_aa () =
  ( build ~name:"aa (Fig 3a)" ~label:'a'
      [ ("t_in", "a", "1"); ("1", "a", "2"); ("2", "a", "3"); ("t_out", "a", "2") ],
    lang "aa" )

(* Figure 12 (Claim E.9): same database, language aaa. *)
let gadget_aaa () =
  ( build ~name:"aaa (Fig 12)" ~label:'a'
      [ ("t_in", "a", "1"); ("1", "a", "2"); ("2", "a", "3"); ("t_out", "a", "2") ],
    lang "aaa" )

(* Figure 13 (Claim E.12): language aab with a ≠ b. *)
let gadget_aab () =
  ( build ~name:"aab (Fig 13)" ~label:'a'
      [
        ("t_in", "a", "1");
        ("1", "b", "2");
        ("3", "a", "1");
        ("t_out", "a", "3");
        ("3", "b", "4");
      ],
    lang "aab" )

(* Figure 11 (Claim E.8): languages containing aba and bab. *)
let gadget_aba_bab () =
  ( build ~name:"aba|bab (Fig 11)" ~label:'a'
      [
        ("t_in", "b", "1");
        ("5", "b", "1");
        ("1", "a", "2");
        ("2", "b", "3");
        ("3", "a", "4");
        ("7", "a", "4");
        ("4", "b", "6");
        ("t_out", "b", "7");
        ("8", "b", "7");
      ],
    lang "aba|bab" )

(* Figure 9 (Lemma E.4 with δ = ε): language {aγa}, no infix of γaγ in L.
   For γ = ε this degenerates to the aa gadget of Figure 3a. *)
let gadget_a_gamma_a ~gamma () =
  let l = lang (Printf.sprintf "a%sa" gamma) in
  if gamma = "" then (fst (gadget_aa ()), l)
  else
    ( build ~name:(Printf.sprintf "a%sa (Fig 9)" gamma) ~label:'a'
        [
          ("t_in", gamma, "p1");
          ("p1", "a", "q1");
          ("q1", gamma, "p2");
          ("p2", "a", "q2");
          ("t_out", gamma, "p2");
        ],
      l )

(* Figure 10 (Lemma E.4 with δ ≠ ε): language {aγaδ}. For γ = ε the shape
   degenerates and the Figure 13 layout (aab generalized with a δ-chain)
   applies instead. *)
let gadget_a_gamma_a_delta ~gamma ~delta () =
  let l = lang (Printf.sprintf "a%sa%s" gamma delta) in
  let name = Printf.sprintf "a%sa%s (Fig 10)" gamma delta in
  if delta = "" then (fst (gadget_a_gamma_a ~gamma ()), l)
  else if gamma = "" then
    ( build ~name ~label:'a'
        [
          ("t_in", "a", "1");
          ("1", delta, "2");
          ("3", "a", "1");
          ("t_out", "a", "3");
          ("3", delta, "4");
        ],
      l )
  else
    ( build ~name ~label:'a'
        [
          ("t_in", gamma, "p1");
          ("p1", "a", "q1");
          ("q1", delta, "d1");
          ("q1", gamma, "p2");
          ("p2", "a", "q2");
          ("q2", delta, "d2");
          ("t_out", gamma, "p2");
        ],
      l )

(* Builder that tolerates ε-labeled chains by unifying node names first. *)
let build_unified ~name ~label segments =
  (* Union-find on node names for ε segments. *)
  let parent = Hashtbl.create 16 in
  let rec find n =
    match Hashtbl.find_opt parent n with
    | None -> n
    | Some p ->
        let r = find p in
        Hashtbl.replace parent n r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then
      (* Keep the distinguished names as representatives. *)
      if rb = "t_in" || rb = "t_out" then Hashtbl.replace parent ra rb
      else Hashtbl.replace parent rb ra
  in
  List.iter (fun (u, w, v) -> if w = "" then union u v) segments;
  let chains =
    List.filter_map (fun (u, w, v) -> if w = "" then None else Some (find u, w, find v)) segments
  in
  build ~name ~label (List.sort_uniq compare chains)

(* The generic case-1 gadget of Theorem 5.5 (Figure 7), as a 9-match chain
   A A C C C C C A A with shares b, x, d, c, d, c, x, b. Writing
   α' = a·α, β' = β·b, γ' = c·γ, δ' = δ·d, the two word shapes are
   α'xβ' = a α x β b and γ'xδ' = c γ x δ d; the chain was designed and is
   verified programmatically (cf. the test suite), following the paper's own
   methodology for Figures 7–8. *)
let gadget_four_legged_case1 ~x ~alpha ~beta ~gamma ~delta _lang_nfa =
  if alpha = "" || beta = "" || gamma = "" || delta = "" then
    invalid_arg "gadget_four_legged_case1: legs must be non-empty";
  let a = String.make 1 alpha.[0] in
  let al = String.sub alpha 1 (String.length alpha - 1) in
  let b = String.make 1 beta.[String.length beta - 1] in
  let be = String.sub beta 0 (String.length beta - 1) in
  let c = String.make 1 gamma.[0] in
  let ga = String.sub gamma 1 (String.length gamma - 1) in
  let d = String.make 1 delta.[String.length delta - 1] in
  let de = String.sub delta 0 (String.length delta - 1) in
  let xs = String.make 1 x in
  build_unified
    ~name:
      (Printf.sprintf "four-legged case 1 (%sx%s|%sx%s)" alpha beta gamma delta)
    ~label:a.[0]
    [
      (* M1: F_in · α-chain · x · β-chain · b-fact B1 *)
      ("t_in", al, "e1"); ("e1", xs, "f1"); ("f1", be, "g1"); ("g1", b, "h1");
      (* M2: a-fact A2 · α · X2 · β · B1 (share B1) *)
      ("p2", a, "p2h"); ("p2h", al, "e2"); ("e2", xs, "f2"); ("f2", be, "g1");
      (* M3: c-fact C3 · γ ending at e2 · X2 · δ · D3 (share X2) *)
      ("r3", c, "r3h"); ("r3h", ga, "e2"); ("f2", de, "g3"); ("g3", d, "h3");
      (* M4: C4 · γ · X4 · δ converging at g3 · D3 (share D3) *)
      ("r4", c, "r4h"); ("r4h", ga, "e4"); ("e4", xs, "f4"); ("f4", de, "g3");
      (* M5: C4 · γ (fresh) · X5 · δ · D5 (share C4) *)
      ("r4h", ga, "e5"); ("e5", xs, "f5"); ("f5", de, "g5"); ("g5", d, "h5");
      (* M6: C6 · γ · X6 · δ converging at g5 · D5 (share D5) *)
      ("r6", c, "r6h"); ("r6h", ga, "e6"); ("e6", xs, "f6"); ("f6", de, "g5");
      (* M7: C6 · γ (fresh) · X7 · δ · D7 (share C6) *)
      ("r6h", ga, "e7"); ("e7", xs, "f7"); ("f7", de, "g7"); ("g7", d, "h7");
      (* M8: A8 · α ending at e7 · X7 · β · B8 (share X7) *)
      ("p8", a, "p8h"); ("p8h", al, "e7"); ("f7", be, "g8"); ("g8", b, "h8");
      (* M9: F_out · α-chain · X9 · β converging at g8 · B8 (share B8) *)
      ("t_out", al, "e9"); ("e9", xs, "f9"); ("f9", be, "g8");
    ]

(* Case 2 of Theorem 5.5 (Figure 8): some infix of γ'xβ' is in L; following
   the proof in Appendix D.1, the relevant extra match shape is c₂xb with c₂
   the last letter of γ' and b the first letter of β'. Our gadget is a
   7-match chain of c₂xb- and γ'xδ'-walks (no a-fact appears, so α'xβ' never
   matches), with shares b, c₂, d, γ₂-chain, c₂, b; it requires |γ'| ≥ 2
   (for |γ'| = 1 a bespoke gadget is found by search, cf. the test suite)
   and, like the paper's own construction, is verified programmatically. *)
(* |γ'| = 1 sub-case with single-letter legs (e.g. axb|cxd|cxb): found by
   {!Gadget_search} (chain axb cxb cxd cxd cxd axb axb) and verified. *)
let gadget_case2_single_letters ~x ~a ~b ~c ~d =
  let s ch = String.make 1 ch in
  build
    ~name:(Printf.sprintf "four-legged case 2 short (%cx%c|%cx%c|%cx%c)" a b c d c b)
    ~label:a
    [
      ("t_in", s x, "n2"); ("n2", s b, "n3");
      ("n4", s c, "n5"); ("n5", s x, "n2");
      ("n5", s x, "n6"); ("n6", s d, "n7");
      ("n8", s c, "n9"); ("n9", s x, "n6");
      ("n9", s x, "n11"); ("n10", s a, "n9");
      ("n11", s b, "n12"); ("n11", s d, "n13");
      ("t_out", s x, "n11");
    ]

let gadget_four_legged_case2 ~x ~alpha ~beta ~gamma ~delta _lang_nfa =
  if alpha = "" || beta = "" || gamma = "" || delta = "" then
    invalid_arg "gadget_four_legged_case2: legs must be non-empty";
  if String.length gamma < 2 then
    if String.length alpha = 1 && String.length beta = 1 && String.length delta = 1 then
      gadget_case2_single_letters ~x ~a:alpha.[0] ~b:beta.[0] ~c:gamma.[0] ~d:delta.[0]
    else
      invalid_arg
        "gadget_four_legged_case2: |\xce\xb3'| = 1 with multi-letter legs is not covered by the \
         generic construction; try Gadget_search.certify_np_hard"
  else begin
  let c2 = String.make 1 gamma.[String.length gamma - 1] in
  let g2 = String.sub gamma 0 (String.length gamma - 1) in
  let b = String.make 1 beta.[0] in
  let d = String.make 1 delta.[String.length delta - 1] in
  let de = String.sub delta 0 (String.length delta - 1) in
  let xs = String.make 1 x in
  build_unified
    ~name:(Printf.sprintf "four-legged case 2 (%sx%s|%sx%s)" alpha beta gamma delta)
    ~label:c2.[0]
    [
      (* M1 (c₂xb): F_in · x · b-fact B1 *)
      ("t_in", xs, "n1"); ("n1", b, "h1");
      (* M2 (c₂xb): C2 · X2 · B1 (share B1) *)
      ("r2", c2, "q2"); ("q2", xs, "n1");
      (* M3 (γ'xδ'): γ₂-chain into r2 · C2 · X3 · δ-chain · D3 (share C2) *)
      ("s3", g2, "r2"); ("q2", xs, "n3"); ("n3", de, "g3"); ("g3", d, "h3");
      (* M4 (γ'xδ'): γ₂-chain · C4 · X4 · δ-chain converging at g3 · D3 *)
      ("s4", g2, "r4"); ("r4", c2, "q4"); ("q4", xs, "n4"); ("n4", de, "g3");
      (* M5 (γ'xδ'): same γ₂-chain · C5 · X5 · δ · D5 (share the γ₂-chain) *)
      ("r4", c2, "q5"); ("q5", xs, "n5"); ("n5", de, "g5"); ("g5", d, "h5");
      (* M6 (c₂xb): C5 · X6 · B6 (share C5) *)
      ("q5", xs, "n6"); ("n6", b, "h6");
      (* M7 (c₂xb): F_out · X7 · B6 (share B6) *)
      ("t_out", xs, "n6");
    ]
  end

let gadget_axb_cxd () =
  let l = lang "axb|cxd" in
  (gadget_four_legged_case1 ~x:'x' ~alpha:"a" ~beta:"b" ~gamma:"c" ~delta:"d" l, l)
(* Figure 14 (Claim E.11): languages {axηya, yax} with x, y ∉ {a}. The η = ε
   skeleton was found by exhaustive chain search over seven axηya-matches;
   for η ≠ ε an η-chain is inserted at each x-head/y-tail junction. Verified
   programmatically like the paper's own gadget. The letters a, x, y are
   parameters (default a, x, y). *)
let gadget_axeya_yax_letters ~a ~x ~y ~eta () =
  let sa = String.make 1 a and sx = String.make 1 x and sy = String.make 1 y in
  let l = lang (Printf.sprintf "%s%s%s%s%s|%s%s%s" sa sx eta sy sa sy sa sx) in
  ( build_unified
      ~name:(Printf.sprintf "%sx%sy%s-family %s%s%s%s%s|%s%s%s (Fig 14)" sa sa sa sa sx eta sy sa sy sa sx)
      ~label:a
      [
        ("t_in", sx, "n5"); ("n5", eta, "n5e"); ("n5e", sy, "n3"); ("n3", sa, "n4");
        ("n9", sx, "n2"); ("n2", eta, "n2e"); ("n2e", sy, "n3"); ("n12", sa, "n9");
        ("n7", sx, "n8"); ("n8", eta, "n8e"); ("n8e", sy, "n12"); ("n6", sa, "n7");
        ("n11", sx, "n8"); ("n10", sa, "n11");
        ("n12", sa, "n13"); ("n13", sx, "n14"); ("n14", eta, "n14e");
        ("n14e", sy, "n15"); ("n15", sa, "n16"); ("n15", sa, "n17");
        ("t_out", sx, "n18"); ("n18", eta, "n18e"); ("n18e", sy, "n19"); ("n19", sa, "n13");
      ],
    l )

let gadget_axeya_yax ~eta () =
  let g, l = gadget_axeya_yax_letters ~a:'a' ~x:'x' ~y:'y' ~eta () in
  ({ g with name = Printf.sprintf "ax%sya|yax (Fig 14)" eta }, l)

(* Figure 15 (Proposition 7.6): found by exhaustive chain search (k = 7
   matches: ab bc ca ab bc bc ab) and verified programmatically. *)
let gadget_ab_bc_ca () =
  ( build ~name:"ab|bc|ca (Fig 15)" ~label:'a'
      [
        ("t_in", "b", "u2");
        ("u2", "c", "u3");
        ("u3", "a", "u4");
        ("u4", "b", "u5");
        ("t_out", "b", "u5");
        ("u5", "c", "u6");
      ],
    lang "ab|bc|ca" )

(* Figure 16 (Proposition 7.8, abcd|be|ef): chain search, k = 7. *)
let gadget_abcd_be_ef () =
  ( build ~name:"abcd|be|ef (Fig 16)" ~label:'a'
      [
        ("t_in", "b", "2");
        ("t_out", "b", "11");
        ("2", "c", "3");
        ("2", "e", "4");
        ("3", "d", "5");
        ("4", "f", "6");
        ("7", "a", "8");
        ("8", "b", "9");
        ("9", "c", "10");
        ("9", "e", "4");
        ("10", "d", "12");
        ("11", "c", "10");
      ],
    lang "abcd|be|ef" )

(* Figure 17 (Proposition 7.8, abcd|bef): chain search, k = 5. *)
let gadget_abcd_bef () =
  ( build ~name:"abcd|bef (Fig 17)" ~label:'a'
      [
        ("t_in", "b", "2");
        ("t_out", "b", "11");
        ("2", "c", "3");
        ("2", "e", "4");
        ("3", "d", "6");
        ("4", "f", "5");
        ("7", "a", "8");
        ("8", "b", "9");
        ("9", "c", "10");
        ("9", "e", "4");
        ("10", "d", "12");
        ("11", "c", "10");
      ],
    lang "abcd|bef" )

let all_paper_gadgets () =
  let pairs =
    [
      gadget_aa ();
      gadget_aaa ();
      gadget_aab ();
      gadget_aba_bab ();
      gadget_a_gamma_a ~gamma:"bc" ();
      gadget_a_gamma_a_delta ~gamma:"b" ~delta:"d" ();
      gadget_axb_cxd ();
      (let l = lang "aexfb|cgxhd" in
       (gadget_four_legged_case1 ~x:'x' ~alpha:"ae" ~beta:"fb" ~gamma:"cg" ~delta:"hd" l, l));
      (let l = lang "axb|ccxd|cxb" in
       (gadget_four_legged_case2 ~x:'x' ~alpha:"a" ~beta:"b" ~gamma:"cc" ~delta:"d" l, l));
      (let l = lang "axb|cxd|cxb" in
       (gadget_four_legged_case2 ~x:'x' ~alpha:"a" ~beta:"b" ~gamma:"c" ~delta:"d" l, l));
      gadget_axeya_yax ~eta:"" ();
      gadget_axeya_yax ~eta:"c" ();
      gadget_ab_bc_ca ();
      gadget_abcd_be_ef ();
      gadget_abcd_bef ();
    ]
  in
  List.map (fun (g, l) -> (g.name, g, l)) pairs
