(* Worker plans (Kill_after / Wedge_after) are a pure function of the job
   payload: a hedged duplicate carries the payload verbatim and therefore
   replays the identical fault, which is what makes hedged and unhedged
   serving runs journal-identical (DESIGN.md §16). *)
type plan =
  | Off
  | At_tick of int
  | Seeded of { seed : int; period : int }
  | Kill_after of int
  | Wedge_after of int
  | Crash_at of { site : string; hits : int }
  | Net_at of { site : string; period : int }

exception Crash of string

(* The supervisor-side crash sites wired into lib/runner. The list lives
   here — next to the [crash:<site>:<n>] grammar it parameterizes — so
   the chaos harness and the docs share one source of truth. *)
let crash_sites =
  [
    "journal.pre_append";
    "journal.post_append";
    "journal.pre_fsync";
    "journal.mid_compact";
    "pool.post_dispatch";
  ]

(* The transport-level network fault sites wired into lib/runner's socket
   server. Unlike crash sites these are periodic and non-fatal: every
   [period]-th visit of the armed site makes that one operation fail
   (accept returns an error, a client connection is dropped, a write is
   truncated) while the server keeps running. The closed list keeps a
   typo'd spec from silently never firing. *)
let net_sites = [ "accept_fail"; "client_drop"; "partial_write" ]

let default_period = 1000
let default_seeded = Seeded { seed = 0x5eed; period = default_period }

(* Strict decimal parsing: [int_of_string_opt] accepts hex ("0x5"),
   underscores ("5_0", "5_") and a leading sign, so a spec like "tick:5_"
   would silently parse as a prefix of what the user typed. The fault
   grammar is plain decimals only; anything else is trailing garbage. *)
let dec_opt s =
  let n = String.length s in
  if n = 0 || n > 18 then None
  else begin
    let ok = ref true in
    String.iter (fun c -> if c < '0' || c > '9' then ok := false) s;
    if !ok then int_of_string_opt s else None
  end

let signed_dec_opt s =
  let n = String.length s in
  if n > 1 && s.[0] = '-' then
    Option.map (fun v -> -v) (dec_opt (String.sub s 1 (n - 1)))
  else dec_opt s

let grammar = "off | tick:N | seed:S[:M] | kill:N | wedge:N | crash:SITE:N | net:SITE:N"

(* Site names are dotted lowercase words ([journal.pre_append]); anything
   else in a crash spec is a typo, and a typo'd site would silently never
   fire — reject it up front instead. *)
let site_ok s =
  s <> ""
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '.' || c = '_')
       s

let parse s =
  let positive what n k =
    match dec_opt n with
    | Some n when n >= 1 -> Ok (k n)
    | _ ->
        Error
          (Printf.sprintf
             "%s index %S must be a decimal integer >= 1 (no trailing garbage); grammar: %s" what
             n grammar)
  in
  match String.lowercase_ascii (String.trim s) with
  | "" | "off" | "none" | "0" -> Ok Off
  | t -> begin
      match String.split_on_char ':' t with
      | [ "tick"; n ] -> positive "tick" n (fun n -> At_tick n)
      | [ "kill"; n ] -> positive "kill" n (fun n -> Kill_after n)
      | [ "wedge"; n ] -> positive "wedge" n (fun n -> Wedge_after n)
      | [ "seed"; s ] -> begin
          match signed_dec_opt s with
          | Some seed -> Ok (Seeded { seed; period = default_period })
          | None ->
              Error
                (Printf.sprintf "seed %S must be a decimal integer (no trailing garbage)" s)
        end
      | [ "crash"; site; n ] ->
          if not (site_ok site) then
            Error
              (Printf.sprintf
                 "crash site %S must be a dotted lowercase word (e.g. journal.pre_append); \
                  grammar: %s"
                 site grammar)
          else positive "crash" n (fun hits -> Crash_at { site; hits })
      | [ "net"; site; n ] ->
          if not (List.mem site net_sites) then
            Error
              (Printf.sprintf "net site %S must be one of %s; grammar: %s" site
                 (String.concat ", " net_sites)
                 grammar)
          else positive "net" n (fun period -> Net_at { site; period })
      | [ "seed"; s; m ] -> begin
          match (signed_dec_opt s, dec_opt m) with
          | Some seed, Some period when period >= 1 -> Ok (Seeded { seed; period })
          | _ ->
              Error
                (Printf.sprintf
                   "expected seed:<decimal int>:<decimal period >= 1> (no trailing garbage), \
                    got %S"
                   t)
        end
      | ("tick" | "kill" | "wedge" | "seed" | "crash" | "net") :: _ ->
          Error
            (Printf.sprintf "trailing garbage in fault plan %S (grammar: %s)" t grammar)
      | _ -> Error (Printf.sprintf "unrecognized fault plan %S (grammar: %s)" t grammar)
    end

let to_string = function
  | Off -> "off"
  | At_tick n -> Printf.sprintf "tick:%d" n
  | Seeded { seed; period } -> Printf.sprintf "seed:%d:%d" seed period
  | Kill_after n -> Printf.sprintf "kill:%d" n
  | Wedge_after n -> Printf.sprintf "wedge:%d" n
  | Crash_at { site; hits } -> Printf.sprintf "crash:%s:%d" site hits
  | Net_at { site; period } -> Printf.sprintf "net:%s:%d" site period

(* Stream state for Seeded plans: a 48-bit LCG drawn from the high bits
   (the low bits of an LCG have tiny periods — see Sfm.validate_submodular
   for the same construction and rationale). *)
let mix seed = (seed land max_int) lxor 0x2545F4914F6CDD1D

type state = {
  mutable active : plan;
  mutable lcg : int;
  mutable from_env : bool;  (** the active plan came from [RPQ_FAULTS] *)
  crash_hits : (string, int) Hashtbl.t;  (** per-site counters for [Crash_at] *)
}

let initial =
  match Sys.getenv_opt "RPQ_FAULTS" with
  | None -> Off
  (* An unrecognized value means someone asked for fault injection: fail
     safe and enable a deterministic default plan rather than silently
     running fault-free. *)
  | Some s -> Result.value ~default:default_seeded (parse s)

let seed_of = function
  | Seeded { seed; _ } -> seed
  | Off | At_tick _ | Kill_after _ | Wedge_after _ | Crash_at _ | Net_at _ -> 0

let state =
  {
    active = initial;
    lcg = mix (seed_of initial);
    from_env = Sys.getenv_opt "RPQ_FAULTS" <> None;
    crash_hits = Hashtbl.create 8;
  }

let plan () = state.active

let set_plan p =
  state.active <- p;
  state.lcg <- mix (seed_of p);
  state.from_env <- false;
  Hashtbl.reset state.crash_hits

let with_plan p f =
  let saved_plan = state.active and saved_lcg = state.lcg in
  let saved_env = state.from_env in
  let saved_hits = Hashtbl.fold (fun k v acc -> (k, v) :: acc) state.crash_hits [] in
  set_plan p;
  Fun.protect
    ~finally:(fun () ->
      state.active <- saved_plan;
      state.lcg <- saved_lcg;
      state.from_env <- saved_env;
      Hashtbl.reset state.crash_hits;
      List.iter (fun (k, v) -> Hashtbl.replace state.crash_hits k v) saved_hits)
    f

(* Under an env-installed plan a crash site really terminates the process
   (the chaos harness expects [_exit 70], mimicking an abrupt supervisor
   death); lib/core cannot reference Unix (see the rpq_lint unix rule), so
   the runner installs the exit behavior via this hook at link time. If the
   hook returns — or none is installed — we raise instead, which is the
   deterministic behavior programmatic [with_plan] tests rely on. *)
let crash_exit : (string -> unit) ref = ref (fun _ -> ())
let set_crash_exit f = crash_exit := f

let crash_site here =
  match state.active with
  | Crash_at { site; hits } when site = here ->
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt state.crash_hits here) in
      Hashtbl.replace state.crash_hits here n;
      if n = hits then begin
        if state.from_env then !crash_exit here;
        raise (Crash here)
      end
  | _ -> ()

(* Periodic, non-fatal: every [period]-th visit of the armed site fires.
   Counters share the crash_hits table (namespaced with a "net." prefix so
   a crash site and a net site can never alias), which keeps with_plan's
   save/restore covering both families. *)
let net_site here =
  match state.active with
  | Net_at { site; period } when site = here ->
      let key = "net." ^ here in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt state.crash_hits key) in
      Hashtbl.replace state.crash_hits key n;
      n mod period = 0
  | _ -> false

let next_fault_tick () =
  match state.active with
  | Off | Kill_after _ | Wedge_after _ | Crash_at _ | Net_at _ -> None
  | At_tick n -> Some n
  | Seeded { period; _ } ->
      state.lcg <- ((state.lcg * 25214903917) + 11) land 0xFFFFFFFFFFFF;
      Some (1 + ((state.lcg lsr 16) mod period))

let worker_mode () =
  match state.active with
  | Kill_after n -> Some (`Kill n)
  | Wedge_after n -> Some (`Wedge n)
  | Off | At_tick _ | Seeded _ | Crash_at _ | Net_at _ -> None
