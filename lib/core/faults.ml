type plan =
  | Off
  | At_tick of int
  | Seeded of { seed : int; period : int }

let default_period = 1000
let default_seeded = Seeded { seed = 0x5eed; period = default_period }

let parse s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "off" | "none" | "0" -> Ok Off
  | t -> begin
      match String.split_on_char ':' t with
      | [ "tick"; n ] -> begin
          match int_of_string_opt n with
          | Some n when n >= 1 -> Ok (At_tick n)
          | _ -> Error (Printf.sprintf "tick index %S must be an integer >= 1" n)
        end
      | [ "seed"; s ] -> begin
          match int_of_string_opt s with
          | Some seed -> Ok (Seeded { seed; period = default_period })
          | None -> Error (Printf.sprintf "seed %S must be an integer" s)
        end
      | [ "seed"; s; m ] -> begin
          match (int_of_string_opt s, int_of_string_opt m) with
          | Some seed, Some period when period >= 1 -> Ok (Seeded { seed; period })
          | _ -> Error (Printf.sprintf "expected seed:<int>:<period >= 1>, got %S" t)
        end
      | _ ->
          Error
            (Printf.sprintf "unrecognized fault plan %S (grammar: off | tick:N | seed:S[:M])" t)
    end

let to_string = function
  | Off -> "off"
  | At_tick n -> Printf.sprintf "tick:%d" n
  | Seeded { seed; period } -> Printf.sprintf "seed:%d:%d" seed period

(* Stream state for Seeded plans: a 48-bit LCG drawn from the high bits
   (the low bits of an LCG have tiny periods — see Sfm.validate_submodular
   for the same construction and rationale). *)
let mix seed = (seed land max_int) lxor 0x2545F4914F6CDD1D

type state = { mutable active : plan; mutable lcg : int }

let initial =
  match Sys.getenv_opt "RPQ_FAULTS" with
  | None -> Off
  (* An unrecognized value means someone asked for fault injection: fail
     safe and enable a deterministic default plan rather than silently
     running fault-free. *)
  | Some s -> Result.value ~default:default_seeded (parse s)

let seed_of = function Seeded { seed; _ } -> seed | Off | At_tick _ -> 0

let state = { active = initial; lcg = mix (seed_of initial) }

let plan () = state.active

let set_plan p =
  state.active <- p;
  state.lcg <- mix (seed_of p)

let with_plan p f =
  let saved_plan = state.active and saved_lcg = state.lcg in
  set_plan p;
  Fun.protect
    ~finally:(fun () ->
      state.active <- saved_plan;
      state.lcg <- saved_lcg)
    f

let next_fault_tick () =
  match state.active with
  | Off -> None
  | At_tick n -> Some n
  | Seeded { period; _ } ->
      state.lcg <- ((state.lcg * 25214903917) + 11) land 0xFFFFFFFFFFFF;
      Some (1 + ((state.lcg lsr 16) mod period))
