(** Resilience via submodular minimization (Proposition 7.7).

    For L = α | aₙ₋₁aₙ₊₁ with α = a₁⋯aₙ all distinct and aₙ₊₁ fresh
    (e.g. [abc|be], [abcd|ce]), resilience equals

    min over Z ⊆ Adom(D) of
      Σ_{v∈Z} |aₙ₋₁(_,v)| + Σ_{v∉Z} |aₙ₊₁(v,_)| + RES_bag(α, D ∖ ⋃_{v∈Z} aₙ(v,_))

    and this objective is submodular in Z (Lemma F.5, via Megiddo's
    multi-terminal flow lemma), so it can be minimized in PTIME. This is the
    paper's only tractable family with no known MinCut reduction. The inner
    RES_bag(α, ·) term is computed by the Theorem 3.3 MinCut solver (a single
    word with distinct letters is a local language). *)

type shape = {
  alpha : Automata.Word.t;  (** the long word a₁⋯aₙ *)
  a_pre : char;  (** aₙ₋₁ *)
  a_new : char;  (** aₙ₊₁ *)
  mirrored : bool;  (** the shape was found on the mirror language (Prop E.1) *)
}

val recognize : Automata.Word.t list -> shape option
(** Matches an explicit finite language against the Prop 7.7 shape, also up
    to mirroring. *)

val recognize_nfa : Automata.Nfa.t -> shape option

val oracle : Graphdb.Db.t -> shape -> int list * (bool array -> int)
(** The restricted ground set (vertices that are the middle of an actual
    aₙ₋₁aₙ₊₁ match) and the submodular objective over it; used by tests to
    check submodularity directly. *)

val solve : ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> (Value.t, string) result
(** Full pipeline: recognize the shape (possibly mirroring the database) and
    minimize the objective with {!Submodular.Sfm.minimize}. The budget
    (default {!Budget.unlimited}) is ticked once per SFM oracle call; may
    raise {!Budget.Exhausted}. *)
