(** Deterministic fault injection for the anytime solver engine and the
    supervised execution layer.

    Real failures — a wall-clock deadline firing mid-search, a worker
    process crashing or hanging — are timing-dependent and therefore
    impossible to reproduce in tests. This module lets the test suite and
    CI force them at an {e exact} tick index instead, at two levels:

    {ul
    {- {b budget faults} ([tick:N], [seed:S[:M]]): every budget created by
       {!Budget.create} asks the current plan for a tick at which to inject
       a synthetic {!Budget.Exhausted}, so every degradation path of
       [Solver.solve_bounded] can be exercised reproducibly;}
    {- {b worker faults} ([kill:N], [wedge:N]): the fork-isolated workers of
       [Runner] consult {!worker_mode} per job and, at the given budget
       tick, either self-SIGKILL ([kill]) or stop responding while blocking
       SIGTERM ([wedge], forcing the supervisor's SIGKILL-after-grace
       timeout path), so every supervision branch is deterministically
       testable.}}

    The plan is normally set by the [RPQ_FAULTS] environment variable:

    {v
    RPQ_FAULTS ::= "off"
                 | "tick:" N          fail every budget at its Nth tick
                 | "seed:" S          seeded stream, period 1000
                 | "seed:" S ":" M    seeded stream, period M
                 | "kill:" N          workers self-SIGKILL at budget tick N
                 | "wedge:" N         workers stop responding at budget tick N
    v}

    All numbers are plain decimals; a spec with trailing garbage
    ([tick:5x], [tick:5_], [seed:7:200:9]) is rejected with a clear error
    rather than silently parsed as a prefix. An unrecognized value means
    someone asked for fault injection: we fail safe and enable a default
    seeded plan rather than silently running fault-free.

    With [tick:N] every budget faults at tick [N] (N ≥ 1). With
    [seed:S:M] each successive budget draws its fault tick uniformly from
    [1 .. M] out of a deterministic LCG stream seeded by [S], so a whole
    test-suite run probes many different exhaustion points while staying
    bit-for-bit reproducible.

    Budget-fault injection only affects budgets made by {!Budget.create}
    (the budgets of [solve_bounded]); {!Budget.unlimited} never faults, so
    plain [Solver.solve] and the exact baselines are unaffected even under a
    fault-injection sweep. Worker-fault plans never inject budget
    exhaustion ({!next_fault_tick} is [None] for them): a tight retry
    budget can therefore exhaust {e before} the fault tick fires, which is
    exactly how the supervisor's budget-degradation retries turn a
    persistently crashing exact solve into a [Bounded] answer. *)

type plan =
  | Off
  | At_tick of int  (** every budget faults at this tick (≥ 1) *)
  | Seeded of { seed : int; period : int }
      (** each budget faults at a pseudo-random tick in [1 .. period],
          drawn from an LCG stream seeded once per [set_plan] *)
  | Kill_after of int
      (** worker processes self-SIGKILL once their job budget reaches this
          tick (≥ 1); budgets themselves never fault under this plan *)
  | Wedge_after of int
      (** worker processes stop responding (blocking SIGTERM) once their
          job budget reaches this tick (≥ 1) *)

val parse : string -> (plan, string) result
(** Parses the [RPQ_FAULTS] grammar above. Numbers must be plain decimal
    digits: hex, underscores, and any trailing garbage are rejected. *)

val to_string : plan -> string
(** Inverse of {!parse} (canonical form). *)

val plan : unit -> plan
(** The active plan (initially from [RPQ_FAULTS], default [Off]). *)

val set_plan : plan -> unit
(** Replaces the active plan and, for [Seeded], restarts its stream. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Runs the function under the given plan, restoring the previous plan
    (and its stream position) afterwards. *)

val next_fault_tick : unit -> int option
(** Resolves the active plan for a freshly created budget: [None] under
    [Off] and the worker-fault plans, [Some n] for the tick at which that
    budget must inject a fault. Each call under a [Seeded] plan advances
    the stream. *)

val worker_mode : unit -> [ `Kill of int | `Wedge of int ] option
(** The worker-level fault mode of the active plan, if any. Consulted by
    the [Runner] workers once per job; the budget tick at which the fault
    fires is implemented via the [probe] hook of {!Budget.create}. *)
