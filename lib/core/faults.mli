(** Deterministic fault injection for the anytime solver engine.

    Real budget exhaustion (a wall-clock deadline firing mid-search) is
    timing-dependent and therefore impossible to reproduce in tests. This
    module lets the test suite and CI force {!Budget} exhaustion at an
    {e exact} tick index instead: every budget created by {!Budget.create}
    asks the current fault plan for a tick at which to inject a synthetic
    exhaustion, so every degradation path of {!Solver.solve_bounded} can be
    exercised reproducibly.

    The plan is normally set by the [RPQ_FAULTS] environment variable:

    {v
    RPQ_FAULTS ::= "off"
                 | "tick:" N          fail every budget at its Nth tick
                 | "seed:" S          seeded stream, period 1000
                 | "seed:" S ":" M    seeded stream, period M
    v}

    With [tick:N] every budget faults at tick [N] (N ≥ 1). With
    [seed:S:M] each successive budget draws its fault tick uniformly from
    [1 .. M] out of a deterministic LCG stream seeded by [S], so a whole
    test-suite run probes many different exhaustion points while staying
    bit-for-bit reproducible. An unrecognized value means someone asked for
    fault injection: we fail safe and enable a default seeded plan rather
    than silently running fault-free.

    Fault injection only affects budgets made by {!Budget.create}
    (the budgets of [solve_bounded]); {!Budget.unlimited} never faults, so
    plain [Solver.solve] and the exact baselines are unaffected even under a
    fault-injection sweep. *)

type plan =
  | Off
  | At_tick of int  (** every budget faults at this tick (≥ 1) *)
  | Seeded of { seed : int; period : int }
      (** each budget faults at a pseudo-random tick in [1 .. period],
          drawn from an LCG stream seeded once per [set_plan] *)

val parse : string -> (plan, string) result
(** Parses the [RPQ_FAULTS] grammar above. *)

val to_string : plan -> string
(** Inverse of {!parse} (canonical form). *)

val plan : unit -> plan
(** The active plan (initially from [RPQ_FAULTS], default [Off]). *)

val set_plan : plan -> unit
(** Replaces the active plan and, for [Seeded], restarts its stream. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Runs the function under the given plan, restoring the previous plan
    (and its stream position) afterwards. *)

val next_fault_tick : unit -> int option
(** Resolves the active plan for a freshly created budget: [None] under
    [Off], [Some n] for the tick at which that budget must inject a fault.
    Each call under a [Seeded] plan advances the stream. *)
