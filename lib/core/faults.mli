(** Deterministic fault injection for the anytime solver engine and the
    supervised execution layer.

    Real failures — a wall-clock deadline firing mid-search, a worker
    process crashing or hanging — are timing-dependent and therefore
    impossible to reproduce in tests. This module lets the test suite and
    CI force them at an {e exact} tick index instead, at two levels:

    {ul
    {- {b budget faults} ([tick:N], [seed:S[:M]]): every budget created by
       {!Budget.create} asks the current plan for a tick at which to inject
       a synthetic {!Budget.Exhausted}, so every degradation path of
       [Solver.solve_bounded] can be exercised reproducibly;}
    {- {b worker faults} ([kill:N], [wedge:N]): the fork-isolated workers of
       [Runner] consult {!worker_mode} per job and, at the given budget
       tick, either self-SIGKILL ([kill]) or stop responding while blocking
       SIGTERM ([wedge], forcing the supervisor's SIGKILL-after-grace
       timeout path), so every supervision branch is deterministically
       testable. Both are {e per-job} plans carried in the wire payload, so
       a hedged duplicate of a faulty job replays the {e same} fault at the
       same tick — speculation cannot win on outcome, only on wall-clock —
       and a [kill]/[wedge] firing before the degrading retry shrinks the
       step budget below the fault tick feeds the runner's poison-quarantine
       death counter (K distinct worker deaths settle the job as
       non-retriable [poison]);}
    {- {b supervisor crash sites} ([crash:SITE:N]): the durability-critical
       points of the supervisor itself — around journal appends, fsyncs,
       compaction renames, and pool dispatch — call {!crash_site} with
       their name, and the [N]th visit of the armed site crashes the
       supervisor: {!Crash} is raised under a programmatic plan
       ({!with_plan}), while under an [RPQ_FAULTS]-installed plan the
       process exits abruptly with code 70 (hook installed by the runner
       via {!set_crash_exit}), mimicking a SIGKILL mid-write. The chaos
       harness ([rpq chaos]) drives batches through every site this way
       and asserts journal recovery converges.}}

    The plan is normally set by the [RPQ_FAULTS] environment variable:

    {v
    RPQ_FAULTS ::= "off"
                 | "tick:" N          fail every budget at its Nth tick
                 | "seed:" S          seeded stream, period 1000
                 | "seed:" S ":" M    seeded stream, period M
                 | "kill:" N          workers self-SIGKILL at budget tick N
                 | "wedge:" N         workers stop responding at budget tick N
                 | "crash:" SITE ":" N   supervisor crashes at the Nth visit of SITE
                 | "net:" SITE ":" N     every Nth visit of transport site SITE fails
    v}

    All numbers are plain decimals; a spec with trailing garbage
    ([tick:5x], [tick:5_], [seed:7:200:9]) is rejected with a clear error
    rather than silently parsed as a prefix. An unrecognized value means
    someone asked for fault injection: we fail safe and enable a default
    seeded plan rather than silently running fault-free.

    With [tick:N] every budget faults at tick [N] (N ≥ 1). With
    [seed:S:M] each successive budget draws its fault tick uniformly from
    [1 .. M] out of a deterministic LCG stream seeded by [S], so a whole
    test-suite run probes many different exhaustion points while staying
    bit-for-bit reproducible.

    Budget-fault injection only affects budgets made by {!Budget.create}
    (the budgets of [solve_bounded]); {!Budget.unlimited} never faults, so
    plain [Solver.solve] and the exact baselines are unaffected even under a
    fault-injection sweep. Worker-fault plans never inject budget
    exhaustion ({!next_fault_tick} is [None] for them): a tight retry
    budget can therefore exhaust {e before} the fault tick fires, which is
    exactly how the supervisor's budget-degradation retries turn a
    persistently crashing exact solve into a [Bounded] answer. *)

type plan =
  | Off
  | At_tick of int  (** every budget faults at this tick (≥ 1) *)
  | Seeded of { seed : int; period : int }
      (** each budget faults at a pseudo-random tick in [1 .. period],
          drawn from an LCG stream seeded once per [set_plan] *)
  | Kill_after of int
      (** worker processes self-SIGKILL once their job budget reaches this
          tick (≥ 1); budgets themselves never fault under this plan *)
  | Wedge_after of int
      (** worker processes stop responding (blocking SIGTERM) once their
          job budget reaches this tick (≥ 1) *)
  | Crash_at of { site : string; hits : int }
      (** the [hits]th visit ([≥ 1]) of the named supervisor crash site
          terminates the supervisor (see {!crash_site}); budgets and
          workers are unaffected under this plan *)
  | Net_at of { site : string; period : int }
      (** every [period]-th visit ([≥ 1]) of the named transport fault
          site fires (see {!net_site}): the operation at that site fails
          non-fatally — an accept errors out, a client connection is
          dropped, a write is truncated — while the server keeps running.
          Budgets, workers and crash sites are unaffected under this
          plan *)

exception Crash of string
(** Raised by {!crash_site} when the armed site fires under a
    programmatic plan; the payload is the site name. *)

val crash_sites : string list
(** The supervisor crash sites wired into the runner stack
    ([journal.pre_append], [journal.post_append], [journal.pre_fsync],
    [journal.mid_compact], [pool.post_dispatch]) — the universe the chaos
    harness draws from. A [crash:] spec may name any well-formed site;
    one not in this list never fires. *)

val net_sites : string list
(** The transport fault sites wired into the runner's socket server
    ([accept_fail], [client_drop], [partial_write]). Unlike crash sites
    the list is closed: a [net:] spec naming anything else is rejected by
    {!parse}, because a periodic fault that never fires is
    indistinguishable from a healthy run. *)

val parse : string -> (plan, string) result
(** Parses the [RPQ_FAULTS] grammar above. Numbers must be plain decimal
    digits: hex, underscores, and any trailing garbage are rejected. *)

val to_string : plan -> string
(** Inverse of {!parse} (canonical form). *)

val plan : unit -> plan
(** The active plan (initially from [RPQ_FAULTS], default [Off]). *)

val set_plan : plan -> unit
(** Replaces the active plan and, for [Seeded], restarts its stream. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Runs the function under the given plan, restoring the previous plan
    (and its stream position) afterwards. *)

val next_fault_tick : unit -> int option
(** Resolves the active plan for a freshly created budget: [None] under
    [Off] and the worker-fault plans, [Some n] for the tick at which that
    budget must inject a fault. Each call under a [Seeded] plan advances
    the stream. *)

val worker_mode : unit -> [ `Kill of int | `Wedge of int ] option
(** The worker-level fault mode of the active plan, if any. Consulted by
    the [Runner] workers once per job; the budget tick at which the fault
    fires is implemented via the [probe] hook of {!Budget.create}. *)

val crash_site : string -> unit
(** Marks a supervisor crash site. A no-op unless the active plan is
    [Crash_at] for exactly this site; then each call counts one visit
    (counters reset by {!set_plan} and scoped by {!with_plan}), and the
    [hits]th visit crashes: {!Crash} is raised, or — when the plan came
    from [RPQ_FAULTS] and a {!set_crash_exit} hook is installed — the
    process exits with code 70 without unwinding, so no [Fun.protect]
    finalizer can tidy up, exactly like a real SIGKILL. *)

val net_site : string -> bool
(** Marks a transport fault site and reports whether it fires this visit.
    Always [false] unless the active plan is [Net_at] for exactly this
    site; then each call counts one visit (counters reset by {!set_plan}
    and scoped by {!with_plan}, sharing the crash-site table under a
    ["net."] key prefix) and every [period]-th visit returns [true]. The
    caller — the runner's transport layer — decides what "fires" means:
    fail the accept, drop the client, truncate the write. *)

val set_crash_exit : (string -> unit) -> unit
(** Installs the process-exit behavior for env-installed crash plans
    (the runner registers [fun _ -> Unix._exit 70]; lib/core itself must
    not depend on Unix). If the hook returns, {!crash_site} falls back to
    raising {!Crash}. *)
