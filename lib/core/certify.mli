(** Certificate construction.

    The bridge between the solver stack and the dependency-free
    {!Cert.Certificate} type: solvers hand over their internal evidence
    (flow network + certified cut, match covers + LP dual, verified
    gadget) and this module serializes it into the portable form the
    independent checker re-verifies. It lives in [lib/core] because the
    [cert] library cannot see [Flow]/[Graphdb]/[Hypergraph]. *)

val cut :
  net:Flow.Network.t ->
  source:int ->
  sink:int ->
  cut:Flow.Network.cut ->
  flow:int array ->
  fact_edge:(int * int) list ->
  forced:(int * int) list ->
  Cert.Certificate.t
(** Serialize a mincut weak-duality certificate: the whole network, the
    certified flow, the cut, the fact-edge mapping, and any facts forced
    into the witness before network construction ((fact id, weight)
    pairs, e.g. the single-letter-word facts of the BCL case). When the
    cut value is infinite, an all-Inf s-t path is recorded instead of
    cut edges. *)

val bounds :
  ?covers:int list list -> ?dual:float list -> Graphdb.Db.t -> Cert.Certificate.t
(** Serialize a hitting-set certificate over [d]'s facts. [covers] lists
    the fact-id support of every query match (omitted when match
    enumeration was not part of the solve); [dual] is a feasible dual
    vector for the covering LP, one multiplier per cover. *)

val trivial : string -> Cert.Certificate.t
(** [Trivial] with the given reason (["empty-language"],
    ["epsilon-in-language"], or ["query-unsatisfied"]). *)

val opaque : string -> Cert.Certificate.t
(** [Opaque] marker naming the algorithm that has no independent
    certificate (submodular minimization). *)

val hardness : language:string -> Hardness.outcome -> (Cert.Certificate.t, string) result
(** Serialize a verified hardness gadget into a replayable transcript:
    the completed gadget database, the finite language's words, every
    match's fact support, and the condensed odd path. [language] is the
    original query string, recorded for the record's reader. *)
