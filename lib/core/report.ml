type t = {
  input : string;
  reduced_words : Automata.Word.t list option;
  reduced_infinite : bool;
  verdict : Classify.verdict;
  local : bool;
  star_free : bool option;
  neutral_letters : char list;
  growth : [ `Empty | `Finite of int | `Polynomial | `Exponential ];
  chain : bool option;
  bcl : bool option;
  four_legged_witness :
    (char * Automata.Word.t * Automata.Word.t * Automata.Word.t * Automata.Word.t) option;
  gadget : (string * int) option;
  mirrored_gadget : bool;
}

let analyze ?(try_gadget = true) input =
  match Automata.Regex.parse_opt input with
  | None -> Error (Printf.sprintf "syntax error in %S" input)
  | Some e ->
      let a = Automata.Nfa.of_regex e in
      let c = Classify.classify a in
      let reduced = c.Classify.reduced in
      let ws = c.Classify.reduced_words in
      let bound =
        match ws with
        | Some ws -> List.fold_left (fun acc w -> max acc (String.length w)) 1 ws
        | None -> 8
      in
      let gadget, mirrored_gadget =
        if not try_gadget then (None, false)
        else
          match c.Classify.verdict with
          | Classify.PTime _ -> (None, false)
          | Classify.NPHard _ | Classify.Unclassified _ -> begin
              match Hardness.thm61_gadget reduced with
              | Ok o ->
                  ( Some
                      ( o.Hardness.strategy,
                        Option.value ~default:0
                          o.Hardness.verification.Gadgets.odd_path_length ),
                    o.Hardness.mirrored )
              | Error _ -> begin
                  match Gadget_search.search ~max_matches:5 reduced with
                  | Some f ->
                      ( Some
                          ( "bounded gadget search",
                            Option.value ~default:0
                              f.Gadget_search.verification.Gadgets.odd_path_length ),
                        false )
                  | None | (exception Budget.Exhausted _) -> (None, false)
                end
            end
      in
      Ok
        {
          input;
          reduced_words = ws;
          reduced_infinite = ws = None;
          verdict = c.Classify.verdict;
          local = Automata.Local.is_local_language reduced;
          star_free = Automata.Starfree.is_star_free reduced;
          neutral_letters = Automata.Neutral.neutral_letters a;
          growth = Automata.To_regex.growth (Automata.Dfa.of_nfa a);
          chain = Option.map Bcl.is_chain ws;
          bcl = Option.map Bcl.is_bcl ws;
          four_legged_witness = Automata.Local.four_legged_witness reduced ~bound;
          gadget;
          mirrored_gadget;
        }

let yesno = function true -> "yes" | false -> "no"
let yesno_opt = function Some b -> yesno b | None -> "n/a"

let to_markdown r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# RPQ resilience report: `%s`" r.input;
  line "";
  line "**Verdict**: %s" (Classify.verdict_summary r.verdict);
  line "";
  (match r.reduced_words with
  | Some ws when List.length ws <= 12 -> line "- reduce(L) = {%s}" (String.concat ", " ws)
  | Some ws -> line "- reduce(L): %d words" (List.length ws)
  | None -> line "- reduce(L) is infinite");
  line "- local (Thm 3.3 applies): %s" (yesno r.local);
  line "- star-free: %s"
    (match r.star_free with Some true -> "yes" | Some false -> "no" | None -> "unknown");
  line "- neutral letters: %s"
    (if r.neutral_letters = [] then "none"
     else String.concat ", " (List.map (String.make 1) r.neutral_letters));
  line "- growth: %s"
    (match r.growth with
    | `Empty -> "empty language"
    | `Finite n -> Printf.sprintf "finite (%d words)" n
    | `Polynomial -> "polynomial"
    | `Exponential -> "exponential");
  line "- chain language: %s / bipartite chain: %s" (yesno_opt r.chain) (yesno_opt r.bcl);
  (match r.four_legged_witness with
  | Some (x, al, be, ga, de) ->
      line "- four-legged witness: body %c, legs (%s, %s, %s, %s)" x al be ga de
  | None -> line "- four-legged witness: none found");
  (match r.gadget with
  | Some (strategy, len) ->
      line "- hardness gadget: %s, odd path length %d%s" strategy len
        (if r.mirrored_gadget then " (on the mirror language, Prop E.1)" else "")
  | None -> ());
  Buffer.contents b

let pp ppf r = Format.pp_print_string ppf (to_markdown r)

let violations_to_markdown = Invariant.violations_to_markdown
let pp_violations ppf vs = Format.pp_print_string ppf (violations_to_markdown vs)
