module Db = Graphdb.Db
module Net = Flow.Network

let is_chain ws =
  let ws = List.sort_uniq compare ws in
  List.for_all (fun w -> not (Automata.Word.has_repeated_letter w)) ws
  && List.for_all
       (fun w ->
         String.length w < 3
         ||
         let middle = String.sub w 1 (String.length w - 2) in
         List.for_all
           (fun w' ->
             w' = w || String.for_all (fun c -> not (String.contains w' c)) middle)
           ws)
       ws

let endpoint_graph ws =
  let letters =
    List.fold_left (fun acc w -> Automata.Cset.union acc (Automata.Word.letters w))
      Automata.Cset.empty ws
  in
  let edges =
    List.filter_map
      (fun w ->
        if String.length w >= 2 then begin
          let a = w.[0] and b = w.[String.length w - 1] in
          if a <> b then Some (min a b, max a b) else None
        end
        else None)
      ws
  in
  (Automata.Cset.elements letters, List.sort_uniq compare edges)

(* Bipartition of the endpoint letters: [None] when not bipartite, otherwise
   a (letter -> side) assignment covering the endpoint letters. *)
let endpoint_bipartition ws =
  let letters, edges = endpoint_graph ws in
  let arr = Array.of_list letters in
  let index c =
    let rec go i = if arr.(i) = c then i else go (i + 1) in
    go 0
  in
  let g =
    Graphs.Ugraph.make ~n:(Array.length arr)
      ~edges:(List.map (fun (a, b) -> (index a, index b)) edges)
  in
  match Graphs.Ugraph.bipartition g with
  | None -> None
  | Some (color, _) ->
      let endpoint_letters =
        List.concat_map (fun (a, b) -> [ a; b ]) edges |> List.sort_uniq compare
      in
      Some (List.map (fun c -> (c, color.(index c))) endpoint_letters)

let is_bcl ws =
  (* A word with equal endpoints of length ≥ 2 would have a repeated letter,
     so chain languages only have proper endpoint edges. *)
  is_chain ws && endpoint_bipartition ws <> None

(* Lemma F.2: explicit word list of a chain language from an εNFA, without
   determinization. Witness middle-words are maintained per state as in
   Claim F.3; for chain languages the total number of (state, witness)
   pairs stays O(|A| x |Σ|), so exceeding a proportional budget proves the
   input is not a chain language (productive cycles or shared middles). *)
exception Not_chain of string

let words_of_chain_nfa_exn (a0 : Automata.Nfa.t) =
  let a = Automata.Nfa.trim a0 in
  if a.Automata.Nfa.nstates = 0 then []
  else begin
    let n = a.Automata.Nfa.nstates in
    let eps_out = Array.make n [] and eps_in = Array.make n [] in
    let letter_out = Array.make n [] in
    List.iter
      (fun (s, sym, s') ->
        match sym with
        | Automata.Nfa.Eps ->
            eps_out.(s) <- s' :: eps_out.(s);
            eps_in.(s') <- s :: eps_in.(s')
        | Automata.Nfa.Ch c -> letter_out.(s) <- (c, s') :: letter_out.(s))
      a.Automata.Nfa.trans;
    let closure adj init =
      let seen = Array.make n false in
      let rec go s =
        if not seen.(s) then begin
          seen.(s) <- true;
          List.iter go adj.(s)
        end
      in
      List.iter go init;
      seen
    in
    let s_l = closure eps_out a.Automata.Nfa.initial in
    let s_r = closure eps_in a.Automata.Nfa.final in
    let words = ref [] in
    (* ε: chain languages cannot contain it, but report it so the caller can
       handle trivial resilience uniformly *)
    if List.exists (fun s -> s_l.(s)) a.Automata.Nfa.final then words := "" :: !words;
    (* single-letter words: a letter transition from S_l to S_r *)
    for s = 0 to n - 1 do
      if s_l.(s) then
        List.iter
          (fun (c, s') -> if s_r.(s') then words := String.make 1 c :: !words)
          letter_out.(s)
    done;
    (* words of length >= 2: for each first letter, explore the middle with
       witness words; close on a last-letter transition into S_r *)
    let alphabet = Automata.Cset.elements a.Automata.Nfa.alphabet in
    let budget = 8 * (n + 4) * (List.length alphabet + 4) in
    List.iter
      (fun first ->
        let starts =
          List.concat
            (List.init n (fun s ->
                 if s_l.(s) then
                   List.filter_map
                     (fun (c, s') -> if c = first then Some s' else None)
                     letter_out.(s)
                 else []))
        in
        if starts <> [] then begin
          let witness : (int * string, unit) Hashtbl.t = Hashtbl.create 16 in
          let queue = Queue.create () in
          let push s w =
            if not (Hashtbl.mem witness (s, w)) then begin
              if Hashtbl.length witness > budget then
                raise (Not_chain "middle-word witnesses exceed the chain-language budget");
              Hashtbl.add witness (s, w) ();
              Queue.add (s, w) queue
            end
          in
          List.iter (fun s -> push s "") starts;
          while not (Queue.is_empty queue) do
            let s, w = Queue.pop queue in
            List.iter (fun s' -> push s' w) eps_out.(s);
            List.iter
              (fun (c, s') ->
                (* (c, s') may close a word (s' ∈ S_r) and/or continue the
                   middle; dead-end heads need not be explored further *)
                if letter_out.(s') <> [] || eps_out.(s') <> [] then
                  push s' (w ^ String.make 1 c))
              letter_out.(s)
          done;
          Hashtbl.iter
            (fun (s, w) () ->
              List.iter
                (fun (c, s') ->
                  if s_r.(s') then
                    words := (String.make 1 first ^ w ^ String.make 1 c) :: !words)
                letter_out.(s))
            witness
        end)
      alphabet;
    List.sort_uniq compare !words
  end

let words_of_chain_nfa a =
  try Ok (words_of_chain_nfa_exn a) with Not_chain msg -> Error msg

let is_bcl_nfa a =
  match Automata.Dfa.words (Automata.Dfa.of_nfa a) with
  | None -> false
  | Some ws -> is_bcl ws

(* Proposition 7.5's MinCut construction. The certificate comes back as a
   thunk so uncertified callers pay nothing for its serialization. *)
let solve_words_gen d ws =
  if List.mem "" ws then
    (Value.Infinite, [], fun () -> Certify.trivial "epsilon-in-language")
  else begin
    (* Single-letter words force removal of every fact with that letter. *)
    let single_letters =
      List.filter_map (fun w -> if String.length w = 1 then Some w.[0] else None) ws
    in
    let forced =
      List.filter_map
        (fun (fid, (f : Db.fact)) ->
          if List.mem f.Db.label single_letters then Some fid else None)
        (Db.facts d)
    in
    (* Weights captured before the restriction shadows [d]: the restricted
       database no longer answers for removed facts. *)
    let forced_w = List.map (fun fid -> (fid, Db.mult d fid)) forced in
    let base_cost = List.fold_left (fun acc fid -> acc + Db.mult d fid) 0 forced in
    let d = Db.restrict d ~removed:(fun id -> List.mem id forced) in
    let ws = List.filter (fun w -> String.length w >= 2) ws in
    match endpoint_bipartition ws with
    | None -> invalid_arg "Bcl.solve: endpoint graph is not bipartite"
    | Some side_of ->
        let side c = List.assoc_opt c side_of in
        let net = Net.create () in
        let source = Net.add_vertex net and sink = Net.add_vertex net in
        (* start/end vertices and the capacity edge of each live fact. *)
        let fact_ids = List.map fst (Db.facts d) in
        let startv = Hashtbl.create 64 and endv = Hashtbl.create 64 in
        let fact_edge = ref [] in
        List.iter
          (fun fid ->
            let s = Net.add_vertex net and e = Net.add_vertex net in
            Hashtbl.add startv fid s;
            Hashtbl.add endv fid e;
            let eid = Net.add_edge net ~src:s ~dst:e (Net.Finite (Db.mult d fid)) in
            fact_edge := (eid, fid) :: !fact_edge)
          fact_ids;
        let vertex_of tbl fid =
          match Hashtbl.find_opt tbl fid with
          | Some v -> v
          | None -> Invariant.internal_error "Bcl.solve: fact %d has no product vertex" fid
        in
        let facts_with_label c =
          List.filter (fun (_, (f : Db.fact)) -> f.Db.label = c) (Db.facts d)
        in
        (* Structural +∞ edges: consecutive letter pairs of each word,
           oriented according to the word's direction. *)
        let is_forward w = side w.[0] = Some 0 in
        List.iter
          (fun w ->
            let fwd = is_forward w in
            for i = 0 to String.length w - 2 do
              let a = w.[i] and b = w.[i + 1] in
              List.iter
                (fun (fid, (f : Db.fact)) ->
                  List.iter
                    (fun (gid, (g : Db.fact)) ->
                      if f.Db.dst = g.Db.src then
                        if fwd then
                          ignore
                            (Net.add_edge net ~src:(vertex_of endv fid)
                               ~dst:(vertex_of startv gid) Net.Inf)
                        else
                          ignore
                            (Net.add_edge net ~src:(vertex_of endv gid)
                               ~dst:(vertex_of startv fid) Net.Inf))
                    (facts_with_label b))
                (facts_with_label a)
            done)
          ws;
        (* Source/target wiring by partition side, for endpoint letters only. *)
        List.iter
          (fun (c, s) ->
            List.iter
              (fun (fid, _) ->
                if s = 0 then
                  ignore (Net.add_edge net ~src:source ~dst:(vertex_of startv fid) Net.Inf)
                else
                  ignore (Net.add_edge net ~src:(vertex_of endv fid) ~dst:sink Net.Inf))
              (facts_with_label c))
          side_of;
        let cut, flow = Net.min_cut_certified net ~source ~sink in
        (match cut.Net.value with
        | Net.Inf ->
            Invariant.internal_error
              "Bcl.solve: infinite cut although cutting every fact edge disconnects the network"
        | Net.Finite v ->
            let facts =
              List.filter_map (fun eid -> List.assoc_opt eid !fact_edge) cut.Net.edges
            in
            let cert () =
              Certify.cut ~net ~source ~sink ~cut ~flow ~fact_edge:!fact_edge
                ~forced:forced_w
            in
            (Value.Finite (base_cost + v), List.sort_uniq compare (forced @ facts), cert))
  end

let solve_words d ws =
  let value, witness, _ = solve_words_gen d ws in
  (value, witness)

let solve_words_certified d ws =
  let value, witness, cert = solve_words_gen d ws in
  (value, witness, cert ())

let solve d a =
  match Automata.Dfa.words (Automata.Dfa.of_nfa a) with
  | None -> Error "language is infinite, not a chain language"
  | Some ws ->
      if is_bcl ws then Ok (solve_words d ws) else Error "language is not a bipartite chain language"

let solve_certified d a =
  match Automata.Dfa.words (Automata.Dfa.of_nfa a) with
  | None -> Error "language is infinite, not a chain language"
  | Some ws ->
      if is_bcl ws then Ok (solve_words_certified d ws)
      else Error "language is not a bipartite chain language"
