(** Work budgets for anytime solving.

    The dichotomy (Theorems 5.5 and 6.1) puts most languages on the NP-hard
    side, where {!Solver.solve} falls back to exponential algorithms
    (branch and bound, the ILP hitting-set solver). A budget bounds such a
    run by a wall-clock deadline, a step count (node expansions, simplex
    pivots, SFM oracle calls — every solver loop calls {!tick} once per unit
    of work), and a memory cap on memo/table sizes, so that a single
    adversarial query can never hang or OOM a worker. On exhaustion the
    solvers stop and {!Solver.solve_bounded} degrades to certified
    lower/upper bounds instead of an exact answer.

    A budget is a mutable single-use value: create one per solve call.
    Budgets created with {!create} also consult {!Faults} for a
    deterministic fault-injection tick (see [RPQ_FAULTS]); {!unlimited}
    budgets never exhaust and never fault, but still carry the default
    memory cap so the branch-and-bound memo table is bounded even with no
    deadline set. *)

type exhaustion =
  | Deadline  (** the wall-clock deadline passed *)
  | Steps  (** the step budget ran out *)
  | Memory  (** a table would exceed the memory cap *)
  | Fault  (** synthetic exhaustion injected by {!Faults} *)

val exhaustion_name : exhaustion -> string

exception Exhausted of exhaustion
(** Raised by {!tick} (and the [fuel] callbacks threaded into the lower
    solver layers) once the budget is exhausted; every later tick re-raises
    the same reason. [Solver.solve_bounded] catches it — it never escapes to
    the caller of the solver API. *)

type t

val unlimited : unit -> t
(** Never exhausts, never faults; carries {!default_memo_cap}. *)

val create : ?deadline:float -> ?steps:int -> ?memo_cap:int -> ?probe:(int -> unit) -> unit -> t
(** [create ~deadline ~steps ~memo_cap ()] starts a budget of [deadline]
    seconds of processor time from now, [steps] ticks, and a memo cap of
    [memo_cap] entries (default {!default_memo_cap}). Omitted dimensions are
    unlimited. The current {!Faults} plan is consulted for a fault tick.

    [probe], when given, is called on every tick with the step count after
    all exhaustion checks (so a budget limit firing on the same tick
    preempts it) — the supervised-execution workers use it to implement the
    [kill:N]/[wedge:N] worker fault modes of {!Faults}. It may raise or
    never return; it must not call back into this budget. {!slice}s do not
    inherit the probe (their ticks reach it through the parent). *)

val default_memo_cap : int
(** Cap on memo/table entry counts applied even to unlimited budgets
    (a pathological instance must not OOM just because no deadline was
    set). *)

val tick : t -> unit
(** Counts one unit of work and raises {!Exhausted} if any dimension ran
    out. Cheap: the clock is only consulted every few dozen ticks. Ticking a
    {!slice} also ticks its parent, so a global budget is enforced across
    stages. *)

val fuel : t -> unit -> unit
(** [fuel b] is [fun () -> tick b], the form threaded into the budget-free
    lower layers ([Lp.Simplex], [Lp.Ilp], [Submodular.Sfm], [Hypergraph],
    [Graphdb.Eval]) as their [?fuel] argument. *)

val slice : t -> deadline_frac:float -> steps_frac:float -> t
(** A child budget limited to the given fractions of the parent's
    {e remaining} deadline and steps (fractions in (0, 1]). The degradation
    chain of [Solver.solve_bounded] gives each stage a slice so that an
    exhausted stage still leaves room for the cheaper fallbacks. Child ticks
    propagate to the parent; the child never faults on its own (faults are
    injected at the root, whatever stage happens to be running). *)

val memo_admit : t -> int -> bool
(** [memo_admit b size] — may a memo table currently holding [size] entries
    grow by one more? Never raises: on a full table the caller degrades to
    not memoizing (correct, possibly slower), not to failing. *)

val charge_memory : t -> int -> unit
(** [charge_memory b n] for materializing a table of [n] entries at once
    (e.g. the ILP cover matrix). Raises [Exhausted Memory] when [n] exceeds
    the memo cap. *)

type spent = {
  steps : int;  (** ticks consumed, including those of slices *)
  elapsed : float;  (** processor seconds since creation *)
}

val spent : t -> spent

val exhaustion : t -> exhaustion option
(** Why this budget stopped, if it did. *)

val exhausted : t -> bool
val is_unlimited : t -> bool
