(** Exact resilience solvers that work for {e every} regular language
    (exponential worst case; resilience is NP-hard in general, Section 4).

    These are the reference implementations used to validate the paper's
    polynomial algorithms, and the baselines of the hardness-shape
    benchmarks. All solvers handle bag semantics (fact multiplicities are
    removal costs); set semantics is the all-multiplicities-1 case.

    Every solver takes an optional {!Budget.t} (default
    {!Budget.unlimited}); exhaustion raises {!Budget.Exhausted} except in
    {!branch_and_bound_anytime}, which converts it to a truncated outcome
    carrying the best incumbent. *)

val bruteforce : ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> Value.t
(** Enumerates all subsets of live facts (≤ 22 facts), ticking the budget
    once per subset.
    @raise Invalid_argument on larger databases.
    @raise Budget.Exhausted when the budget runs out. *)

val branch_and_bound : ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> Value.t * int list
(** Witness-branching: while some L-walk exists, pick a shortest one and
    branch on which of its facts enters the contingency set. Memoized on the
    removed-fact set, with the memo table bounded by the budget's memory cap
    (so pathological instances cannot OOM even with no deadline set — once
    the cap is reached the search continues unmemoized). Exact for every
    regular language and database. Returns the value and a witness
    contingency set (empty for [Infinite]).
    @raise Budget.Exhausted when the budget runs out. *)

type anytime =
  | Complete of Value.t * int list  (** exact value and witness *)
  | Truncated of {
      incumbent : (int * int list) option;
          (** best contingency set found so far — a certified {e upper}
              bound with its witness, when any was found *)
      reason : Budget.exhaustion;
    }

val branch_and_bound_anytime : budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> anytime
(** {!branch_and_bound} as an anytime algorithm: never raises on
    exhaustion, returning the incumbent instead. *)

val hitting_set : ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> Value.t * int list
(** Via the hypergraph of matches (Definition 4.7) and exact weighted
    minimum hitting set. Requires the matches to be enumerable: finite
    language or acyclic database (see {!Graphdb.Eval.all_matches}).
    @raise Invalid_argument otherwise.
    @raise Budget.Exhausted when the budget runs out. *)
