module Db = Graphdb.Db
module Net = Flow.Network

type network = {
  net : Net.t;
  source : int;
  sink : int;
  fact_edge : (int * int) list;
}

let build_network d ~ro =
  if not (Automata.Nfa.is_read_once ro) then
    invalid_arg "Local_solver.build_network: automaton is not read-once";
  Check.cheap "Local_solver.build_network: database" (fun () -> Db.validate d);
  Check.cheap "Local_solver.build_network: RO-εNFA" (fun () -> Automata.Nfa.validate ro);
  let nstates = ro.Automata.Nfa.nstates in
  let net = Net.create () in
  (* Vertex (v, s) = v * nstates + s, then source and sink. *)
  let nv = Db.nnodes d in
  for _ = 1 to nv * nstates do
    ignore (Net.add_vertex net)
  done;
  let source = Net.add_vertex net and sink = Net.add_vertex net in
  let vert v s = (v * nstates) + s in
  (* The read-once property gives at most one transition per letter. *)
  let tr_of_letter = Hashtbl.create 16 in
  List.iter
    (fun (s, c, s') -> Hashtbl.replace tr_of_letter c (s, s'))
    (Automata.Nfa.letter_transitions ro);
  let fact_edge = ref [] in
  List.iter
    (fun (fid, (f : Db.fact)) ->
      match Hashtbl.find_opt tr_of_letter f.Db.label with
      | Some (s, s') ->
          let eid =
            Net.add_edge net ~src:(vert f.Db.src s) ~dst:(vert f.Db.dst s')
              (Net.Finite (Db.mult d fid))
          in
          fact_edge := (eid, fid) :: !fact_edge
      | None -> ())
    (Db.facts d);
  List.iter
    (fun (s, s') ->
      for v = 0 to nv - 1 do
        ignore (Net.add_edge net ~src:(vert v s) ~dst:(vert v s') Net.Inf)
      done)
    (Automata.Nfa.eps_transitions ro);
  List.iter
    (fun s ->
      for v = 0 to nv - 1 do
        ignore (Net.add_edge net ~src:source ~dst:(vert v s) Net.Inf)
      done)
    ro.Automata.Nfa.initial;
  List.iter
    (fun s ->
      for v = 0 to nv - 1 do
        ignore (Net.add_edge net ~src:(vert v s) ~dst:sink Net.Inf)
      done)
    ro.Automata.Nfa.final;
  { net; source; sink; fact_edge = List.rev !fact_edge }

(* The common solve path, returning the certificate as a thunk: the hot
   callers (the submodular solver's oracle evaluates thousands of
   restricted instances through [solve_ro]) never force it, so they pay
   nothing for certification. *)
let solve_ro_gen d ~ro =
  if Automata.Nfa.nullable ro then
    (Value.Infinite, [], fun () -> Certify.trivial "epsilon-in-language")
  else if ro.Automata.Nfa.nstates = 0 || Db.nnodes d = 0 then
    (Value.Finite 0, [], fun () -> Certify.trivial "query-unsatisfied")
  else begin
    let { net; source; sink; fact_edge } = build_network d ~ro in
    Check.cheap "Local_solver.solve_ro: product network" (fun () -> Net.validate net);
    let cut, flow = Net.min_cut_certified net ~source ~sink in
    (* Weak duality: flow value = cut value proves both optimal (Thm 3.3's
       MinCut is exact, so a malformed cut would silently corrupt RES). *)
    Check.paranoid "Local_solver.solve_ro: MinCut certificate" (fun () ->
        Net.validate_certificate net ~source ~sink cut ~flow);
    Check.paranoid "Local_solver.solve_ro: push-relabel cross-check" (fun () ->
        let cut', flow' = Flow.Push_relabel.min_cut_certified net ~source ~sink in
        match Net.validate_certificate net ~source ~sink cut' ~flow:flow' with
        | Error _ as e -> e
        | Ok () ->
            if Net.cap_compare cut.Net.value cut'.Net.value = 0 then Ok ()
            else
              Error
                [
                  Invariant.violation ~subsystem:"Flow" ~invariant:"algorithm-agreement"
                    "Dinic found %s but push-relabel found %s"
                    (Format.asprintf "%a" Net.pp_capacity cut.Net.value)
                    (Format.asprintf "%a" Net.pp_capacity cut'.Net.value);
                ]);
    let cert () = Certify.cut ~net ~source ~sink ~cut ~flow ~fact_edge ~forced:[] in
    match cut.Net.value with
    | Net.Inf -> (Value.Infinite, [], cert)
    | Net.Finite v ->
        let facts =
          List.filter_map (fun eid -> List.assoc_opt eid fact_edge) cut.Net.edges
        in
        (Value.Finite v, List.sort_uniq compare facts, cert)
  end

let solve_ro d ~ro =
  let value, witness, _ = solve_ro_gen d ~ro in
  (value, witness)

let solve_ro_certified d ~ro =
  let value, witness, cert = solve_ro_gen d ~ro in
  (value, witness, cert ())

let solve d a =
  (* The construction must consider the whole signature of the database:
     letters of D absent from L's alphabet are harmless (they can never be
     part of an L-walk), so they are simply ignored by the product. *)
  if Automata.Local.is_local_language a then Ok (solve_ro d ~ro:(Automata.Local.ro_enfa a))
  else Error "language is not local"

let solve_certified d a =
  if Automata.Local.is_local_language a then
    Ok (solve_ro_certified d ~ro:(Automata.Local.ro_enfa a))
  else Error "language is not local"
