include Cert.Value

let of_capacity = function
  | Flow.Network.Finite x -> Finite x
  | Flow.Network.Inf -> Infinite
