module Db = Graphdb.Db
module ISet = Hypergraph.Iset

(* Adjacency for two-way steps: on lowercase c, follow c-facts forward; on
   uppercase C, follow Char.lowercase c facts backward. Each step yields
   (fact id, next node). *)
let steps d =
  let fwd = Hashtbl.create 64 and bwd = Hashtbl.create 64 in
  List.iter
    (fun (id, (f : Db.fact)) ->
      Hashtbl.replace fwd (f.Db.src, f.Db.label)
        ((id, f.Db.dst) :: Option.value ~default:[] (Hashtbl.find_opt fwd (f.Db.src, f.Db.label)));
      Hashtbl.replace bwd (f.Db.dst, f.Db.label)
        ((id, f.Db.src) :: Option.value ~default:[] (Hashtbl.find_opt bwd (f.Db.dst, f.Db.label))))
    (Db.facts d);
  fun v c ->
    if c >= 'A' && c <= 'Z' then
      Option.value ~default:[] (Hashtbl.find_opt bwd (v, Char.lowercase_ascii c))
    else Option.value ~default:[] (Hashtbl.find_opt fwd (v, c))

let with_letter_maps d (a : Automata.Nfa.t) k =
  let a = Automata.Nfa.remove_eps a in
  if Automata.Nfa.nullable a then `Nullable
  else if a.Automata.Nfa.nstates = 0 then `Empty
  else begin
    let finals = Array.make a.Automata.Nfa.nstates false in
    List.iter (fun f -> finals.(f) <- true) a.Automata.Nfa.final;
    let by_letter = Hashtbl.create 16 in
    List.iter
      (fun (s, c, s') ->
        Hashtbl.replace by_letter (c, s)
          (s' :: Option.value ~default:[] (Hashtbl.find_opt by_letter (c, s))))
      (Automata.Nfa.letter_transitions a);
    let letters =
      List.sort_uniq compare (List.map (fun (_, c, _) -> c) (Automata.Nfa.letter_transitions a))
    in
    `Go (k a finals by_letter letters (steps d))
  end

let satisfies d a =
  match
    with_letter_maps d a (fun a finals by_letter letters step ->
        let seen = Hashtbl.create 64 in
        let queue = Queue.create () in
        let push v s =
          if not (Hashtbl.mem seen (v, s)) then begin
            Hashtbl.add seen (v, s) ();
            Queue.add (v, s) queue
          end
        in
        for v = 0 to Db.nnodes d - 1 do
          List.iter (fun s -> push v s) a.Automata.Nfa.initial
        done;
        let found = ref false in
        while (not !found) && not (Queue.is_empty queue) do
          let v, s = Queue.pop queue in
          if finals.(s) then found := true
          else
            List.iter
              (fun c ->
                match Hashtbl.find_opt by_letter (c, s) with
                | Some succs ->
                    List.iter (fun (_, v') -> List.iter (fun s' -> push v' s') succs) (step v c)
                | None -> ())
              letters
        done;
        !found)
  with
  | `Nullable -> true
  | `Empty -> false
  | `Go b -> b

let shortest_witness d a =
  match
    with_letter_maps d a (fun a finals by_letter letters step ->
        let parent : (int * int, (int * (int * int)) option) Hashtbl.t = Hashtbl.create 64 in
        let queue = Queue.create () in
        let push key p =
          if not (Hashtbl.mem parent key) then begin
            Hashtbl.add parent key p;
            Queue.add key queue
          end
        in
        for v = 0 to Db.nnodes d - 1 do
          List.iter (fun s -> push (v, s) None) a.Automata.Nfa.initial
        done;
        let result = ref None in
        (try
           while not (Queue.is_empty queue) do
             let ((v, s) as key) = Queue.pop queue in
             if finals.(s) then begin
               let rec build key acc =
                 match Hashtbl.find_opt parent key with
                 | None | Some None -> acc
                 | Some (Some (fid, prev)) -> build prev (fid :: acc)
               in
               result := Some (build key []);
               raise Exit
             end;
             List.iter
               (fun c ->
                 match Hashtbl.find_opt by_letter (c, s) with
                 | Some succs ->
                     List.iter
                       (fun (fid, v') ->
                         List.iter (fun s' -> push (v', s') (Some (fid, key))) succs)
                       (step v c)
                 | None -> ())
               letters
           done
         with Exit -> ());
        !result)
  with
  | `Nullable -> Some []
  | `Empty -> None
  | `Go r -> r

let matches_up_to d a ~max_len =
  match
    with_letter_maps d a (fun a finals by_letter letters step ->
        let results = ref [] in
        let seen = Hashtbl.create 64 in
        let rec go v s len facts =
          if finals.(s) && not (Hashtbl.mem seen facts) then begin
            Hashtbl.add seen facts ();
            results := facts :: !results
          end;
          if len < max_len then
            List.iter
              (fun c ->
                match Hashtbl.find_opt by_letter (c, s) with
                | Some succs ->
                    List.iter
                      (fun (fid, v') ->
                        List.iter (fun s' -> go v' s' (len + 1) (ISet.add fid facts)) succs)
                      (step v c)
                | None -> ())
              letters
        in
        for v = 0 to Db.nnodes d - 1 do
          List.iter (fun s -> go v s 0 ISet.empty) a.Automata.Nfa.initial
        done;
        List.sort_uniq ISet.compare !results)
  with
  | `Nullable -> [ ISet.empty ]
  | `Empty -> []
  | `Go r -> r

let resilience d a =
  if Automata.Nfa.nullable a then (Value.Infinite, [])
  else begin
    let memo : (ISet.t, unit) Hashtbl.t = Hashtbl.create 256 in
    let best = ref max_int and best_set = ref [] in
    let rec go removed cost chosen =
      if cost < !best && not (Hashtbl.mem memo removed) then begin
        Hashtbl.add memo removed ();
        let d' = Db.restrict d ~removed:(fun id -> ISet.mem id removed) in
        match shortest_witness d' a with
        | None ->
            best := cost;
            best_set := chosen
        | Some walk ->
            List.iter
              (fun fid ->
                let c = cost + Db.mult d fid in
                if c < !best then go (ISet.add fid removed) c (fid :: chosen))
              (List.sort_uniq compare walk)
      end
    in
    go ISet.empty 0 [];
    (Value.Finite !best, !best_set)
  end
