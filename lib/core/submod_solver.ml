module Db = Graphdb.Db

type shape = {
  alpha : Automata.Word.t;
  a_pre : char;
  a_new : char;
  mirrored : bool;
}

let recognize_direct ws =
  match List.sort (fun a b -> compare (String.length b) (String.length a)) ws with
  | [ alpha; short ] when String.length short = 2 && String.length alpha >= 2 ->
      let n = String.length alpha in
      let a_pre = short.[0] and a_new = short.[1] in
      if
        Automata.Word.all_distinct alpha
        && a_pre = alpha.[n - 2]
        && (not (String.contains alpha a_new))
        && a_new <> a_pre
      then Some { alpha; a_pre; a_new; mirrored = false }
      else None
  | _ -> None

let recognize ws =
  match recognize_direct ws with
  | Some s -> Some s
  | None ->
      Option.map
        (fun s -> { s with mirrored = true })
        (recognize_direct (List.map Automata.Word.mirror ws))

let recognize_nfa a =
  match Automata.Dfa.words (Automata.Dfa.of_nfa a) with
  | Some ws -> recognize ws
  | None -> None

(* Weighted degree helpers: total multiplicity of c-facts into / out of v. *)
let in_weight d c v =
  List.fold_left
    (fun acc (fid, (f : Db.fact)) ->
      if f.Db.label = c && f.Db.dst = v then acc + Db.mult d fid else acc)
    0 (Db.facts d)

let out_weight d c v =
  List.fold_left
    (fun acc (fid, (f : Db.fact)) ->
      if f.Db.label = c && f.Db.src = v then acc + Db.mult d fid else acc)
    0 (Db.facts d)

(* The inner term RES_bag(α, ·): a single all-distinct-letters word is a
   local language, solved exactly by the Theorem 3.3 MinCut solver. *)
let res_alpha d alpha =
  let a = Automata.Nfa.of_words [ alpha ] in
  let ro = Automata.Local.ro_enfa a in
  match Local_solver.solve_ro d ~ro with
  | Value.Finite v, _ -> v
  | Value.Infinite, _ ->
      Invariant.internal_error "Submod_solver.res_alpha: infinite resilience for nonempty α"

let oracle d shape =
  let { alpha; a_pre; a_new; mirrored = _ } = shape in
  let n = String.length alpha in
  let a_n = alpha.[n - 1] in
  (* Ground set: middles of actual a_pre·a_new matches; all other vertices
     have a forced optimal side (see DESIGN.md / proof of Prop 7.7). *)
  let ground =
    List.init (Db.nnodes d) Fun.id
    |> List.filter (fun v -> in_weight d a_pre v > 0 && out_weight d a_new v > 0)
  in
  let garr = Array.of_list ground in
  let f z =
    (* z.(i) = true iff garr.(i) ∈ Z. *)
    let in_z v =
      (* Vertices outside the ground set with no incoming a_pre facts are
         treated as ∈ Z at cost 0; others as ∉ Z at cost 0. *)
      match Array.to_list garr |> List.find_index (( = ) v) with
      | Some i -> z.(i)
      | None -> in_weight d a_pre v = 0
    in
    let cost_sides = ref 0 in
    Array.iteri
      (fun i v ->
        if z.(i) then cost_sides := !cost_sides + in_weight d a_pre v
        else cost_sides := !cost_sides + out_weight d a_new v)
      garr;
    (* Remove the a_n-facts leaving Z; this is the claim marked by a star in
       the proof of Prop 7.7. *)
    let removed =
      List.filter_map
        (fun (fid, (fct : Db.fact)) ->
          if fct.Db.label = a_n && in_z fct.Db.src then Some fid else None)
        (Db.facts d)
    in
    let d' = Db.restrict d ~removed:(fun id -> List.mem id removed) in
    !cost_sides + res_alpha d' alpha
  in
  (ground, f)

let solve ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  match recognize_nfa a with
  | None -> Error "language does not have the \xce\xb1|a(n-1)a(n+1) submodular shape"
  | Some shape ->
      Check.cheap "Submod_solver.solve: database" (fun () -> Db.validate d);
      let d = if shape.mirrored then Db.reverse d else d in
      let ground, f = oracle d shape in
      let n = List.length ground in
      (* Prop 7.7's reduction is only sound if the oracle really is
         submodular. Each evaluation solves a MinCut, so sample a bounded
         number of triples, and drop the check level while doing it: the
         point here is submodularity, not re-certifying every inner cut. *)
      Check.paranoid "Submod_solver.solve: oracle submodularity" (fun () ->
          Check.with_level Check.Off (fun () ->
              Submodular.Sfm.validate_submodular ~samples:24 ~n f));
      let value, minimizer = Submodular.Sfm.minimize ~fuel:(Budget.fuel b) ~n f in
      Check.paranoid "Submod_solver.solve: SFM certificate" (fun () ->
          let v = f minimizer in
          if v = value then Ok ()
          else
            Error
              [
                Invariant.violation ~subsystem:"Submodular.Sfm" ~invariant:"minimizer-value"
                  "f(returned set) = %d but the minimizer claims %d" v value;
              ]);
      Ok (Value.Finite value)
