(** One-stop language analysis report: everything the library can say about
    an RPQ's resilience, in one structured value with a markdown rendering.
    Powers the CLI's [report] command. *)

type t = {
  input : string;  (** the regex as given *)
  reduced_words : Automata.Word.t list option;  (** reduce(L) when finite *)
  reduced_infinite : bool;
  verdict : Classify.verdict;
  local : bool;
  star_free : bool option;
  neutral_letters : char list;
  growth : [ `Empty | `Finite of int | `Polynomial | `Exponential ];
  chain : bool option;  (** chain language? ([None] when infinite) *)
  bcl : bool option;
  four_legged_witness :
    (char * Automata.Word.t * Automata.Word.t * Automata.Word.t * Automata.Word.t) option;
  gadget : (string * int) option;
      (** hardness gadget: (strategy, odd path length), when one was produced
          by the Theorem 6.1 pipeline or the bounded search *)
  mirrored_gadget : bool;
}

val analyze : ?try_gadget:bool -> string -> (t, string) result
(** Parses and analyzes a regex. With [try_gadget] (default true), runs the
    Theorem 6.1 pipeline / bounded gadget search on NP-hard or unclassified
    finite languages to attach a concrete certificate. *)

val to_markdown : t -> string
val pp : Format.formatter -> t -> unit

val violations_to_markdown : Invariant.violation list -> string
(** Markdown rendering of a batch of invariant violations, in the same
    report style as {!to_markdown}; used by {!Check} failures and the
    [rpq_lint]/validator tooling. *)

val pp_violations : Format.formatter -> Invariant.violation list -> unit
