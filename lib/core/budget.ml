type exhaustion = Deadline | Steps | Memory | Fault

let exhaustion_name = function
  | Deadline -> "deadline"
  | Steps -> "steps"
  | Memory -> "memory"
  | Fault -> "injected fault"

exception Exhausted of exhaustion

type t = {
  parent : t option;
  deadline : float option;  (** absolute, [Obs.Clock.cpu]-based *)
  max_steps : int option;
  memo_cap : int;
  fault_at : int option;
  probe : (int -> unit) option;
  started : float;
  limited : bool;
  mutable steps : int;
  mutable state : exhaustion option;
}

(* 2^20 memo entries: each branch-and-bound entry is a fact-id set, so this
   bounds the table to tens/hundreds of MB on adversarial instances instead
   of the whole address space. *)
let default_memo_cap = 1 lsl 20

let unlimited () =
  {
    parent = None;
    deadline = None;
    max_steps = None;
    memo_cap = default_memo_cap;
    fault_at = None;
    probe = None;
    started = Obs.Clock.cpu ();
    limited = false;
    steps = 0;
    state = None;
  }

let create ?deadline ?steps ?(memo_cap = default_memo_cap) ?probe () =
  if memo_cap < 0 then invalid_arg "Budget.create: negative memo cap";
  (match deadline with
  | Some d when not (Float.is_finite d && d >= 0.0) ->
      invalid_arg "Budget.create: deadline must be a finite number of seconds >= 0"
  | _ -> ());
  (match steps with
  | Some s when s < 0 -> invalid_arg "Budget.create: negative step budget"
  | _ -> ());
  let now = Obs.Clock.cpu () in
  {
    parent = None;
    deadline = Option.map (fun d -> now +. d) deadline;
    max_steps = steps;
    memo_cap;
    fault_at = Faults.next_fault_tick ();
    probe;
    started = now;
    limited = true;
    steps = 0;
    state = None;
  }

let exhaust b e =
  b.state <- Some e;
  raise (Exhausted e)

(* Consult the clock only every [1 lsl deadline_shift] ticks: a tick must be
   cheap enough to sit in the innermost solver loops. *)
let deadline_shift = 6
let deadline_mask = (1 lsl deadline_shift) - 1

let ticks = Obs.Metrics.counter "budget.ticks"

let rec tick_chain b =
  (match b.parent with Some p -> tick_chain p | None -> ());
  match b.state with
  | Some e -> raise (Exhausted e)
  | None ->
      b.steps <- b.steps + 1;
      (match b.fault_at with
      | Some n when b.steps >= n -> exhaust b Fault
      | _ -> ());
      (match b.max_steps with
      | Some m when b.steps > m -> exhaust b Steps
      | _ -> ());
      (match b.deadline with
      | Some dl when b.steps land deadline_mask = 0 && Obs.Clock.cpu () >= dl -> exhaust b Deadline
      | _ -> ());
      (* The probe runs last: when a budget limit and a worker fault (see
         [Faults.worker_mode]) would fire on the same tick, exhaustion wins,
         so a retried job with a tight-enough budget degrades to bounds
         instead of crashing again. *)
      (match b.probe with Some f -> f b.steps | None -> ())

(* One increment per external tick, not per chain link, so the counter
   matches the per-budget step counts and stays deterministic under a
   fixed fault seed. *)
let tick b =
  Obs.Metrics.incr ticks;
  tick_chain b

let fuel b () = tick b

let frac_ok f = Float.is_finite f && f > 0.0 && f <= 1.0

let slice b ~deadline_frac ~steps_frac =
  if not (frac_ok deadline_frac && frac_ok steps_frac) then
    invalid_arg "Budget.slice: fractions must lie in (0, 1]";
  let now = Obs.Clock.cpu () in
  {
    parent = Some b;
    deadline =
      Option.map (fun dl -> now +. Float.max 0.0 (deadline_frac *. (dl -. now))) b.deadline;
    max_steps =
      Option.map
        (fun m ->
          let remaining = max 0 (m - b.steps) in
          max 1 (int_of_float (steps_frac *. float_of_int remaining)))
        b.max_steps;
    memo_cap = b.memo_cap;
    fault_at = None;
    probe = None;
    started = now;
    limited = b.limited;
    steps = 0;
    state = None;
  }

let memo_admit b size = size < b.memo_cap

let charge_memory b n = if n > b.memo_cap then exhaust b Memory

type spent = { steps : int; elapsed : float }

let spent (b : t) = { steps = b.steps; elapsed = Obs.Clock.cpu () -. b.started }
let exhaustion b = b.state
let exhausted b = b.state <> None
let is_unlimited b = not b.limited
