(** Runtime invariant-checking configuration.

    The solvers machine-check their inputs and the certificates they
    produce (MinCut certificates, SFM oracles, ILP covers) through the
    [validate] functions of the underlying libraries. How much of that runs
    is controlled here:

    {ul
    {- [Off] (default): no validation — production mode, zero overhead;}
    {- [Cheap]: linear-time structural validation of solver inputs;}
    {- [Paranoid]: additionally re-verify the produced certificates
       (flow/cut weak-duality proofs, cross-check Dinic against
       push-relabel, sampled submodularity of SFM oracles, ILP cover
       feasibility) — intended for tests, e.g.
       [RPQ_CHECK=paranoid dune runtest].}}

    The initial level is read from the [RPQ_CHECK] environment variable
    ([off] / [cheap] / [paranoid], case-insensitive; [0]/[1]/[2] also
    work). An unrecognized value enables [Cheap]. A detected violation
    raises {!Invariant.Internal_error} — the point is to crash loudly
    instead of returning a silently wrong resilience value. *)

type level = Off | Cheap | Paranoid

val of_string : string -> level option
val level_name : level -> string

val level : unit -> level
(** The current level ([RPQ_CHECK] at startup unless overridden). *)

val set_level : level -> unit

val with_level : level -> (unit -> 'a) -> 'a
(** Runs the thunk under the given level, restoring the previous level
    afterwards (also on exceptions). *)

val cheap : string -> (unit -> (unit, Invariant.violation list) result) -> unit
(** [cheap what validate] runs the validator unless the level is [Off] and
    raises {!Invariant.Internal_error} naming [what] on violations. *)

val paranoid : string -> (unit -> (unit, Invariant.violation list) result) -> unit
(** Like {!cheap}, but only at level [Paranoid]. *)

val paranoid_enabled : unit -> bool
