(** One-stop resilience solver.

    Classifies the language (Figure 1) and dispatches to the best algorithm:
    the Theorem 3.3 MinCut solver for local languages, the Proposition 7.5
    construction for bipartite chain languages, submodular minimization for
    the Proposition 7.7 family, and exact branch and bound otherwise (the
    problem is then NP-hard or unclassified).

    Bag semantics throughout: fact multiplicities are removal costs; a set
    database is simply one with all multiplicities 1 (RES_set = RES_bag on
    it, cf. Section 2). *)

type algorithm =
  | Alg_trivial  (** empty language or ε ∈ L *)
  | Alg_local_mincut  (** Theorem 3.3 *)
  | Alg_bcl_mincut  (** Proposition 7.5 *)
  | Alg_submodular  (** Proposition 7.7 *)
  | Alg_exact_bnb  (** witness-branching branch and bound (exponential) *)
  | Alg_ilp  (** hitting-set ILP baseline (used by {!solve_bounded}) *)

val algorithm_name : algorithm -> string

type result = {
  value : Value.t;
  witness : int list option;
      (** a minimum contingency set (fact ids), when the algorithm produces
          one; submodular minimization reports only the value *)
  algorithm : algorithm;
  classification : Classify.t;
  cert : Cert.Certificate.t option;
      (** portable evidence for the answer: a weak-duality [Cut] for the
          MinCut algorithms, a hitting-set [Bounds] for branch and bound /
          ILP, [Trivial] for the degenerate cases and [Opaque] for
          submodular minimization (which has no independent certificate).
          Re-checkable offline by [rpq_certcheck] without the solver. *)
}

val solve : ?classification:Classify.t -> Graphdb.Db.t -> Automata.Nfa.t -> result
(** Computes the resilience of [Q_L] on the database. Pass [classification]
    to reuse a previously computed verdict (it must be for the same
    language). *)

val resilience : Graphdb.Db.t -> Automata.Nfa.t -> Value.t
(** Just the value. *)

val resilience_regex : Graphdb.Db.t -> string -> Value.t
(** Convenience: parse the regex and solve. *)

(** {1 Anytime solving under a budget} *)

type outcome =
  | Exact of result  (** the budget sufficed; same answer as {!solve} *)
  | Bounded of {
      lower : Value.t;  (** certified lower bound (LP relaxation / satisfiability) *)
      upper : Value.t;  (** certified upper bound (incumbent or greedy hitting set) *)
      upper_witness : int list option;
          (** a contingency set achieving [upper] — removing these facts
              falsifies the query (re-verified under [RPQ_CHECK=paranoid]) *)
      spent : Budget.spent;  (** work actually performed *)
      reason : Budget.exhaustion;  (** which limit was hit first *)
      cert : Cert.Certificate.t option;
          (** a [Bounds] certificate: the hitting-set witness behind [upper]
              plus, when the dual LP solved, the feasible dual vector that
              certifies [lower] by weak duality *)
    }

val solve_bounded :
  ?classification:Classify.t -> ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> outcome
(** {!solve} as an anytime algorithm. Without a budget this is exactly
    [Exact (solve d a)]. With one, the hard cases run a degradation chain —
    exact branch and bound on a slice of the budget, then the hitting-set
    ILP on a slice of the remainder, then certified LP-relaxation /
    greedy-hitting-set bounds — and return [Bounded] instead of raising
    when every exact stage exhausts. [Bounded] always satisfies
    [lower <= upper]. Polynomial (MinCut) cases ignore the budget;
    submodular minimization ticks it per oracle call and degrades to
    bounds like the hard cases. Never raises {!Budget.Exhausted}. *)
