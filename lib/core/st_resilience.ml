module Db = Graphdb.Db
module Nfa = Automata.Nfa

let satisfies d a ~src ~dst =
  let a = Nfa.remove_eps a in
  if Nfa.nullable a && src = dst then true
  else if a.Nfa.nstates = 0 then false
  else begin
    let finals = Array.make a.Nfa.nstates false in
    List.iter (fun f -> finals.(f) <- true) a.Nfa.final;
    let by_letter = Hashtbl.create 16 in
    List.iter
      (fun (s, c, s') ->
        Hashtbl.replace by_letter (c, s)
          (s' :: Option.value ~default:[] (Hashtbl.find_opt by_letter (c, s))))
      (Nfa.letter_transitions a);
    let seen = Hashtbl.create 64 in
    let queue = Queue.create () in
    let push v s =
      if not (Hashtbl.mem seen (v, s)) then begin
        Hashtbl.add seen (v, s) ();
        Queue.add (v, s) queue
      end
    in
    List.iter (fun s -> push src s) a.Nfa.initial;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v, s = Queue.pop queue in
      if v = dst && finals.(s) then found := true;
      List.iter
        (fun (_, (f : Db.fact)) ->
          match Hashtbl.find_opt by_letter (f.Db.label, s) with
          | Some succs -> List.iter (fun s' -> push f.Db.dst s') succs
          | None -> ())
        (Db.out_edges d v)
    done;
    !found
  end

type result = {
  value : Value.t;
  witness : int list option;
  algorithm : Solver.algorithm;
}

(* Two letters outside the database's and language's alphabets. *)
let fresh_letters d a =
  let used = Automata.Cset.union (Db.alphabet d) a.Nfa.alphabet in
  let rec scan c acc =
    if List.length acc = 2 then acc
    else if c > 255 then
      Invariant.internal_error "St_resilience.fresh_letters: all 255 letters in use"
    else if Automata.Cset.mem (Char.chr c) used then scan (c + 1) acc
    else scan (c + 1) (Char.chr c :: acc)
  in
  match scan 1 [] with
  | [ g2; g1 ] -> (g1, g2)
  | _ -> Invariant.internal_error "St_resilience.fresh_letters: scan did not return two letters"

let transform d a ~src ~dst =
  let g1, g2 = fresh_letters d a in
  let heavy = Db.total_mult d + 1 in
  let n = Db.nnodes d in
  let s_star = n and t_star = n + 1 in
  let facts =
    (s_star, g1, src, heavy)
    :: (dst, g2, t_star, heavy)
    :: List.map
         (fun (id, (f : Db.fact)) -> (f.Db.src, f.Db.label, f.Db.dst, Db.mult d id))
         (Db.facts d)
  in
  let d' = Db.make_bag ~nnodes:(n + 2) ~facts in
  (* Map the transformed fact ids back to the original ones. *)
  let back id' =
    let f = Db.fact d' id' in
    if f.Db.label = g1 || f.Db.label = g2 then None
    else
      List.find_opt
        (fun (_, (g : Db.fact)) -> g = f)
        (Db.facts d)
      |> Option.map fst
  in
  let guarded =
    Nfa.concat
      (Nfa.of_words ~alphabet:(Automata.Cset.singleton g1) [ String.make 1 g1 ])
      (Nfa.concat a (Nfa.of_words ~alphabet:(Automata.Cset.singleton g2) [ String.make 1 g2 ]))
  in
  (d', guarded, back)

let solve d a ~src ~dst =
  if src < 0 || src >= Db.nnodes d || dst < 0 || dst >= Db.nnodes d then
    invalid_arg "St_resilience.solve: endpoint out of range";
  Check.cheap "St_resilience.solve: database" (fun () -> Db.validate d);
  Check.cheap "St_resilience.solve: query automaton" (fun () -> Nfa.validate a);
  if Nfa.nullable a && src = dst then
    (* The empty walk from src to itself can never be removed. *)
    { value = Value.Infinite; witness = None; algorithm = Solver.Alg_trivial }
  else begin
    let d', guarded, back = transform d a ~src ~dst in
    Check.cheap "St_resilience.solve: guarded database" (fun () -> Db.validate d');
    Check.cheap "St_resilience.solve: guarded automaton" (fun () -> Nfa.validate guarded);
    let map_witness w = List.filter_map back w in
    match Local_solver.solve d' guarded with
    | Ok (value, w) ->
        { value; witness = Some (map_witness w); algorithm = Solver.Alg_local_mincut }
    | Error _ ->
        let value, w = Exact.branch_and_bound d' guarded in
        { value; witness = Some (map_witness w); algorithm = Solver.Alg_exact_bnb }
  end

let resilience d a ~src ~dst = (solve d a ~src ~dst).value
