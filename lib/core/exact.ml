module ISet = Hypergraph.Iset
module Db = Graphdb.Db
module Eval = Graphdb.Eval

let bruteforce ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  if Automata.Nfa.nullable a then Value.Infinite
  else begin
    let live = List.map fst (Db.facts d) in
    let n = List.length live in
    if n > 22 then invalid_arg "Exact.bruteforce: too many facts";
    let live = Array.of_list live in
    let best = ref Value.Infinite in
    for mask = 0 to (1 lsl n) - 1 do
      Budget.tick b;
      let removed = ref ISet.empty and cost = ref 0 in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then begin
          removed := ISet.add live.(i) !removed;
          cost := !cost + Db.mult d live.(i)
        end
      done;
      if Value.compare (Finite !cost) !best < 0 then begin
        let d' = Db.restrict d ~removed:(fun id -> ISet.mem id !removed) in
        if not (Eval.satisfies d' a) then best := Finite !cost
      end
    done;
    !best
  end

type anytime =
  | Complete of Value.t * int list
  | Truncated of { incumbent : (int * int list) option; reason : Budget.exhaustion }

let bnb_nodes = Obs.Metrics.counter "bnb.nodes"
let memo_hits = Obs.Metrics.counter "bnb.memo_hits"

let branch_and_bound_anytime ~budget:b d a =
  if Automata.Nfa.nullable a then Complete (Value.Infinite, [])
  else begin
    let memo : (ISet.t, unit) Hashtbl.t = Hashtbl.create 256 in
    let best = ref max_int and best_set = ref [] in
    (* DFS over removal sets; [cost] is the multiplicity already paid. The
       memo table is bounded by the budget's memory cap: once full we stop
       memoizing (correct, possibly re-exploring) rather than growing. *)
    let rec go removed cost chosen =
      Budget.tick b;
      Obs.Metrics.incr bnb_nodes;
      if cost >= !best then ()
      else if Hashtbl.mem memo removed then Obs.Metrics.incr memo_hits
      else begin
        if Budget.memo_admit b (Hashtbl.length memo) then Hashtbl.add memo removed ();
        let d' = Db.restrict d ~removed:(fun id -> ISet.mem id removed) in
        match Eval.shortest_witness d' a with
        | None ->
            best := cost;
            best_set := chosen
        | Some walk ->
            let facts = List.sort_uniq compare walk in
            List.iter
              (fun fid ->
                let c = cost + Db.mult d fid in
                if c < !best then go (ISet.add fid removed) c (fid :: chosen))
              facts
      end
    in
    match go ISet.empty 0 [] with
    | () ->
        (* The loop always terminates with a finite best: removing all facts
           falsifies the query since ε ∉ L. *)
        Complete (Value.Finite !best, !best_set)
    | exception Budget.Exhausted reason ->
        let incumbent = if !best < max_int then Some (!best, !best_set) else None in
        Truncated { incumbent; reason }
  end

let branch_and_bound ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  match branch_and_bound_anytime ~budget:b d a with
  | Complete (v, w) -> (v, w)
  | Truncated { reason; _ } -> raise (Budget.Exhausted reason)

let hitting_set ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  if Automata.Nfa.nullable a then (Value.Infinite, [])
  else begin
    let h = Eval.match_hypergraph ~fuel:(Budget.fuel b) d a in
    let value, set = Hypergraph.min_hitting_set ~weights:(Db.mult d) ~fuel:(Budget.fuel b) h in
    (Value.Finite value, set)
  end
