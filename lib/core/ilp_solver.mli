(** The ILP baseline for resilience (the approach of Makhija & Gatterbauer,
    reference [23] of the paper): formulate resilience as a weighted
    hitting-set integer program over the hypergraph of matches and solve it
    by LP-based branch and bound. Also exposes the LP relaxation value,
    whose gap to the ILP optimum is the object studied in that line of
    work.

    Every entry point takes an optional {!Budget.t} (default
    {!Budget.unlimited}): match enumeration, simplex pivots and
    branch-and-bound nodes all tick it, and the materialized cover matrix is
    charged against its memory cap.
    All may raise {!Budget.Exhausted}. *)

val instance_of :
  ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> (Lp.Ilp.instance * int array, string) result
(** The hitting-set ILP of a resilience instance, together with the fact id
    of each ILP variable. Requires enumerable matches (finite language or
    acyclic database); [Error] otherwise or when ε ∈ L. *)

val solve :
  ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> (Value.t * int list, string) result
(** Exact resilience via ILP, with a witness contingency set. *)

val lp_relaxation : ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> (float, string) result
(** The LP-relaxation lower bound on resilience. *)
