(** The ILP baseline for resilience (the approach of Makhija & Gatterbauer,
    reference [23] of the paper): formulate resilience as a weighted
    hitting-set integer program over the hypergraph of matches and solve it
    by LP-based branch and bound. Also exposes the LP relaxation value,
    whose gap to the ILP optimum is the object studied in that line of
    work.

    Every entry point takes an optional {!Budget.t} (default
    {!Budget.unlimited}): match enumeration, simplex pivots and
    branch-and-bound nodes all tick it, and the materialized cover matrix is
    charged against its memory cap.
    All may raise {!Budget.Exhausted}. *)

val instance_of :
  ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> (Lp.Ilp.instance * int array, string) result
(** The hitting-set ILP of a resilience instance, together with the fact id
    of each ILP variable. Requires enumerable matches (finite language or
    acyclic database); [Error] otherwise or when ε ∈ L. *)

val solve :
  ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> (Value.t * int list, string) result
(** Exact resilience via ILP, with a witness contingency set. *)

val solve_with_covers :
  ?budget:Budget.t ->
  Graphdb.Db.t ->
  Automata.Nfa.t ->
  (Value.t * int list * int list list, string) result
(** {!solve} additionally returning the cover matrix as fact-id sets (one
    per match) — the evidence a {!Cert.Certificate.Bounds} certificate
    ships so an independent checker can re-verify hitting-set coverage. *)

val lp_relaxation : ?budget:Budget.t -> Graphdb.Db.t -> Automata.Nfa.t -> (float, string) result
(** The LP-relaxation lower bound on resilience. *)

val lp_dual_bound :
  ?budget:Budget.t ->
  Graphdb.Db.t ->
  Automata.Nfa.t ->
  (float * float list * int list list, string) result
(** A feasible dual vector for the covering LP: [(bound, y, covers)] with
    [bound = Σ y]. By weak duality every hitting set costs at least
    [bound], so [ceil (bound - ε)] is a certified integral lower bound —
    and unlike {!lp_relaxation}'s primal value, the vector [y] is
    portable evidence an independent checker can re-verify. At the
    optimum the two bounds coincide (strong duality); feasibility alone
    is enough for soundness if the simplex stops early. *)
