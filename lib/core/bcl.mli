(** Chain languages and bipartite chain languages (Section 7, Prop 7.5).

    A chain language (Definition 7.1) has no repeated letter inside a word,
    and intermediate letters of a word occur in no other word. Its endpoint
    graph (Definition 7.2) links the first and last letters of each word of
    length ≥ 2; when that graph is bipartite the language is a BCL and
    resilience reduces to MinCut by reversing the words whose endpoints fall
    the "wrong way" across the bipartition. *)

val is_chain : Automata.Word.t list -> bool
(** Definition 7.1 on an explicit finite language. *)

val endpoint_graph : Automata.Word.t list -> (char list * (char * char) list)
(** Vertices (the alphabet letters of the words) and endpoint edges
    {a, b} for words of length ≥ 2 of the form aαb or bαa with a ≠ b.
    A word [aαa] (same endpoints) cannot occur in a chain language of
    length ≥ 2 words since letters cannot repeat. *)

val is_bcl : Automata.Word.t list -> bool

val is_bcl_nfa : Automata.Nfa.t -> bool
(** Recognizes BCLs given an automaton: the language must be finite. *)

val words_of_chain_nfa : Automata.Nfa.t -> (Automata.Word.t list, string) result
(** Lemma F.2: extracts the explicit word list of a chain language directly
    from an εNFA in O(|Σ|² × |A|), without determinizing — this is what
    gives Proposition 7.5 its combined-complexity bound. Per-state witness
    words are maintained as in Claim F.3; two distinct witnesses reaching
    one state (or a productive cycle) yield [Error], which can only happen
    when the language is not a chain language. A successful extraction is
    always the exact word list (also for non-chain inputs that happen to
    pass). *)

val solve : Graphdb.Db.t -> Automata.Nfa.t -> (Value.t * int list, string) result
(** Proposition 7.5: resilience of a BCL via the forward/reversed-words
    MinCut construction, with a witness contingency set.
    [Error _] if the language is not a BCL. *)

val solve_certified :
  Graphdb.Db.t -> Automata.Nfa.t -> (Value.t * int list * Cert.Certificate.t, string) result
(** {!solve} additionally serializing the weak-duality evidence (network,
    flow, cut, forced single-letter facts) into a portable
    {!Cert.Certificate.Cut}. *)
