type level = Off | Cheap | Paranoid

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "none" | "0" -> Some Off
  | "cheap" | "1" -> Some Cheap
  | "paranoid" | "full" | "2" -> Some Paranoid
  | _ -> None

let level_name = function Off -> "off" | Cheap -> "cheap" | Paranoid -> "paranoid"

let initial =
  match Sys.getenv_opt "RPQ_CHECK" with
  | None -> Off
  (* An unrecognized value means someone asked for checking: fail safe and
     enable the cheap tier rather than silently running unchecked. *)
  | Some s -> Option.value ~default:Cheap (of_string s)

let current = ref initial
let level () = !current
let set_level l = current := l

let with_level l f =
  let saved = !current in
  current := l;
  Fun.protect ~finally:(fun () -> current := saved) f

let failed what vs =
  Invariant.internal_error "%s:\n%s" what (Invariant.violations_to_markdown vs)

let cheap_runs = Obs.Metrics.counter "check.cheap"
let paranoid_runs = Obs.Metrics.counter "check.paranoid"

let cheap what f =
  if !current <> Off then begin
    Obs.Metrics.incr cheap_runs;
    match f () with Ok () -> () | Error vs -> failed what vs
  end

let paranoid what f =
  if !current = Paranoid then begin
    Obs.Metrics.incr paranoid_runs;
    match f () with Ok () -> () | Error vs -> failed what vs
  end

let paranoid_enabled () = !current = Paranoid
