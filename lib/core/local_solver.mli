(** Resilience for local languages via MinCut (Theorem 3.3).

    Given an εNFA recognizing a local language L and a bag database D, build
    a read-once εNFA A for L (Lemma 3.8), then the product network N_{D,A}:
    one finite-capacity edge per fact (capacity = multiplicity), +∞ edges
    for ε-transitions and source/target wiring. Minimum cuts of N_{D,A}
    correspond exactly to minimum contingency sets. Runs in
    Õ(|A| × |D| × |Σ|). *)

type network = {
  net : Flow.Network.t;
  source : int;
  sink : int;
  fact_edge : (int * int) list;  (** (network edge id, fact id) for fact edges *)
}

val build_network : Graphdb.Db.t -> ro:Automata.Nfa.t -> network
(** The product network N_{D,A} for a read-once εNFA [ro].
    @raise Invalid_argument if [ro] is not read-once. *)

val solve_ro : Graphdb.Db.t -> ro:Automata.Nfa.t -> Value.t * int list
(** Resilience computed on the product network of a read-once εNFA, with a
    witness contingency set. Handles ε ∈ L (infinite resilience). *)

val solve_ro_certified :
  Graphdb.Db.t -> ro:Automata.Nfa.t -> Value.t * int list * Cert.Certificate.t
(** Like {!solve_ro}, additionally serializing the weak-duality evidence
    (network + flow + cut) into a portable {!Cert.Certificate.Cut} — or a
    [Trivial] certificate on the degenerate paths. The uncertified
    {!solve_ro} stays separate because the submodular solver's oracle
    calls it in a hot loop. *)

val solve : Graphdb.Db.t -> Automata.Nfa.t -> (Value.t * int list, string) result
(** Full pipeline of Theorem 3.3: check the language is local
    (Proposition 3.5), convert to an RO-εNFA (Lemma B.4) and solve.
    [Error _] when the language is not local. *)

val solve_certified :
  Graphdb.Db.t -> Automata.Nfa.t -> (Value.t * int list * Cert.Certificate.t, string) result
(** {!solve} with the portable certificate. *)
