module Db = Graphdb.Db
module Net = Flow.Network
module C = Cert.Certificate

let capacity = function Net.Finite w -> C.Fin w | Net.Inf -> C.Inf

let serialize_edges net =
  List.init (Net.edge_count net) (fun eid ->
      let s, d, cap = Net.edge_info net eid in
      (s, d, capacity cap))

(* An s-t path over Inf edges only. When the min cut is infinite one must
   exist (if every s-t path crossed a finite edge, those finite edges
   would form a finite cut), and it is the certificate: any cut has to
   sever it at infinite cost. *)
let inf_path net ~source ~sink =
  let nv = Net.vertex_count net in
  let adj = Array.make nv [] in
  for eid = Net.edge_count net - 1 downto 0 do
    let s, d, cap = Net.edge_info net eid in
    if cap = Net.Inf then adj.(s) <- (eid, d) :: adj.(s)
  done;
  let prev = Array.make nv None in
  let seen = Array.make nv false in
  seen.(source) <- true;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let at = Queue.pop q in
    List.iter
      (fun (eid, d) ->
        if not seen.(d) then begin
          seen.(d) <- true;
          prev.(d) <- Some (eid, at);
          Queue.add d q
        end)
      adj.(at)
  done;
  if not seen.(sink) then None
  else begin
    let rec back at acc =
      if at = source then acc
      else match prev.(at) with Some (eid, p) -> back p (eid :: acc) | None -> acc
    in
    Some (back sink [])
  end

let cut ~net ~source ~sink ~(cut : Net.cut) ~flow ~fact_edge ~forced =
  let edges = serialize_edges net in
  (* Fact weights restated from the network's own fact-edge capacities:
     the construction (build_network) sets capacity = multiplicity, and
     the checker re-verifies the equality, so a mutation of either side
     is caught. *)
  let weights =
    List.filter_map
      (fun (eid, fid) ->
        match Net.edge_info net eid with
        | _, _, Net.Finite w -> Some (fid, w)
        | _, _, Net.Inf -> None)
      fact_edge
  in
  let finite = cut.Net.value <> Net.Inf in
  C.Cut
    {
      vertices = Net.vertex_count net;
      source;
      sink;
      edges;
      flow = Array.to_list flow;
      cut_edges = (if finite then cut.Net.edges else []);
      fact_edges = fact_edge;
      forced;
      weights;
      inf_path = (if finite then [] else Option.value ~default:[] (inf_path net ~source ~sink));
    }

let bounds ?covers ?dual d =
  C.Bounds
    {
      fact_weights = List.map (fun (fid, _) -> (fid, Db.mult d fid)) (Db.facts d);
      covers;
      dual;
    }

let trivial why = C.Trivial { why }
let opaque algorithm = C.Opaque { algorithm }

let hardness ~language (o : Hardness.outcome) =
  let v = o.Hardness.verification in
  if not v.Gadgets.ok then Error "gadget verification failed"
  else
    match v.Gadgets.odd_path_length with
    | None -> Error "gadget verification carries no odd-path length"
    | Some path_length -> (
        match Automata.Lang.words o.Hardness.language with
        | None -> Error "gadget language is not finite"
        | Some words ->
            let c = Gadgets.complete o.Hardness.gadget in
            let facts =
              List.map
                (fun (id, (f : Db.fact)) ->
                  (id, f.Db.src, String.make 1 f.Db.label, f.Db.dst))
                (Db.facts c.Gadgets.db')
            in
            Ok
              (C.Hardness
                 {
                   language;
                   words;
                   facts;
                   f_in = c.Gadgets.f_in;
                   f_out = c.Gadgets.f_out;
                   matches = Hypergraph.edges v.Gadgets.matches;
                   condensed = Hypergraph.edges v.Gadgets.condensed;
                   path_length;
                 }))
