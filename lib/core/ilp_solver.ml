module Db = Graphdb.Db

let instance_of ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  if Automata.Nfa.nullable a then Error "\xce\xb5 \xe2\x88\x88 L: resilience is infinite"
  else
    match Graphdb.Eval.all_matches ~fuel:(Budget.fuel b) d a with
    | exception Invalid_argument msg -> Error msg
    | matches ->
        (* The cover matrix is materialized all at once; charge it against
           the budget's memory cap before building it. *)
        Budget.charge_memory b (List.length matches);
        let fact_ids = Array.of_list (List.map fst (Db.facts d)) in
        let index = Hashtbl.create 64 in
        Array.iteri (fun i id -> Hashtbl.add index id i) fact_ids;
        let covers =
          List.map
            (fun m ->
              List.map
                (fun id ->
                  match Hashtbl.find_opt index id with
                  | Some i -> i
                  | None ->
                      Invariant.internal_error "Ilp_solver: match uses unknown fact id %d" id)
                (Hypergraph.Iset.elements m))
            matches
        in
        Ok
          ( {
              Lp.Ilp.nvars = Array.length fact_ids;
              weights = Array.map (Db.mult d) fact_ids;
              covers;
            },
            fact_ids )

let solve_with_covers ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  Check.cheap "Ilp_solver.solve: database" (fun () -> Db.validate d);
  if Automata.Nfa.nullable a then Ok (Value.Infinite, [], [])
  else
    match instance_of ~budget:b d a with
    | Error e -> Error e
    | Ok (inst, fact_ids) -> begin
        match Lp.Ilp.solve ~fuel:(Budget.fuel b) inst with
        | Error e -> Error e
        | Ok sol ->
            (* The assignment is a certificate: it must hit every cover and
               its weight must equal the claimed optimum. *)
            Check.paranoid "Ilp_solver.solve: ILP certificate" (fun () ->
                let c = Invariant.Collector.create "Lp.Ilp" in
                let assignment = sol.Lp.Ilp.assignment in
                Invariant.Collector.check c
                  (Array.length assignment = inst.Lp.Ilp.nvars)
                  ~invariant:"assignment-length" "assignment has %d entries for %d variables"
                  (Array.length assignment) inst.Lp.Ilp.nvars;
                if Array.length assignment = inst.Lp.Ilp.nvars then begin
                  List.iteri
                    (fun i cover ->
                      Invariant.Collector.check c
                        (List.exists (fun v -> assignment.(v)) cover)
                        ~invariant:"cover-hit" "cover %d is not hit by the assignment" i)
                    inst.Lp.Ilp.covers;
                  let weight = ref 0 in
                  Array.iteri
                    (fun i b -> if b then weight := !weight + inst.Lp.Ilp.weights.(i))
                    assignment;
                  Invariant.Collector.check c
                    (!weight = sol.Lp.Ilp.value)
                    ~invariant:"objective-value" "assignment weighs %d but the solver claims %d"
                    !weight sol.Lp.Ilp.value
                end;
                Invariant.Collector.result c);
            let witness = ref [] in
            Array.iteri
              (fun i b -> if b then witness := fact_ids.(i) :: !witness)
              sol.Lp.Ilp.assignment;
            let covers_facts =
              List.map (List.map (fun v -> fact_ids.(v))) inst.Lp.Ilp.covers
            in
            Ok (Value.Finite sol.Lp.Ilp.value, List.rev !witness, covers_facts)
      end

let solve ?budget d a =
  Result.map (fun (value, witness, _) -> (value, witness)) (solve_with_covers ?budget d a)

let lp_relaxation ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  match instance_of ~budget:b d a with
  | Error e -> Error e
  | Ok (inst, _) -> Lp.Ilp.lp_bound ~fuel:(Budget.fuel b) inst

(* The LP dual of the covering relaxation: maximize Σ y over y ≥ 0 with
   Σ_{j: fact i ∈ cover j} y_j ≤ w_i. Any feasible y is a lower bound on
   every (fractional or integral) hitting set by weak duality, so the
   vector itself is portable evidence — exactly what the Bounds
   certificate ships. Solved through the primal-only {!Lp.Simplex} as
   min -Σ y subject to -A^T y ≥ -w. *)
let lp_dual_bound ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  match instance_of ~budget:b d a with
  | Error e -> Error e
  | Ok (inst, fact_ids) ->
      let covers_facts = List.map (List.map (fun v -> fact_ids.(v))) inst.Lp.Ilp.covers in
      let nc = List.length inst.Lp.Ilp.covers in
      if nc = 0 then Ok (0.0, [], [])
      else begin
        let rows =
          List.init inst.Lp.Ilp.nvars (fun i ->
              let row = Array.make nc 0.0 in
              List.iteri
                (fun j cover -> if List.mem i cover then row.(j) <- -1.0)
                inst.Lp.Ilp.covers;
              (row, -.float_of_int inst.Lp.Ilp.weights.(i)))
        in
        let prob =
          {
            Lp.Simplex.ncols = nc;
            objective = Array.make nc (-1.0);
            rows;
            upper = Array.make nc None;
          }
        in
        match Lp.Simplex.solve ~fuel:(Budget.fuel b) prob with
        | Lp.Simplex.Optimal { value = _; solution } ->
            (* Clamp simplex noise below zero; shrinking a multiplier keeps
               the vector feasible, and the published bound is the sum of
               the published vector, so certificate and bound agree. *)
            let ys =
              Array.to_list (Array.map (fun y -> if y < 0.0 then 0.0 else y) solution)
            in
            Ok (List.fold_left ( +. ) 0.0 ys, ys, covers_facts)
        | Lp.Simplex.Infeasible -> Error "dual LP infeasible"
        | Lp.Simplex.Unbounded -> Error "dual LP unbounded"
      end
