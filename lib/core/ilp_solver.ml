module Db = Graphdb.Db

let instance_of ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  if Automata.Nfa.nullable a then Error "\xce\xb5 \xe2\x88\x88 L: resilience is infinite"
  else
    match Graphdb.Eval.all_matches ~fuel:(Budget.fuel b) d a with
    | exception Invalid_argument msg -> Error msg
    | matches ->
        (* The cover matrix is materialized all at once; charge it against
           the budget's memory cap before building it. *)
        Budget.charge_memory b (List.length matches);
        let fact_ids = Array.of_list (List.map fst (Db.facts d)) in
        let index = Hashtbl.create 64 in
        Array.iteri (fun i id -> Hashtbl.add index id i) fact_ids;
        let covers =
          List.map
            (fun m ->
              List.map
                (fun id ->
                  match Hashtbl.find_opt index id with
                  | Some i -> i
                  | None ->
                      Invariant.internal_error "Ilp_solver: match uses unknown fact id %d" id)
                (Hypergraph.Iset.elements m))
            matches
        in
        Ok
          ( {
              Lp.Ilp.nvars = Array.length fact_ids;
              weights = Array.map (Db.mult d) fact_ids;
              covers;
            },
            fact_ids )

let solve ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  Check.cheap "Ilp_solver.solve: database" (fun () -> Db.validate d);
  if Automata.Nfa.nullable a then Ok (Value.Infinite, [])
  else
    match instance_of ~budget:b d a with
    | Error e -> Error e
    | Ok (inst, fact_ids) -> begin
        match Lp.Ilp.solve ~fuel:(Budget.fuel b) inst with
        | Error e -> Error e
        | Ok sol ->
            (* The assignment is a certificate: it must hit every cover and
               its weight must equal the claimed optimum. *)
            Check.paranoid "Ilp_solver.solve: ILP certificate" (fun () ->
                let c = Invariant.Collector.create "Lp.Ilp" in
                let assignment = sol.Lp.Ilp.assignment in
                Invariant.Collector.check c
                  (Array.length assignment = inst.Lp.Ilp.nvars)
                  ~invariant:"assignment-length" "assignment has %d entries for %d variables"
                  (Array.length assignment) inst.Lp.Ilp.nvars;
                if Array.length assignment = inst.Lp.Ilp.nvars then begin
                  List.iteri
                    (fun i cover ->
                      Invariant.Collector.check c
                        (List.exists (fun v -> assignment.(v)) cover)
                        ~invariant:"cover-hit" "cover %d is not hit by the assignment" i)
                    inst.Lp.Ilp.covers;
                  let weight = ref 0 in
                  Array.iteri
                    (fun i b -> if b then weight := !weight + inst.Lp.Ilp.weights.(i))
                    assignment;
                  Invariant.Collector.check c
                    (!weight = sol.Lp.Ilp.value)
                    ~invariant:"objective-value" "assignment weighs %d but the solver claims %d"
                    !weight sol.Lp.Ilp.value
                end;
                Invariant.Collector.result c);
            let witness = ref [] in
            Array.iteri
              (fun i b -> if b then witness := fact_ids.(i) :: !witness)
              sol.Lp.Ilp.assignment;
            Ok (Value.Finite sol.Lp.Ilp.value, List.rev !witness)
      end

let lp_relaxation ?budget d a =
  let b = match budget with Some b -> b | None -> Budget.unlimited () in
  match instance_of ~budget:b d a with
  | Error e -> Error e
  | Ok (inst, _) -> Lp.Ilp.lp_bound ~fuel:(Budget.fuel b) inst
