type algorithm =
  | Alg_trivial
  | Alg_local_mincut
  | Alg_bcl_mincut
  | Alg_submodular
  | Alg_exact_bnb

let algorithm_name = function
  | Alg_trivial -> "trivial"
  | Alg_local_mincut -> "local MinCut (Thm 3.3)"
  | Alg_bcl_mincut -> "BCL MinCut (Prop 7.5)"
  | Alg_submodular -> "submodular minimization (Prop 7.7)"
  | Alg_exact_bnb -> "exact branch and bound"

type result = {
  value : Value.t;
  witness : int list option;
  algorithm : algorithm;
  classification : Classify.t;
}

let solve ?classification d a =
  Check.cheap "Solver.solve: database" (fun () -> Graphdb.Db.validate d);
  Check.cheap "Solver.solve: query automaton" (fun () -> Automata.Nfa.validate a);
  let cl = match classification with Some c -> c | None -> Classify.classify a in
  (* Solve on the reduced language: Q_L = Q_reduce(L) (Section 2), and the
     polynomial constructions assume reducedness (e.g. the BCL solver). *)
  let reduced = cl.Classify.reduced in
  match cl.Classify.verdict with
  | Classify.PTime Classify.Trivial_empty ->
      { value = Value.Finite 0; witness = Some []; algorithm = Alg_trivial; classification = cl }
  | Classify.PTime Classify.Trivial_eps ->
      { value = Value.Infinite; witness = None; algorithm = Alg_trivial; classification = cl }
  | Classify.PTime Classify.Local -> begin
      match Local_solver.solve d reduced with
      | Ok (value, witness) ->
          { value; witness = Some witness; algorithm = Alg_local_mincut; classification = cl }
      | Error msg -> invalid_arg ("Solver.solve: classifier/solver disagree: " ^ msg)
    end
  | Classify.PTime Classify.Bipartite_chain -> begin
      match Bcl.solve d reduced with
      | Ok (value, witness) ->
          { value; witness = Some witness; algorithm = Alg_bcl_mincut; classification = cl }
      | Error msg -> invalid_arg ("Solver.solve: classifier/solver disagree: " ^ msg)
    end
  | Classify.PTime (Classify.Submodular _) -> begin
      match Submod_solver.solve d reduced with
      | Ok value -> { value; witness = None; algorithm = Alg_submodular; classification = cl }
      | Error msg -> invalid_arg ("Solver.solve: classifier/solver disagree: " ^ msg)
    end
  | Classify.NPHard _ | Classify.Unclassified _ ->
      let value, witness = Exact.branch_and_bound d reduced in
      { value; witness = Some witness; algorithm = Alg_exact_bnb; classification = cl }

let resilience d a = (solve d a).value
let resilience_regex d s = resilience d (Automata.Lang.of_string s)
