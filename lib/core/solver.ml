type algorithm =
  | Alg_trivial
  | Alg_local_mincut
  | Alg_bcl_mincut
  | Alg_submodular
  | Alg_exact_bnb
  | Alg_ilp

let algorithm_name = function
  | Alg_trivial -> "trivial"
  | Alg_local_mincut -> "local MinCut (Thm 3.3)"
  | Alg_bcl_mincut -> "BCL MinCut (Prop 7.5)"
  | Alg_submodular -> "submodular minimization (Prop 7.7)"
  | Alg_exact_bnb -> "exact branch and bound"
  | Alg_ilp -> "hitting-set ILP"

(* Solver stages are the span taxonomy of DESIGN.md §10: each branch of
   the dispatch and each link of the degradation chain runs under
   [Obs.Trace.stage], so a traced run shows where a hard instance spends
   its budget and [Runner.run_job_locally] can report per-stage totals. *)
let stage = Obs.Trace.stage
let reason_arg reason = [ ("reason", Obs.Jtext.Str (Budget.exhaustion_name reason)) ]

type result = {
  value : Value.t;
  witness : int list option;
  algorithm : algorithm;
  classification : Classify.t;
  cert : Cert.Certificate.t option;
}

let solve ?classification d a =
  Check.cheap "Solver.solve: database" (fun () -> Graphdb.Db.validate d);
  Check.cheap "Solver.solve: query automaton" (fun () -> Automata.Nfa.validate a);
  let cl =
    match classification with
    | Some c -> c
    | None -> stage "classify" (fun () -> Classify.classify a)
  in
  (* Solve on the reduced language: Q_L = Q_reduce(L) (Section 2), and the
     polynomial constructions assume reducedness (e.g. the BCL solver). *)
  let reduced = cl.Classify.reduced in
  match cl.Classify.verdict with
  | Classify.PTime Classify.Trivial_empty ->
      {
        value = Value.Finite 0;
        witness = Some [];
        algorithm = Alg_trivial;
        classification = cl;
        cert = Some (Certify.trivial "empty-language");
      }
  | Classify.PTime Classify.Trivial_eps ->
      {
        value = Value.Infinite;
        witness = None;
        algorithm = Alg_trivial;
        classification = cl;
        cert = Some (Certify.trivial "epsilon-in-language");
      }
  | Classify.PTime Classify.Local -> begin
      match stage "mincut" (fun () -> Local_solver.solve_certified d reduced) with
      | Ok (value, witness, cert) ->
          {
            value;
            witness = Some witness;
            algorithm = Alg_local_mincut;
            classification = cl;
            cert = Some cert;
          }
      | Error msg -> invalid_arg ("Solver.solve: classifier/solver disagree: " ^ msg)
    end
  | Classify.PTime Classify.Bipartite_chain -> begin
      match stage "bcl" (fun () -> Bcl.solve_certified d reduced) with
      | Ok (value, witness, cert) ->
          {
            value;
            witness = Some witness;
            algorithm = Alg_bcl_mincut;
            classification = cl;
            cert = Some cert;
          }
      | Error msg -> invalid_arg ("Solver.solve: classifier/solver disagree: " ^ msg)
    end
  | Classify.PTime (Classify.Submodular _) -> begin
      match stage "submodular" (fun () -> Submod_solver.solve d reduced) with
      | Ok value ->
          {
            value;
            witness = None;
            algorithm = Alg_submodular;
            classification = cl;
            cert = Some (Certify.opaque (algorithm_name Alg_submodular));
          }
      | Error msg -> invalid_arg ("Solver.solve: classifier/solver disagree: " ^ msg)
    end
  | Classify.NPHard _ | Classify.Unclassified _ ->
      let value, witness = stage "bnb" (fun () -> Exact.branch_and_bound d reduced) in
      {
        value;
        witness = Some witness;
        algorithm = Alg_exact_bnb;
        classification = cl;
        cert = Some (Certify.bounds d);
      }

let resilience d a = (solve d a).value
let resilience_regex d s = resilience d (Automata.Lang.of_string s)

type outcome =
  | Exact of result
  | Bounded of {
      lower : Value.t;
      upper : Value.t;
      upper_witness : int list option;
      spent : Budget.spent;
      reason : Budget.exhaustion;
      cert : Cert.Certificate.t option;
    }

module Db = Graphdb.Db
module Eval = Graphdb.Eval

(* Certified bounds once every exact stage has exhausted its budget. The
   remaining master budget pays for one LP relaxation (lower bound) and one
   greedy hitting set (upper bound); if even those exhaust, the bounds
   degrade to [satisfiability .. total weight], which need no work beyond
   what was already done. *)
let bounded_outcome master reduced d ~incumbent ~reason =
  stage ~args:(reason_arg reason) "bounds" @@ fun () ->
  let facts = Db.facts d in
  let total_weight = List.fold_left (fun acc (id, _) -> acc + Db.mult d id) 0 facts in
  let all_facts = List.map fst facts in
  let greedy =
    match Eval.match_hypergraph ~fuel:(Budget.fuel master) d reduced with
    | h -> begin
        match Hypergraph.greedy_hitting_set ~weights:(Db.mult d) h with
        | cost, set -> Some (cost, set)
        | exception Invalid_argument _ -> None
      end
    | exception Invalid_argument _ -> None
    | exception Budget.Exhausted _ -> None
  in
  (* The lower bound comes from the dual of the covering LP rather than the
     primal relaxation: by strong duality the value is the same when the
     simplex finishes, but the dual multipliers are portable evidence — the
     Bounds certificate ships them, and the independent checker re-verifies
     feasibility and the bound with no LP solver of its own. *)
  let dual_evidence =
    match Ilp_solver.lp_dual_bound ~budget:master d reduced with
    | Ok (bound, ys, covers) -> Some (bound, ys, covers)
    | Error _ -> None
    | exception Budget.Exhausted _ -> None
  in
  let lp_lower =
    match dual_evidence with
    | Some (bound, _, _) -> int_of_float (Float.ceil (bound -. 1e-6))
    | None -> 0
  in
  (* Removing every fact falsifies any nullable-free query, so the total
     weight is always a certified upper bound; the query is satisfied here
     (checked by the caller), so 1 is always a certified lower bound. *)
  let upper, upper_witness =
    List.fold_left
      (fun (u, w) (u', w') -> if u' < u then (u', w') else (u, w))
      (total_weight, all_facts)
      (Option.to_list incumbent @ Option.to_list greedy)
  in
  let lower = max 1 lp_lower in
  Check.cheap "Solver.solve_bounded: bound order" (fun () ->
      if lower <= upper then Ok ()
      else
        Error
          [
            Invariant.violation ~subsystem:"Solver" ~invariant:"bound-order"
              "lower bound %d exceeds upper bound %d" lower upper;
          ]);
  let lower = min lower upper in
  Check.paranoid "Solver.solve_bounded: upper witness" (fun () ->
      let d' = Db.restrict d ~removed:(fun id -> List.mem id upper_witness) in
      if Eval.satisfies d' reduced then
        Error
          [
            Invariant.violation ~subsystem:"Solver" ~invariant:"upper-witness"
              "removing the %d witness facts does not falsify the query"
              (List.length upper_witness);
          ]
      else Ok ());
  let cert =
    match dual_evidence with
    | Some (_, ys, covers) -> Certify.bounds ~covers ~dual:ys d
    | None -> Certify.bounds d
  in
  Bounded
    {
      lower = Value.Finite lower;
      upper = Value.Finite upper;
      upper_witness = Some upper_witness;
      spent = Budget.spent master;
      reason;
      cert = Some cert;
    }

(* Degradation chain for the (NP-)hard verdicts: exact branch and bound on
   a slice of the budget, then the ILP baseline on a slice of what is left,
   then certified LP/greedy bounds on the remainder. *)
let hard_chain master cl reduced d =
  if not (stage "satisfies" (fun () -> Eval.satisfies d reduced)) then
    Exact
      {
        value = Value.Finite 0;
        witness = Some [];
        algorithm = Alg_trivial;
        classification = cl;
        cert = Some (Certify.trivial "query-unsatisfied");
      }
  else begin
    let s1 = Budget.slice master ~deadline_frac:0.6 ~steps_frac:0.6 in
    match stage "bnb" (fun () -> Exact.branch_and_bound_anytime ~budget:s1 d reduced) with
    | Exact.Complete (value, w) ->
        Exact
          {
            value;
            witness = Some w;
            algorithm = Alg_exact_bnb;
            classification = cl;
            cert = Some (Certify.bounds d);
          }
    | Exact.Truncated { incumbent; reason } -> begin
        let s2 = Budget.slice master ~deadline_frac:0.6 ~steps_frac:0.6 in
        match
          stage ~args:(reason_arg reason) "ilp" (fun () ->
              Ilp_solver.solve_with_covers ~budget:s2 d reduced)
        with
        | Ok (value, w, covers) ->
            Exact
              {
                value;
                witness = Some w;
                algorithm = Alg_ilp;
                classification = cl;
                cert = Some (Certify.bounds ~covers d);
              }
        | Error _ -> bounded_outcome master reduced d ~incumbent ~reason
        | exception Budget.Exhausted _ -> bounded_outcome master reduced d ~incumbent ~reason
      end
  end

let solve_bounded ?classification ?budget d a =
  let cl =
    match classification with
    | Some c -> c
    | None -> stage "classify" (fun () -> Classify.classify a)
  in
  match budget with
  | None -> Exact (solve ~classification:cl d a)
  | Some master -> begin
      Check.cheap "Solver.solve_bounded: database" (fun () -> Db.validate d);
      Check.cheap "Solver.solve_bounded: query automaton" (fun () -> Automata.Nfa.validate a);
      let reduced = cl.Classify.reduced in
      match cl.Classify.verdict with
      | Classify.PTime
          ( Classify.Trivial_empty | Classify.Trivial_eps | Classify.Local
          | Classify.Bipartite_chain ) ->
          (* Polynomial MinCut-style algorithms: always run to completion. *)
          Exact (solve ~classification:cl d a)
      | Classify.PTime (Classify.Submodular _) -> begin
          let s = Budget.slice master ~deadline_frac:0.8 ~steps_frac:0.8 in
          match stage "submodular" (fun () -> Submod_solver.solve ~budget:s d reduced) with
          | Ok value ->
              Exact
                {
                  value;
                  witness = None;
                  algorithm = Alg_submodular;
                  classification = cl;
                  cert = Some (Certify.opaque (algorithm_name Alg_submodular));
                }
          | Error msg -> invalid_arg ("Solver.solve_bounded: classifier/solver disagree: " ^ msg)
          | exception Budget.Exhausted reason ->
              if stage "satisfies" (fun () -> Eval.satisfies d reduced) then
                bounded_outcome master reduced d ~incumbent:None ~reason
              else
                Exact
                  {
                    value = Value.Finite 0;
                    witness = Some [];
                    algorithm = Alg_trivial;
                    classification = cl;
                    cert = Some (Certify.trivial "query-unsatisfied");
                  }
        end
      | Classify.NPHard _ | Classify.Unclassified _ -> hard_chain master cl reduced d
    end
