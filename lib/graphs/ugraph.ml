type t = { n : int; edges : (int * int) list }

let make ~n ~edges =
  let norm (u, v) =
    if u = v then invalid_arg "Ugraph.make: self-loop";
    if u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Ugraph.make: vertex out of range";
    if u < v then (u, v) else (v, u)
  in
  { n; edges = List.sort_uniq compare (List.map norm edges) }

let n g = g.n
let edges g = g.edges
let edge_count g = List.length g.edges

let neighbors g v =
  List.filter_map
    (fun (a, b) -> if a = v then Some b else if b = v then Some a else None)
    g.edges

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d: %s)" g.n (edge_count g)
    (String.concat " " (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) g.edges))

let is_vertex_cover g vs =
  let s = List.sort_uniq compare vs in
  let mem v = List.mem v s in
  List.for_all (fun (u, v) -> mem u || mem v) g.edges

(* Branch and bound: pick any uncovered edge (u, v); a cover contains u or v. *)
let vertex_cover_number g =
  let best = ref g.n in
  let rec go count covered remaining =
    match remaining with
    | [] -> if count < !best then best := count
    | (u, v) :: rest ->
        if List.mem u covered || List.mem v covered then go count covered rest
        else if count + 1 < !best then begin
          (* Lower bound: greedy matching on the remaining edges. *)
          let rec matching used acc = function
            | [] -> acc
            | (a, b) :: r ->
                if List.mem a covered || List.mem b covered || List.mem a used || List.mem b used
                then matching used acc r
                else matching (a :: b :: used) (acc + 1) r
          in
          let lb = matching [] 0 remaining in
          if count + lb < !best then begin
            go (count + 1) (u :: covered) rest;
            go (count + 1) (v :: covered) rest
          end
        end
  in
  go 0 [] g.edges;
  !best

let vertex_cover_bruteforce g =
  if g.n > 25 then invalid_arg "vertex_cover_bruteforce: too many vertices";
  let best = ref g.n in
  for mask = 0 to (1 lsl g.n) - 1 do
    let vs = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init g.n Fun.id) in
    let size = List.length vs in
    if size < !best && is_vertex_cover g vs then best := size
  done;
  !best

let subdivide g l =
  if l < 1 then invalid_arg "Ugraph.subdivide: length must be >= 1";
  if l = 1 then g
  else begin
    let next = ref g.n in
    let fresh () =
      let v = !next in
      incr next;
      v
    in
    let new_edges =
      List.concat_map
        (fun (u, v) ->
          let mids = List.init (l - 1) (fun _ -> fresh ()) in
          let chain = (u :: mids) @ [ v ] in
          let rec pair = function a :: (b :: _ as rest) -> (a, b) :: pair rest | _ -> [] in
          pair chain)
        g.edges
    in
    make ~n:!next ~edges:new_edges
  end

let bipartition g =
  let color = Array.make (max g.n 1) (-1) in
  let adj = Array.make (max g.n 1) [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    g.edges;
  let ok = ref true in
  for start = 0 to g.n - 1 do
    if color.(start) = -1 then begin
      color.(start) <- 0;
      let q = Queue.create () in
      Queue.add start q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        List.iter
          (fun u ->
            if color.(u) = -1 then begin
              color.(u) <- 1 - color.(v);
              Queue.add u q
            end
            else if color.(u) = color.(v) then ok := false)
          adj.(v)
      done
    end
  done;
  if !ok then Some (Array.sub color 0 g.n, 2) else None

let is_bipartite g = bipartition g <> None

let path k = make ~n:(max k 1) ~edges:(List.init (max 0 (k - 1)) (fun i -> (i, i + 1)))
let cycle k =
  if k < 3 then invalid_arg "Ugraph.cycle: need at least 3 vertices";
  make ~n:k ~edges:((k - 1, 0) :: List.init (k - 1) (fun i -> (i, i + 1)))

let complete k =
  let edges = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      edges := (i, j) :: !edges
    done
  done;
  make ~n:k ~edges:!edges

let random ~n ~p ~seed =
  let st = Invariant.Prng.make seed in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Invariant.Prng.float st 1.0 < p then edges := (i, j) :: !edges
    done
  done;
  make ~n ~edges:!edges
