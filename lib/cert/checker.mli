(** Independent certificate checking.

    Re-derives the validity of a settled reply (or classification record)
    from its certificate alone — no solver code is linked. The checker
    verifies every optimality argument (flow feasibility and weak duality
    for {!Certificate.Cut}, hitting-set coverage and LP duality for
    {!Certificate.Bounds}, walk replay and odd-path structure for
    {!Certificate.Hardness}) but trusts the certificate's instance
    encoding — see DESIGN.md §13 for the exact trust boundary.

    All checks are total and fueled: adversarial certificates cannot make
    the checker loop or raise. *)

val check_reply : Proto.reply -> (unit, string) result
(** Check one reply against its certificate. Exact and bounded replies
    must carry a certificate of a kind matching their algorithm; error
    replies must not carry one. *)

val check_classification : Proto.classification -> (unit, string) result
(** ["np-hard"] records must carry a replayable hardness transcript;
    ["inconclusive"] ones must carry nothing. *)

val check_line : string -> (string, string) result
(** Parse one line of a reply stream and check it. Lines tagged
    ["kind":"classification"] are checked as classification records,
    everything else as replies. [Ok what] names what was checked
    ([exact], [bounded], [error], or [classification]). *)
