(** Resilience values.

    The resilience of [Q] on [D] is the minimum total multiplicity of a
    contingency set (Definition 2.1); it is [+∞] exactly when every
    sub-database satisfies [Q], i.e. when ε ∈ L for RPQs.

    This is the protocol-level copy of the type: it lives in the
    dependency-free [cert] library so {!Proto} and {!Checker} can speak
    about values without linking the solver stack. [Resilience.Value]
    re-exports it (adding the flow-capacity conversion that needs
    [Flow]). *)

type t = Finite of int | Infinite

val zero : t
val add : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
