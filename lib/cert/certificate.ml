type capacity = Fin of int | Inf

type cut = {
  vertices : int;
  source : int;
  sink : int;
  edges : (int * int * capacity) list;
  flow : int list;
  cut_edges : int list;
  fact_edges : (int * int) list;
  forced : (int * int) list;
  weights : (int * int) list;
  inf_path : int list;
}

type bounds = {
  fact_weights : (int * int) list;
  covers : int list list option;
  dual : float list option;
}

type hardness = {
  language : string;
  words : string list;
  facts : (int * int * string * int) list;
  f_in : int;
  f_out : int;
  matches : int list list;
  condensed : int list list;
  path_length : int;
}

type t =
  | Trivial of { why : string }
  | Cut of cut
  | Bounds of bounds
  | Hardness of hardness
  | Opaque of { algorithm : string }

let kind_name = function
  | Trivial _ -> "trivial"
  | Cut _ -> "cut"
  | Bounds _ -> "bounds"
  | Hardness _ -> "hardness"
  | Opaque _ -> "opaque"

(* ---- encoding ---- *)

let ints xs = Json.List (List.map (fun i -> Json.Int i) xs)
let int_lists xss = Json.List (List.map ints xss)
let pairs ps = Json.List (List.map (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ]) ps)
let cap_to_json = function Fin n -> Json.Int n | Inf -> Json.Str "inf"

let to_obj = function
  | Trivial { why } -> Json.Obj [ ("kind", Json.Str "trivial"); ("why", Json.Str why) ]
  | Cut c ->
      Json.Obj
        [
          ("kind", Json.Str "cut");
          ("vertices", Json.Int c.vertices);
          ("source", Json.Int c.source);
          ("sink", Json.Int c.sink);
          ( "edges",
            Json.List
              (List.map
                 (fun (s, d, cap) -> Json.List [ Json.Int s; Json.Int d; cap_to_json cap ])
                 c.edges) );
          ("flow", ints c.flow);
          ("cut_edges", ints c.cut_edges);
          ("fact_edges", pairs c.fact_edges);
          ("forced", pairs c.forced);
          ("weights", pairs c.weights);
          ("inf_path", ints c.inf_path);
        ]
  | Bounds b ->
      Json.Obj
        ([ ("kind", Json.Str "bounds"); ("weights", pairs b.fact_weights) ]
        @ (match b.covers with None -> [] | Some cs -> [ ("covers", int_lists cs) ])
        @
        match b.dual with
        | None -> []
        | Some ys -> [ ("dual", Json.List (List.map (fun y -> Json.Float y) ys)) ])
  | Hardness h ->
      Json.Obj
        [
          ("kind", Json.Str "hardness");
          ("language", Json.Str h.language);
          ("words", Json.List (List.map (fun w -> Json.Str w) h.words));
          ( "facts",
            Json.List
              (List.map
                 (fun (id, src, label, dst) ->
                   Json.List [ Json.Int id; Json.Int src; Json.Str label; Json.Int dst ])
                 h.facts) );
          ("f_in", Json.Int h.f_in);
          ("f_out", Json.Int h.f_out);
          ("matches", int_lists h.matches);
          ("condensed", int_lists h.condensed);
          ("path_length", Json.Int h.path_length);
        ]
  | Opaque { algorithm } ->
      Json.Obj [ ("kind", Json.Str "opaque"); ("algorithm", Json.Str algorithm) ]

let to_json c = Json.to_string (to_obj c)

(* ---- decoding ---- *)

let ( let* ) = Result.bind
let field_err what = Error (Printf.sprintf "certificate: missing or ill-typed field %S" what)

let get obj what conv =
  match Option.bind (Json.member what obj) conv with Some v -> Ok v | None -> field_err what

let map_all what conv items =
  let vs = List.filter_map conv items in
  if List.length vs = List.length items then Ok vs else field_err what

let ints_of what = function
  | Json.List items -> map_all what Json.to_int_opt items
  | _ -> field_err what

let get_ints obj what =
  match Json.member what obj with Some v -> ints_of what v | None -> field_err what

let get_int_lists obj what =
  match Json.member what obj with
  | Some (Json.List items) ->
      map_all what (fun v -> Result.to_option (ints_of what v)) items
  | _ -> field_err what

let get_pairs obj what =
  match Json.member what obj with
  | Some (Json.List items) ->
      map_all what
        (function
          | Json.List [ Json.Int a; Json.Int b ] -> Some (a, b)
          | _ -> None)
        items
  | _ -> field_err what

let cap_of_json = function
  | Json.Int n -> Some (Fin n)
  | Json.Str "inf" -> Some Inf
  | _ -> None

let of_obj obj =
  let* kind = get obj "kind" Json.to_str_opt in
  match kind with
  | "trivial" ->
      let* why = get obj "why" Json.to_str_opt in
      Ok (Trivial { why })
  | "cut" ->
      let* vertices = get obj "vertices" Json.to_int_opt in
      let* source = get obj "source" Json.to_int_opt in
      let* sink = get obj "sink" Json.to_int_opt in
      let* edges =
        match Json.member "edges" obj with
        | Some (Json.List items) ->
            map_all "edges"
              (function
                | Json.List [ Json.Int s; Json.Int d; cap ] ->
                    Option.map (fun c -> (s, d, c)) (cap_of_json cap)
                | _ -> None)
              items
        | _ -> field_err "edges"
      in
      let* flow = get_ints obj "flow" in
      let* cut_edges = get_ints obj "cut_edges" in
      let* fact_edges = get_pairs obj "fact_edges" in
      let* forced = get_pairs obj "forced" in
      let* weights = get_pairs obj "weights" in
      let* inf_path = get_ints obj "inf_path" in
      Ok
        (Cut
           {
             vertices;
             source;
             sink;
             edges;
             flow;
             cut_edges;
             fact_edges;
             forced;
             weights;
             inf_path;
           })
  | "bounds" ->
      let* fact_weights = get_pairs obj "weights" in
      let* covers =
        match Json.member "covers" obj with
        | None -> Ok None
        | Some _ ->
            let* cs = get_int_lists obj "covers" in
            Ok (Some cs)
      in
      let* dual =
        match Json.member "dual" obj with
        | None -> Ok None
        | Some (Json.List items) ->
            let* ys = map_all "dual" Json.to_float_opt items in
            Ok (Some ys)
        | Some _ -> field_err "dual"
      in
      Ok (Bounds { fact_weights; covers; dual })
  | "hardness" ->
      let* language = get obj "language" Json.to_str_opt in
      let* words =
        match Json.member "words" obj with
        | Some (Json.List items) -> map_all "words" Json.to_str_opt items
        | _ -> field_err "words"
      in
      let* facts =
        match Json.member "facts" obj with
        | Some (Json.List items) ->
            map_all "facts"
              (function
                | Json.List [ Json.Int id; Json.Int src; Json.Str label; Json.Int dst ] ->
                    Some (id, src, label, dst)
                | _ -> None)
              items
        | _ -> field_err "facts"
      in
      let* f_in = get obj "f_in" Json.to_int_opt in
      let* f_out = get obj "f_out" Json.to_int_opt in
      let* matches = get_int_lists obj "matches" in
      let* condensed = get_int_lists obj "condensed" in
      let* path_length = get obj "path_length" Json.to_int_opt in
      Ok (Hardness { language; words; facts; f_in; f_out; matches; condensed; path_length })
  | "opaque" ->
      let* algorithm = get obj "algorithm" Json.to_str_opt in
      Ok (Opaque { algorithm })
  | other -> Error (Printf.sprintf "unknown certificate kind %S" other)

let of_json s =
  let* v = Json.parse s in
  of_obj v
