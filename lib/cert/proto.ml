(* The reply schema is versioned: every emitted reply and classification
   record carries ["v":1]. Readers accept a missing [v] (pre-versioning
   v1 journals) and reject anything else, so future schema changes fail
   loudly instead of being silently misread. *)
let schema_version = 1

type budget_spec = { deadline : float option; steps : int option; memo_cap : int option }

let no_budget = { deadline = None; steps = None; memo_cap = None }

type job = {
  id : string;
  db : string;
  query : string;
  budget : budget_spec;
  faults : string option;
  deadline_ms : int option;
      (** end-to-end client deadline, milliseconds from submission; a
          hop-scoped delivery constraint like [trace], never part of the
          job's canonical form *)
  priority : string;
      (** admission class, one of {!priorities}; hop-scoped like [trace] *)
  trace : string option;
      (** serialized [Obs.Trace.span_ctx] — request identity propagated
          across process hops; never part of the job's canonical form *)
}

(* The closed admission vocabulary, lowest class first. Decoding rejects
   anything outside it so a typo ("interactve") fails loudly at the edge
   instead of silently scheduling as the default class. *)
let priorities = [ "batch"; "normal"; "interactive" ]
let default_priority = "normal"

let priority_class p =
  match p with "batch" -> 0 | "interactive" -> 2 | _ (* "normal" *) -> 1

type verdict =
  | V_exact of { value : Value.t; algorithm : string; witness : int list option }
  | V_bounded of { lower : Value.t; upper : Value.t; witness : int list option; reason : string }
  | V_failed of { kind : string; message : string; retriable : bool }

type reply = {
  id : string;
  attempts : int;
  steps : int;
  wall_s : float;
  stages : (string * float) list;
  trace : string option;
      (** the worker-side job span's context, so a reply can be joined
          to its spans in a stitched trace; absent when untraced *)
  verdict : verdict;
  cert : Certificate.t option;
}

type classification = {
  c_language : string;
  c_verdict : string;
  c_cert : Certificate.t option;
}

let failed ?(retriable = false) ~id ~kind fmt =
  Printf.ksprintf
    (fun message ->
      {
        id;
        attempts = 1;
        steps = 0;
        wall_s = 0.0;
        stages = [];
        trace = None;
        verdict = V_failed { kind; message; retriable };
        cert = None;
      })
    fmt

(* ---- encoding ---- *)

let value_to_json = function Value.Finite n -> Json.Int n | Value.Infinite -> Json.Str "inf"

let value_of_json = function
  | Json.Int n -> Some (Value.Finite n)
  | Json.Str "inf" -> Some Value.Infinite
  | _ -> None

let opt field conv = function None -> [] | Some v -> [ (field, conv v) ]

let budget_fields b =
  opt "timeout" (fun f -> Json.Float f) b.deadline
  @ opt "steps" (fun i -> Json.Int i) b.steps
  @ opt "memo_cap" (fun i -> Json.Int i) b.memo_cap

(* Jobs are deliberately unversioned: their canonical rendering is the
   journal key ([Journal.job_digest]), so it must stay byte-stable. The
   trace context is deliberately NOT part of it — two submissions of the
   same job under different trace ids are the same job to the journal
   and the cache. *)
let job_to_json (j : job) =
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Str j.id); ("query", Json.Str j.query); ("db", Json.Str j.db) ]
       @ budget_fields j.budget
       @ opt "faults" (fun s -> Json.Str s) j.faults))

(* The wire form adds the hop-scoped fields the canonical form excludes:
   what travels client -> serve -> worker pipe. [priority] is emitted
   only when it differs from the default, so pre-priority clients and
   servers exchange byte-identical lines. *)
let job_to_wire_json (j : job) =
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Str j.id); ("query", Json.Str j.query); ("db", Json.Str j.db) ]
       @ budget_fields j.budget
       @ opt "faults" (fun s -> Json.Str s) j.faults
       @ opt "deadline_ms" (fun i -> Json.Int i) j.deadline_ms
       @ (if j.priority = default_priority then [] else [ ("priority", Json.Str j.priority) ])
       @ opt "trace" (fun s -> Json.Str s) j.trace))

let witness_fields = function
  | None -> []
  | Some w -> [ ("witness", Json.List (List.map (fun i -> Json.Int i) w)) ]

(* Emitted only when non-empty, so untraced replies are byte-identical to
   the pre-telemetry schema. *)
let stages_fields = function
  | [] -> []
  | sts -> [ ("stages", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) sts)) ]

let cert_fields = function None -> [] | Some c -> [ ("cert", Certificate.to_obj c) ]

let reply_to_obj (r : reply) =
  let common =
    [
      ("v", Json.Int schema_version);
      ("id", Json.Str r.id);
      ("attempts", Json.Int r.attempts);
      ("steps", Json.Int r.steps);
      ("wall_s", Json.Float r.wall_s);
    ]
    @ stages_fields r.stages
    @ opt "trace" (fun s -> Json.Str s) r.trace
  in
  let rest =
    match r.verdict with
    | V_exact { value; algorithm; witness } ->
        [
          ("outcome", Json.Str "exact");
          ("value", value_to_json value);
          ("algorithm", Json.Str algorithm);
        ]
        @ witness_fields witness
    | V_bounded { lower; upper; witness; reason } ->
        [
          ("outcome", Json.Str "bounded");
          ("lower", value_to_json lower);
          ("upper", value_to_json upper);
          ("reason", Json.Str reason);
        ]
        @ witness_fields witness
    | V_failed { kind; message; retriable } ->
        [
          ("outcome", Json.Str "error");
          ("kind", Json.Str kind);
          ("message", Json.Str message);
          ("retriable", Json.Bool retriable);
        ]
  in
  Json.Obj (common @ rest @ cert_fields r.cert)

let reply_to_json r = Json.to_string (reply_to_obj r)

let classification_to_obj (c : classification) =
  Json.Obj
    ([
       ("v", Json.Int schema_version);
       ("kind", Json.Str "classification");
       ("language", Json.Str c.c_language);
       ("verdict", Json.Str c.c_verdict);
     ]
    @ cert_fields c.c_cert)

let classification_to_json c = Json.to_string (classification_to_obj c)

(* ---- decoding ---- *)

let field_err what = Error (Printf.sprintf "missing or ill-typed field %S" what)

let get obj what conv = match Option.bind (Json.member what obj) conv with
  | Some v -> Ok v
  | None -> field_err what

let get_opt obj what conv =
  match Json.member what obj with
  | None | Some Json.Null -> Ok None
  | Some v -> ( match conv v with Some v -> Ok (Some v) | None -> field_err what)

let ( let* ) = Result.bind

let check_version obj =
  match Json.member "v" obj with
  | None -> Ok ()
  | Some (Json.Int v) when v = schema_version -> Ok ()
  | Some (Json.Int v) ->
      Error
        (Printf.sprintf "unsupported reply schema version %d (this reader understands v%d)" v
           schema_version)
  | Some _ -> field_err "v"

let job_of_obj obj =
  let* id = get obj "id" Json.to_str_opt in
  let* query = get obj "query" Json.to_str_opt in
  let* db = get obj "db" Json.to_str_opt in
  let* deadline = get_opt obj "timeout" Json.to_float_opt in
  let* steps = get_opt obj "steps" Json.to_int_opt in
  let* memo_cap = get_opt obj "memo_cap" Json.to_int_opt in
  let* faults = get_opt obj "faults" Json.to_str_opt in
  let* deadline_ms = get_opt obj "deadline_ms" Json.to_int_opt in
  let* () =
    match deadline_ms with
    | Some ms when ms < 0 -> Error (Printf.sprintf "negative deadline_ms %d" ms)
    | _ -> Ok ()
  in
  let* priority =
    match Json.member "priority" obj with
    | None | Some Json.Null -> Ok default_priority
    | Some v -> (
        match Json.to_str_opt v with
        | Some p when List.mem p priorities -> Ok p
        | Some p ->
            Error
              (Printf.sprintf "unknown priority %S (expected %s)" p (String.concat "|" priorities))
        | None -> field_err "priority")
  in
  let* trace = get_opt obj "trace" Json.to_str_opt in
  Ok { id; db; query; budget = { deadline; steps; memo_cap }; faults; deadline_ms; priority; trace }

let job_of_json s =
  let* v = Json.parse s in
  job_of_obj v

let witness_of obj =
  match Json.member "witness" obj with
  | None | Some Json.Null -> Ok None
  | Some (Json.List items) ->
      let ints = List.filter_map Json.to_int_opt items in
      if List.length ints = List.length items then Ok (Some ints) else field_err "witness"
  | Some _ -> field_err "witness"

let stages_of obj =
  match Json.member "stages" obj with
  | None | Some Json.Null -> Ok []
  | Some (Json.Obj fields) ->
      let parsed =
        List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float_opt v)) fields
      in
      if List.length parsed = List.length fields then Ok parsed else field_err "stages"
  | Some _ -> field_err "stages"

let cert_of obj =
  match Json.member "cert" obj with
  | None | Some Json.Null -> Ok None
  | Some v ->
      let* c = Certificate.of_obj v in
      Ok (Some c)

let reply_of_obj obj =
  let* () = check_version obj in
  let* id = get obj "id" Json.to_str_opt in
  let* attempts = get obj "attempts" Json.to_int_opt in
  let* steps = get obj "steps" Json.to_int_opt in
  let* wall_s = get obj "wall_s" Json.to_float_opt in
  let* stages = stages_of obj in
  let* trace = get_opt obj "trace" Json.to_str_opt in
  let* outcome = get obj "outcome" Json.to_str_opt in
  let* verdict =
    match outcome with
    | "exact" ->
        let* value = get obj "value" value_of_json in
        let* algorithm = get obj "algorithm" Json.to_str_opt in
        let* witness = witness_of obj in
        Ok (V_exact { value; algorithm; witness })
    | "bounded" ->
        let* lower = get obj "lower" value_of_json in
        let* upper = get obj "upper" value_of_json in
        let* reason = get obj "reason" Json.to_str_opt in
        let* witness = witness_of obj in
        Ok (V_bounded { lower; upper; witness; reason })
    | "error" ->
        let* kind = get obj "kind" Json.to_str_opt in
        let* message = get obj "message" Json.to_str_opt in
        let* retriable = get obj "retriable" (function Json.Bool b -> Some b | _ -> None) in
        Ok (V_failed { kind; message; retriable })
    | other -> Error (Printf.sprintf "unknown outcome %S" other)
  in
  let* cert = cert_of obj in
  Ok { id; attempts; steps; wall_s; stages; trace; verdict; cert }

let reply_of_json s =
  let* v = Json.parse s in
  reply_of_obj v

let classification_of_obj obj =
  let* () = check_version obj in
  let* kind = get obj "kind" Json.to_str_opt in
  let* () = if kind = "classification" then Ok () else Error "not a classification record" in
  let* c_language = get obj "language" Json.to_str_opt in
  let* c_verdict = get obj "verdict" Json.to_str_opt in
  let* c_cert = cert_of obj in
  Ok { c_language; c_verdict; c_cert }

let classification_of_json s =
  let* v = Json.parse s in
  classification_of_obj v

(* [wall_s] and [stages] are both wall-clock measurements: legitimately
   different across otherwise-identical runs, so both are excluded. The
   certificate is excluded too — its LP duals round-trip through a %.9g
   float rendering, so the in-memory and journal-loaded copies of the
   same reply may differ in the last ulp; certificate agreement is
   established by re-checking, not by comparison. *)
let reply_equal_ignoring_time (a : reply) (b : reply) =
  a.id = b.id && a.attempts = b.attempts && a.steps = b.steps && a.verdict = b.verdict

let verdict_name = function
  | V_exact _ -> "exact"
  | V_bounded _ -> "bounded"
  | V_failed _ -> "error"
