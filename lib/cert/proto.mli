(** Wire protocol for the supervised execution layer.

    Jobs and replies cross the supervisor/worker pipe boundary (and the
    [rpq serve] stdin/stdout boundary, and the journal) as single lines of
    JSON, so one schema serves all three. The encoder/decoder pair is
    hand-rolled: the project deliberately has no JSON dependency, and the
    subset needed here (objects, arrays, strings, ints, floats, bools,
    null) is small enough to keep total.

    The module lives in the dependency-free [cert] library so the
    independent certificate checker ([rpq_certcheck]) can parse reply
    streams without linking any solver code; [Runner.Proto] re-exports
    it unchanged. *)

val schema_version : int
(** Current reply-schema version (1). Emitted as the [v] field on every
    reply and classification record; decoders accept a missing [v]
    (pre-versioning journals) and reject any other value. *)

type budget_spec = {
  deadline : float option;  (** seconds of processor time *)
  steps : int option;
  memo_cap : int option;
}

val no_budget : budget_spec

type job = {
  id : string;  (** caller-chosen; echoed in the reply and the journal *)
  db : string;  (** database in {!Graphdb.Serialize} text form *)
  query : string;  (** RPQ regex, [Automata.Regex.parse] syntax *)
  budget : budget_spec;
  faults : string option;
      (** per-job [Resilience.Faults] plan ([Faults.parse] grammar);
          [None] inherits the worker's ambient plan *)
  deadline_ms : int option;
      (** end-to-end client deadline in milliseconds, counted from the
          moment the client stamped the job. Wire-only like [trace]:
          excluded from {!job_to_json} (so deadline variants of the same
          job share a canonical digest and a cache entry), carried by
          {!job_to_wire_json}. Decoding rejects negative values. *)
  priority : string;
      (** admission class; one of {!priorities}, default
          {!default_priority}. Wire-only like [trace] and [deadline_ms]
          (emitted only when non-default, so default-priority wire lines
          are byte-identical to the pre-priority schema). Decoding
          rejects anything outside the closed vocabulary. *)
  trace : string option;
      (** serialized span context ([Obs.Trace.ctx_to_string] form,
          [trace_id:span_id:flag]) naming the parent span of whatever
          work this hop does for the job. Wire-only: {!job_to_json} —
          the journal/cache key — excludes it, so the same job under
          different trace ids digests identically. *)
}

type verdict =
  | V_exact of {
      value : Value.t;
      algorithm : string;
      witness : int list option;  (** fact ids of an optimal removal set *)
    }
  | V_bounded of {
      lower : Value.t;
      upper : Value.t;
      witness : int list option;  (** fact ids certifying [upper] *)
      reason : string;
    }
  | V_failed of { kind : string; message : string; retriable : bool }
      (** [kind] is a stable machine-readable tag ("crash", "timeout",
          "overloaded", "bad-job", ...); [retriable] tells callers of
          [rpq serve] whether resubmitting the same job can help. *)

type reply = {
  id : string;
  attempts : int;  (** 1 for a first-try success *)
  steps : int;  (** budget ticks spent by the successful attempt *)
  wall_s : float;  (** supervisor-side wall-clock seconds, volatile *)
  stages : (string * float) list;
      (** worker-side seconds per solver stage ([Obs.Trace.with_stages]),
          sorted by stage name; empty when stage accounting was off. On
          the wire it is an optional [stages] object, omitted when empty.
          Volatile like [wall_s]: excluded from
          {!reply_equal_ignoring_time}. *)
  trace : string option;
      (** the worker-side job span's context ([trace_id:span_id:1]),
          letting a reply be joined to its spans in a stitched trace.
          Absent when the worker ran untraced; volatile (span ids embed
          pids), so excluded from {!reply_equal_ignoring_time}. *)
  verdict : verdict;
  cert : Certificate.t option;
      (** answer certificate; present on every settled (exact or bounded)
          reply produced by the solver, absent on error replies. On the
          wire it is an optional [cert] object. *)
}

type classification = {
  c_language : string;
  c_verdict : string;  (** ["np-hard"] or ["inconclusive"] *)
  c_cert : Certificate.t option;
      (** a {!Certificate.Hardness} transcript when [c_verdict] is
          ["np-hard"] *)
}
(** A classification record ([rpq certify --json]): one line of JSON
    tagged ["kind":"classification"], distinguishing it from replies in a
    mixed stream. *)

val priorities : string list
(** The closed priority vocabulary, lowest class first:
    [["batch"; "normal"; "interactive"]]. *)

val default_priority : string
(** ["normal"]. *)

val priority_class : string -> int
(** Numeric admission class: batch 0, normal 1, interactive 2. Total on
    strings (unknowns map to the default class), but decoded jobs only
    ever carry members of {!priorities}. *)

val failed :
  ?retriable:bool -> id:string -> kind:string -> ('a, unit, string, reply) format4 -> 'a
(** [failed ~id ~kind fmt ...] builds an error reply ([attempts = 1],
    [retriable] defaults to [false], no certificate). *)

val job_to_json : job -> string
(** The canonical (journal/cache-key) rendering: byte-stable, excludes
    the trace context. *)

val job_to_wire_json : job -> string
(** The transmission rendering: canonical fields plus [trace]. This is
    what crosses the socket and the worker pipe; {!job_of_json} reads
    both forms. *)

val job_of_json : string -> (job, string) result
val reply_to_json : reply -> string
val reply_of_json : string -> (reply, string) result

val reply_to_obj : reply -> Json.t
val reply_of_obj : Json.t -> (reply, string) result
(** The [Json.t]-level halves of [reply_to_json]/[reply_of_json], for
    embedding replies inside larger objects (journal entries). *)

val classification_to_json : classification -> string
val classification_of_json : string -> (classification, string) result
val classification_to_obj : classification -> Json.t
val classification_of_obj : Json.t -> (classification, string) result

val reply_equal_ignoring_time : reply -> reply -> bool
(** Structural equality minus [wall_s], [stages], and [cert] — the
    comparison used by journal re-verification and the
    resume-determinism tests. Wall-clock fields are legitimately
    nondeterministic; certificates are compared by re-checking
    ({!Checker.check_reply}), not structurally, because their LP duals
    lose precision through the %.9g float rendering. *)

val verdict_name : verdict -> string
(** [exact], [bounded], or [error] — matching the wire [outcome] field. *)
