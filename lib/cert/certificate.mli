(** Portable answer certificates.

    Every settled reply (and every classification record) can carry a
    certificate: a self-contained object from which an independent checker
    re-derives the validity of the claimed answer without running — or
    even linking — any solver code. The variants mirror the dichotomy
    ladder of the paper:

    - {!Cut}: weak-duality data for the PTIME mincut cases (Thm 3.3
      product network for local languages, Prop 7.5 network for
      bipartite-chain-local ones). It serializes the flow network, a
      feasible flow, and an s-t cut of equal value; feasibility of the
      flow plus equality of the two values proves both optimal, so the
      claimed resilience and witness follow. An infinite answer is
      certified by an all-[Inf]-capacity s-t path ([inf_path]) instead —
      every cut must sever it, so no finite cut exists.
    - {!Bounds}: hitting-set data for the NP-hard cases. The reply's
      witness is checked to hit every listed cover (an upper bound by
      construction); an optional LP dual vector certifies the lower
      bound by weak duality ([A^T y <= w], [y >= 0] implies every
      hitting set costs at least [sum y]).
    - {!Hardness}: a gadget transcript for classification replies — the
      completed gadget database, its match sets, and the condensed
      odd-path structure whose replay re-establishes the Thm 6.1
      hardness argument.
    - {!Trivial}: degenerate answers (empty language, ε in the language,
      query unsatisfied on the instance) whose validity is a one-line
      value/witness shape check.
    - {!Opaque}: an explicit marker that no independent certificate
      exists for this algorithm (currently only submodular minimization,
      whose optimality argument is oracle-based).

    The checker ({!Checker}) trusts the construction of the certificate's
    instance encoding (network, covers, gadget) but re-verifies every
    optimality argument; see DESIGN.md §13 for the trust boundary. *)

type capacity = Fin of int | Inf

type cut = {
  vertices : int;  (** network vertex count; vertex ids are [0..vertices-1] *)
  source : int;
  sink : int;
  edges : (int * int * capacity) list;  (** edge id = position in this list *)
  flow : int list;  (** per-edge flow, same order as [edges] *)
  cut_edges : int list;  (** edge ids of the claimed minimum cut *)
  fact_edges : (int * int) list;  (** (edge id, fact id): which edges are fact edges *)
  forced : (int * int) list;
      (** (fact id, weight) of facts forced into every witness before the
          network was built (single-letter-word facts in the BCL case) *)
  weights : (int * int) list;
      (** (fact id, weight) for every fact in [fact_edges]; the checker
          requires the fact edge's capacity to equal this weight *)
  inf_path : int list;
      (** edge ids of an all-[Inf] s-t path; non-empty exactly when the
          certified value is infinite *)
}

type bounds = {
  fact_weights : (int * int) list;  (** (fact id, weight) for the instance's facts *)
  covers : int list list option;
      (** fact-id sets, one per query match, that any contingency set must
          hit; [None] when match enumeration was not part of the solve
          (pure branch-and-bound) — then only cost consistency is checked *)
  dual : float list option;
      (** feasible dual vector for the covering LP, one multiplier per
          cover; certifies the lower bound. Requires [covers]. *)
}

type hardness = {
  language : string;  (** the query language the gadget proves hard *)
  words : string list;  (** the finite language's words *)
  facts : (int * int * string * int) list;
      (** (fact id, src, one-char label, dst) of the completed gadget db *)
  f_in : int;  (** fact id of the completion's input endpoint *)
  f_out : int;  (** fact id of the completion's output endpoint *)
  matches : int list list;  (** fact-id support set of every query match *)
  condensed : int list list;
      (** the condensed match hypergraph: 2-element fact-id sets forming
          an odd-length path from [f_in] to [f_out] *)
  path_length : int;
}

type t =
  | Trivial of { why : string }
      (** [why] is one of ["empty-language"], ["epsilon-in-language"],
          ["query-unsatisfied"] *)
  | Cut of cut
  | Bounds of bounds
  | Hardness of hardness
  | Opaque of { algorithm : string }

val kind_name : t -> string
(** The wire [kind] tag: [trivial], [cut], [bounds], [hardness], [opaque]. *)

val to_obj : t -> Json.t
val of_obj : Json.t -> (t, string) result
val to_json : t -> string
val of_json : string -> (t, string) result
