(* Independent certificate checking.

   Everything here re-derives validity from the certificate and the reply
   alone: no solver code, no instance parsing, no flow library. The
   checker trusts that the certificate's instance encoding (network,
   covers, gadget transcript) was built faithfully from the job — that is
   the emitter's half of the contract — and re-verifies every optimality
   argument on top of it: flow feasibility and weak duality for cuts,
   coverage and LP duality for bounds, walk replay and odd-path structure
   for hardness transcripts. See DESIGN.md §13 for the trust boundary. *)

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun m -> Error m) fmt
let require b fmt = Printf.ksprintf (fun m -> if b then Ok () else Error m) fmt

let rec iter_result f = function
  | [] -> Ok ()
  | x :: tl ->
      let* () = f x in
      iter_result f tl

let distinct xs =
  let sorted = List.sort compare xs in
  let rec dup = function a :: (b :: _ as tl) -> a = b || dup tl | _ -> false in
  not (dup sorted)

(* The closed algorithm vocabulary ({!Resilience.Solver.algorithm_name})
   and degradation reasons ({!Resilience.Budget.exhaustion_name}),
   restated here because the checker must not link those libraries. *)
let alg_trivial = "trivial"
let alg_local = "local MinCut (Thm 3.3)"
let alg_bcl = "BCL MinCut (Prop 7.5)"
let alg_submod = "submodular minimization (Prop 7.7)"
let alg_bnb = "exact branch and bound"
let alg_ilp = "hitting-set ILP"
let algorithms = [ alg_trivial; alg_local; alg_bcl; alg_submod; alg_bnb; alg_ilp ]
let reasons = [ "deadline"; "steps"; "memory"; "injected fault" ]

(* ---- Trivial ---- *)

let check_trivial ~value ~witness why =
  match why with
  | "empty-language" | "query-unsatisfied" ->
      let* () =
        require
          (Value.equal value (Value.Finite 0))
          "trivial certificate (%s): claimed resilience is %s, expected 0" why
          (Value.to_string value)
      in
      require (witness = Some []) "trivial certificate (%s): witness must be the empty set" why
  | "epsilon-in-language" ->
      let* () =
        require
          (Value.equal value Value.Infinite)
          "trivial certificate (epsilon-in-language): claimed resilience is %s, expected +inf"
          (Value.to_string value)
      in
      require
        (witness = None || witness = Some [])
        "trivial certificate (epsilon-in-language): no finite witness can exist"
  | other -> fail "unknown trivial-certificate reason %S" other

(* ---- Cut (weak duality) ---- *)

let check_cut ~value ~witness (c : Certificate.cut) =
  let nedges = List.length c.edges in
  let edges = Array.of_list c.edges in
  let* () =
    require
      (List.length c.flow = nedges)
      "cut: flow has %d entries for %d edges" (List.length c.flow) nedges
  in
  let flow = Array.of_list c.flow in
  let* () = require (c.vertices >= 2) "cut: a network needs at least source and sink" in
  let in_range v = v >= 0 && v < c.vertices in
  let* () =
    require
      (in_range c.source && in_range c.sink && c.source <> c.sink)
      "cut: source/sink out of range or equal"
  in
  let maxv = ref (max c.source c.sink) in
  let* () =
    iter_result
      (fun (s, d, cap) ->
        maxv := max !maxv (max s d);
        let* () = require (in_range s && in_range d) "cut: edge endpoint out of range" in
        match cap with
        | Certificate.Fin w -> require (w >= 0) "cut: negative edge capacity"
        | Certificate.Inf -> Ok ())
      c.edges
  in
  let* () =
    require
      (!maxv = c.vertices - 1)
      "cut: vertex count %d is not tight (max referenced vertex %d)" c.vertices !maxv
  in
  (* Fact mapping: which network edges stand for facts, injectively. *)
  let* () = require (distinct (List.map fst c.fact_edges)) "cut: duplicate edge in fact mapping" in
  let* () = require (distinct (List.map snd c.fact_edges)) "cut: duplicate fact in fact mapping" in
  let* () =
    iter_result
      (fun (e, _) -> require (e >= 0 && e < nedges) "cut: fact mapping references edge %d" e)
      c.fact_edges
  in
  (* Weights cover exactly the mapped facts, and each fact edge's capacity
     equals its fact's weight — so cutting the edge really costs the
     fact's multiplicity. *)
  let* () = require (distinct (List.map fst c.weights)) "cut: duplicate fact in weights" in
  let* () =
    require
      (List.sort compare (List.map fst c.weights) = List.sort compare (List.map snd c.fact_edges))
      "cut: weights domain differs from the mapped facts"
  in
  let* () =
    iter_result
      (fun (e, fid) ->
        let _, _, cap = edges.(e) in
        match (cap, List.assoc_opt fid c.weights) with
        | Certificate.Fin w, Some w' when w = w' -> Ok ()
        | Certificate.Fin w, Some w' ->
            fail "cut: fact %d edge capacity %d differs from its weight %d" fid w w'
        | Certificate.Inf, _ -> fail "cut: fact %d mapped to an infinite-capacity edge" fid
        | Certificate.Fin _, None -> fail "cut: fact %d has no weight entry" fid)
      c.fact_edges
  in
  let* () =
    iter_result
      (fun (fid, w) -> require (w >= 1) "cut: fact %d has non-positive weight %d" fid w)
      (c.weights @ c.forced)
  in
  let* () = require (distinct (List.map fst c.forced)) "cut: duplicate forced fact" in
  let mapped_facts = List.map snd c.fact_edges in
  let* () =
    iter_result
      (fun (fid, _) ->
        require (not (List.mem fid mapped_facts)) "cut: forced fact %d also appears in the network"
          fid)
      c.forced
  in
  let base = List.fold_left (fun acc (_, w) -> acc + w) 0 c.forced in
  match value with
  | Value.Infinite ->
      (* No finite cut exists iff some s-t path uses only Inf edges:
         every cut must sever it at infinite cost. Replay that path. *)
      let* () = require (c.cut_edges = []) "cut: infinite value alongside a finite cut" in
      let* () =
        require (c.inf_path <> []) "cut: infinite value without an infinite-capacity path"
      in
      let* () =
        let rec walk at = function
          | [] -> require (at = c.sink) "cut: infinite path ends at vertex %d, not the sink" at
          | e :: tl ->
              let* () =
                require (e >= 0 && e < nedges) "cut: infinite path references edge %d" e
              in
              let s, d, cap = edges.(e) in
              let* () = require (s = at) "cut: infinite path is not connected" in
              let* () =
                require (cap = Certificate.Inf)
                  "cut: infinite path crosses a finite-capacity edge"
              in
              walk d tl
        in
        walk c.source c.inf_path
      in
      require (witness = Some [] || witness = None)
        "cut: an infinite value admits no finite witness"
  | Value.Finite v ->
      let* () = require (c.inf_path = []) "cut: finite value alongside an infinite path" in
      let net_v = v - base in
      let* () =
        require (net_v >= 0) "cut: claimed value %d is below the forced base cost %d" v base
      in
      (* Cut side of weak duality: distinct finite edges summing to the
         claimed value net of the forced base. *)
      let* () = require (distinct c.cut_edges) "cut: duplicate cut edge" in
      let* cutsum =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* () = require (e >= 0 && e < nedges) "cut: cut references edge %d" e in
            match edges.(e) with
            | _, _, Certificate.Fin w -> Ok (acc + w)
            | _, _, Certificate.Inf -> fail "cut: infinite-capacity edge in the cut")
          (Ok 0) c.cut_edges
      in
      let* () =
        require (cutsum = net_v) "cut: cut capacity %d differs from the claimed value %d - base %d"
          cutsum v base
      in
      (* Flow side: a feasible flow of the same value proves the cut
         minimum (weak duality), hence the claimed value optimal. *)
      let* () =
        let rec feas i =
          if i >= nedges then Ok ()
          else
            let* () = require (flow.(i) >= 0) "cut: negative flow on edge %d" i in
            let* () =
              match edges.(i) with
              | _, _, Certificate.Fin w ->
                  require (flow.(i) <= w) "cut: flow exceeds capacity on edge %d" i
              | _, _, Certificate.Inf -> Ok ()
            in
            feas (i + 1)
        in
        feas 0
      in
      let balance = Array.make c.vertices 0 in
      Array.iteri
        (fun i (s, d, _) ->
          balance.(s) <- balance.(s) - flow.(i);
          balance.(d) <- balance.(d) + flow.(i))
        edges;
      let* () =
        let rec conserve vtx =
          if vtx >= c.vertices then Ok ()
          else if vtx = c.source || vtx = c.sink then conserve (vtx + 1)
          else
            let* () =
              require (balance.(vtx) = 0) "cut: flow conservation fails at vertex %d" vtx
            in
            conserve (vtx + 1)
        in
        conserve 0
      in
      let* () =
        require
          (balance.(c.source) = -net_v)
          "cut: flow ships %d units but the claimed value is %d (net of base %d)"
          (-balance.(c.source)) v base
      in
      (* Cut validity: removing the cut edges disconnects source from sink
         in the positive-capacity subgraph. *)
      let in_cut = Array.make (max nedges 1) false in
      List.iter (fun e -> in_cut.(e) <- true) c.cut_edges;
      let succ = Array.make c.vertices [] in
      Array.iteri
        (fun i (s, d, cap) ->
          if (not in_cut.(i)) && cap <> Certificate.Fin 0 then succ.(s) <- d :: succ.(s))
        edges;
      let seen = Array.make c.vertices false in
      let queue = Queue.create () in
      seen.(c.source) <- true;
      Queue.add c.source queue;
      while not (Queue.is_empty queue) do
        let at = Queue.pop queue in
        List.iter
          (fun d ->
            if not seen.(d) then begin
              seen.(d) <- true;
              Queue.add d queue
            end)
          succ.(at)
      done;
      let* () =
        require (not seen.(c.sink)) "cut: removing the cut does not disconnect source from sink"
      in
      (* The witness is determined by the cut: forced facts plus the facts
         of the cut edges. *)
      let* cut_facts =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            match List.assoc_opt e c.fact_edges with
            | Some fid -> Ok (fid :: acc)
            | None -> fail "cut: cut edge %d is not a fact edge" e)
          (Ok []) c.cut_edges
      in
      let expected = List.sort_uniq compare (List.map fst c.forced @ cut_facts) in
      (match witness with
      | Some w ->
          require
            (List.sort compare w = expected)
            "cut: witness differs from the certified cut's facts"
      | None -> fail "cut: reply carries no witness")

(* ---- Bounds (coverage + LP weak duality) ---- *)

let witness_cost (b : Certificate.bounds) w =
  let* () = require (distinct w) "bounds: duplicate fact in witness" in
  List.fold_left
    (fun acc fid ->
      let* acc = acc in
      match List.assoc_opt fid b.fact_weights with
      | Some wt -> Ok (acc + wt)
      | None -> fail "bounds: witness fact %d is not in the instance" fid)
    (Ok 0) w

let check_weights (b : Certificate.bounds) =
  let* () = require (distinct (List.map fst b.fact_weights)) "bounds: duplicate fact id" in
  iter_result
    (fun (fid, wt) -> require (wt >= 1) "bounds: fact %d has non-positive weight %d" fid wt)
    b.fact_weights

let check_covers (b : Certificate.bounds) w covers =
  iter_result
    (fun cover ->
      let* () = require (cover <> []) "bounds: empty cover" in
      let* () =
        iter_result
          (fun fid ->
            require (List.mem_assoc fid b.fact_weights)
              "bounds: cover references unknown fact %d" fid)
          cover
      in
      require
        (List.exists (fun fid -> List.mem fid w) cover)
        "bounds: the witness misses a cover — it is not a hitting set")
    covers

(* A feasible dual vector [y >= 0] with [A^T y <= w] proves every hitting
   set costs at least [sum y] (weak LP duality), so
   [ceil(sum y - eps)] is a valid integral lower bound. *)
let dual_bound (b : Certificate.bounds) covers ys =
  let nc = List.length covers in
  let* () =
    require (List.length ys = nc) "bounds: dual has %d multipliers for %d covers"
      (List.length ys) nc
  in
  let* () =
    iter_result (fun y -> require (y >= -1e-9) "bounds: negative dual multiplier") ys
  in
  let paired = List.combine covers ys in
  let load fid =
    List.fold_left (fun acc (cover, y) -> if List.mem fid cover then acc +. y else acc) 0.0 paired
  in
  let* () =
    iter_result
      (fun (fid, wt) ->
        require
          (load fid <= float_of_int wt +. 1e-6)
          "bounds: dual constraint violated at fact %d" fid)
      b.fact_weights
  in
  Ok (List.fold_left ( +. ) 0.0 ys)

let check_bounds_exact ~value ~witness (b : Certificate.bounds) =
  let* () = check_weights b in
  let* v =
    match value with
    | Value.Finite v -> Ok v
    | Value.Infinite -> Error "bounds: an exact bounds certificate needs a finite value"
  in
  let* w =
    match witness with Some w -> Ok w | None -> Error "bounds: reply carries no witness"
  in
  let* cost = witness_cost b w in
  let* () =
    require (cost = v) "bounds: witness costs %d but the claimed value is %d" cost v
  in
  let* () = match b.covers with None -> Ok () | Some covers -> check_covers b w covers in
  match b.dual with
  | None -> Ok ()
  | Some ys -> (
      match b.covers with
      | None -> Error "bounds: dual vector without covers"
      | Some covers ->
          let* bound = dual_bound b covers ys in
          require
            (int_of_float (Float.ceil (bound -. 1e-6)) <= v)
            "bounds: dual lower bound %g exceeds the claimed optimum %d" bound v)

let check_bounds_bounded ~lower ~upper ~witness (b : Certificate.bounds) =
  let* () = check_weights b in
  let* l, u =
    match (lower, upper) with
    | Value.Finite l, Value.Finite u -> Ok (l, u)
    | _ -> Error "bounds: bounded replies need finite lower and upper bounds"
  in
  let* () = require (l >= 0 && l <= u) "bounds: bound order violated (%d > %d)" l u in
  let* w =
    match witness with Some w -> Ok w | None -> Error "bounds: reply carries no upper witness"
  in
  let* cost = witness_cost b w in
  let* () =
    require (cost = u) "bounds: upper witness costs %d but the claimed upper bound is %d" cost u
  in
  let* () = match b.covers with None -> Ok () | Some covers -> check_covers b w covers in
  match b.dual with
  | None ->
      (* Without a dual no lower bound is certified beyond the trivial
         "a satisfied query needs at least one removal". *)
      require (l <= 1) "bounds: lower bound %d is not certified (no dual vector)" l
  | Some ys -> (
      match b.covers with
      | None -> Error "bounds: dual vector without covers"
      | Some covers ->
          let* bound = dual_bound b covers ys in
          require
            (l <= max 1 (int_of_float (Float.ceil (bound -. 1e-6))))
            "bounds: claimed lower bound %d exceeds the dual's certified bound %g" l bound)

(* ---- Hardness (gadget transcript replay) ---- *)

let replay_fuel = 100_000

module Iset = Set.Make (Int)

(* Does some walk over exactly the match's fact set spell a word of the
   language? Gadget completions are tiny, so a fueled backtracking search
   is exact and cheap; the fuel only guards against adversarial
   certificates. *)
let match_spells_word ~facts ~words ~fuel m =
  let target = Iset.of_list m in
  let rec go node i w used =
    decr fuel;
    if !fuel <= 0 then false
    else if i = String.length w then Iset.equal used target
    else
      List.exists
        (fun (id, src, label, dst) ->
          src = node && label = String.make 1 w.[i] && go dst (i + 1) w (Iset.add id used))
        facts
  in
  List.exists
    (fun w ->
      String.length w > 0
      && List.exists
           (fun (id, _, label, dst) ->
             label = String.make 1 w.[0] && go dst 1 w (Iset.singleton id))
           facts)
    words

let check_match h ~fuel m =
  let known fid = List.exists (fun (id, _, _, _) -> id = fid) h.Certificate.facts in
  let* () = require (m <> []) "hardness: empty match" in
  let* () = require (distinct m) "hardness: duplicate fact in match" in
  let* () =
    iter_result (fun fid -> require (known fid) "hardness: match references unknown fact %d" fid) m
  in
  let facts = List.filter (fun (id, _, _, _) -> List.mem id m) h.Certificate.facts in
  let ok = match_spells_word ~facts ~words:h.Certificate.words ~fuel m in
  if !fuel <= 0 then Error "hardness: transcript replay budget exceeded"
  else require ok "hardness: a listed match spells no word of the language"

(* The condensed structure must be a single path from [f_in] to [f_out]
   of odd length — the Thm 6.1 argument reduces vertex cover through
   exactly this shape. Re-derived from scratch: degree conditions plus a
   walk consuming every edge once. *)
let check_odd_path (h : Certificate.hardness) =
  let* pairs =
    List.fold_left
      (fun acc edge ->
        let* acc = acc in
        match List.sort_uniq compare edge with
        | [ a; b ] -> Ok ((a, b) :: acc)
        | _ -> Error "hardness: condensed edge is not a 2-element set")
      (Ok []) h.condensed
  in
  let pairs = List.rev pairs in
  let* () = require (distinct pairs) "hardness: duplicate condensed edge" in
  let nedges = List.length pairs in
  let* () =
    require (h.path_length = nedges)
      "hardness: path_length %d differs from the condensed edge count %d" h.path_length nedges
  in
  let* () = require (h.path_length mod 2 = 1) "hardness: condensed path length %d is even"
      h.path_length
  in
  let deg = Hashtbl.create 16 in
  let bump v = Hashtbl.replace deg v (1 + Option.value ~default:0 (Hashtbl.find_opt deg v)) in
  List.iter
    (fun (a, b) ->
      bump a;
      bump b)
    pairs;
  let degree v = Option.value ~default:0 (Hashtbl.find_opt deg v) in
  let* () = require (degree h.f_in = 1) "hardness: f_in has degree %d, expected 1" (degree h.f_in) in
  let* () =
    require (degree h.f_out = 1) "hardness: f_out has degree %d, expected 1" (degree h.f_out)
  in
  let* () =
    Hashtbl.fold
      (fun v d acc ->
        let* () = acc in
        if v = h.f_in || v = h.f_out then Ok ()
        else require (d = 2) "hardness: interior condensed vertex %d has degree %d" v d)
      deg (Ok ())
  in
  (* Walk from f_in consuming unused edges; with the degree profile above
     this either traverses the whole path to f_out or stops early,
     exposing a disconnected component. *)
  let used = Array.make nedges false in
  let rec walk at consumed =
    let step =
      let rec find i = function
        | [] -> None
        | (a, b) :: tl ->
            if (not used.(i)) && (a = at || b = at) then Some (i, if a = at then b else a)
            else find (i + 1) tl
      in
      find 0 pairs
    in
    match step with
    | None ->
        let* () =
          require (at = h.f_out) "hardness: condensed walk ends at %d, not f_out" at
        in
        require (consumed = nedges)
          "hardness: condensed structure is disconnected (%d of %d edges on the f_in path)"
          consumed nedges
    | Some (i, other) ->
        used.(i) <- true;
        walk other (consumed + 1)
  in
  walk h.f_in 0

let check_hardness (h : Certificate.hardness) =
  let ids = List.map (fun (id, _, _, _) -> id) h.facts in
  let* () = require (distinct ids) "hardness: duplicate fact id" in
  let* () =
    iter_result
      (fun (id, _, label, _) ->
        require (String.length label = 1) "hardness: fact %d's label is not a single letter" id)
      h.facts
  in
  let known fid = List.mem fid ids in
  let* () =
    require (known h.f_in && known h.f_out) "hardness: endpoint fact missing from the transcript"
  in
  let* () = require (h.f_in <> h.f_out) "hardness: the two endpoints coincide" in
  let* () = require (h.words <> []) "hardness: empty word list" in
  let* () = iter_result (fun w -> require (w <> "") "hardness: empty word in the language") h.words in
  let* () = require (h.matches <> []) "hardness: transcript lists no matches" in
  let fuel = ref replay_fuel in
  let* () = iter_result (check_match h ~fuel) h.matches in
  let* () = require (h.condensed <> []) "hardness: empty condensed structure" in
  let sorted_matches = List.map (List.sort_uniq compare) h.matches in
  let* () =
    iter_result
      (fun edge ->
        let se = List.sort_uniq compare edge in
        let* () =
          iter_result
            (fun fid -> require (known fid) "hardness: condensed edge references unknown fact %d" fid)
            se
        in
        require
          (List.exists (fun m -> List.for_all (fun fid -> List.mem fid m) se) sorted_matches)
          "hardness: a condensed edge is contained in no match (truncated transcript?)")
      h.condensed
  in
  check_odd_path h

(* ---- dispatch ---- *)

let check_reply (r : Proto.reply) =
  match r.verdict with
  | Proto.V_failed _ -> (
      match r.cert with
      | None -> Ok ()
      | Some _ -> Error "error replies must not carry a certificate")
  | Proto.V_exact { value; algorithm; witness } -> (
      let* () = require (List.mem algorithm algorithms) "unknown algorithm %S" algorithm in
      match r.cert with
      | None -> Error "exact reply without a certificate"
      | Some (Certificate.Trivial { why }) ->
          let* () =
            require
              (List.mem algorithm [ alg_trivial; alg_local; alg_bcl ])
              "trivial certificate under algorithm %S" algorithm
          in
          check_trivial ~value ~witness why
      | Some (Certificate.Cut c) ->
          let* () =
            require
              (List.mem algorithm [ alg_local; alg_bcl ])
              "cut certificate under algorithm %S" algorithm
          in
          check_cut ~value ~witness c
      | Some (Certificate.Bounds b) ->
          let* () =
            require
              (List.mem algorithm [ alg_bnb; alg_ilp ])
              "bounds certificate under algorithm %S" algorithm
          in
          check_bounds_exact ~value ~witness b
      | Some (Certificate.Opaque { algorithm = a }) ->
          let* () =
            require (algorithm = alg_submod) "opaque certificate under algorithm %S" algorithm
          in
          let* () =
            require (a = algorithm) "opaque certificate names algorithm %S, the reply says %S" a
              algorithm
          in
          require
            (match value with Value.Finite _ -> true | Value.Infinite -> false)
            "opaque certificate with an infinite value"
      | Some (Certificate.Hardness _) -> Error "hardness certificate on a solve reply")
  | Proto.V_bounded { lower; upper; witness; reason } -> (
      let* () = require (List.mem reason reasons) "unknown degradation reason %S" reason in
      match r.cert with
      | Some (Certificate.Bounds b) -> check_bounds_bounded ~lower ~upper ~witness b
      | Some c -> fail "bounded reply with a %s certificate" (Certificate.kind_name c)
      | None -> Error "bounded reply without a certificate")

let check_classification (c : Proto.classification) =
  match c.Proto.c_verdict with
  | "np-hard" -> (
      match c.Proto.c_cert with
      | Some (Certificate.Hardness h) -> check_hardness h
      | Some other ->
          fail "np-hard classification with a %s certificate" (Certificate.kind_name other)
      | None -> Error "np-hard classification without a hardness certificate")
  | "inconclusive" -> (
      match c.Proto.c_cert with
      | None -> Ok ()
      | Some _ -> Error "inconclusive classification must not carry a certificate")
  | other -> fail "unknown classification verdict %S" other

let check_line line =
  match Json.parse line with
  | Error e -> Error (Printf.sprintf "unparseable JSON: %s" e)
  | Ok v -> (
      match Json.member "kind" v with
      | Some (Json.Str "classification") ->
          let* c = Proto.classification_of_obj v in
          let* () = check_classification c in
          Ok "classification"
      | _ ->
          let* r = Proto.reply_of_obj v in
          let* () = check_reply r in
          Ok (Proto.verdict_name r.verdict))
