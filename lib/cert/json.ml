type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let buf_add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
      else Buffer.add_string b "null"
  | Str s -> buf_add_escaped b s
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        vs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          buf_add_escaped b k;
          Buffer.add_char b ':';
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

exception Bad of string

(* Minimal recursive-descent parser, sufficient for re-reading what
   [to_string] emits (journal lines, job/reply frames). Input bytes above
   0x7f pass through untouched; [\uXXXX] escapes decode to a single byte
   when < 0x100 and to '?' otherwise. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r')
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; incr pos
               | '\\' -> Buffer.add_char b '\\'; incr pos
               | '/' -> Buffer.add_char b '/'; incr pos
               | 'n' -> Buffer.add_char b '\n'; incr pos
               | 'r' -> Buffer.add_char b '\r'; incr pos
               | 't' -> Buffer.add_char b '\t'; incr pos
               | 'b' -> Buffer.add_char b '\b'; incr pos
               | 'f' -> Buffer.add_char b '\012'; incr pos
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let v =
                     (hex s.[!pos + 1] lsl 12)
                     lor (hex s.[!pos + 2] lsl 8)
                     lor (hex s.[!pos + 3] lsl 4)
                     lor hex s.[!pos + 4]
                   in
                   Buffer.add_char b (if v < 0x100 then Char.chr v else '?');
                   pos := !pos + 5
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            loop ()
        | c -> Buffer.add_char b c; incr pos; loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> begin
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok)
      end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None
