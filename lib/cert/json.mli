(** Minimal JSON values with a total emitter and a parser for re-reading
    what the emitter produced.

    This module is the single JSON implementation for the whole tree: the
    wire protocol ({!Proto}), the journal, and the independent certificate
    checker all share it, and it deliberately depends on nothing but the
    standard library so {!Checker} can be linked without any solver code. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering. Non-finite floats emit as [null];
    control characters, backslash, and double quote are escaped, so the
    result never contains a raw newline — safe for line-delimited
    framing. *)

val parse : string -> (t, string) result
(** Strict: the whole input must be one JSON value (surrounding
    whitespace allowed). Duplicate keys keep the first occurrence. *)

val member : string -> t -> t option
val to_int_opt : t -> int option
val to_str_opt : t -> string option

val to_float_opt : t -> float option
(** Accepts ints too (JSON does not distinguish [1] from [1.0]). *)
