type t = Finite of int | Infinite

let zero = Finite 0
let add a b = match (a, b) with Finite x, Finite y -> Finite (x + y) | _ -> Infinite

let compare a b =
  match (a, b) with
  | Finite x, Finite y -> Stdlib.compare x y
  | Finite _, Infinite -> -1
  | Infinite, Finite _ -> 1
  | Infinite, Infinite -> 0

let min a b = if compare a b <= 0 then a else b
let equal a b = compare a b = 0
let to_string = function Finite x -> string_of_int x | Infinite -> "+\xe2\x88\x9e"
let pp ppf v = Format.pp_print_string ppf (to_string v)
