type problem = {
  ncols : int;
  objective : float array;
  rows : (float array * float) list;
  upper : float option array;
}

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

let pivots = Obs.Metrics.counter "simplex.pivots"

let eps = 1e-9

(* Standard form: upper bounds become extra ≥ rows (-x_i ≥ -u_i); every row
   a·x ≥ b with b possibly negative is normalized to b ≥ 0 by sign flip into
   ≤ form... We instead build the classic two-phase tableau for
     min c·x  s.t.  A x - s = b,  x, s ≥ 0
   after flipping rows so that b ≥ 0. *)
let solve ?(fuel = fun () -> ()) (p : problem) =
  let base_rows =
    List.map (fun (a, b) -> (Array.copy a, b)) p.rows
    @ List.concat
        (List.init p.ncols (fun i ->
             match p.upper.(i) with
             | None -> []
             | Some u ->
                 let a = Array.make p.ncols 0.0 in
                 a.(i) <- -1.0;
                 [ (a, -.u) ]))
  in
  let m = List.length base_rows in
  let n = p.ncols in
  (* Columns: n structural + m surplus/slack + m artificial + 1 rhs. *)
  let ncols_t = n + m + m + 1 in
  let t = Array.make_matrix (m + 1) ncols_t 0.0 in
  let basis = Array.make m 0 in
  List.iteri
    (fun r (a, b) ->
      let sign = if b < 0.0 then -1.0 else 1.0 in
      for j = 0 to n - 1 do
        t.(r).(j) <- sign *. a.(j)
      done;
      (* a·x ≥ b  ⇒  a·x - s = b (s ≥ 0); flipped rows become ≤ with slack. *)
      t.(r).(n + r) <- sign *. -1.0;
      t.(r).(n + m + r) <- 1.0;
      t.(r).(ncols_t - 1) <- sign *. b;
      basis.(r) <- n + m + r)
    base_rows;
  let pivot row col =
    let piv = t.(row).(col) in
    for j = 0 to ncols_t - 1 do
      t.(row).(j) <- t.(row).(j) /. piv
    done;
    for r = 0 to m do
      if r <> row && abs_float t.(r).(col) > 0.0 then begin
        let f = t.(r).(col) in
        for j = 0 to ncols_t - 1 do
          t.(r).(j) <- t.(r).(j) -. (f *. t.(row).(j))
        done
      end
    done;
    if row < m then basis.(row) <- col
  in
  (* Run simplex on the objective stored in row m, over allowed columns;
     Bland's rule for anti-cycling. Returns false on unboundedness. *)
  let run allowed =
    let continue = ref true and ok = ref true in
    while !continue do
      fuel ();
      Obs.Metrics.incr pivots;
      (* entering column: smallest index with negative reduced cost *)
      let enter = ref (-1) in
      (try
         for j = 0 to ncols_t - 2 do
           if allowed j && t.(m).(j) < -.eps then begin
             enter := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !enter < 0 then continue := false
      else begin
        (* leaving row: min ratio, Bland tie-break on basis index *)
        let leave = ref (-1) and best = ref infinity in
        for r = 0 to m - 1 do
          if t.(r).(!enter) > eps then begin
            let ratio = t.(r).(ncols_t - 1) /. t.(r).(!enter) in
            if
              ratio < !best -. eps
              || (abs_float (ratio -. !best) <= eps && !leave >= 0 && basis.(r) < basis.(!leave))
            then begin
              best := ratio;
              leave := r
            end
          end
        done;
        if !leave < 0 then begin
          ok := false;
          continue := false
        end
        else pivot !leave !enter
      end
    done;
    !ok
  in
  (* Phase 1: minimize the sum of artificials. *)
  for j = 0 to ncols_t - 1 do
    t.(m).(j) <- 0.0
  done;
  for r = 0 to m - 1 do
    for j = 0 to ncols_t - 1 do
      t.(m).(j) <- t.(m).(j) -. t.(r).(j)
    done
  done;
  (* artificial columns have coefficient 1 in the phase-1 objective; after
     subtracting basic rows their reduced costs are 0, structural columns
     get the negated row sums — which is what the loop above computed, except
     we must zero the artificial columns' costs properly: *)
  for r = 0 to m - 1 do
    t.(m).(n + m + r) <- 0.0
  done;
  if not (run (fun j -> j < ncols_t - 1)) then Infeasible
  else if t.(m).(ncols_t - 1) < -.eps *. float_of_int (m + 1) *. 10.0 then Infeasible
  else begin
    (* Drive remaining artificial variables out of the basis if possible. *)
    for r = 0 to m - 1 do
      if basis.(r) >= n + m then begin
        let found = ref (-1) in
        for j = 0 to n + m - 1 do
          if !found < 0 && abs_float t.(r).(j) > eps then found := j
        done;
        if !found >= 0 then pivot r !found
      end
    done;
    (* Phase 2: the real objective, expressed over the current basis. *)
    for j = 0 to ncols_t - 1 do
      t.(m).(j) <- 0.0
    done;
    for j = 0 to n - 1 do
      t.(m).(j) <- p.objective.(j)
    done;
    for r = 0 to m - 1 do
      if basis.(r) < n then begin
        let c = p.objective.(basis.(r)) in
        if abs_float c > 0.0 then
          for j = 0 to ncols_t - 1 do
            t.(m).(j) <- t.(m).(j) -. (c *. t.(r).(j))
          done
      end
    done;
    (* artificial columns are forbidden in phase 2 *)
    if not (run (fun j -> j < n + m)) then Unbounded
    else begin
      let x = Array.make n 0.0 in
      for r = 0 to m - 1 do
        if basis.(r) < n then x.(basis.(r)) <- t.(r).(ncols_t - 1)
      done;
      let value = Array.fold_left ( +. ) 0.0 (Array.mapi (fun i c -> c *. x.(i)) p.objective) in
      Optimal { value; solution = x }
    end
  end

let validate_problem p =
  let module C = Invariant.Collector in
  let c = C.create "Lp.Simplex" in
  C.check c (p.ncols >= 0) ~invariant:"column-count" "ncols = %d is negative" p.ncols;
  C.check c
    (Array.length p.objective = p.ncols)
    ~invariant:"objective-length" "objective has length %d, expected %d"
    (Array.length p.objective) p.ncols;
  C.check c
    (Array.length p.upper = p.ncols)
    ~invariant:"upper-length" "upper bounds have length %d, expected %d" (Array.length p.upper)
    p.ncols;
  let finite x = Float.is_finite x in
  Array.iteri
    (fun i x ->
      C.check c (finite x) ~invariant:"objective-finite" "objective coefficient %d is %f" i x)
    p.objective;
  Array.iteri
    (fun i u ->
      match u with
      | None -> ()
      | Some u ->
          C.check c
            (finite u && u >= 0.0)
            ~invariant:"upper-bounds" "upper bound %d is %f (must be finite, ≥ 0)" i u)
    p.upper;
  List.iteri
    (fun r (a, b) ->
      C.check c
        (Array.length a = p.ncols)
        ~invariant:"row-length" "row %d has length %d, expected %d" r (Array.length a) p.ncols;
      C.check c (finite b) ~invariant:"row-finite" "row %d has right-hand side %f" r b;
      Array.iteri
        (fun j x ->
          C.check c (finite x) ~invariant:"row-finite" "row %d, column %d is %f" r j x)
        a)
    p.rows;
  C.result c

(* Feasibility of a claimed optimal tableau solution, up to [tol]. *)
let validate_solution ?(tol = 1e-6) p ~value ~solution =
  let module C = Invariant.Collector in
  let c = C.create "Lp.Simplex" in
  C.check c
    (Array.length solution = p.ncols)
    ~invariant:"solution-length" "solution has length %d, expected %d" (Array.length solution)
    p.ncols;
  if Array.length solution = p.ncols then begin
    Array.iteri
      (fun i x ->
        C.check c (x >= -.tol) ~invariant:"nonnegativity" "x_%d = %f < 0" i x;
        match p.upper.(i) with
        | Some u -> C.check c (x <= u +. tol) ~invariant:"upper-bounds" "x_%d = %f > %f" i x u
        | None -> ())
      solution;
    List.iteri
      (fun r (a, b) ->
        let lhs = ref 0.0 in
        Array.iteri (fun j x -> lhs := !lhs +. (x *. solution.(j))) a;
        C.check c
          (!lhs >= b -. tol)
          ~invariant:"row-feasibility" "row %d: a·x = %f < b = %f" r !lhs b)
      p.rows;
    let obj = ref 0.0 in
    Array.iteri (fun j x -> obj := !obj +. (p.objective.(j) *. x)) solution;
    C.check c
      (abs_float (!obj -. value) <= tol *. (1.0 +. abs_float value))
      ~invariant:"objective-value" "c·x = %f but the solver claims %f" !obj value
  end;
  C.result c

let lp_relaxation_of_cover ~nvars ~weights ~sets =
  {
    ncols = nvars;
    objective = Array.copy weights;
    rows =
      List.map
        (fun set ->
          let a = Array.make nvars 0.0 in
          List.iter (fun i -> a.(i) <- 1.0) set;
          (a, 1.0))
        sets;
    upper = Array.make nvars (Some 1.0);
  }
