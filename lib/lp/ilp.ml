type instance = {
  nvars : int;
  weights : int array;
  covers : int list list;
}

type solution = { value : int; assignment : bool array; lp_bound : float }

let nodes = Obs.Metrics.counter "ilp.nodes"

let lp_of instance ~fixed0 ~fixed1 =
  let base =
    Simplex.lp_relaxation_of_cover ~nvars:instance.nvars
      ~weights:(Array.map float_of_int instance.weights)
      ~sets:instance.covers
  in
  (* Fixings are encoded by bounds: x_i = 0 via upper bound 0; x_i = 1 via
     an extra covering row {i}. *)
  let upper = Array.copy base.Simplex.upper in
  List.iter (fun i -> upper.(i) <- Some 0.0) fixed0;
  let extra =
    List.map
      (fun i ->
        let a = Array.make instance.nvars 0.0 in
        a.(i) <- 1.0;
        (a, 1.0))
      fixed1
  in
  { base with Simplex.upper; rows = base.Simplex.rows @ extra }

let lp_bound ?fuel instance =
  match Simplex.solve ?fuel (lp_of instance ~fixed0:[] ~fixed1:[]) with
  | Simplex.Optimal { value; _ } -> Ok value
  | Simplex.Infeasible -> Error "infeasible LP relaxation"
  | Simplex.Unbounded -> Error "unbounded LP relaxation (bug: covering LPs are bounded)"

let frac x = abs_float (x -. Float.round x)

let solve ?(fuel = fun () -> ()) instance =
  if List.exists (( = ) []) instance.covers then Error "infeasible: empty cover set"
  else begin
    let best = ref max_int in
    let best_assignment = ref (Array.make instance.nvars true) in
    let root_bound = ref nan in
    let rec branch fixed0 fixed1 depth =
      fuel ();
      Obs.Metrics.incr nodes;
      if depth > 2 * instance.nvars then
        Invariant.internal_error "Ilp.solve: branching depth %d exceeded 2*nvars" depth;
      match Simplex.solve ~fuel (lp_of instance ~fixed0 ~fixed1) with
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded ->
          Invariant.internal_error "Ilp.solve: unbounded covering LP (bounded by construction)"
      | Simplex.Optimal { value; solution } ->
          if depth = 0 then root_bound := value;
          (* Integer lower bound: weights are integers, so round up. *)
          let bound = int_of_float (Float.round (ceil (value -. 1e-6))) in
          if bound < !best then begin
            (* most fractional variable *)
            let pick = ref (-1) and worst = ref 1e-6 in
            Array.iteri
              (fun i v ->
                if frac v > !worst then begin
                  worst := frac v;
                  pick := i
                end)
              solution;
            if !pick < 0 then begin
              (* integral LP solution *)
              let assignment = Array.map (fun v -> v > 0.5) solution in
              (* guard against numerical drift: recompute the true value *)
              let v = ref 0 in
              Array.iteri (fun i b -> if b then v := !v + instance.weights.(i)) assignment;
              if !v < !best then begin
                best := !v;
                best_assignment := assignment
              end
            end
            else begin
              branch fixed0 (!pick :: fixed1) (depth + 1);
              branch (!pick :: fixed0) fixed1 (depth + 1)
            end
          end
    in
    branch [] [] 0;
    if !best = max_int then Error "infeasible"
    else Ok { value = !best; assignment = !best_assignment; lp_bound = !root_bound }
  end
