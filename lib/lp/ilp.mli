(** 0/1 integer programming by LP-based branch and bound, for
    covering-style programs (minimize, all-binary variables).

    This is the "unified ILP approach" baseline of Makhija & Gatterbauer
    (reference [23] of the paper) scaled down to this library's needs:
    resilience instances are weighted hitting-set ILPs over the hypergraph
    of matches, and the LP relaxation gives the lower bound studied there. *)

type instance = {
  nvars : int;
  weights : int array;  (** nonnegative integer objective coefficients *)
  covers : int list list;  (** each list S encodes Σ_{i∈S} xᵢ ≥ 1 *)
}

type solution = { value : int; assignment : bool array; lp_bound : float }

val solve : ?fuel:(unit -> unit) -> instance -> (solution, string) result
(** Exact optimum, or [Error] on infeasibility (an empty cover set) or
    numerical failure. [lp_bound] is the root LP relaxation value. [fuel]
    is called once per branch-and-bound node and once per simplex pivot;
    it may raise (e.g. [Resilience.Budget.Exhausted]) to abort an
    over-budget solve — the exception propagates unchanged. *)

val lp_bound : ?fuel:(unit -> unit) -> instance -> (float, string) result
(** Just the LP relaxation optimum, under the same [fuel] contract. *)
