(** A small dense two-phase simplex solver for covering-style linear
    programs:

    minimize c·x subject to A x ≥ b, 0 ≤ x (≤ optional upper bounds).

    This is the substrate for the ILP baseline solver (the approach of
    Makhija & Gatterbauer, cited as [23] by the paper, solves resilience
    with ILP and studies its LP relaxation). Dense tableau with Bland's
    rule; adequate for the small/medium instances of the test and bench
    suites, not a production LP code. *)

type problem = {
  ncols : int;  (** number of variables *)
  objective : float array;  (** minimized; length ncols *)
  rows : (float array * float) list;  (** each (a, b) encodes a·x ≥ b *)
  upper : float option array;  (** optional upper bounds per variable *)
}

type outcome =
  | Optimal of { value : float; solution : float array }
  | Infeasible
  | Unbounded

val solve : ?fuel:(unit -> unit) -> problem -> outcome
(** [fuel] is called once per simplex iteration (pivot selection); it may
    raise — e.g. [Resilience.Budget.Exhausted] — to abort an over-budget
    solve. The exception propagates to the caller unchanged. *)

val lp_relaxation_of_cover :
  nvars:int -> weights:float array -> sets:int list list -> problem
(** The LP relaxation of a weighted set-cover/hitting-set instance: minimize
    Σ wᵢxᵢ with Σ_{i∈S} xᵢ ≥ 1 for each set S and 0 ≤ x ≤ 1. *)

val validate_problem : problem -> (unit, Invariant.violation list) result
(** Machine-checks the tableau preconditions: consistent dimensions
    (objective, rows, upper bounds all of length [ncols]) and finite
    coefficients, with finite non-negative upper bounds. *)

val validate_solution :
  ?tol:float -> problem -> value:float -> solution:float array ->
  (unit, Invariant.violation list) result
(** Feasibility certificate for an [Optimal] outcome, up to [tol]
    (default [1e-6]): the solution is within bounds, satisfies every row
    [a·x ≥ b], and its objective matches the claimed value. (Optimality
    itself is certified at the integer level by the ILP solver's
    cross-checks, not here.) *)
