open Lint_base
open Lint_rules

let sprintf = Printf.sprintf

type kind = Lib | Exec

type cunit = {
  uname : string;
  kind : kind;
  dir : string;
  dune_file : string;
  dune_line : int;
  libs_line : int;
  deps : string list;
  ext_deps : string list;
  mods : (string * string) list;
}

type node = { key : string; nuname : string; mname : string; nfile : string; ndir : string }
type edge = { esrc : string; edst : string; eline : int }

type t = { root : string; units : cunit list; nodes : node list; edges : edge list }

let node_key uname mname = uname ^ "/" ^ mname

(* Human name of a compilation unit's module: the library prefix is
   dropped for an eponymous main module ([invariant/Invariant] is just
   [Invariant]; [resilience/Exact] is [Resilience.Exact]). *)
let display_key key =
  match String.index_opt key '/' with
  | None -> key
  | Some i ->
      let u = String.sub key 0 i in
      let m = String.sub key (i + 1) (String.length key - i - 1) in
      if capitalize u = m then m else capitalize u ^ "." ^ m

(* {2 Discovery} *)

let readdir_sorted dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> errorf dir 0 "cannot scan directory: %s" msg
  | entries ->
      Array.sort compare entries;
      Array.to_list entries

let ml_mods dir =
  List.filter_map
    (fun e ->
      if Filename.check_suffix e ".ml" then
        Some (capitalize (Filename.chop_suffix e ".ml"), Filename.concat dir e)
      else None)
    (readdir_sorted dir)

let units_of_dune ~dir dune_file =
  let stanzas = Lint_sexp.parse_file dune_file in
  let libraries st =
    match Lint_sexp.field st "libraries" with
    | None -> ([], Lint_sexp.line_of st)
    | Some [] -> ([], Lint_sexp.line_of st)
    | Some (first :: _ as items) -> (Lint_sexp.atoms items, Lint_sexp.line_of first)
  in
  List.concat_map
    (fun st ->
      match Lint_sexp.stanza_kind st with
      | Some "library" ->
          let name =
            match Lint_sexp.field_atoms st "name" with
            | Some (n :: _) -> n
            | Some [] | None ->
                errorf dune_file (Lint_sexp.line_of st) "library stanza has no (name ...)"
          in
          let deps, libs_line = libraries st in
          [
            {
              uname = name;
              kind = Lib;
              dir;
              dune_file;
              dune_line = Lint_sexp.line_of st;
              libs_line;
              deps;
              ext_deps = [];
              mods = ml_mods dir;
            };
          ]
      | Some ("executable" | "executables") ->
          let names =
            match Lint_sexp.field_atoms st "name" with
            | Some (n :: _) -> [ n ]
            | Some [] | None -> Option.value ~default:[] (Lint_sexp.field_atoms st "names")
          in
          if names = [] then
            errorf dune_file (Lint_sexp.line_of st) "executable stanza has no (name ...)";
          let deps, libs_line = libraries st in
          let mods =
            match Lint_sexp.field_atoms st "modules" with
            | Some ms ->
                List.map (fun m -> (capitalize m, Filename.concat dir (m ^ ".ml"))) ms
            | None -> ml_mods dir
          in
          List.map
            (fun name ->
              {
                uname = name;
                kind = Exec;
                dir;
                dune_file;
                dune_line = Lint_sexp.line_of st;
                libs_line;
                deps;
                ext_deps = [];
                mods;
              })
            names
      | Some _ | None -> [])
    stanzas

let discover ~root =
  let lib_root = Filename.concat root "lib" in
  let lib_units =
    List.concat_map
      (fun entry ->
        let dir = Filename.concat lib_root entry in
        let dune = Filename.concat dir "dune" in
        if Sys.is_directory dir && Sys.file_exists dune then units_of_dune ~dir dune
        else [])
      (readdir_sorted lib_root)
  in
  let bin_units =
    let dir = Filename.concat root "bin" in
    let dune = Filename.concat dir "dune" in
    if Sys.file_exists dune then units_of_dune ~dir dune else []
  in
  let all = lib_units @ bin_units in
  let libnames = List.filter_map (fun u -> if u.kind = Lib then Some u.uname else None) all in
  let all =
    List.map
      (fun u ->
        let internal, ext = List.partition (fun d -> List.mem d libnames) u.deps in
        { u with deps = internal; ext_deps = ext })
      all
  in
  let units = List.sort (fun a b -> compare a.uname b.uname) all in
  let nodes =
    List.concat_map
      (fun u ->
        List.map
          (fun (m, f) ->
            { key = node_key u.uname m; nuname = u.uname; mname = m; nfile = f; ndir = u.dir })
          u.mods)
      units
  in
  { root; units; nodes; edges = [] }

(* {2 Edge extraction}

   Only three lexical forms create reference edges: [open X],
   [module A = B], and {e dotted} capitalized tokens. Bare capitalized
   tokens are variant constructors ([Exact], [Local]) far more often
   than module references, and treating them as edges would invent
   cycles that do not exist. Resolution only ever follows the unit's
   own modules and its dune-declared dependencies, so an edge can never
   cross a dependency the build does not have. *)

type alias_target = ANode of string | ALib of string

let edges_of_source units u mname file =
  let stripped = strip (read_file file) in
  let toks = Array.of_list (lex stripped) in
  let n = Array.length toks in
  let aliases : (string, alias_target) Hashtbl.t = Hashtbl.create 8 in
  let opened = ref [] in
  let acc = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let src = node_key u.uname mname in
  let is_cap s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z' in
  let unit_by_name nm = List.find_opt (fun x -> x.uname = nm) units in
  let dep_lib cap = List.find_opt (fun d -> capitalize d = cap) u.deps in
  let mem_mod lb m =
    match unit_by_name lb with Some x -> List.mem_assoc m x.mods | None -> false
  in
  let resolve_in_lib lb rest =
    match rest with
    | b :: _ when is_cap b && mem_mod lb b -> Some (node_key lb b)
    | _ ->
        let ep = capitalize lb in
        if mem_mod lb ep then Some (node_key lb ep) else None
  in
  let resolve parts =
    match parts with
    | [] -> None
    | a :: rest -> (
        if not (is_cap a) then None
        else
          match Hashtbl.find_opt aliases a with
          | Some (ANode k) -> Some k
          | Some (ALib lb) -> resolve_in_lib lb rest
          | None -> (
              if a <> mname && List.mem_assoc a u.mods then Some (node_key u.uname a)
              else
                match dep_lib a with
                | Some lb -> resolve_in_lib lb rest
                | None ->
                    List.find_map
                      (fun lb -> if mem_mod lb a then Some (node_key lb a) else None)
                      !opened))
  in
  let add_edge line dst =
    if dst <> src && not (Hashtbl.mem seen dst) then begin
      Hashtbl.replace seen dst ();
      acc := { esrc = src; edst = dst; eline = line } :: !acc
    end
  in
  let split_dots s = String.split_on_char '.' s in
  let idx = ref 0 in
  while !idx < n do
    let t = toks.(!idx) in
    if not t.op then begin
      if t.text = "open" && !idx + 1 < n then begin
        let nx = toks.(!idx + 1) in
        if (not nx.op) && is_cap nx.text then begin
          let parts = split_dots nx.text in
          (match resolve parts with Some k -> add_edge nx.line k | None -> ());
          match parts with
          | [ a ] -> (
              match dep_lib a with
              | Some lb -> opened := !opened @ [ lb ]
              | None -> ())
          | _ -> ()
        end
      end;
      if t.text = "module" && !idx + 3 < n then begin
        let a = toks.(!idx + 1) and eq = toks.(!idx + 2) and tgt = toks.(!idx + 3) in
        if
          (not a.op) && is_cap a.text && eq.op && eq.text = "=" && (not tgt.op)
          && is_cap tgt.text
        then begin
          let parts = split_dots tgt.text in
          match resolve parts with
          | Some k ->
              add_edge tgt.line k;
              Hashtbl.replace aliases a.text (ANode k)
          | None -> (
              match parts with
              | [ p ] -> (
                  match dep_lib p with
                  | Some lb -> Hashtbl.replace aliases a.text (ALib lb)
                  | None -> ())
              | _ -> ())
        end
      end;
      if String.contains t.text '.' && is_cap t.text then
        match resolve (split_dots t.text) with
        | Some k -> add_edge t.line k
        | None -> ()
    end;
    incr idx
  done;
  List.rev !acc

let with_edges g =
  let edges =
    List.concat_map
      (fun u -> List.concat_map (fun (m, f) -> edges_of_source g.units u m f) u.mods)
      g.units
  in
  { g with edges }

(* {2 Capability propagation} *)

let cap_bit c =
  let rec position i caps =
    match caps with
    | [] -> 0
    | x :: tl -> if x = c then i else position (i + 1) tl
  in
  1 lsl position 0 all_caps

let mask_of caps = List.fold_left (fun m c -> m lor cap_bit c) 0 caps
let caps_of_mask m = List.filter (fun c -> m land cap_bit c <> 0) all_caps

type info = {
  inode : node;
  direct : (cap * int) list;
  grant_mask : int;
  mutable eff : int;
}

type result = {
  graph : t;
  findings : finding list;
  unit_eff : (string * cap list) list;
}

let adjacency g =
  let tbl : (string, edge list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl e.esrc) in
      Hashtbl.replace tbl e.esrc (cur @ [ e ]))
    g.edges;
  fun k -> Option.value ~default:[] (Hashtbl.find_opt tbl k)

(* Tarjan's strongly-connected components over the module reference
   graph; only components of size > 1 are reported (self references are
   dropped at extraction). *)
let sccs g adj =
  let index : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let low : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let on_stack : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let get tbl k = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun e ->
        let w = e.edst in
        match Hashtbl.find_opt index w with
        | None ->
            strong w;
            Hashtbl.replace low v (min (get low v) (get low w))
        | Some iw ->
            if Hashtbl.mem on_stack w then Hashtbl.replace low v (min (get low v) iw))
      (adj v);
    if get low v = get index v then begin
      let comp = ref [] in
      let stop = ref false in
      while not !stop do
        match !stack with
        | [] -> stop := true
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            comp := w :: !comp;
            if w = v then stop := true
      done;
      if List.length !comp > 1 then comps := List.sort compare !comp :: !comps
    end
  in
  List.iter (fun nd -> if not (Hashtbl.mem index nd.key) then strong nd.key) g.nodes;
  List.sort compare !comps

let find_witness infos adj start cap =
  let bit = cap_bit cap in
  let q = Queue.create () in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let result = ref None in
  Hashtbl.replace visited start ();
  Queue.add (start, []) q;
  while !result = None && not (Queue.is_empty q) do
    match Queue.take_opt q with
    | None -> ()
    | Some (k, path) ->
        List.iter
          (fun e ->
            if !result = None && not (Hashtbl.mem visited e.edst) then
              match Hashtbl.find_opt infos e.edst with
              | None -> ()
              | Some di ->
                  if di.eff land bit <> 0 && di.grant_mask land bit = 0 then begin
                    Hashtbl.replace visited e.edst ();
                    let path' = e.edst :: path in
                    if List.mem_assoc cap di.direct then result := Some (List.rev path')
                    else Queue.add (e.edst, path') q
                  end)
          (adj k)
  done;
  !result

let analyze ~root ~policy =
  let g = with_edges (discover ~root) in
  let rel p = relativize ~root p in
  let adj = adjacency g in
  let grant_mask_of u =
    let m =
      mask_of
        (Lint_policy.grants_of policy u.nuname
        @ Lint_policy.grants_of policy (Filename.basename u.ndir))
    in
    (* Socket and stderr grants are per-module, not per-unit: only the
       transport / logger slug gets the bit, making it the encapsulation
       boundary — their callers inside lib/runner and lib/obs never
       acquire 'socket' or 'stderr' reach. *)
    let slug = Filename.basename u.ndir ^ "/" ^ String.uncapitalize_ascii u.mname in
    let m = if Lint_policy.socket_module_allowed policy slug then m lor cap_bit Csocket else m in
    if Lint_policy.stderr_module_allowed policy slug then m lor cap_bit Cstderr else m
  in
  let infos : (string, info) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun nd ->
      let direct = caps_of_source (read_file nd.nfile) in
      let gm = grant_mask_of nd in
      Hashtbl.replace infos nd.key
        { inode = nd; direct; grant_mask = gm; eff = mask_of (List.map fst direct) })
    g.nodes;
  let lookup k = Hashtbl.find_opt infos k in
  (* Fixpoint: eff(M) = direct(M) | U over M->N of (eff(N) & ~grant(N)).
     A granted module is an encapsulation boundary — its capabilities do
     not leak to callers. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun nd ->
        match lookup nd.key with
        | None -> ()
        | Some i ->
            let inflow =
              List.fold_left
                (fun m e ->
                  match lookup e.edst with
                  | None -> m
                  | Some d -> m lor (d.eff land lnot d.grant_mask))
                0 (adj nd.key)
            in
            let eff = mask_of (List.map fst i.direct) lor inflow in
            if eff <> i.eff then begin
              i.eff <- eff;
              changed := true
            end)
      g.nodes
  done;
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* Transitive capability reach, with a breadth-first (shortest) witness
     path to a module that uses the capability directly. *)
  List.iter
    (fun nd ->
      match lookup nd.key with
      | None -> ()
      | Some i ->
          let viol = i.eff land lnot i.grant_mask land lnot (mask_of (List.map fst i.direct)) in
          List.iter
            (fun cap ->
              match find_witness infos adj nd.key cap with
              | None -> ()
              | Some path ->
                  let first_line =
                    match path with
                    | [] -> 1
                    | p :: _ -> (
                        match List.find_opt (fun e -> e.edst = p) (adj nd.key) with
                        | Some e -> e.eline
                        | None -> 1)
                  in
                  let use =
                    match List.rev path with
                    | [] -> ""
                    | last :: _ -> (
                        match lookup last with
                        | None -> ""
                        | Some d -> (
                            match List.assoc_opt cap d.direct with
                            | None -> ""
                            | Some line -> sprintf "; first direct use at %s:%d"
                                  (rel d.inode.nfile) line))
                  in
                  add
                    {
                      file = rel nd.nfile;
                      line = first_line;
                      rule = rule_reach;
                      message =
                        sprintf "%s reaches capability '%s' it is not granted%s"
                          (display_key nd.key) (cap_name cap) use;
                      path = List.map display_key (nd.key :: path);
                    })
            (caps_of_mask viol))
    g.nodes;
  (* Module dependency cycles. *)
  List.iter
    (fun comp ->
      match comp with
      | [] -> ()
      | first :: _ ->
          let file, line =
            match lookup first with
            | None -> (rel g.root, 1)
            | Some i -> (
                ( rel i.inode.nfile,
                  match
                    List.find_opt (fun e -> List.mem e.edst comp) (adj first)
                  with
                  | Some e -> e.eline
                  | None -> 1 ))
          in
          let names = List.map display_key comp in
          add
            {
              file;
              line;
              rule = rule_cycle;
              message =
                sprintf "modules form a dependency cycle: %s"
                  (String.concat " -> " (names @ [ display_key first ]));
              path = names;
            })
    (sccs g adj);
  (* The layering contract, checked against the dune-declared library
     dependencies. *)
  List.iter
    (fun u ->
      let lu =
        match u.kind with
        | Exec -> Some policy.Lint_policy.exec_layer
        | Lib -> Lint_policy.layer_of policy u.uname
      in
      match lu with
      | None ->
          add
            {
              file = rel u.dune_file;
              line = u.dune_line;
              rule = rule_layer_unassigned;
              message =
                sprintf
                  "library %s is not assigned a layer in the policy table; it escapes the \
                   layering and capability checks"
                  u.uname;
              path = [];
            }
      | Some lu ->
          List.iter
            (fun d ->
              match Lint_policy.layer_of policy d with
              | None -> ()
              | Some ld ->
                  if ld > lu || (ld = lu && not (List.mem lu policy.Lint_policy.peer_layers))
                  then
                    add
                      {
                        file = rel u.dune_file;
                        line = u.libs_line;
                        rule = rule_layer;
                        message =
                          sprintf
                            "%s (layer %d) depends on %s (layer %d): a library may depend only \
                             on strictly lower layers (peers only within the leaf-solver layer)"
                            u.uname lu d ld;
                        path = [];
                      })
            u.deps)
    g.units;
  (* Executables under an exec-deps contract may link only their
     allowlisted libraries — internal and external dependencies alike.
     This is how rpq_certcheck's independence from the solver stack is
     enforced rather than assumed. *)
  List.iter
    (fun u ->
      if u.kind = Exec then
        match Lint_policy.exec_deps_of policy u.uname with
        | None -> ()
        | Some allowed ->
            List.iter
              (fun d ->
                if not (List.mem d allowed) then
                  add
                    {
                      file = rel u.dune_file;
                      line = u.libs_line;
                      rule = rule_exec_deps;
                      message =
                        sprintf
                          "executable %s links %s, outside its policy dependency allowlist \
                           (%s): the independent checker must not share code with the \
                           solvers it audits"
                          u.uname d
                          (String.concat ", " allowed);
                      path = [];
                    })
              (u.deps @ u.ext_deps))
    g.units;
  (* Declaring the unix findlib library is itself a capability claim. *)
  List.iter
    (fun u ->
      if
        List.mem "unix" u.ext_deps
        && (not (List.mem u.uname policy.Lint_policy.unix_dep_ok))
        && not (List.mem (Filename.basename u.dir) policy.Lint_policy.unix_dep_ok)
      then
        add
          {
            file = rel u.dune_file;
            line = u.libs_line;
            rule = rule_dune_unix;
            message =
              sprintf "%s lists the unix library in dune but holds no 'unix' grant" u.uname;
            path = [];
          })
    g.units;
  let unit_eff =
    List.map
      (fun u ->
        let m =
          List.fold_left
            (fun m (mn, _) ->
              match lookup (node_key u.uname mn) with None -> m | Some i -> m lor i.eff)
            0 u.mods
        in
        (u.uname, caps_of_mask m))
      g.units
  in
  { graph = g; findings = List.sort compare_finding !findings; unit_eff }

(* {2 DOT export} *)

let dot ~policy result =
  let g = result.graph in
  let b = Buffer.create 2048 in
  let layer_of u =
    match u.kind with
    | Exec -> policy.Lint_policy.exec_layer
    | Lib -> Option.value ~default:(-1) (Lint_policy.layer_of policy u.uname)
  in
  let cap_names caps = String.concat "," (List.map cap_name caps) in
  Buffer.add_string b "digraph layers {\n";
  Buffer.add_string b "  rankdir=BT;\n  node [shape=box fontname=\"monospace\"];\n";
  let layers = List.sort_uniq compare (List.map layer_of g.units) in
  List.iter
    (fun l ->
      Buffer.add_string b (sprintf "  subgraph cluster_%d {\n" (l + 1));
      Buffer.add_string b (sprintf "    label=\"layer %d\";\n" l);
      List.iter
        (fun u ->
          if layer_of u = l then begin
            let eff = Option.value ~default:[] (List.assoc_opt u.uname result.unit_eff) in
            let grants =
              List.sort_uniq compare
                (Lint_policy.grants_of policy u.uname
                @ Lint_policy.grants_of policy (Filename.basename u.dir))
            in
            let lines =
              [ u.uname ]
              @ (if eff = [] then [] else [ "caps: " ^ cap_names eff ])
              @ if grants = [] then [] else [ "grants: " ^ cap_names grants ]
            in
            Buffer.add_string b
              (sprintf "    \"%s\" [label=\"%s\"];\n" u.uname (String.concat "\\n" lines))
          end)
        g.units;
      Buffer.add_string b "  }\n")
    layers;
  let violation u d =
    let lu = layer_of u and ld = Option.value ~default:(-1) (Lint_policy.layer_of policy d) in
    ld > lu || (ld = lu && not (List.mem lu policy.Lint_policy.peer_layers))
  in
  List.iter
    (fun u ->
      List.iter
        (fun d ->
          let attrs = if violation u d then " [color=red penwidth=2]" else "" in
          Buffer.add_string b (sprintf "  \"%s\" -> \"%s\"%s;\n" u.uname d attrs))
        u.deps)
    g.units;
  let cyclic =
    List.sort_uniq compare
      (List.concat_map
         (fun f -> if f.rule = rule_cycle then f.path else [])
         result.findings)
  in
  if cyclic <> [] then
    Buffer.add_string b
      (sprintf "  // cycle detected through: %s\n" (String.concat ", " cyclic));
  Buffer.add_string b "}\n";
  Buffer.contents b
