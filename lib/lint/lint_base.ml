type finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
  path : string list;
}

exception Lint_error of string * int * string

let errorf file line fmt =
  Printf.ksprintf (fun msg -> raise (Lint_error (file, line, msg))) fmt

let error_to_string (file, line, msg) = Printf.sprintf "%s:%d: %s" file line msg

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.message;
  match f.path with
  | [] -> ()
  | p -> Format.fprintf ppf " (via %s)" (String.concat " -> " p)

let finding_to_string f = Format.asprintf "%a" pp_finding f

let compare_finding a b =
  compare (a.file, a.line, a.rule, a.message, a.path) (b.file, b.line, b.rule, b.message, b.path)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_op_char c = String.contains "!$%&*+-./:<=>?@^|~" c

(* Replace comments, string literals and character literals with spaces,
   preserving newlines so that reported line numbers stay exact. OCaml
   lexes string literals inside comments (an unmatched quote in a comment
   is a syntax error), so we mirror that to keep "*)" inside quoted text
   from closing a comment early. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  (* Skip a string literal starting at the opening quote; returns the index
     one past the closing quote (or [n] if unterminated). *)
  let skip_string start =
    let j = ref (start + 1) in
    let stop = ref false in
    while (not !stop) && !j < n do
      (match src.[!j] with
      | '\\' -> incr j (* skip the escaped character too *)
      | '"' -> stop := true
      | _ -> ());
      incr j
    done;
    !j
  in
  (* Skip a quoted-string literal {id|...|id} starting at '{'; returns the
     index one past the closing '}' or [start + 1] if it is not one. *)
  let skip_quoted_string start =
    let j = ref (start + 1) in
    while !j < n && ((src.[!j] >= 'a' && src.[!j] <= 'z') || src.[!j] = '_') do
      incr j
    done;
    if !j >= n || src.[!j] <> '|' then start + 1
    else begin
      let id = String.sub src (start + 1) (!j - start - 1) in
      let closing = "|" ^ id ^ "}" in
      let cl = String.length closing in
      let k = ref (!j + 1) in
      let stop = ref false in
      while (not !stop) && !k + cl <= n do
        if String.sub src !k cl = closing then stop := true else incr k
      done;
      if !stop then !k + cl else n
    end
  in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* Comment: blank it out, tracking nesting and embedded strings. *)
      let depth = ref 1 in
      blank !i;
      blank (!i + 1);
      let j = ref (!i + 2) in
      while !depth > 0 && !j < n do
        if src.[!j] = '(' && !j + 1 < n && src.[!j + 1] = '*' then begin
          incr depth;
          blank !j;
          blank (!j + 1);
          j := !j + 2
        end
        else if src.[!j] = '*' && !j + 1 < n && src.[!j + 1] = ')' then begin
          decr depth;
          blank !j;
          blank (!j + 1);
          j := !j + 2
        end
        else if src.[!j] = '"' then begin
          let e = skip_string !j in
          for k = !j to min (e - 1) (n - 1) do
            blank k
          done;
          j := e
        end
        else begin
          blank !j;
          incr j
        end
      done;
      i := !j
    end
    else if c = '"' then begin
      let e = skip_string !i in
      for k = !i to min (e - 1) (n - 1) do
        blank k
      done;
      i := e
    end
    else if c = '{' then begin
      let e = skip_quoted_string !i in
      if e > !i + 1 then
        for k = !i to min (e - 1) (n - 1) do
          blank k
        done;
      i := max e (!i + 1)
    end
    else if
      c = '\''
      && (!i = 0 || not (is_ident_char src.[!i - 1]))
      && !i + 1 < n
    then begin
      (* Character literal vs. type variable: 'x' / '\n' are literals; 'a in
         [val f : 'a -> 'a] is not. A quote right after an identifier char
         (x', flow') extends the identifier and is skipped above. *)
      if src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' do
          incr j
        done;
        for k = !i to min !j (n - 1) do
          blank k
        done;
        i := !j + 1
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else incr i
    end
    else incr i
  done;
  Bytes.to_string out

type token = { text : string; line : int; op : bool }

(* The combined token stream of a stripped source: longest dotted
   identifiers ([Format.pp_print_string] is one token, so it can never be
   confused with a banned [print_string]) interleaved, in source order,
   with maximal runs of operator characters. Adjacency in this stream is
   what the context-sensitive rules (assert false, with _, raise E) key
   on. *)
let lex stripped =
  let n = String.length stripped in
  let acc = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    let c = stripped.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if is_ident_start c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_ident_char stripped.[!j] do
        incr j
      done;
      (* Extend across '.' when followed by another identifier. *)
      let continue = ref true in
      while !continue do
        if !j + 1 < n && stripped.[!j] = '.' && is_ident_start stripped.[!j + 1] then begin
          j := !j + 1;
          while !j < n && is_ident_char stripped.[!j] do
            incr j
          done
        end
        else continue := false
      done;
      acc := { text = String.sub stripped start (!j - start); line = !line; op = false } :: !acc;
      i := !j
    end
    else if is_op_char c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_op_char stripped.[!j] do
        incr j
      done;
      acc := { text = String.sub stripped start (!j - start); line = !line; op = true } :: !acc;
      i := !j
    end
    else incr i
  done;
  List.rev !acc

let tokens stripped =
  List.filter_map (fun t -> if t.op then None else Some (t.text, t.line)) (lex stripped)

let operator_runs stripped =
  List.filter_map (fun t -> if t.op then Some (t.text, t.line) else None) (lex stripped)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> raise (Lint_error (path, 0, "cannot read file: " ^ msg))
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))

(* Every .ml under [dir], recursively, in a deterministic order. An
   unreadable directory is a hard error ({!Lint_error}), never an empty
   clean run: a lint that silently scans nothing certifies nothing. *)
let rec ml_files dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> raise (Lint_error (dir, 0, "cannot scan directory: " ^ msg))
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then acc @ ml_files path
          else if Filename.check_suffix entry ".ml" then acc @ [ path ]
          else acc)
        [] entries

let capitalize = String.capitalize_ascii

let module_of_file path = capitalize (Filename.remove_extension (Filename.basename path))

let relativize ~root path =
  let prefix = if String.length root > 0 && root.[String.length root - 1] = '/' then root
    else root ^ Filename.dir_sep in
  if String.starts_with ~prefix path then
    String.sub path (String.length prefix) (String.length path - String.length prefix)
  else path
