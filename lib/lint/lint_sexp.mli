(** Minimal s-expression reader for the dune subset the analyzer consumes
    (atoms, strings, lists, [;] comments), with line positions. Parse
    problems are hard {!Lint_base.Lint_error}s, never empty results. *)

type t = Atom of string * int | List of t list * int  (** payload, 1-based line *)

val line_of : t -> int

val parse_string : file:string -> string -> t list
(** All toplevel s-expressions of the text. [file] labels errors.
    @raise Lint_base.Lint_error on malformed input. *)

val parse_file : string -> t list
(** @raise Lint_base.Lint_error on an unreadable or malformed file. *)

val field : t -> string -> t list option
(** [field stanza "name"] is the payload of the first [(name ...)] child. *)

val atoms : t list -> string list
(** The atom payloads of a list, sub-lists skipped. *)

val field_atoms : t -> string -> string list option
(** [field] composed with [atoms]. *)

val stanza_kind : t -> string option
(** The head atom of a list s-expression (["library"], ["executable"]...). *)
