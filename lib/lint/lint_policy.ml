open Lint_rules

type t = {
  layers : (string * int) list;
  peer_layers : int list;
  exec_layer : int;
  grants : (string * cap list) list;
  random_modules : string list;
  socket_modules : string list;
  stderr_modules : string list;
  unix_dep_ok : string list;
  exec_deps : (string * string list) list;
}

(* The one policy table. This replaces the per-rule path exemptions the
   scanner used to carry ("unix is fine under a directory called
   runner"): layering and capability grants are declared here once, and
   everything — per-file scans, graph propagation, the dune dependency
   check, the DOT export — is checked against it.

   The layer contract (lower may never depend on higher; equal only
   within peer layers):

     0  invariant, lint          axioms: violation reporting, this tool
     1  obs                      clocks, metrics, traces
     2  automata, graphs, flow,  leaf solver toolkits (peers: may use
        lp, hypergraph,          each other acyclically)
        submodular, graphdb
     3  resilience (lib/core)    the solver facade
     4  runner                   process supervision, journal, protocol
     5  bin/                     executables

   Grants are keyed by unit name and, for the per-directory scan mode,
   by directory basename — lib/core builds library [resilience], so
   both names appear. *)
let default =
  {
    layers =
      [
        ("invariant", 0);
        ("lint", 0);
        ("cert", 1);
        ("obs", 1);
        ("automata", 2);
        ("graphs", 2);
        ("flow", 2);
        ("lp", 2);
        ("hypergraph", 2);
        ("submodular", 2);
        ("graphdb", 2);
        ("resilience", 3);
        ("runner", 4);
      ];
    peer_layers = [ 2 ];
    exec_layer = 5;
    grants =
      [
        ("obs", [ Cunix; Cclock; Cstate ]);
        ("runner", [ Cunix; Cclock; Cfsync; Cstate ]);
        ("resilience", [ Cstate ]);
        ("core", [ Cstate ]);
        ("bin", [ Cunix; Cclock; Cprint; Cexit; Cstate; Cstderr ]);
      ];
    random_modules = [];
    (* Socket endpoints are narrower than the directory-level grants:
       exactly one module — the runner's transport — may create, bind,
       listen on, accept or connect sockets. Everything else (the CLI's
       chaos clients, the tests) goes through Transport's helpers. *)
    socket_modules = [ "runner/transport" ];
    (* Same shape for stderr: Obs.Log emits reason-coded JSON records on
       it, so no other library module may write there — a free-form
       eprintf would interleave with the record stream and dodge the
       level filter, the rate limiter and the flight recorder. *)
    stderr_modules = [ "obs/log" ];
    unix_dep_ok = [ "obs"; "runner"; "bin" ];
    (* Dependency ceilings for executables whose whole point is what they
       do NOT link: the independent certificate checker must never share
       code with the solvers it audits. *)
    exec_deps = [ ("rpq_certcheck", [ "cert" ]) ];
  }

let layer_of t name = List.assoc_opt name t.layers

let grants_of t name = Option.value ~default:[] (List.assoc_opt name t.grants)

let grants_cap t name cap = List.mem cap (grants_of t name)

(* Whether [unit] (library [name], source directory basename [dir]) may
   exercise [cap]. [random_modules] lists "dir/module" slugs for seeded
   chaos modules that wrap their own LCG — none by default; the tree's
   fault and chaos modules draw from explicit streams already. *)
let allowed t ~name ~dir cap =
  grants_cap t name cap || grants_cap t dir cap

let random_module_allowed t slug = List.mem slug t.random_modules
let socket_module_allowed t slug = List.mem slug t.socket_modules
let stderr_module_allowed t slug = List.mem slug t.stderr_modules

let exec_deps_of t name = List.assoc_opt name t.exec_deps
