(** The leaf rules: everything decidable from a single stripped source
    plus, for {!raise_findings}, the module's interface. Graph rules
    (layering, cycles, transitive capability reach) live in
    {!Lint_graph}. *)

(** {2 Rule names} *)

val rule_partial : string
val rule_obj_magic : string
val rule_physical_eq : string
val rule_print : string
val rule_failwith : string
val rule_assert_false : string
val rule_missing_mli : string
val rule_unix : string
val rule_clock : string
val rule_sync : string
val rule_catch_all : string
val rule_raise : string
val rule_random : string
val rule_exit : string
val rule_state : string
val rule_socket : string
val rule_stderr : string
val rule_layer : string
val rule_layer_unassigned : string
val rule_cycle : string
val rule_reach : string
val rule_dune_unix : string
val rule_exec_deps : string

(** {2 Capabilities} *)

(** An effect a module may exercise only under a policy grant. Direct
    uses are found lexically here; {!Lint_graph} propagates them
    transitively over the module graph, treating granted modules as
    encapsulation boundaries. *)
type cap = Cunix | Cclock | Cfsync | Cprint | Cexit | Crandom | Cstate | Csocket | Cstderr

val all_caps : cap list
val cap_name : cap -> string
val cap_of_name : string -> cap option

val cap_rule : cap -> string
(** The rule a {e direct} use of the capability is reported under. *)

val banned_idents : (string * string * string) list
(** [(identifier, rule, hint)]: identifiers rejected outright in
    library code. *)

val print_idents : string list

val stderr_idents : string list
(** Stderr-writing identifiers (eprintf variants, [prerr_*], the bare
    [stderr] channel) reported under {!rule_stderr}; confined by the
    policy table's [stderr_modules] slugs plus the bin/ grant. *)

val scan_source : file:string -> string -> Lint_base.finding list
(** All leaf findings of one source, sorted by
    {!Lint_base.compare_finding}. Capability findings are included
    unconditionally; callers subtract policy grants. *)

val caps_of_findings : Lint_base.finding list -> (cap * int) list
(** The capabilities a scan's findings witness directly, each with the
    first line exercising it. *)

val caps_of_source : string -> (cap * int) list

val toplevel_state_lines : string -> (int * string * string) list
(** [(line, name, maker)] for each column-0 [let name = ref ...]-style
    binding of a stripped source. *)

val exception_decls : string -> string list
(** Capitalized identifiers following an [exception] keyword, sorted. *)

val raise_findings :
  file:string ->
  stripped:string ->
  mli_decls:string list ->
  resolve:(string -> string -> bool) ->
  Lint_base.finding list
(** Undeclared-raise findings of one stripped source. [mli_decls] are
    the exceptions the module's own interface declares; [resolve m e]
    answers whether some module named [m] in the scan tree declares
    exception [e] in its interface. Exempt: [Exit], declared
    exceptions, locally-defined-and-handled exceptions, and qualified
    raises that [resolve] vouches for (or [Invariant.*]). *)

val missing_mlis : lib_root:string -> Lint_base.finding list
(** A finding per [.ml] under [lib_root] without a sibling [.mli].
    @raise Lint_base.Lint_error if the root cannot be scanned. *)

(** {2 Rule catalogue} *)

val explanations : (string * string) list
val explain : string -> string option
val all_rules : string list
