(** Byte-stable JSON rendering of a scan: hand-rolled (no library, no
    field reordering, no timestamps), findings sorted and one per line
    so two runs over the same tree byte-compare equal. *)

val escape : string -> string
val str : string -> string

val finding_json : Lint_base.finding -> string

val render :
  files_scanned:int -> modules:int -> edges:int -> Lint_base.finding list -> string
(** The full report object:
    [{"version":1,"findings":[...],"stats":{...}}]. Findings are sorted
    by {!Lint_base.compare_finding} before rendering. *)
