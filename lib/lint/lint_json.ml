open Lint_base

(* Hand-rolled JSON so the output is byte-stable: no library, no field
   reordering, no timestamps. One finding per line for diffability;
   CI byte-compares two runs. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""

let finding_json f =
  Printf.sprintf "{\"file\":%s,\"line\":%d,\"rule\":%s,\"message\":%s,\"path\":[%s]}"
    (str f.file) f.line (str f.rule) (str f.message)
    (String.concat "," (List.map str f.path))

let render ~files_scanned ~modules ~edges findings =
  let sorted = List.sort compare_finding findings in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n\"version\":1,\n\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n";
      Buffer.add_string b (finding_json f))
    sorted;
  if sorted <> [] then Buffer.add_char b '\n';
  Buffer.add_string b "],\n";
  Buffer.add_string b
    (Printf.sprintf
       "\"stats\":{\"files_scanned\":%d,\"modules\":%d,\"edges\":%d,\"findings\":%d}\n"
       files_scanned modules edges (List.length sorted));
  Buffer.add_string b "}\n";
  Buffer.contents b
