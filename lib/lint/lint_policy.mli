(** The declared layering-and-capability contract: one table consulted
    by the per-file scan, the graph checks and the DOT export, replacing
    the scanner's old per-rule path exemptions. *)

type t = {
  layers : (string * int) list;
      (** library name -> layer; lower layers may never depend on
          higher ones. *)
  peer_layers : int list;
      (** layers whose members may depend on each other (acyclically) —
          the leaf solver toolkits. *)
  exec_layer : int;  (** the layer executables under [bin/] live in. *)
  grants : (string * Lint_rules.cap list) list;
      (** capability grants, keyed by unit name and by source directory
          basename (lib/core builds library [resilience], so both
          appear). A granted module is an encapsulation boundary: its
          capabilities do not propagate to callers. *)
  random_modules : string list;
      (** ["dir/module"] slugs of seeded chaos modules allowed to wrap
          their own generator. *)
  socket_modules : string list;
      (** ["dir/module"] slugs of the modules allowed to create socket
          endpoints (socket/bind/listen/accept/connect) — the runner's
          transport module only. Like grants, a listed module is an
          encapsulation boundary for the [socket] capability. *)
  stderr_modules : string list;
      (** ["dir/module"] slugs of the modules allowed to write to stderr
          (eprintf, prerr_*, the bare channel) — the structured logger
          only, so nothing interleaves free-form text with its JSON
          records. bin/ keeps the grant through the grants table. *)
  unix_dep_ok : string list;
      (** units that may list the [unix] findlib library in dune. *)
  exec_deps : (string * string list) list;
      (** executable name -> exhaustive dependency allowlist (internal
          and external alike). For executables whose contract is what
          they do {e not} link: [rpq_certcheck] must stay independent of
          every solver library, so it may depend on [cert] alone. *)
}

val default : t

val layer_of : t -> string -> int option
val grants_of : t -> string -> Lint_rules.cap list
val grants_cap : t -> string -> Lint_rules.cap -> bool

val allowed : t -> name:string -> dir:string -> Lint_rules.cap -> bool
(** Whether a unit (library [name], directory basename [dir]) may
    exercise the capability. *)

val random_module_allowed : t -> string -> bool
val socket_module_allowed : t -> string -> bool
val stderr_module_allowed : t -> string -> bool

val exec_deps_of : t -> string -> string list option
(** The dependency allowlist of an executable, when the policy pins
    one. *)
