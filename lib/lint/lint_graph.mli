(** The whole-program layer: compilation units discovered from dune
    stanzas under [lib/] and [bin/], a module reference graph extracted
    lexically ([open], [module A = B], dotted capitalized tokens — bare
    capitalized tokens are constructors, not references), Tarjan SCC
    cycle detection, the layering contract, and transitive capability
    propagation with breadth-first witness paths. *)

type kind = Lib | Exec

type cunit = {
  uname : string;  (** library or executable name *)
  kind : kind;
  dir : string;
  dune_file : string;
  dune_line : int;  (** line of the stanza *)
  libs_line : int;  (** line of the (libraries ...) field *)
  deps : string list;  (** internal (in-tree) library dependencies *)
  ext_deps : string list;  (** everything else in (libraries ...) *)
  mods : (string * string) list;  (** module name -> source path *)
}

type node = { key : string; nuname : string; mname : string; nfile : string; ndir : string }
type edge = { esrc : string; edst : string; eline : int }

type t = { root : string; units : cunit list; nodes : node list; edges : edge list }

val node_key : string -> string -> string
(** [node_key "resilience" "Exact"] is ["resilience/Exact"]. *)

val display_key : string -> string
(** ["resilience/Exact"] renders as ["Resilience.Exact"]; an eponymous
    main module drops the prefix (["invariant/Invariant"] is
    ["Invariant"]). *)

val discover : root:string -> t
(** Parse every [lib/*/dune] plus [bin/dune]. Edges are not yet
    populated.
    @raise Lint_base.Lint_error on an unreadable tree or a dune file
    that does not parse. *)

val with_edges : t -> t
(** Extract the module reference graph from every source file. *)

type result = {
  graph : t;
  findings : Lint_base.finding list;
      (** graph rules only: capability-reach, module-cycle,
          layer-violation, layer-unassigned, dune-unix-dep; sorted. *)
  unit_eff : (string * Lint_rules.cap list) list;
      (** per-unit effective (transitive) capability sets. *)
}

val analyze : root:string -> policy:Lint_policy.t -> result
(** @raise Lint_base.Lint_error if the tree cannot be read. *)

val dot : policy:Lint_policy.t -> result -> string
(** The layer graph in graphviz DOT: one cluster per layer, unit nodes
    labelled with effective capabilities and grants, dependency edges,
    layering violations in red. *)
