(** [rpq_lint]: a self-contained whole-program static analyzer for this
    repository.

    The solver stack computes exact answers from intricate reductions
    (Thm 3.3, Props 7.5-7.8), so "impossible" states must be loud and
    runs must be replayable. The analyzer works in two tiers.

    {b Leaf rules} (see {!Lint_rules}) are decided per source file,
    lexically: comments, strings and character literals are stripped
    (preserving line numbers) and whole dotted identifiers matched, so
    [Hashtbl.find_opt] or a banned name quoted in a docstring never
    trigger. They ban partial stdlib calls, [Obj.magic], physical
    equality, printing from library code, [failwith] / [assert false],
    catch-all exception handlers, raising exceptions a module's [.mli]
    does not declare, and [.ml] files without interfaces.

    {b Capability and graph rules} treat effects — [unix], [clock],
    [fsync], [print], [exit], [random], top-level mutable [state] — as
    capabilities a module may exercise only under a grant from the
    policy table ({!Lint_policy.default}). {!analyze} discovers every
    compilation unit from the dune stanzas under [lib/] and [bin/],
    extracts a module reference graph ([open], [module A = B], dotted
    capitalized tokens), detects dependency cycles (Tarjan SCC), checks
    the declared layering contract against the dune dependency graph,
    and propagates capabilities transitively: a module that merely
    calls into an ungranted capability user is reported with a
    breadth-first witness path ("Resilience.Exact reaches unix via
    Exact -> Helper -> Pool"). Granted modules are encapsulation
    boundaries — their capabilities do not leak to callers.

    The analyzer deliberately parses nothing beyond that: no typing, no
    build integration, no opam dependencies. *)

type finding = Lint_base.finding = {
  file : string;
  line : int;  (** 1-based *)
  rule : string;  (** one of the [rule_*] names below *)
  message : string;
  path : string list;
      (** witness call path for transitive capability findings;
          [[]] for direct findings. *)
}

exception Lint_error of string * int * string
(** Same exception as {!Lint_base.Lint_error}. [(file, line, message)]: the analyzer could not complete —
    unreadable root, unreadable source, unparseable dune file. A scan
    that cannot see the tree must not report it clean; the CLI maps
    this to exit code 2. *)

val error_to_string : string * int * string -> string
val pp_finding : Format.formatter -> finding -> unit
val finding_to_string : finding -> string
val compare_finding : finding -> finding -> int

(** {2 Rule names} *)

val rule_partial : string
val rule_obj_magic : string
val rule_physical_eq : string
val rule_print : string
val rule_failwith : string
val rule_assert_false : string
val rule_missing_mli : string

val rule_unix : string
(** [Unix]/[UnixLabels] reference without a ['unix] capability grant
    (granted to [lib/runner], [lib/obs] and [bin/]). *)

val rule_clock : string
(** Raw clock read ([Sys.time], [Unix.gettimeofday]) without a
    ['clock] grant (granted to [lib/obs] and [lib/runner]). *)

val rule_sync : string
(** Durability/locking primitive ([Unix.fsync], [Unix.lockf]) without
    an ['fsync] grant (granted to [lib/runner] only — the journal owns
    the fsync-and-rename and lock disciplines). *)

val rule_socket : string
(** Socket endpoint primitive ([Unix.socket], [bind], [listen],
    [accept], [connect], [socketpair]) outside the policy table's
    [socket-modules] slugs ([runner/transport] only — every other
    module, including tests and executables, goes through
    [Transport]'s helpers). *)

val rule_stderr : string
(** Stderr write ([Printf.eprintf], [Format.eprintf], [prerr_*], the
    bare [stderr] channel) outside the policy table's [stderr-modules]
    slugs ([obs/log] only) and [bin/]: the structured logger emits
    reason-coded JSON records on stderr, and a free-form write from
    anywhere else interleaves with that stream and dodges the level
    filter, rate limiter and flight recorder. *)

val rule_catch_all : string
(** [with _ ->] / [exception _ ->]: swallows [Internal_error] and
    [Budget.Exhausted] alike. *)

val rule_raise : string
(** [raise E] where [E] is neither declared in the module's [.mli],
    nor locally defined and handled, nor [Exit]. *)

val rule_random : string
(** Ambient [Random.*] use: draws must come from explicitly seeded
    streams ([Invariant.Prng]). *)

val rule_exit : string
(** [exit] outside [bin/]. *)

val rule_state : string
(** Top-level mutable state ([let x = ref ...]) without a ['state]
    grant. *)

val rule_layer : string
(** A dune dependency from a lower to an equal-or-higher layer. *)

val rule_layer_unassigned : string
(** A library under [lib/] missing from the policy layer table. *)

val rule_cycle : string
(** A strongly-connected component of size > 1 in the module graph. *)

val rule_reach : string
(** Transitive capability reach, with a witness path. *)

val rule_dune_unix : string
(** The [unix] findlib library listed in dune without a grant. *)

val rule_exec_deps : string
(** An executable under a policy dependency allowlist linking a library
    outside it. *)

val banned_idents : (string * string * string) list
(** [(identifier, rule, hint)] for every banned dotted identifier. *)

val explain : string -> string option
(** The rule catalogue entry behind [rpq_lint --explain RULE]. *)

val all_rules : string list

(** {2 Scanning} *)

val strip : string -> string
(** Comments, strings and character literals replaced by spaces;
    newlines (and hence line numbers) preserved. Exposed for tests. *)

val scan_source : file:string -> string -> finding list
(** All leaf findings of a source text, capability findings included
    unconditionally (callers subtract grants); [file] only labels the
    findings. Sorted. Does not include the missing-[.mli] or
    undeclared-raise rules. *)

val scan_file : string -> finding list
(** [scan_source] on a file's contents.
    @raise Lint_error if the file cannot be read. *)

val missing_mlis : lib_root:string -> finding list
(** One finding per [.ml] under [lib_root] (recursively) lacking a
    sibling [.mli].
    @raise Lint_error if the tree cannot be scanned. *)

val scan_lib : lib_root:string -> finding list
(** Per-directory mode, for partial trees without dune metadata:
    leaf findings with capability grants keyed by directory basename
    ([runner/] may fsync, [obs/] may read clocks, [core/] may hold
    state), plus undeclared-raise and {!missing_mlis}. No graph rules.
    @raise Lint_error if the tree cannot be scanned. *)

(** {2 Allowlist} *)

val filter_allowlist : allowlist:(string * string) list -> finding list -> finding list
(** Drop findings matched by an allowlist entry [(path_suffix, rule)];
    a rule of ["*"] matches any rule for that path. *)

val default_allowlist : (string * string) list
(** The repository's own allowlist. Kept empty: fix the code instead. *)

(** {2 Whole-program mode} *)

type analysis = {
  policy : Lint_policy.t;
  result : Lint_graph.result;
  findings : finding list;  (** leaf + graph findings, sorted, root-relative *)
  files_scanned : int;
}

val analyze : root:string -> policy:Lint_policy.t -> analysis
(** Discover units from [root/lib/*/dune] and [root/bin/dune], scan
    every module, build the reference graph and run every rule.
    @raise Lint_error if the tree cannot be read or a dune file does
    not parse. *)

val analysis_json : analysis -> string
(** Byte-stable JSON report ({!Lint_json.render}): two runs over the
    same tree compare byte-identical. *)

val analysis_dot : analysis -> string
(** The layer graph in graphviz DOT. *)
