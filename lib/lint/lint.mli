(** [rpq_lint]: a self-contained static analyzer for this repository's
    library code.

    The solver stack computes exact answers from intricate reductions
    (Thm 3.3, Props 7.5-7.8), so "impossible" states must be loud. The
    lint bans the constructs that make them quiet instead:

    - partial stdlib calls ([List.hd], [List.nth], [Option.get], bare
      [Hashtbl.find]) that raise unhelpful exceptions on broken invariants;
    - [Obj.magic];
    - physical equality ([==] / [!=]), almost always a typo for [=] / [<>];
    - direct printing ([Printf.printf], [print_string], ...) from library
      code;
    - [failwith] / [assert false] — internal errors must go through
      {!Invariant.internal_error} so they carry a subsystem and message;
    - any [.ml] under [lib/] without a matching [.mli];
    - references to the [Unix] library outside [lib/runner] and
      [lib/obs] — process supervision (fork, signals, pipes, wall-clock
      waits) is confined to the supervised execution layer (and [bin/]),
      so the solver stack stays deterministic and testable in-process.
      The exemption is structural (by path, in {!scan_lib}), not an
      allowlist entry;
    - raw clock reads ([Sys.time], [Unix.gettimeofday]) outside [lib/obs]
      and [lib/runner] — everything else must go through [Obs.Clock], so
      time is read one way (and monotonically) across the tree. Same
      structural exemption mechanism as the Unix rule;
    - durability and locking primitives ([Unix.fsync], [Unix.lockf])
      outside [lib/runner] — strictly tighter than the Unix rule
      ([lib/obs] is {e not} exempt): the journal owns the
      fsync-and-rename and lock disciplines, and a stray fsync elsewhere
      would claim durability the recovery path cannot honor.

    The scanner strips comments, string literals and character literals
    (preserving line numbers), then matches whole dotted identifiers, so
    [Hashtbl.find_opt], [Format.pp_print_string] or a banned name quoted in
    a docstring never trigger a report. It deliberately parses nothing
    beyond that: no typing, no build integration, no opam dependencies. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  rule : string;  (** one of the [rule_*] names below *)
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit
val finding_to_string : finding -> string

(** {2 Rule names} *)

val rule_partial : string
val rule_obj_magic : string
val rule_physical_eq : string
val rule_print : string
val rule_failwith : string
val rule_assert_false : string
val rule_missing_mli : string

val rule_unix : string
(** [Unix]/[UnixLabels] reference outside [lib/runner]/[lib/obs].
    Reported by {!scan_source} on any source; {!scan_lib} drops it for
    files under [<lib_root>/runner/] and [<lib_root>/obs/]. *)

val rule_clock : string
(** Raw clock read ([Sys.time], [Unix.gettimeofday]) outside [lib/obs]
    and [lib/runner]: library code must use [Obs.Clock]. Reported by
    {!scan_source} on any source; {!scan_lib} drops it for files under
    [<lib_root>/obs/] and [<lib_root>/runner/]. *)

val rule_sync : string
(** Durability/locking primitive ([Unix.fsync], [UnixLabels.fsync],
    [Unix.lockf], [UnixLabels.lockf]) outside [lib/runner]. Reported by
    {!scan_source} on any source; {!scan_lib} drops it only for files
    under [<lib_root>/runner/] — unlike {!rule_unix}, [lib/obs] is not
    exempt. *)

val banned_idents : (string * string * string) list
(** [(identifier, rule, hint)] for every banned dotted identifier. *)

(** {2 Scanning} *)

val strip : string -> string
(** Comments, strings and character literals replaced by spaces; newlines
    (and hence line numbers) preserved. Exposed for tests. *)

val scan_source : file:string -> string -> finding list
(** Scan source text; [file] only labels the findings. Findings are sorted
    by line. Does not include the missing-[.mli] rule. *)

val scan_file : string -> finding list
(** [scan_source] on a file's contents. *)

val missing_mlis : lib_root:string -> finding list
(** One finding per [.ml] under [lib_root] (recursively) lacking a
    sibling [.mli]. *)

val scan_lib : lib_root:string -> finding list
(** All source findings plus {!missing_mlis} for every [.ml] under
    [lib_root]. *)

(** {2 Allowlist} *)

val filter_allowlist : allowlist:(string * string) list -> finding list -> finding list
(** Drop findings matched by an allowlist entry [(path_suffix, rule)];
    a rule of ["*"] matches any rule for that path. *)

val default_allowlist : (string * string) list
(** The repository's own allowlist. Kept empty: fix the code instead. *)
