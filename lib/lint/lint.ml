type finding = Lint_base.finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
  path : string list;
}

exception Lint_error = Lint_base.Lint_error

let error_to_string = Lint_base.error_to_string
let pp_finding = Lint_base.pp_finding
let finding_to_string = Lint_base.finding_to_string
let compare_finding = Lint_base.compare_finding
let strip = Lint_base.strip

let rule_partial = Lint_rules.rule_partial
let rule_obj_magic = Lint_rules.rule_obj_magic
let rule_physical_eq = Lint_rules.rule_physical_eq
let rule_print = Lint_rules.rule_print
let rule_failwith = Lint_rules.rule_failwith
let rule_assert_false = Lint_rules.rule_assert_false
let rule_missing_mli = Lint_rules.rule_missing_mli
let rule_unix = Lint_rules.rule_unix
let rule_clock = Lint_rules.rule_clock
let rule_sync = Lint_rules.rule_sync
let rule_socket = Lint_rules.rule_socket
let rule_stderr = Lint_rules.rule_stderr
let rule_catch_all = Lint_rules.rule_catch_all
let rule_raise = Lint_rules.rule_raise
let rule_random = Lint_rules.rule_random
let rule_exit = Lint_rules.rule_exit
let rule_state = Lint_rules.rule_state
let rule_layer = Lint_rules.rule_layer
let rule_layer_unassigned = Lint_rules.rule_layer_unassigned
let rule_cycle = Lint_rules.rule_cycle
let rule_reach = Lint_rules.rule_reach
let rule_dune_unix = Lint_rules.rule_dune_unix
let rule_exec_deps = Lint_rules.rule_exec_deps

let banned_idents = Lint_rules.banned_idents
let explain = Lint_rules.explain
let all_rules = Lint_rules.all_rules
let scan_source = Lint_rules.scan_source
let scan_file path = scan_source ~file:path (Lint_base.read_file path)
let missing_mlis = Lint_rules.missing_mlis

let capability_of_rule rule =
  List.find_opt (fun c -> Lint_rules.cap_rule c = rule) Lint_rules.all_caps

(* Exceptions declared by each interface of the tree, for resolving
   qualified raises ([raise (Budget.Exhausted ...)]). A module the tree
   does not contain cannot be checked and resolves permissively. *)
let mli_decl_map files =
  List.filter_map
    (fun ml ->
      let mli = ml ^ "i" in
      if Sys.file_exists mli then
        Some
          ( Lint_base.module_of_file ml,
            Lint_rules.exception_decls (strip (Lint_base.read_file mli)) )
      else None)
    files

let resolver decl_map m e =
  match List.find_opt (fun (name, _) -> name = m) decl_map with
  | None -> true
  | Some _ ->
      List.exists (fun (name, ds) -> name = m && List.mem e ds) decl_map

(* {2 Per-directory mode}

   [scan_lib] works without dune metadata: capability grants are keyed
   by the directory basename alone (lib/runner may fsync, lib/obs may
   read clocks, lib/core may hold state). The whole-program mode in
   {!analyze} replaces this with the discovered unit graph; this mode
   remains for scanning partial trees. *)

let scan_lib ~lib_root =
  let policy = Lint_policy.default in
  let files = Lint_base.ml_files lib_root in
  let decl_map = mli_decl_map files in
  let resolve = resolver decl_map in
  let per_file =
    List.concat_map
      (fun ml ->
        let base = Filename.basename (Filename.dirname ml) in
        let slug =
          base ^ "/" ^ Filename.remove_extension (Filename.basename ml)
        in
        let src = Lint_base.read_file ml in
        let stripped = strip src in
        let leaf =
          List.filter
            (fun f ->
              match capability_of_rule f.rule with
              | Some c ->
                  (not (Lint_policy.grants_cap policy base c))
                  && (not
                        (c = Lint_rules.Csocket
                        && Lint_policy.socket_module_allowed policy slug))
                  && not
                       (c = Lint_rules.Cstderr
                       && Lint_policy.stderr_module_allowed policy slug)
              | None -> true)
            (scan_source ~file:ml src)
        in
        let mli = ml ^ "i" in
        let mli_decls =
          if Sys.file_exists mli then
            Lint_rules.exception_decls (strip (Lint_base.read_file mli))
          else []
        in
        leaf @ Lint_rules.raise_findings ~file:ml ~stripped ~mli_decls ~resolve)
      files
  in
  List.sort compare_finding (per_file @ missing_mlis ~lib_root)

(* {2 Allowlist} *)

let filter_allowlist ~allowlist findings =
  List.filter
    (fun f ->
      not
        (List.exists
           (fun (suffix, rule) ->
             (rule = "*" || rule = f.rule) && String.ends_with ~suffix f.file)
           allowlist))
    findings

let default_allowlist = []

(* {2 Whole-program mode} *)

type analysis = {
  policy : Lint_policy.t;
  result : Lint_graph.result;
  findings : finding list;
  files_scanned : int;
}

let analyze ~root ~policy =
  let result = Lint_graph.analyze ~root ~policy in
  let g = result.Lint_graph.graph in
  let rel p = Lint_base.relativize ~root p in
  let lib_files =
    List.concat_map
      (fun u ->
        if u.Lint_graph.kind = Lint_graph.Lib then List.map snd u.Lint_graph.mods
        else [])
      g.Lint_graph.units
  in
  let decl_map = mli_decl_map lib_files in
  let resolve = resolver decl_map in
  let leaf =
    List.concat_map
      (fun u ->
        let open Lint_graph in
        let base = Filename.basename u.dir in
        List.concat_map
          (fun (m, ml) ->
            let src = Lint_base.read_file ml in
            let stripped = strip src in
            (* Style rules apply to library code only; executables are
               checked for capabilities (against the bin/ grant set) and
               nothing else. *)
            let slug = base ^ "/" ^ String.uncapitalize_ascii m in
            let keep f =
              match capability_of_rule f.rule with
              | Some c ->
                  (not (Lint_policy.allowed policy ~name:u.uname ~dir:base c))
                  && (not
                        (c = Lint_rules.Crandom
                        && Lint_policy.random_module_allowed policy slug))
                  && (not
                        (c = Lint_rules.Csocket
                        && Lint_policy.socket_module_allowed policy slug))
                  && not
                       (c = Lint_rules.Cstderr
                       && Lint_policy.stderr_module_allowed policy slug)
              | None -> u.kind = Lib
            in
            let findings = List.filter keep (Lint_rules.scan_source ~file:ml src) in
            let raises =
              if u.kind = Lib then begin
                let mli = ml ^ "i" in
                let mli_decls =
                  if Sys.file_exists mli then
                    Lint_rules.exception_decls (strip (Lint_base.read_file mli))
                  else []
                in
                Lint_rules.raise_findings ~file:ml ~stripped ~mli_decls ~resolve
              end
              else []
            in
            let missing =
              if u.kind = Lib && not (Sys.file_exists (ml ^ "i")) then
                [
                  {
                    file = ml;
                    line = 1;
                    rule = rule_missing_mli;
                    message =
                      Printf.sprintf
                        "%s has no interface; every module under lib/ needs a .mli"
                        (Filename.basename ml);
                    path = [];
                  };
                ]
              else []
            in
            List.map (fun f -> { f with file = rel f.file }) (findings @ raises @ missing))
          u.mods)
      g.Lint_graph.units
  in
  let findings = List.sort compare_finding (leaf @ result.Lint_graph.findings) in
  { policy; result; findings; files_scanned = List.length g.Lint_graph.nodes }

let analysis_json a =
  Lint_json.render ~files_scanned:a.files_scanned
    ~modules:(List.length a.result.Lint_graph.graph.Lint_graph.nodes)
    ~edges:(List.length a.result.Lint_graph.graph.Lint_graph.edges)
    a.findings

let analysis_dot a = Lint_graph.dot ~policy:a.policy a.result
