type finding = { file : string; line : int; rule : string; message : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.message

let finding_to_string f = Format.asprintf "%a" pp_finding f

(* Rule names, used both in findings and in allowlist entries. *)
let rule_partial = "partial-function"
let rule_obj_magic = "obj-magic"
let rule_physical_eq = "physical-equality"
let rule_print = "print-in-lib"
let rule_failwith = "failwith"
let rule_assert_false = "assert-false"
let rule_missing_mli = "missing-mli"
let rule_unix = "unix-outside-runner"
let rule_clock = "clock-outside-obs"
let rule_sync = "fsync-outside-runner"

let banned_idents =
  [
    ("List.hd", rule_partial, "use pattern matching or a non-empty invariant");
    ("List.nth", rule_partial, "use an array, or List.nth_opt with an explicit default");
    ("Option.get", rule_partial, "match on the option, or Invariant.internal_error");
    ("Hashtbl.find", rule_partial, "use Hashtbl.find_opt and handle None");
    ("Obj.magic", rule_obj_magic, "unsafe cast defeats the type system");
    ("Printf.printf", rule_print, "library code must not write to stdout; return or log");
    ("print_string", rule_print, "library code must not write to stdout; return or log");
    ("print_endline", rule_print, "library code must not write to stdout; return or log");
    ("print_int", rule_print, "library code must not write to stdout; return or log");
    ("prerr_string", rule_print, "library code must not write to stderr; return or log");
    ("prerr_endline", rule_print, "library code must not write to stderr; return or log");
    ("failwith", rule_failwith, "raise Invariant.Internal_error (via Invariant.internal_error)");
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_op_char c = String.contains "!$%&*+-./:<=>?@^|~" c

(* Replace comments, string literals and character literals with spaces,
   preserving newlines so that reported line numbers stay exact. OCaml
   lexes string literals inside comments (an unmatched quote in a comment
   is a syntax error), so we mirror that to keep "*)" inside quoted text
   from closing a comment early. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  (* Skip a string literal starting at the opening quote; returns the index
     one past the closing quote (or [n] if unterminated). *)
  let skip_string start =
    let j = ref (start + 1) in
    let stop = ref false in
    while (not !stop) && !j < n do
      (match src.[!j] with
      | '\\' -> incr j (* skip the escaped character too *)
      | '"' -> stop := true
      | _ -> ());
      incr j
    done;
    !j
  in
  (* Skip a quoted-string literal {id|...|id} starting at '{'; returns the
     index one past the closing '}' or [start + 1] if it is not one. *)
  let skip_quoted_string start =
    let j = ref (start + 1) in
    while !j < n && ((src.[!j] >= 'a' && src.[!j] <= 'z') || src.[!j] = '_') do
      incr j
    done;
    if !j >= n || src.[!j] <> '|' then start + 1
    else begin
      let id = String.sub src (start + 1) (!j - start - 1) in
      let closing = "|" ^ id ^ "}" in
      let cl = String.length closing in
      let k = ref (!j + 1) in
      let stop = ref false in
      while (not !stop) && !k + cl <= n do
        if String.sub src !k cl = closing then stop := true else incr k
      done;
      if !stop then !k + cl else n
    end
  in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* Comment: blank it out, tracking nesting and embedded strings. *)
      let depth = ref 1 in
      blank !i;
      blank (!i + 1);
      let j = ref (!i + 2) in
      while !depth > 0 && !j < n do
        if src.[!j] = '(' && !j + 1 < n && src.[!j + 1] = '*' then begin
          incr depth;
          blank !j;
          blank (!j + 1);
          j := !j + 2
        end
        else if src.[!j] = '*' && !j + 1 < n && src.[!j + 1] = ')' then begin
          decr depth;
          blank !j;
          blank (!j + 1);
          j := !j + 2
        end
        else if src.[!j] = '"' then begin
          let e = skip_string !j in
          for k = !j to min (e - 1) (n - 1) do
            blank k
          done;
          j := e
        end
        else begin
          blank !j;
          incr j
        end
      done;
      i := !j
    end
    else if c = '"' then begin
      let e = skip_string !i in
      for k = !i to min (e - 1) (n - 1) do
        blank k
      done;
      i := e
    end
    else if c = '{' then begin
      let e = skip_quoted_string !i in
      if e > !i + 1 then
        for k = !i to min (e - 1) (n - 1) do
          blank k
        done;
      i := max e (!i + 1)
    end
    else if
      c = '\''
      && (!i = 0 || not (is_ident_char src.[!i - 1]))
      && !i + 1 < n
    then begin
      (* Character literal vs. type variable: 'x' / '\n' are literals; 'a in
         [val f : 'a -> 'a] is not. A quote right after an identifier char
         (x', flow') extends the identifier and is skipped above. *)
      if src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' do
          incr j
        done;
        for k = !i to min !j (n - 1) do
          blank k
        done;
        i := !j + 1
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else incr i
    end
    else incr i
  done;
  Bytes.to_string out

(* Longest dotted identifiers of the stripped source with their line
   numbers: [Format.pp_print_string] is one token, so it can never be
   confused with a banned [print_string]. *)
let tokens stripped =
  let n = String.length stripped in
  let acc = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    let c = stripped.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if is_ident_start c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_ident_char stripped.[!j] do
        incr j
      done;
      (* Extend across '.' when followed by another identifier. *)
      let continue = ref true in
      while !continue do
        if !j + 1 < n && stripped.[!j] = '.' && is_ident_start stripped.[!j + 1] then begin
          j := !j + 1;
          while !j < n && is_ident_char stripped.[!j] do
            incr j
          done
        end
        else continue := false
      done;
      acc := (String.sub stripped start (!j - start), !line) :: !acc;
      i := !j
    end
    else incr i
  done;
  List.rev !acc

(* Maximal runs of operator characters with their line numbers. *)
let operator_runs stripped =
  let n = String.length stripped in
  let acc = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    let c = stripped.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if is_op_char c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_op_char stripped.[!j] do
        incr j
      done;
      acc := (String.sub stripped start (!j - start), !line) :: !acc;
      i := !j
    end
    else if is_ident_start c then begin
      (* Skip identifiers so the quote in [x'] is not an operator char and
         module dots are consumed with their identifier. *)
      let j = ref !i in
      while !j < n && is_ident_char stripped.[!j] do
        incr j
      done;
      i := !j
    end
    else incr i
  done;
  List.rev !acc

let scan_source ~file src =
  let stripped = strip src in
  let findings = ref [] in
  let add line rule message = findings := { file; line; rule; message } :: !findings in
  let prev = ref "" in
  List.iter
    (fun (tok, line) ->
      List.iter
        (fun (banned, rule, hint) ->
          if tok = banned || tok = "Stdlib." ^ banned then
            add line rule (Printf.sprintf "%s is banned in library code: %s" banned hint))
        banned_idents;
      (* Process management and raw fds live in lib/runner (and bin/) only:
         a solver module that forks, signals, or sleeps is impossible to
         reason about and to test. [scan_lib] exempts lib/runner
         structurally — by path, not by allowlist. *)
      if
        tok = "Unix" || tok = "UnixLabels"
        || String.starts_with ~prefix:"Unix." tok
        || String.starts_with ~prefix:"UnixLabels." tok
      then
        add line rule_unix
          (Printf.sprintf "%s: the Unix library is confined to lib/runner, lib/obs and bin/" tok);
      (* Raw clock reads bypass Obs.Clock's monotone guard and leave the
         telemetry and the budget layer disagreeing about time. Confined
         to lib/obs (which owns the clock) and lib/runner (select
         timeouts); [scan_lib] exempts both structurally. *)
      if
        tok = "Sys.time" || tok = "Stdlib.Sys.time" || tok = "Unix.gettimeofday"
        || tok = "UnixLabels.gettimeofday"
      then
        add line rule_clock
          (Printf.sprintf "%s: clock reads are confined to lib/obs (use Obs.Clock) and lib/runner"
             tok);
      (* Durability primitives are the journal's business alone. An fsync
         or file lock sprinkled elsewhere either lies about durability (no
         checksummed framing around it) or deadlocks against the journal's
         lock discipline — so they are confined tighter than Unix at
         large: lib/runner only, lib/obs included in the ban. *)
      if
        tok = "Unix.fsync" || tok = "UnixLabels.fsync" || tok = "Unix.lockf"
        || tok = "UnixLabels.lockf"
      then
        add line rule_sync
          (Printf.sprintf
             "%s: durability and locking primitives are confined to lib/runner (the journal owns \
              the fsync/lock discipline)"
             tok);
      if !prev = "assert" && tok = "false" then
        add line rule_assert_false
          "assert false is banned in library code: raise Invariant.Internal_error";
      prev := tok)
    (tokens stripped);
  List.iter
    (fun (op, line) ->
      if op = "==" || op = "!=" then
        add line rule_physical_eq
          (Printf.sprintf
             "physical equality (%s) is banned in library code: use = / <> (or compare)" op))
    (operator_runs stripped);
  List.sort (fun a b -> compare (a.line, a.rule) (b.line, b.rule)) !findings

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file path = scan_source ~file:path (read_file path)

let rec ml_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then acc @ ml_files path
          else if Filename.check_suffix entry ".ml" then acc @ [ path ]
          else acc)
        [] entries

let missing_mlis ~lib_root =
  List.filter_map
    (fun ml ->
      let mli = ml ^ "i" in
      if Sys.file_exists mli then None
      else
        Some
          {
            file = ml;
            line = 1;
            rule = rule_missing_mli;
            message =
              Printf.sprintf "%s has no interface; every module under lib/ needs a .mli"
                (Filename.basename ml);
          })
    (ml_files lib_root)

let under ~lib_root subdirs file =
  List.exists
    (fun sub ->
      let prefix = Filename.concat lib_root sub ^ Filename.dir_sep in
      String.starts_with ~prefix file)
    subdirs

(* The subtrees whose whole point is process supervision (lib/runner) or
   timekeeping (lib/obs): the Unix rule does not apply there. A structural
   exemption, not an allowlist entry — it names a design boundary, not a
   known violation. *)
let unix_exempt ~lib_root file = under ~lib_root [ "runner"; "obs" ] file

(* Same shape for clocks: lib/obs owns the one clock abstraction, and
   lib/runner stamps dispatch/settlement times around [select] waits. *)
let clock_exempt ~lib_root file = under ~lib_root [ "obs"; "runner" ] file

(* Tighter still: fsync and file locks are journal machinery, so only
   lib/runner is exempt — lib/obs may use Unix but not durability
   primitives. *)
let sync_exempt ~lib_root file = under ~lib_root [ "runner" ] file

let scan_lib ~lib_root =
  let from_sources =
    List.concat_map
      (fun file ->
        List.filter
          (fun f ->
            not
              ((f.rule = rule_unix && unix_exempt ~lib_root file)
              || (f.rule = rule_clock && clock_exempt ~lib_root file)
              || (f.rule = rule_sync && sync_exempt ~lib_root file)))
          (scan_file file))
      (ml_files lib_root)
  in
  from_sources @ missing_mlis ~lib_root

let allowed ~allowlist f =
  List.exists
    (fun (suffix, rule) ->
      (rule = f.rule || rule = "*")
      && String.length f.file >= String.length suffix
      && String.sub f.file (String.length f.file - String.length suffix) (String.length suffix)
         = suffix)
    allowlist

let filter_allowlist ~allowlist findings =
  List.filter (fun f -> not (allowed ~allowlist f)) findings

(* Files known to violate a rule for a documented reason. Keep this empty:
   new entries need a justification in the accompanying comment. *)
let default_allowlist : (string * string) list = []
