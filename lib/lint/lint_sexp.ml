type t = Atom of string * int | List of t list * int

let line_of = function Atom (_, l) -> l | List (_, l) -> l

(* A minimal reader for the dune subset we consume: atoms, "strings",
   (lists), and ; line comments. Anything it cannot make sense of —
   an unbalanced parenthesis, an unterminated string — is a hard
   {!Lint_base.Lint_error} with a file:line position, never a silently
   empty parse: a dune file the analyzer cannot read could be hiding a
   dependency edge. *)
let parse_string ~file src =
  let n = String.length src in
  let line = ref 1 in
  let i = ref 0 in
  let is_atom_char c =
    not (c = '(' || c = ')' || c = ';' || c = '"' || c = ' ' || c = '\t' || c = '\n' || c = '\r')
  in
  let rec skip_blanks () =
    if !i < n then
      match src.[!i] with
      | '\n' ->
          incr line;
          incr i;
          skip_blanks ()
      | ' ' | '\t' | '\r' ->
          incr i;
          skip_blanks ()
      | ';' ->
          while !i < n && src.[!i] <> '\n' do
            incr i
          done;
          skip_blanks ()
      | _ -> ()
  in
  let read_string () =
    let start_line = !line in
    let b = Buffer.create 16 in
    incr i;
    let stop = ref false in
    while (not !stop) && !i < n do
      (match src.[!i] with
      | '"' -> stop := true
      | '\\' when !i + 1 < n ->
          Buffer.add_char b src.[!i + 1];
          incr i
      | '\n' ->
          incr line;
          Buffer.add_char b '\n'
      | c -> Buffer.add_char b c);
      incr i
    done;
    if not !stop then Lint_base.errorf file start_line "unterminated string in dune file";
    Atom (Buffer.contents b, start_line)
  in
  let rec read_one () =
    skip_blanks ();
    if !i >= n then Lint_base.errorf file !line "unexpected end of dune file"
    else
      match src.[!i] with
      | '(' ->
          let start_line = !line in
          incr i;
          let items = ref [] in
          let stop = ref false in
          while not !stop do
            skip_blanks ();
            if !i >= n then
              Lint_base.errorf file start_line "unclosed '(' in dune file (opened here)"
            else if src.[!i] = ')' then begin
              incr i;
              stop := true
            end
            else items := read_one () :: !items
          done;
          List (List.rev !items, start_line)
      | ')' -> Lint_base.errorf file !line "unmatched ')' in dune file"
      | '"' -> read_string ()
      | _ ->
          let start = !i and start_line = !line in
          while !i < n && is_atom_char src.[!i] do
            incr i
          done;
          if !i = start then
            Lint_base.errorf file !line "unreadable character %C in dune file" src.[!i];
          Atom (String.sub src start (!i - start), start_line)
  in
  let out = ref [] in
  skip_blanks ();
  while !i < n do
    out := read_one () :: !out;
    skip_blanks ()
  done;
  List.rev !out

let parse_file file = parse_string ~file (Lint_base.read_file file)

(* Accessors over a stanza like (library (name x) (libraries a b)). *)

let field stanza key =
  match stanza with
  | Atom _ -> None
  | List (items, _) ->
      List.find_map
        (function
          | List (Atom (k, _) :: rest, _) when k = key -> Some rest
          | Atom _ | List _ -> None)
        items

let atoms items =
  List.filter_map (function Atom (a, _) -> Some a | List _ -> None) items

let field_atoms stanza key = Option.map atoms (field stanza key)

let stanza_kind = function
  | List (Atom (k, _) :: _, _) -> Some k
  | Atom _ | List _ -> None
