(** Shared primitives of the analyzer: the finding type, the hard-error
    exception, and the lexical engine (comment/string stripping and the
    combined identifier/operator token stream) every rule is built on. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  rule : string;  (** one of the rule names in {!Lint_rules} *)
  message : string;
  path : string list;
      (** Witness call path for transitive capability findings, outermost
          module first (e.g. [["Resilience.Exact"; "Resilience.Helper";
          "Runner.Pool"]]); [[]] for direct findings. *)
}

exception Lint_error of string * int * string
(** [(file, line, message)]: the analyzer could not complete — unreadable
    root or source file, unparseable dune stanza. Deliberately an error and
    not a finding: a scan that cannot see the tree must not report it
    clean. Line 0 means the position is the whole file. *)

val errorf : string -> int -> ('a, unit, string, 'b) format4 -> 'a
(** Formats a message and raises {!Lint_error}. *)

val error_to_string : string * int * string -> string
(** ["file:line: message"]. *)

val pp_finding : Format.formatter -> finding -> unit
val finding_to_string : finding -> string

val compare_finding : finding -> finding -> int
(** Total deterministic order: (file, line, rule, message, path). *)

val is_ident_start : char -> bool
val is_ident_char : char -> bool
val is_op_char : char -> bool

val strip : string -> string
(** Comments, strings and character literals replaced by spaces; newlines
    (and hence line numbers) preserved. *)

type token = { text : string; line : int; op : bool }

val lex : string -> token list
(** Combined stream over a {e stripped} source: longest dotted identifiers
    and maximal operator runs, in source order. *)

val tokens : string -> (string * int) list
(** Identifier tokens only (with line numbers) of a stripped source. *)

val operator_runs : string -> (string * int) list
(** Operator runs only (with line numbers) of a stripped source. *)

val read_file : string -> string
(** @raise Lint_error if the file cannot be read. *)

val ml_files : string -> string list
(** Every [.ml] under the directory, recursively, deterministically
    ordered.
    @raise Lint_error if a directory cannot be read. *)

val capitalize : string -> string
val module_of_file : string -> string
(** [module_of_file "lib/core/exact.ml"] is ["Exact"]. *)

val relativize : root:string -> string -> string
(** Strip a leading [root ^ "/"] prefix, if present. *)
