open Lint_base

(* Rule names, used in findings, allowlist entries and --explain. *)
let rule_partial = "partial-function"
let rule_obj_magic = "obj-magic"
let rule_physical_eq = "physical-equality"
let rule_print = "print-in-lib"
let rule_failwith = "failwith"
let rule_assert_false = "assert-false"
let rule_missing_mli = "missing-mli"
let rule_unix = "unix-outside-runner"
let rule_clock = "clock-outside-obs"
let rule_sync = "fsync-outside-runner"
let rule_catch_all = "catch-all-handler"
let rule_raise = "undeclared-raise"
let rule_random = "random-outside-chaos"
let rule_exit = "exit-outside-bin"
let rule_state = "toplevel-state"
let rule_socket = "socket-outside-transport"
let rule_stderr = "stderr-outside-log"
let rule_layer = "layer-violation"
let rule_layer_unassigned = "layer-unassigned"
let rule_cycle = "module-cycle"
let rule_reach = "capability-reach"
let rule_dune_unix = "dune-unix-dep"
let rule_exec_deps = "exec-dep-contract"

(* {2 Capabilities} *)

(* New capabilities ([Csocket], then [Cstderr]) are appended last:
   {!all_caps} order defines the graph analyzer's bit positions, and
   appending keeps the existing masks stable. *)
type cap = Cunix | Cclock | Cfsync | Cprint | Cexit | Crandom | Cstate | Csocket | Cstderr

let all_caps = [ Cunix; Cclock; Cfsync; Cprint; Cexit; Crandom; Cstate; Csocket; Cstderr ]

let cap_name = function
  | Cunix -> "unix"
  | Cclock -> "clock"
  | Cfsync -> "fsync"
  | Cprint -> "print"
  | Cexit -> "exit"
  | Crandom -> "random"
  | Cstate -> "state"
  | Csocket -> "socket"
  | Cstderr -> "stderr"

let cap_of_name = function
  | "unix" -> Some Cunix
  | "clock" -> Some Cclock
  | "fsync" -> Some Cfsync
  | "print" -> Some Cprint
  | "exit" -> Some Cexit
  | "random" -> Some Crandom
  | "state" -> Some Cstate
  | "socket" -> Some Csocket
  | "stderr" -> Some Cstderr
  | _ -> None

(* The rule a *direct* use of each capability is reported under. A
   transitive reach is always {!rule_reach}. *)
let cap_rule = function
  | Cunix -> rule_unix
  | Cclock -> rule_clock
  | Cfsync -> rule_sync
  | Cprint -> rule_print
  | Cexit -> rule_exit
  | Crandom -> rule_random
  | Cstate -> rule_state
  | Csocket -> rule_socket
  | Cstderr -> rule_stderr

let banned_idents =
  [
    ("List.hd", rule_partial, "use pattern matching or a non-empty invariant");
    ("List.nth", rule_partial, "use an array, or List.nth_opt with an explicit default");
    ("Option.get", rule_partial, "match on the option, or Invariant.internal_error");
    ("Hashtbl.find", rule_partial, "use Hashtbl.find_opt and handle None");
    ("Obj.magic", rule_obj_magic, "unsafe cast defeats the type system");
    ("Printf.printf", rule_print, "library code must not write to stdout; return or log");
    ("print_string", rule_print, "library code must not write to stdout; return or log");
    ("print_endline", rule_print, "library code must not write to stdout; return or log");
    ("print_int", rule_print, "library code must not write to stdout; return or log");
    ("failwith", rule_failwith, "raise Invariant.Internal_error (via Invariant.internal_error)");
  ]

let print_idents =
  List.filter_map
    (fun (ident, rule, _) -> if rule = rule_print then Some ident else None)
    banned_idents

(* Stderr writes are their own capability, narrower than [print]: the
   structured logger emits JSON records on stderr, and any free-form
   eprintf from elsewhere interleaves with (and corrupts the greppability
   of) that stream. Exactly one module — Obs.Log, named by the policy
   table's stderr-modules slugs — may hold the channel; bin/ keeps the
   grant for usage/diagnostic text. The bare [stderr] token is included:
   passing the channel to a formatter is just eprintf with extra steps. *)
let stderr_idents =
  [
    "stderr";
    "Printf.eprintf";
    "Format.eprintf";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "prerr_int";
    "prerr_char";
    "prerr_bytes";
  ]

(* Top-level mutable state: a column-0 [let] binding a plain name (no
   parameters) whose right-hand side starts with a mutable constructor.
   Purely lexical, like everything here — it catches the idioms this tree
   actually uses ([let cache = ref ...], [let tbl : t = Hashtbl.create n])
   and is oblivious to eta-disguised state. *)
let state_makers =
  [ "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create"; "Atomic.make" ]

let toplevel_state_lines stripped =
  let lines = String.split_on_char '\n' stripped in
  let arr = Array.of_list lines in
  let nlines = Array.length arr in
  let first_token s =
    let n = String.length s in
    let i = ref 0 in
    while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do
      incr i
    done;
    if !i >= n || not (is_ident_start s.[!i]) then None
    else begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      (* Extend across '.' for [Hashtbl.create]. *)
      let continue = ref true in
      while !continue do
        if !j + 1 < n && s.[!j] = '.' && is_ident_start s.[!j + 1] then begin
          j := !j + 1;
          while !j < n && is_ident_char s.[!j] do
            incr j
          done
        end
        else continue := false
      done;
      Some (String.sub s start (!j - start))
    end
  in
  (* First non-blank content at or after line index [i] (0-based). *)
  let rec rhs_first_token i rest =
    let trimmed = String.trim rest in
    if trimmed <> "" then first_token rest
    else if i + 1 < nlines then rhs_first_token (i + 1) arr.(i + 1)
    else None
  in
  let findings = ref [] in
  Array.iteri
    (fun idx l ->
      if String.starts_with ~prefix:"let " l && not (String.starts_with ~prefix:"let rec " l)
      then begin
        let n = String.length l in
        let i = ref 4 in
        while !i < n && l.[!i] = ' ' do
          incr i
        done;
        (* The bound name: a plain lowercase identifier. [let () = ...],
           [let (x, y) = ...] and operators define no storable name. *)
        if !i < n && (l.[!i] >= 'a' && l.[!i] <= 'z' || l.[!i] = '_') then begin
          let start = !i in
          while !i < n && is_ident_char l.[!i] do
            incr i
          done;
          let name = String.sub l start (!i - start) in
          while !i < n && (l.[!i] = ' ' || l.[!i] = '\t') do
            incr i
          done;
          (* A value binding continues with ':' (annotation) or '='.
             Anything else means parameters: a function, not state. *)
          let eq =
            if !i < n && l.[!i] = '=' && not (!i + 1 < n && is_op_char l.[!i + 1]) then Some !i
            else if !i < n && l.[!i] = ':' then begin
              let j = ref !i in
              let found = ref None in
              while !found = None && !j < n do
                if
                  l.[!j] = '='
                  && not (!j + 1 < n && is_op_char l.[!j + 1])
                  && not (is_op_char l.[!j - 1])
                then found := Some !j
                else incr j
              done;
              !found
            end
            else None
          in
          match eq with
          | None -> ()
          | Some e -> begin
              match rhs_first_token idx (String.sub l (e + 1) (n - e - 1)) with
              | Some tok when List.mem tok state_makers ->
                  findings := (idx + 1, name, tok) :: !findings
              | Some _ | None -> ()
            end
        end
      end)
    arr;
  List.rev !findings

(* {2 The per-source scan} *)

let scan_source ~file src =
  let stripped = strip src in
  let findings = ref [] in
  let add line rule message =
    findings := { file; line; rule; message; path = [] } :: !findings
  in
  let prev1 = ref "" in
  let last_matchish = ref "" in
  List.iter
    (fun { text = tok; line; op } ->
      if op then begin
        if tok = "==" || tok = "!=" then
          add line rule_physical_eq
            (Printf.sprintf
               "physical equality (%s) is banned in library code: use = / <> (or compare)" tok)
      end
      else begin
        List.iter
          (fun (banned, rule, hint) ->
            if tok = banned || tok = "Stdlib." ^ banned then
              add line rule (Printf.sprintf "%s is banned in library code: %s" banned hint))
          banned_idents;
        (* Process management and raw fds live in lib/runner (and bin/)
           only: a solver module that forks, signals, or sleeps is
           impossible to reason about and to test. The policy table grants
           the capability to lib/runner, lib/obs and bin/ structurally. *)
        if
          tok = "Unix" || tok = "UnixLabels"
          || String.starts_with ~prefix:"Unix." tok
          || String.starts_with ~prefix:"UnixLabels." tok
        then
          add line rule_unix
            (Printf.sprintf "%s: the Unix library is confined to lib/runner, lib/obs and bin/" tok);
        (* Socket endpoints are the serve loop's attack surface: every
           accept/connect is a place where admission control, fault
           injection and dead-client detection must agree. One module —
           the runner's transport — owns them all. *)
        (let socket_prims =
           [ "socket"; "socketpair"; "bind"; "listen"; "accept"; "connect" ]
         in
         let is_socket_tok =
           List.exists
             (fun p -> tok = "Unix." ^ p || tok = "UnixLabels." ^ p)
             socket_prims
         in
         if is_socket_tok then
           add line rule_socket
             (Printf.sprintf
                "%s: socket endpoints are confined to the runner's transport module (the policy \
                 table's socket-modules slugs)"
                tok));
        (* Stderr is the structured logger's output stream: free-form
           writes from anywhere else interleave with its JSON records. *)
        if List.exists (fun p -> tok = p || tok = "Stdlib." ^ p) stderr_idents then
          add line rule_stderr
            (Printf.sprintf
               "%s: stderr is confined to the structured logger (Obs.Log; the policy table's \
                stderr-modules slugs) and bin/ — log a reason-coded event instead"
               tok);
        (* Raw clock reads bypass Obs.Clock's monotone guard and leave the
           telemetry and the budget layer disagreeing about time. *)
        if
          tok = "Sys.time" || tok = "Stdlib.Sys.time" || tok = "Unix.gettimeofday"
          || tok = "UnixLabels.gettimeofday"
        then
          add line rule_clock
            (Printf.sprintf "%s: clock reads are confined to lib/obs (use Obs.Clock) and lib/runner"
               tok);
        (* Durability primitives are the journal's business alone. *)
        if
          tok = "Unix.fsync" || tok = "UnixLabels.fsync" || tok = "Unix.lockf"
          || tok = "UnixLabels.lockf"
        then
          add line rule_sync
            (Printf.sprintf
               "%s: durability and locking primitives are confined to lib/runner (the journal owns \
                the fsync/lock discipline)"
               tok);
        (* Ambient randomness makes failing runs unreplayable: every draw
           must come from an explicitly seeded stream (Invariant.Prng, or
           the fault plan's LCG). *)
        if tok = "Random" || String.starts_with ~prefix:"Random." tok
           || String.starts_with ~prefix:"Stdlib.Random." tok
        then
          add line rule_random
            (Printf.sprintf
               "%s: ambient randomness is banned; draw from Invariant.Prng (seeded) instead" tok);
        if tok = "exit" || tok = "Stdlib.exit" then
          add line rule_exit
            "exit terminates the whole process; only bin/ may decide that (libraries return or \
             raise)";
        if !prev1 = "assert" && tok = "false" then
          add line rule_assert_false
            "assert false is banned in library code: raise Invariant.Internal_error";
        (* A catch-all handler swallows Invariant.Internal_error and
           Budget.Exhausted alike, silently converting "impossible" into
           "wrong answer". Lexically recognizable: [_] opening the handler
           of a [try] (the nearest match-ish keyword distinguishes a
           handler from a plain wildcard [match] case), and the
           [exception _] pattern anywhere. *)
        if
          (tok = "_" && !prev1 = "with" && !last_matchish = "try")
          || (tok = "_" && !prev1 = "exception")
        then
          add line rule_catch_all
            "catch-all handler (_ swallows Internal_error and Exhausted alike): match specific \
             exceptions";
        if tok = "try" || tok = "match" then last_matchish := tok;
        prev1 := tok
      end)
    (lex stripped);
  List.iter
    (fun (line, name, maker) ->
      add line rule_state
        (Printf.sprintf
           "top-level mutable state (let %s = %s ...): solver layers must stay pure; state is \
            granted only to obs/resilience/runner/bin"
           name maker))
    (toplevel_state_lines stripped);
  List.sort compare_finding !findings

(* {2 Capability extraction} *)

let caps_of_findings findings =
  List.fold_left
    (fun acc f ->
      let cap =
        if f.rule = rule_unix then Some Cunix
        else if f.rule = rule_clock then Some Cclock
        else if f.rule = rule_sync then Some Cfsync
        else if f.rule = rule_print then Some Cprint
        else if f.rule = rule_exit then Some Cexit
        else if f.rule = rule_random then Some Crandom
        else if f.rule = rule_state then Some Cstate
        else if f.rule = rule_socket then Some Csocket
        else if f.rule = rule_stderr then Some Cstderr
        else None
      in
      match cap with
      | Some c when not (List.mem_assoc c acc) -> (c, f.line) :: acc
      | Some _ | None -> acc)
    [] findings

let caps_of_source src = caps_of_findings (scan_source ~file:"" src)

(* {2 Exceptions and raises} *)

let exception_decls stripped =
  let decls = ref [] in
  let prev = ref "" in
  List.iter
    (fun (tok, _line) ->
      if !prev = "exception" && String.length tok > 0 && tok.[0] >= 'A' && tok.[0] <= 'Z' then
        decls := tok :: !decls;
      prev := tok)
    (tokens stripped);
  List.sort_uniq compare !decls

(* Exceptions that appear in a handler position: right after [with],
   after a [|] branch bar, or in an [exception E] match case. A
   top-level [exception E] {e declaration} is lexically identical to the
   match case, so [exception] only counts when it itself follows [|] or
   [with]. Constructors of ordinary [|]-branches overcount slightly —
   acceptable for a lexical tool; the raise rule still requires a
   same-file declaration alongside. *)
let handled_exceptions stripped =
  let handled = ref [] in
  let prev1 = ref "" and prev2 = ref "" in
  List.iter
    (fun { text = tok; line = _; op } ->
      if (not op) && String.length tok > 0 && tok.[0] >= 'A' && tok.[0] <= 'Z' then begin
        if
          !prev1 = "with" || !prev1 = "|"
          || (!prev1 = "exception" && (!prev2 = "|" || !prev2 = "with"))
        then handled := tok :: !handled
      end;
      if not (op && tok <> "|") then begin
        prev2 := !prev1;
        prev1 := tok
      end)
    (lex stripped);
  List.sort_uniq compare !handled

(* [raise E] / [raise (E ...)] / [raise (M.E ...)] occurrences: the
   capitalized identifier right after a [raise] token. Re-raises
   ([raise e]) are lowercase and skipped. *)
let raises stripped =
  let acc = ref [] in
  let prev = ref "" in
  List.iter
    (fun { text = tok; line; op } ->
      if not op then begin
        if !prev = "raise" && String.length tok > 0 && tok.[0] >= 'A' && tok.[0] <= 'Z' then
          acc := (tok, line) :: !acc;
        prev := tok
      end)
    (lex stripped);
  List.rev !acc

(* Internal errors must go through Invariant.internal_error; everything
   else a module throws across its boundary is part of its contract and
   belongs in the .mli. Two structural exemptions: [Exit] (the stdlib
   local-loop-break idiom), and exceptions both declared and handled in
   the same .ml (private control flow that never escapes). [resolve m e]
   answers whether module [m]'s interface declares exception [e]. *)
let raise_findings ~file ~stripped ~mli_decls ~resolve =
  let local_decls = exception_decls stripped in
  let handled = handled_exceptions stripped in
  List.filter_map
    (fun (exc, line) ->
      let qualified = String.contains exc '.' in
      let ok =
        if qualified then begin
          match String.index_opt exc '.' with
          | None -> true
          | Some i ->
              let m = String.sub exc 0 i in
              let e =
                let rest = String.sub exc (i + 1) (String.length exc - i - 1) in
                match String.rindex_opt rest '.' with
                | None -> rest
                | Some j -> String.sub rest (j + 1) (String.length rest - j - 1)
              in
              m = "Invariant" || resolve m e
        end
        else
          exc = "Exit"
          || List.mem exc mli_decls
          || (List.mem exc local_decls && List.mem exc handled)
      in
      if ok then None
      else
        Some
          {
            file;
            line;
            rule = rule_raise;
            message =
              Printf.sprintf
                "raise %s: the exception is not declared in this module's .mli (and is not \
                 locally defined and handled); internal errors must go through \
                 Invariant.internal_error"
                exc;
            path = [];
          })
    (raises stripped)

let missing_mlis ~lib_root =
  List.filter_map
    (fun ml ->
      let mli = ml ^ "i" in
      if Sys.file_exists mli then None
      else
        Some
          {
            file = ml;
            line = 1;
            rule = rule_missing_mli;
            message =
              Printf.sprintf "%s has no interface; every module under lib/ needs a .mli"
                (Filename.basename ml);
            path = [];
          })
    (ml_files lib_root)

(* {2 Rule catalogue} *)

let explanations =
  [
    ( rule_partial,
      "Partial stdlib calls (List.hd, List.nth, Option.get, bare Hashtbl.find) raise unhelpful \
       exceptions exactly when an invariant broke. Use the _opt variants, pattern matching, or \
       Invariant.internal_error with a real message." );
    (rule_obj_magic, "Obj.magic defeats the type system; there is no sound use in this tree.");
    ( rule_physical_eq,
      "Physical equality (== / !=) is almost always a typo for structural = / <>. Where identity \
       truly matters, use [compare] or an explicit id field." );
    ( rule_print,
      "Library code must not write to stdout/stderr: solvers return values, the runner owns the \
       protocol streams, and a stray print interleaves with protocol frames. 'print' is a \
       capability granted only to bin/." );
    ( rule_failwith,
      "failwith raises an anonymous Failure; internal errors must go through \
       Invariant.internal_error so they carry a subsystem and a message." );
    ( rule_assert_false,
      "assert false vanishes under -noassert and carries no context; raise \
       Invariant.Internal_error instead." );
    ( rule_missing_mli,
      "Every .ml under lib/ needs a .mli: the interface is where the layering and exception \
       contracts are declared and checked." );
    ( rule_unix,
      "The 'unix' capability (fork, pipes, signals, fds) is granted to lib/runner, lib/obs and \
       bin/ by the policy table. A solver module that touches Unix — directly or through a \
       helper — is untestable in-process; the analyzer propagates the capability transitively \
       and reports a witness path." );
    ( rule_clock,
      "The 'clock' capability (Sys.time, Unix.gettimeofday) is granted to lib/obs (which owns \
       the monotone clock) and lib/runner (select timeouts). Everything else reads time through \
       Obs.Clock." );
    ( rule_sync,
      "The 'fsync' capability (Unix.fsync, Unix.lockf) is granted to lib/runner only: the \
       journal owns the fsync-and-rename and lock disciplines, and a stray fsync elsewhere \
       claims durability the recovery path cannot honor." );
    ( rule_catch_all,
      "A catch-all handler (try ... with _ ->, match ... with exception _ ->) swallows \
       Invariant.Internal_error and Budget.Exhausted alike, silently converting 'impossible' \
       into 'wrong answer'. Match the specific exceptions you expect." );
    ( rule_raise,
      "Raising an exception that is neither declared in the module's .mli nor locally defined \
       and handled makes it invisible control flow for every caller. Declare contract \
       exceptions in the interface; route internal errors through Invariant.internal_error; \
       Exit is exempt as the stdlib loop-break idiom." );
    ( rule_random,
      "The 'random' capability: ambient Random draws make failing runs unreplayable. All \
       randomness comes from explicitly seeded streams (Invariant.Prng; the fault plan's LCG). \
       No module holds a standing grant; the policy table can name seeded chaos modules." );
    ( rule_exit,
      "The 'exit' capability: calling exit from a library terminates the supervisor, the \
       worker pool, or a test runner from deep inside a computation. Only bin/ decides process \
       exit; libraries return or raise." );
    ( rule_state,
      "The 'state' capability: top-level mutable state (let x = ref ...) makes a module's \
       behavior depend on call order. Granted to obs (metrics/trace registries), resilience \
       (check mode, fault plan), runner and bin; solver leaves must stay pure so results are a \
       function of inputs." );
    ( rule_socket,
      "The 'socket' capability (Unix.socket/socketpair/bind/listen/accept/connect) is confined \
       to the runner's transport module, named by the policy table's socket-modules slugs \
       (runner/transport). Sockets are the serve loop's attack surface — admission control, \
       net-fault injection and dead-client detection all hang off accept/connect — so exactly \
       one module owns the endpoints; everything else (tests, the CLI's chaos clients) goes \
       through Transport's connect helpers." );
    ( rule_stderr,
      "The 'stderr' capability (Printf.eprintf, Format.eprintf, prerr_*, the bare stderr \
       channel) is confined to the structured logger, named by the policy table's \
       stderr-modules slugs (obs/log), plus bin/ for usage and diagnostic text. Obs.Log emits \
       reason-coded JSON records on stderr; a free-form eprintf anywhere else interleaves \
       with that stream and escapes the log level, the rate limiter and the flight recorder. \
       Emit Obs.Log.warn/error events instead." );
    ( rule_layer,
      "The layering contract (invariant -> obs -> leaf solvers -> resilience -> runner -> bin) \
       is checked against the dune dependency graph: a library may depend only on strictly \
       lower layers, except leaf solvers which may depend on each other (acyclically)." );
    ( rule_layer_unassigned,
      "Every library under lib/ must appear in the policy table's layer assignment; an \
       unassigned library would silently escape the layering and capability checks." );
    ( rule_cycle,
      "Tarjan SCC detection over the module reference graph: a dependency cycle (even a \
       lexical one) defeats layered reasoning and usually precedes a dune build failure." );
    ( rule_reach,
      "Transitive capability reach: the module never names the capability but calls through \
       modules that do, e.g. 'Resilience.Exact reaches unix via Exact -> Helper -> Pool'. \
       Grants act as encapsulation boundaries: a granted module's capabilities do not \
       propagate to its callers." );
    ( rule_dune_unix,
      "Listing the unix findlib library in a dune (libraries ...) stanza is a capability \
       declaration; only libraries granted 'unix' by the policy table (obs, runner) and bin/ \
       may do so." );
    ( rule_exec_deps,
      "Executables named in the policy table's exec-deps allowlist may link only the libraries \
       listed there. rpq_certcheck is the independent answer checker: its value rests on NOT \
       sharing code with the solvers it audits, so it may depend on the dependency-free 'cert' \
       library alone — a dune edit that links a solver library silently destroys the \
       independence argument, which is why it is contract-checked here." );
  ]

let explain rule = List.assoc_opt rule explanations
let all_rules = List.map fst explanations
