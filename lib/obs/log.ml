(* Structured, leveled, reason-coded logging. One JSON object per line:

     {"lvl":"warn","event":"worker-death","ts":…,"id":"j1","death":"crash"}

   The [event] field is a stable reason code (kebab-case), the rest are
   key/value context — greppable, and parseable with the same JSON
   grammar as every other telemetry surface ([Jtext] emit, [Proto.Json]
   parse). This module is the only place outside [bin/] allowed to write
   to stderr (enforced by the rpq_lint stderr-confinement rule). *)

type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* [None] = logging off entirely. Default: warnings and errors only, to
   stderr — library code may log freely without polluting the stdout
   protocol surfaces or the quiet default CLI experience. *)
let threshold : level option ref = ref (Some Warn)
let set_level l = threshold := l

let out : out_channel ref = ref stderr
let opened : out_channel option ref = ref None

let close_file () =
  match !opened with
  | None -> ()
  | Some oc ->
      opened := None;
      out := stderr;
      close_out_noerr oc

let set_file path =
  close_file ();
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  opened := Some oc;
  out := oc

(* RPQ_LOG grammar: [off] | LEVEL | LEVEL:PATH. *)
let configure_from_env () =
  match Sys.getenv_opt "RPQ_LOG" with
  | None -> ()
  | Some v -> begin
      let v = String.trim v in
      let lvl, path =
        match String.index_opt v ':' with
        | Some i -> (String.sub v 0 i, Some (String.sub v (i + 1) (String.length v - i - 1)))
        | None -> (v, None)
      in
      (match String.lowercase_ascii lvl with
      | "" | "off" | "none" | "0" -> threshold := None
      | l -> ( match level_of_string l with Some l -> threshold := Some l | None -> ()));
      match path with Some p when p <> "" -> set_file p | _ -> ()
    end

(* Repeat suppression, per reason code: the first few occurrences pass,
   then only power-of-two ones (tagged with the running count), so a
   wedged loop emitting the same event cannot flood the sink. Count-
   based rather than time-based keeps the policy deterministic. *)
let repeat_window = 4
let seen : (string, int) Hashtbl.t = Hashtbl.create 16

let admit event =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt seen event) in
  Hashtbl.replace seen event n;
  if n <= repeat_window || n land (n - 1) = 0 then Some n else None

let reset_repeats () = Hashtbl.reset seen

let record lvl event fields =
  let line =
    Jtext.Obj
      ([
         ("lvl", Jtext.Str (level_name lvl));
         ("event", Jtext.Str event);
         ("ts", Jtext.Float (Clock.now ()));
       ]
      @ fields)
  in
  (* The flight recorder sees every record, below-threshold or not: the
     ring is exactly for context you did not think you would need. *)
  Flight.note line;
  match !threshold with
  | Some t when severity lvl >= severity t -> begin
      match admit event with
      | None -> ()
      | Some n ->
          let line =
            if n <= repeat_window then line
            else
              match line with
              | Jtext.Obj fs -> Jtext.Obj (fs @ [ ("repeat", Jtext.Int n) ])
              | other -> other
          in
          output_string !out (Jtext.to_string line);
          output_char !out '\n';
          flush !out
    end
  | Some _ | None -> ()

let debug event fields = record Debug event fields
let info event fields = record Info event fields
let warn event fields = record Warn event fields
let error event fields = record Error event fields
