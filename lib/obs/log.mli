(** Structured, leveled logging with stable reason codes.

    Every record is one JSON line —
    [{"lvl":"warn","event":"worker-death","ts":…, …context…}] — where
    [event] is a stable kebab-case reason code and the remaining fields
    are key/value context rendered with {!Jtext} (the same grammar the
    rest of the telemetry stack emits and [Runner.Proto.Json] parses).

    Defaults: level {!Warn}, destination stderr. [RPQ_LOG] (or the CLI's
    [--log-level]/[--log-file]) reconfigures both. This module is the
    only stderr writer allowed outside [bin/] — see the rpq_lint
    stderr-confinement rule.

    Repeated events are rate-limited per reason code: the first 4 pass,
    then only power-of-two occurrences (tagged [repeat:N]). The policy
    is count-based, hence deterministic. Every record — suppressed,
    below threshold, or not — is also noted in the {!Flight} ring. *)

type level = Debug | Info | Warn | Error

val level_of_string : string -> level option
val level_name : level -> string

val set_level : level option -> unit
(** [None] disables logging entirely. *)

val set_file : string -> unit
(** Append records to [path] instead of stderr. Raises [Sys_error] if
    the file cannot be opened. *)

val close_file : unit -> unit
(** Close any {!set_file} destination and fall back to stderr. *)

val configure_from_env : unit -> unit
(** Honors [RPQ_LOG]: [off] | LEVEL | LEVEL:PATH (e.g.
    [debug:/tmp/rpq.log]). Unset leaves the defaults. *)

val debug : string -> (string * Jtext.t) list -> unit
val info : string -> (string * Jtext.t) list -> unit
val warn : string -> (string * Jtext.t) list -> unit
val error : string -> (string * Jtext.t) list -> unit

val reset_repeats : unit -> unit
(** Forget repeat-suppression counts (tests). *)
