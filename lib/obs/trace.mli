(** Hierarchical spans with pluggable trace sinks.

    With no sink configured (the default, and whenever [RPQ_TRACE] is
    [off]) every entry point here short-circuits to running its thunk —
    no clock read, no allocation — so instrumentation can stay in place
    permanently (<2% overhead contract, see DESIGN.md §10).

    Two sink formats:
    {ul
    {- {b Jsonl}: one JSON object per line, [{"ev":"span"|"instant",
       "name":…, "ts":…, "dur":…, "depth":…}], seconds since the trace
       epoch — greppable and trivially parseable;}
    {- {b Chrome}: a [trace_event] JSON array of ["ph":"X"] complete
       events (microsecond timestamps), loadable in [about:tracing] and
       {{:https://ui.perfetto.dev}Perfetto}.}}

    Spans are emitted when they {e close}, so children precede their
    parents in the file; every event carries its nesting [depth] so
    consumers can check well-nestedness without replaying a stack. *)

type format = Jsonl | Chrome

val configure : format:format -> string -> unit
(** Open [path] (truncating) as the trace sink, finishing any previous
    one. Raises [Sys_error] if the file cannot be opened. *)

val configure_file : string -> unit
(** {!configure} with the format chosen by extension: [.jsonl] is
    {!Jsonl}, anything else {!Chrome}. *)

val configure_from_env : unit -> unit
(** Honors [RPQ_TRACE]: unset/[off]/[none]/[0] leaves tracing disabled;
    [chrome:PATH] and [jsonl:PATH] force a format; a bare path behaves
    like {!configure_file}. *)

val enabled : unit -> bool

val with_span : ?args:(string * Jtext.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f] between monotonic-clock reads and emits
    one span event on close (also on exception). [args] become the
    event's [args] fields. When disabled this is exactly [f ()]. *)

val instant : ?args:(string * Jtext.t) list -> string -> unit
(** A zero-duration event (dispatches, retries, worker deaths). *)

val stage : ?args:(string * Jtext.t) list -> string -> (unit -> 'a) -> 'a
(** Like {!with_span} (the span is named [stage:<name>] and tagged with
    [stage=<name>]) but additionally accumulates elapsed time into the
    ambient {!with_stages} table, if one is active. Only the outermost
    stage accumulates — a nested stage's time is already inside its
    parent's — so per-job stage totals never double-count and sum to at
    most the enclosing wall time. *)

val with_stages : (unit -> 'a) -> 'a * (string * float) list
(** [with_stages f] enables stage accounting (independently of any sink)
    around [f] and returns its result with the per-stage totals in
    seconds, sorted by stage name. Used by the runner to fill the
    [stages] block of a {!Runner.Proto.reply}. Nests: the previous table
    is saved and restored. *)

val finish : unit -> unit
(** Close the sink properly (for {!Chrome}, terminate the JSON array).
    Idempotent. Perfetto tolerates a missing terminator, so a crashed
    process still leaves a loadable trace. *)

val abandon : unit -> unit
(** Drop the sink {e without} flushing or closing — for forked children
    that inherit the supervisor's sink and must not interleave writes
    with it (see [Pool.spawn]). *)
