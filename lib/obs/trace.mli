(** Hierarchical spans with pluggable trace sinks and cross-process
    span propagation.

    With no sink configured (the default, and whenever [RPQ_TRACE] is
    [off]) every entry point here short-circuits to running its thunk —
    no clock read, no allocation — so instrumentation can stay in place
    permanently (<2% overhead contract, see DESIGN.md §10).

    Two sink formats:
    {ul
    {- {b Jsonl}: one JSON object per line. The stream opens with a
       [{"ev":"meta","pid":…,"t0":…,"tid":…}] record carrying the
       absolute epoch (integer microseconds — a float rendering would
       truncate it); span/instant records carry [ts]/[dur] relative to
       it plus [pid], [depth] and the span identity ([tid] trace id,
       [sid] span id, [psid] parent span id). Files from different
       processes concatenate: a reader re-anchors at each meta record;}
    {- {b Chrome}: a [trace_event] JSON array of ["ph":"X"] complete
       events (microsecond timestamps), loadable in [about:tracing] and
       {{:https://ui.perfetto.dev}Perfetto}; span identity rides in
       [args].}}

    Spans are emitted when they {e close}, so children precede their
    parents in the file; every event carries its nesting [depth] so
    consumers can check well-nestedness without replaying a stack.

    {b Cross-process propagation.} A {!span_ctx} serializes to
    [trace_id:span_id:flag] and travels in the job envelope; the
    receiving process installs it with {!with_parent} so its spans
    become children of the remote parent. A cleared sampling bit
    suppresses emission in the subtree while still propagating the
    context. Forked workers call {!adopt_pipe} to stream their events
    back over the reply pipe (lines marked with {!pipe_prefix}),
    keeping the supervisor's epoch so the stitched trace is coherent. *)

type format = Jsonl | Chrome

val configure : format:format -> string -> unit
(** Open [path] (truncating) as the trace sink, finishing any previous
    one, and start a fresh trace id. Raises [Sys_error] if the file
    cannot be opened. *)

val configure_file : string -> unit
(** {!configure} with the format chosen by extension: [.jsonl] is
    {!Jsonl}, anything else {!Chrome}. *)

val configure_from_env : unit -> unit
(** Honors [RPQ_TRACE]: unset/[off]/[none]/[0] leaves tracing disabled;
    [chrome:PATH] and [jsonl:PATH] force a format; a bare path behaves
    like {!configure_file}. *)

val enabled : unit -> bool

(** {1 Span context} *)

type span_ctx = { trace_id : string; span_id : string; sampled : bool }

val ctx_to_string : span_ctx -> string
(** Wire form: [trace_id:span_id:flag] with flag [1] (sampled) or [0]. *)

val ctx_of_string : string -> span_ctx option

val current_ctx : unit -> span_ctx option
(** The innermost open span's identity (or the propagated remote parent
    when no local span is open). [None] when nothing would be recorded. *)

val with_parent : span_ctx option -> (unit -> 'a) -> 'a
(** [with_parent ctx f] runs [f] with [ctx] installed as the ambient
    parent: root spans opened inside become its children and adopt its
    trace id. A context with [sampled = false] suppresses emission for
    the whole scope. [with_parent None f] is [f ()]. *)

(** {1 Scoped spans} *)

val with_span : ?args:(string * Jtext.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f] between monotonic-clock reads and emits
    one span event on close (also on exception). [args] become the
    event's [args] fields. When disabled this is exactly [f ()]. *)

val instant : ?args:(string * Jtext.t) list -> string -> unit
(** A zero-duration event (dispatches, retries, worker deaths). *)

(** {1 Manual spans}

    A supervisor's per-job span opens at admission and closes at settle,
    across many event-loop turns — no lexical scope to wrap. The handle
    names the span ({!handle_ctx}) before it closes, so a job envelope
    can carry it as the worker's parent. *)

type handle

val open_span : ?args:(string * Jtext.t) list -> ?parent:span_ctx -> string -> handle option
(** Allocate a span starting now. [parent] overrides the ambient parent
    (an unsampled parent yields [None]). [None] when no sink is
    configured — thread the option through and {!close_span} it. *)

val close_span : ?args:(string * Jtext.t) list -> handle -> unit
(** Emit the span, ending now. Idempotent. *)

val handle_ctx : handle -> span_ctx

(** {1 Pipe sinks (forked workers)} *)

val pipe_prefix : string
(** Marker prepended to every line a pipe sink writes ("#t "), so the
    pool can separate trace traffic from the reply line. *)

val adopt_pipe : out_channel -> unit
(** In a forked child: replace the inherited file sink with a JSONL line
    stream over [oc] (the reply pipe), keeping the supervisor's epoch.
    Each scoped span additionally emits an ["open"] record when it
    starts, so the supervisor can close a killed worker's unfinished
    spans as interrupted. No-op when the parent had no sink. *)

val emit_raw_span :
  ?args:(string * Jtext.t) list ->
  ?tid:string ->
  ?sid:string ->
  ?psid:string ->
  name:string ->
  ts:float ->
  dur:float ->
  depth:int ->
  pid:int ->
  unit ->
  unit
(** Re-emit a span received from a worker's pipe sink into the local
    sink ([ts] relative to the shared epoch). Supervisor-side stitching. *)

val emit_raw_instant :
  ?args:(string * Jtext.t) list ->
  ?tid:string ->
  ?sid:string ->
  ?psid:string ->
  name:string ->
  ts:float ->
  depth:int ->
  pid:int ->
  unit ->
  unit

val epoch : unit -> float option
(** The active sink's absolute epoch [t0]. *)

(** {1 Stage accounting} *)

val stage : ?args:(string * Jtext.t) list -> string -> (unit -> 'a) -> 'a
(** Like {!with_span} (the span is named [stage:<name>] and tagged with
    [stage=<name>]) but additionally accumulates elapsed time into the
    ambient {!with_stages} table, if one is active. Only the outermost
    stage accumulates — a nested stage's time is already inside its
    parent's — so per-job stage totals never double-count and sum to at
    most the enclosing wall time. *)

val with_stages : (unit -> 'a) -> 'a * (string * float) list
(** [with_stages f] enables stage accounting (independently of any sink)
    around [f] and returns its result with the per-stage totals in
    seconds, sorted by stage name. Used by the runner to fill the
    [stages] block of a {!Runner.Proto.reply}. Nests: the previous table
    is saved and restored. *)

(** {1 Lifecycle} *)

val finish : unit -> unit
(** Close the sink properly (for {!Chrome}, terminate the JSON array).
    Idempotent. Perfetto tolerates a missing terminator, so a crashed
    process still leaves a loadable trace. *)

val abandon : unit -> unit
(** Drop the sink {e without} flushing or closing — for forked children
    that inherit a sink they must not write to. Workers that should
    stream spans back use {!adopt_pipe} instead. *)
