(* The stdlib has no monotonic clock and pulling in a clock library would
   defeat the point of a dependency-free observability layer, so [now] is
   the wall clock behind a max guard: a backwards NTP step can stall the
   reading but never make an elapsed-time difference negative. *)
let last = ref 0.0

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let cpu () = Sys.time ()
