(** Emit-only JSON values for telemetry output.

    Mirrors the value type and escaping rules of [Runner.Proto.Json]
    (which sits {e above} this layer and also carries the parser); the
    trace/metrics tests parse this module's output back with the Proto
    parser to keep the two halves in sync. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering. Non-finite floats emit as [null]; control
    characters, backslash and double quote are escaped, so the result
    never contains a raw newline — safe for line-delimited framing. *)
