(** The two clocks of the telemetry layer.

    Everything in the repository that reads a clock goes through this
    module (or through [lib/runner], which owns its own wall-clock calls
    for supervision timeouts) — enforced by the [clock-outside-obs] lint
    rule, so CPU time can never again be mistaken for wall time the way
    the original [bench/main.ml:time_it] did. *)

val now : unit -> float
(** Monotonically non-decreasing wall-clock seconds: the system clock
    behind a max guard, so differences are never negative even across a
    backwards clock step. Use for spans, latencies, and benchmarks. *)

val cpu : unit -> float
(** Processor seconds consumed by this process ([Sys.time]). Use for
    CPU-time budgets ({!Resilience.Budget}), never for wall-clock
    measurements. *)
