(** Crash flight recorder: the process's black box.

    A bounded ring of recent telemetry events — structured {!Log}
    records, {!Trace} span closures, {!Metrics} counter deltas — kept in
    memory at all times and written out only when the process is about
    to die somewhere interesting (an armed fault-plan crash site, a
    fatal signal, an in-process [Faults.Crash]). With no [RPQ_FLIGHT]
    destination configured every entry point is a no-op.

    The dump is a single JSON object published atomically (temp file +
    rename, the journal's discipline), so a post-mortem reader never
    sees a torn file:

    {v
    { "v":1, "reason":"crash:journal.pre_append", "pid":…, "ts":…,
      "seq":…, "dropped":…, "events":[…], "metrics":{…} }
    v} *)

val configure : ?cap:int -> string -> unit
(** Arm the recorder: keep the last [cap] (default 512) events and dump
    to the given path. Raises [Invalid_argument] if [cap < 1]. *)

val configure_from_env : unit -> unit
(** Honors [RPQ_FLIGHT]: unset/[off]/[none]/[0] leaves the recorder
    disarmed; anything else is the dump path. *)

val disable : unit -> unit
val enabled : unit -> bool

val note : Jtext.t -> unit
(** Append one event to the ring (overwriting the oldest when full).
    No-op when disarmed — cheap enough for instrumentation paths. *)

val dump : reason:string -> unit -> unit
(** Write the ring plus a final metrics snapshot to the configured path,
    atomically. Never raises (a crash handler must not mask the crash);
    no-op when disarmed. *)

val set_metrics_provider : (unit -> Jtext.t) -> unit
(** Called once by [Metrics] at link time; the provider supplies the
    dump's [metrics] field. *)
