(** Process-wide metrics registry: counters, gauges, log-scale histograms.

    Metric objects are created once by name (idempotent: the same name
    returns the same object; reusing a name for a different kind raises
    [Invalid_argument]) and held statically by the instrumented modules,
    so the hot operations — {!incr}, {!add}, {!observe} — touch no table
    and are cheap enough for the innermost solver loops. {!reset} zeroes
    values but keeps the objects, so static references survive it.

    Counters count work (budget ticks, B&B nodes, simplex pivots, oracle
    calls, retries, worker deaths) and are deterministic under a fixed
    fault seed; gauges hold last-written levels (queue depth, in-flight
    jobs); histograms hold latency distributions with p50/p99 extraction
    (dispatch latency, journal append time). *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit
val get : gauge -> float

val observe : histogram -> float -> unit
(** Records a sample into log-scale buckets (base [2^(1/4)]: four buckets
    per doubling, so a reported percentile is within ~19% of the true
    one). Non-finite samples are recorded as [0.0]. *)

val observations : histogram -> int

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [[0, 1]]: the geometric midpoint of the
    bucket holding the [ceil (q * n)]-th smallest sample, clamped to the
    observed min/max. [nan] on an empty histogram. *)

type stat =
  | Counter of int
  | Gauge of float
  | Histogram of { n : int; sum : float; lo : float; hi : float; p50 : float; p99 : float }

val snapshot : unit -> (string * stat) list
(** Every registered metric, sorted by name (deterministic). *)

val reset : unit -> unit
(** Zero all values, keeping the metric objects registered. *)

val jtext_of_snapshot : (string * stat) list -> Jtext.t
(** Render an already-taken snapshot. Both the serve stats control line
    and the Prometheus endpoint render the same {!snapshot} value, so
    the two surfaces cannot drift. *)

val to_jtext : unit -> Jtext.t
(** The snapshot as one JSON object, metric names as keys (sorted;
    floats formatted locale-independently, so identical counter states
    render byte-identically). *)

val snapshot_string : unit -> string
(** [Jtext.to_string (to_jtext ())] — the [rpq serve] [stats] payload. *)

val prometheus_of_snapshot : ?only_counters:bool -> (string * stat) list -> string
(** Prometheus text exposition (format 0.0.4) of a snapshot: metric
    names mangled to [rpq_*], counters and gauges as-is, histograms as
    summaries (p50/p99 quantiles, [_sum], [_count]) with [_min]/[_max]
    companion gauges. With [~only_counters:true] only counters render —
    a surface that is byte-identical across runs with deterministic
    counter states (latency histograms and point-in-time gauges are
    excluded). *)

val prometheus_string : ?only_counters:bool -> unit -> string
(** [prometheus_of_snapshot ?only_counters (snapshot ())]. *)
