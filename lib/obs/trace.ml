type format = Jsonl | Chrome

type sink = {
  oc : out_channel;
  fmt : format;
  pid : int;
  t0 : float;  (* trace epoch: timestamps are relative, so files diff cleanly *)
  mutable first : bool;  (* Chrome: separator management inside the array *)
}

let sink : sink option ref = ref None
let enabled () = Option.is_some !sink

(* Current span nesting depth; tagged onto every event so consumers can
   check nesting without reconstructing the stack. *)
let depth = ref 0

let write_event s json =
  (match s.fmt with
  | Jsonl -> ()
  | Chrome ->
      if s.first then s.first <- false
      else output_string s.oc ",\n");
  output_string s.oc (Jtext.to_string json);
  (match s.fmt with Jsonl -> output_char s.oc '\n' | Chrome -> ());
  (* One event may be the process's last act before a crash; flush per
     event so the trace is useful exactly when it matters most. *)
  flush s.oc

let us t = t *. 1e6

let span_event s name ~args ~depth:d ~start ~stop =
  match s.fmt with
  | Chrome ->
      Jtext.Obj
        [
          ("name", Jtext.Str name);
          ("ph", Jtext.Str "X");
          ("ts", Jtext.Float (us (start -. s.t0)));
          ("dur", Jtext.Float (us (stop -. start)));
          ("pid", Jtext.Int s.pid);
          ("tid", Jtext.Int s.pid);
          ("args", Jtext.Obj (("depth", Jtext.Int d) :: args));
        ]
  | Jsonl ->
      Jtext.Obj
        ([
           ("ev", Jtext.Str "span");
           ("name", Jtext.Str name);
           ("ts", Jtext.Float (start -. s.t0));
           ("dur", Jtext.Float (stop -. start));
           ("depth", Jtext.Int d);
         ]
        @ args)

let instant_event s name ~args =
  let t = Clock.now () in
  match s.fmt with
  | Chrome ->
      Jtext.Obj
        [
          ("name", Jtext.Str name);
          ("ph", Jtext.Str "i");
          ("ts", Jtext.Float (us (t -. s.t0)));
          ("s", Jtext.Str "p");
          ("pid", Jtext.Int s.pid);
          ("tid", Jtext.Int s.pid);
          ("args", Jtext.Obj (("depth", Jtext.Int !depth) :: args));
        ]
  | Jsonl ->
      Jtext.Obj
        ([
           ("ev", Jtext.Str "instant");
           ("name", Jtext.Str name);
           ("ts", Jtext.Float (t -. s.t0));
           ("depth", Jtext.Int !depth);
         ]
        @ args)

let instant ?(args = []) name =
  match !sink with None -> () | Some s -> write_event s (instant_event s name ~args)

(* Spans are emitted on close (children before parents) as Chrome "X"
   complete events / JSONL records carrying [ts], [dur] and [depth]. *)
let with_span ?(args = []) name f =
  match !sink with
  | None -> f ()
  | Some _ ->
      let start = Clock.now () in
      let d = !depth in
      incr depth;
      Fun.protect
        ~finally:(fun () ->
          decr depth;
          match !sink with
          | None -> () (* abandoned mid-span (forked child) *)
          | Some s ->
              write_event s (span_event s name ~args ~depth:d ~start ~stop:(Clock.now ())))
        f

(* ---- solver stage accounting ---- *)

(* The per-job stage table filled by {!stage} under {!with_stages}. Only
   the outermost stage accumulates (a nested stage's time is already part
   of its enclosing stage), so the stage totals sum to at most the
   enclosed wall time — the property behind the "stage spans account for
   >= 90% of wall_s" acceptance check. *)
let stages : (string, float ref) Hashtbl.t option ref = ref None
let stage_depth = ref 0

let stage ?(args = []) name f =
  let collecting = Option.is_some !stages && !stage_depth = 0 in
  if not (collecting || enabled ()) then f ()
  else begin
    let start = Clock.now () in
    incr stage_depth;
    Fun.protect
      ~finally:(fun () ->
        decr stage_depth;
        if collecting then
          match !stages with
          | None -> ()
          | Some tbl ->
              let cell =
                match Hashtbl.find_opt tbl name with
                | Some r -> r
                | None ->
                    let r = ref 0.0 in
                    Hashtbl.replace tbl name r;
                    r
              in
              cell := !cell +. (Clock.now () -. start))
      (fun () -> with_span ~args:(("stage", Jtext.Str name) :: args) ("stage:" ^ name) f)
  end

let with_stages f =
  let tbl = Hashtbl.create 8 in
  let saved = !stages and saved_depth = !stage_depth in
  stages := Some tbl;
  stage_depth := 0;
  Fun.protect
    ~finally:(fun () ->
      stages := saved;
      stage_depth := saved_depth)
    (fun () ->
      let r = f () in
      let totals =
        Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      (r, totals))

(* ---- lifecycle ---- *)

let finish () =
  match !sink with
  | None -> ()
  | Some s ->
      sink := None;
      (match s.fmt with Chrome -> output_string s.oc "\n]\n" | Jsonl -> ());
      flush s.oc;
      close_out_noerr s.oc

let abandon () = sink := None

let configure ~format path =
  finish ();
  let oc = open_out path in
  (match format with Chrome -> output_string oc "[\n" | Jsonl -> ());
  sink := Some { oc; fmt = format; pid = Unix.getpid (); t0 = Clock.now (); first = true }

let format_of_path path = if Filename.check_suffix path ".jsonl" then Jsonl else Chrome
let configure_file path = configure ~format:(format_of_path path) path

let configure_from_env () =
  match Sys.getenv_opt "RPQ_TRACE" with
  | None -> ()
  | Some v -> begin
      match String.trim v with
      | "" | "off" | "none" | "0" -> ()
      | v when String.starts_with ~prefix:"chrome:" v ->
          configure ~format:Chrome (String.sub v 7 (String.length v - 7))
      | v when String.starts_with ~prefix:"jsonl:" v ->
          configure ~format:Jsonl (String.sub v 6 (String.length v - 6))
      | path -> configure_file path
    end
