type format = Jsonl | Chrome

type sink = {
  oc : out_channel;
  fmt : format;
  pid : int;
  t0 : float;  (* trace epoch: timestamps are relative, so files diff cleanly *)
  mutable first : bool;  (* Chrome: separator management inside the array *)
  prefix : string;  (* non-empty for pipe sinks: every line is marked *)
  owned : bool;  (* pipe sinks borrow the worker's reply channel *)
}

let sink : sink option ref = ref None
let enabled () = Option.is_some !sink

(* ---- span identity ---- *)

(* A span context crosses process boundaries as a compact string
   ([trace_id:span_id:flag]); span ids embed the allocating pid so ids
   from a supervisor and its forked workers never collide. *)
type span_ctx = { trace_id : string; span_id : string; sampled : bool }

let ctx_to_string c =
  Printf.sprintf "%s:%s:%c" c.trace_id c.span_id (if c.sampled then '1' else '0')

let ctx_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ tid; sid; flag ] when tid <> "" && sid <> "" && (flag = "0" || flag = "1") ->
      Some { trace_id = tid; span_id = sid; sampled = flag = "1" }
  | _ -> None

(* Current span nesting depth; tagged onto every event so consumers can
   check nesting without reconstructing the stack. *)
let depth = ref 0

(* Own trace id (set at {!configure}), the stack of open span ids, a
   remote parent installed by {!with_parent}, and a suppression flag for
   subtrees whose propagated context has the sampling bit cleared. *)
let own_trace_id = ref ""
let span_counter = ref 0
let span_stack : string list ref = ref []
let remote_parent : span_ctx option ref = ref None
let suppressed = ref false

let fresh_sid () =
  incr span_counter;
  Printf.sprintf "%x.%x" (Unix.getpid ()) !span_counter

let cur_trace_id () =
  match !remote_parent with Some c -> c.trace_id | None -> !own_trace_id

let cur_parent () =
  match !span_stack with
  | sid :: _ -> Some sid
  | [] -> ( match !remote_parent with Some c -> Some c.span_id | None -> None)

let current_ctx () =
  if !suppressed then None
  else
    match (!span_stack, !sink) with
    | sid :: _, Some _ -> Some { trace_id = cur_trace_id (); span_id = sid; sampled = true }
    | _ -> !remote_parent

(* ---- event emission ---- *)

let write_event s json =
  (match s.fmt with
  | Jsonl -> if s.prefix <> "" then output_string s.oc s.prefix
  | Chrome ->
      if s.first then s.first <- false
      else output_string s.oc ",\n");
  output_string s.oc (Jtext.to_string json);
  (match s.fmt with Jsonl -> output_char s.oc '\n' | Chrome -> ());
  (* One event may be the process's last act before a crash; flush per
     event so the trace is useful exactly when it matters most. *)
  flush s.oc;
  Flight.note json

let us t = t *. 1e6

let id_fields ~tid ~sid ~psid =
  (if tid = "" then [] else [ ("tid", Jtext.Str tid) ])
  @ (match sid with None -> [] | Some s -> [ ("sid", Jtext.Str s) ])
  @ match psid with None -> [] | Some p -> [ ("psid", Jtext.Str p) ]

(* [ts]/[dur] are relative to the sink epoch. *)
let span_json s ~name ~ts ~dur ~depth:d ~pid ~ids args =
  match s.fmt with
  | Chrome ->
      Jtext.Obj
        [
          ("name", Jtext.Str name);
          ("ph", Jtext.Str "X");
          ("ts", Jtext.Float (us ts));
          ("dur", Jtext.Float (us dur));
          ("pid", Jtext.Int pid);
          ("tid", Jtext.Int pid);
          ("args", Jtext.Obj (("depth", Jtext.Int d) :: (ids @ args)));
        ]
  | Jsonl ->
      Jtext.Obj
        ([
           ("ev", Jtext.Str "span");
           ("name", Jtext.Str name);
           ("ts", Jtext.Float ts);
           ("dur", Jtext.Float dur);
           ("depth", Jtext.Int d);
           ("pid", Jtext.Int pid);
         ]
        @ ids @ args)

let instant_json s ~name ~ts ~depth:d ~pid ~ids args =
  match s.fmt with
  | Chrome ->
      Jtext.Obj
        [
          ("name", Jtext.Str name);
          ("ph", Jtext.Str "i");
          ("ts", Jtext.Float (us ts));
          ("s", Jtext.Str "p");
          ("pid", Jtext.Int pid);
          ("tid", Jtext.Int pid);
          ("args", Jtext.Obj (("depth", Jtext.Int d) :: (ids @ args)));
        ]
  | Jsonl ->
      Jtext.Obj
        ([
           ("ev", Jtext.Str "instant");
           ("name", Jtext.Str name);
           ("ts", Jtext.Float ts);
           ("depth", Jtext.Int d);
           ("pid", Jtext.Int pid);
         ]
        @ ids @ args)

(* Open events exist only on pipe sinks: they let the supervisor close a
   killed worker's unfinished spans as [interrupted]. *)
let open_json ~name ~ts ~depth:d ~pid ~ids args =
  Jtext.Obj
    ([
       ("ev", Jtext.Str "open");
       ("name", Jtext.Str name);
       ("ts", Jtext.Float ts);
       ("depth", Jtext.Int d);
       ("pid", Jtext.Int pid);
     ]
    @ ids @ args)

(* A JSONL stream opens with a meta record carrying the absolute epoch,
   so files from different processes (each with its own relative clock)
   can be concatenated and re-anchored by a reader. The epoch is integer
   microseconds: a wall-clock epoch rendered through Jtext's %.9g float
   format would be truncated to tens of seconds, which is exactly the
   precision cross-process stitching cannot afford to lose. *)
let meta_json s =
  Jtext.Obj
    ([
       ("ev", Jtext.Str "meta");
       ("pid", Jtext.Int s.pid);
       ("t0", Jtext.Int (int_of_float (Float.round (s.t0 *. 1e6))));
     ]
    @ if !own_trace_id = "" then [] else [ ("tid", Jtext.Str !own_trace_id) ])

let emitting () = Option.is_some !sink && not !suppressed

let instant ?(args = []) name =
  if emitting () then
    match !sink with
    | None -> ()
    | Some s ->
        let ids = id_fields ~tid:(cur_trace_id ()) ~sid:None ~psid:(cur_parent ()) in
        write_event s
          (instant_json s ~name ~ts:(Clock.now () -. s.t0) ~depth:!depth ~pid:s.pid ~ids args)

(* Spans are emitted on close (children before parents) as Chrome "X"
   complete events / JSONL records carrying [ts], [dur], [depth] and the
   span identity ([tid]/[sid]/[psid]). *)
let with_span ?(args = []) name f =
  if not (emitting ()) then f ()
  else
    match !sink with
    | None -> f ()
    | Some s0 ->
        let start = Clock.now () in
        let d = !depth in
        let sid = fresh_sid () in
        let psid = cur_parent () in
        let ids = id_fields ~tid:(cur_trace_id ()) ~sid:(Some sid) ~psid in
        incr depth;
        span_stack := sid :: !span_stack;
        if s0.prefix <> "" then
          write_event s0 (open_json ~name ~ts:(start -. s0.t0) ~depth:d ~pid:s0.pid ~ids args);
        Fun.protect
          ~finally:(fun () ->
            decr depth;
            (match !span_stack with _ :: rest -> span_stack := rest | [] -> ());
            match !sink with
            | None -> () (* sink dropped mid-span (forked child) *)
            | Some s ->
                write_event s
                  (span_json s ~name ~ts:(start -. s.t0) ~dur:(Clock.now () -. start) ~depth:d
                     ~pid:s.pid ~ids args))
          f

(* ---- manual (non-scoped) spans ---- *)

(* A supervisor's per-job span opens at admission and closes at settle,
   across many event-loop turns — no lexical scope to wrap. The handle
   carries the identity so the job envelope can name this span as the
   worker's parent before the span has closed. *)
type handle = {
  h_name : string;
  h_sid : string;
  h_psid : string option;
  h_tid : string;
  h_depth : int;
  h_start : float;
  h_args : (string * Jtext.t) list;
  mutable h_open : bool;
}

let open_span ?(args = []) ?parent name =
  match !sink with
  | None -> None
  | Some _ when !suppressed -> None
  | Some _ -> begin
      match parent with
      | Some p when not p.sampled -> None
      | _ ->
          let psid, tid =
            match parent with
            | Some p -> (Some p.span_id, p.trace_id)
            | None -> (cur_parent (), cur_trace_id ())
          in
          Some
            {
              h_name = name;
              h_sid = fresh_sid ();
              h_psid = psid;
              h_tid = tid;
              h_depth = !depth;
              h_start = Clock.now ();
              h_args = args;
              h_open = true;
            }
    end

let close_span ?(args = []) h =
  if h.h_open then begin
    h.h_open <- false;
    match !sink with
    | None -> ()
    | Some s ->
        let ids = id_fields ~tid:h.h_tid ~sid:(Some h.h_sid) ~psid:h.h_psid in
        write_event s
          (span_json s ~name:h.h_name ~ts:(h.h_start -. s.t0)
             ~dur:(Clock.now () -. h.h_start) ~depth:h.h_depth ~pid:s.pid ~ids
             (h.h_args @ args))
  end

let handle_ctx h = { trace_id = h.h_tid; span_id = h.h_sid; sampled = true }

(* ---- propagated contexts ---- *)

let with_parent ctx f =
  match ctx with
  | None -> f ()
  | Some c ->
      let saved_rp = !remote_parent and saved_sup = !suppressed in
      remote_parent := Some c;
      if not c.sampled then suppressed := true;
      Fun.protect
        ~finally:(fun () ->
          remote_parent := saved_rp;
          suppressed := saved_sup)
        f

(* ---- foreign re-emission (supervisor side of the pipe sink) ---- *)

let emit_raw_span ?(args = []) ?(tid = "") ?sid ?psid ~name ~ts ~dur ~depth:d ~pid () =
  match !sink with
  | None -> ()
  | Some s ->
      write_event s (span_json s ~name ~ts ~dur ~depth:d ~pid ~ids:(id_fields ~tid ~sid ~psid) args)

let emit_raw_instant ?(args = []) ?(tid = "") ?sid ?psid ~name ~ts ~depth:d ~pid () =
  match !sink with
  | None -> ()
  | Some s ->
      write_event s (instant_json s ~name ~ts ~depth:d ~pid ~ids:(id_fields ~tid ~sid ~psid) args)

let epoch () = match !sink with None -> None | Some s -> Some s.t0

(* ---- solver stage accounting ---- *)

(* The per-job stage table filled by {!stage} under {!with_stages}. Only
   the outermost stage accumulates (a nested stage's time is already part
   of its enclosing stage), so the stage totals sum to at most the
   enclosed wall time — the property behind the "stage spans account for
   >= 90% of wall_s" acceptance check. *)
let stages : (string, float ref) Hashtbl.t option ref = ref None
let stage_depth = ref 0

let stage ?(args = []) name f =
  let collecting = Option.is_some !stages && !stage_depth = 0 in
  if not (collecting || enabled ()) then f ()
  else begin
    let start = Clock.now () in
    incr stage_depth;
    Fun.protect
      ~finally:(fun () ->
        decr stage_depth;
        if collecting then
          match !stages with
          | None -> ()
          | Some tbl ->
              let cell =
                match Hashtbl.find_opt tbl name with
                | Some r -> r
                | None ->
                    let r = ref 0.0 in
                    Hashtbl.replace tbl name r;
                    r
              in
              cell := !cell +. (Clock.now () -. start))
      (fun () -> with_span ~args:(("stage", Jtext.Str name) :: args) ("stage:" ^ name) f)
  end

let with_stages f =
  let tbl = Hashtbl.create 8 in
  let saved = !stages and saved_depth = !stage_depth in
  stages := Some tbl;
  stage_depth := 0;
  Fun.protect
    ~finally:(fun () ->
      stages := saved;
      stage_depth := saved_depth)
    (fun () ->
      let r = f () in
      let totals =
        Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      (r, totals))

(* ---- lifecycle ---- *)

let finish () =
  match !sink with
  | None -> ()
  | Some s ->
      sink := None;
      (match s.fmt with Chrome -> output_string s.oc "\n]\n" | Jsonl -> ());
      flush s.oc;
      if s.owned then close_out_noerr s.oc

let abandon () = sink := None

let pipe_prefix = "#t "

(* In a forked worker: keep the inherited epoch (the clocks agree — same
   host, same gettimeofday) but swap the supervisor's file sink for a
   line stream over the reply pipe, each line marked with {!pipe_prefix}
   so the pool can tell trace traffic from the reply. *)
let adopt_pipe oc =
  match !sink with
  | None -> ()
  | Some s ->
      depth := 0;
      span_stack := [];
      remote_parent := None;
      suppressed := false;
      let ns =
        {
          oc;
          fmt = Jsonl;
          pid = Unix.getpid ();
          t0 = s.t0;
          first = true;
          prefix = pipe_prefix;
          owned = false;
        }
      in
      sink := Some ns;
      write_event ns (meta_json ns)

let gen_trace_id pid t0 =
  let a = pid land 0xffffff in
  let b = int_of_float (Float.rem (t0 *. 1e3) 16777216.0) land 0xffffff in
  Printf.sprintf "%06x%06x" a b

let configure ~format path =
  finish ();
  let oc = open_out path in
  (match format with Chrome -> output_string oc "[\n" | Jsonl -> ());
  let pid = Unix.getpid () in
  let t0 = Clock.now () in
  own_trace_id := gen_trace_id pid t0;
  span_counter := 0;
  let s = { oc; fmt = format; pid; t0; first = true; prefix = ""; owned = true } in
  sink := Some s;
  match format with Jsonl -> write_event s (meta_json s) | Chrome -> ()

let format_of_path path = if Filename.check_suffix path ".jsonl" then Jsonl else Chrome
let configure_file path = configure ~format:(format_of_path path) path

let configure_from_env () =
  match Sys.getenv_opt "RPQ_TRACE" with
  | None -> ()
  | Some v -> begin
      match String.trim v with
      | "" | "off" | "none" | "0" -> ()
      | v when String.starts_with ~prefix:"chrome:" v ->
          configure ~format:Chrome (String.sub v 7 (String.length v - 7))
      | v when String.starts_with ~prefix:"jsonl:" v ->
          configure ~format:Jsonl (String.sub v 6 (String.length v - 6))
      | path -> configure_file path
    end
