(* Emit-only JSON. The full value type with a parser lives in
   [Runner.Proto.Json]; this layer sits below the runner in the library
   graph, so it carries its own emitter — the same grammar and the same
   escaping rules, kept small enough that the duplication is cheaper than
   inverting the dependency. Tests parse what this emits back with
   [Proto.Json.parse] to keep the two in sync. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let buf_add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
      else Buffer.add_string b "null"
  | Str s -> buf_add_escaped b s
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        vs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          buf_add_escaped b k;
          Buffer.add_char b ':';
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b
