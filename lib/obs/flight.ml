(* Crash flight recorder: a bounded in-memory ring of recent telemetry
   events (structured log records, span closures, counter deltas) dumped
   to disk when the process is about to die in an interesting way. The
   dump follows the journal's atomic-publish discipline — write a
   sibling temp file, then rename — so a reader never observes a torn
   dump, even when the writer is mid-crash. *)

type t = {
  path : string;
  cap : int;
  ring : Jtext.t option array;
  mutable seq : int;  (* total events ever noted; ring slot = seq mod cap *)
}

let state : t option ref = ref None
let enabled () = Option.is_some !state
let default_cap = 512

let configure ?(cap = default_cap) path =
  if cap < 1 then invalid_arg "Flight.configure: ring capacity must be at least 1";
  state := Some { path; cap; ring = Array.make cap None; seq = 0 }

let configure_from_env () =
  match Sys.getenv_opt "RPQ_FLIGHT" with
  | None -> ()
  | Some v -> ( match String.trim v with "" | "off" | "none" | "0" -> () | path -> configure path)

let disable () = state := None

let note ev =
  match !state with
  | None -> ()
  | Some t ->
      t.ring.(t.seq mod t.cap) <- Some ev;
      t.seq <- t.seq + 1

(* The final metrics snapshot is supplied by [Metrics] at link time
   (registering here rather than calling there keeps the dependency
   arrow pointing one way: metrics -> flight). *)
let metrics_provider : (unit -> Jtext.t) ref = ref (fun () -> Jtext.Null)
let set_metrics_provider f = metrics_provider := f

let events t =
  let n = min t.seq t.cap in
  let first = t.seq - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.cap) with Some ev -> ev | None -> Jtext.Null)

let dump_json t ~reason =
  Jtext.Obj
    [
      ("v", Jtext.Int 1);
      ("reason", Jtext.Str reason);
      ("pid", Jtext.Int (Unix.getpid ()));
      ("ts", Jtext.Float (Clock.now ()));
      ("seq", Jtext.Int t.seq);
      ("dropped", Jtext.Int (max 0 (t.seq - t.cap)));
      ("events", Jtext.List (events t));
      ("metrics", !metrics_provider ());
    ]

(* Called on the way down (crash site, fatal signal, [Faults.Crash]):
   must never raise, and must publish atomically or not at all. *)
let dump ~reason () =
  match !state with
  | None -> ()
  | Some t -> (
      let tmp = t.path ^ ".tmp" in
      try
        let oc = open_out tmp in
        output_string oc (Jtext.to_string (dump_json t ~reason));
        output_char oc '\n';
        flush oc;
        close_out oc;
        Sys.rename tmp t.path
      with Sys_error _ | Out_of_memory -> ())
