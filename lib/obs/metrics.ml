(* Process-wide registry of named counters, gauges and log-scale
   histograms. Single-threaded by construction (the whole repository is);
   the hot operations — [incr], [add], [observe] — are a field update and
   at most a [log] call, cheap enough for the innermost solver loops. *)

type counter = { cname : string; mutable count : int }
type gauge = { mutable value : float }

(* Log-scale buckets: base 2^(1/4), i.e. four buckets per doubling, which
   bounds the relative error of a reported percentile by ~19% — plenty for
   latency work. The index range covers 1e-9s .. ~1e9s. *)
let base = Float.exp (Float.log 2.0 /. 4.0)
let log_base = Float.log base
let bucket_offset = 120
let nbuckets = (2 * bucket_offset) + 1

type histogram = {
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name make cast kind =
  match Hashtbl.find_opt registry name with
  | Some m -> begin
      match cast m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered as a different kind (not a %s)"
               name kind)
    end
  | None ->
      let v = make () in
      v

let counter name =
  register name
    (fun () ->
      let c = { cname = name; count = 0 } in
      Hashtbl.replace registry name (C c);
      c)
    (function C c -> Some c | G _ | H _ -> None)
    "counter"

let gauge name =
  register name
    (fun () ->
      let g = { value = 0.0 } in
      Hashtbl.replace registry name (G g);
      g)
    (function G g -> Some g | C _ | H _ -> None)
    "gauge"

let histogram name =
  register name
    (fun () ->
      let h =
        {
          buckets = Array.make nbuckets 0;
          n = 0;
          sum = 0.0;
          lo = Float.infinity;
          hi = Float.neg_infinity;
        }
      in
      Hashtbl.replace registry name (H h);
      h)
    (function H h -> Some h | C _ | G _ -> None)
    "histogram"

(* Counter deltas feed the flight-recorder ring when it is armed; the
   [Flight.enabled] guard is one ref read, cheap enough to leave in the
   hot path. Names are not recorded per-object (the registry maps the
   other way), so the delta notes the new absolute count only. *)
let note_count c =
  if Flight.enabled () then
    Flight.note
      (Jtext.Obj
         [ ("k", Jtext.Str "ctr"); ("name", Jtext.Str c.cname); ("count", Jtext.Int c.count) ])

let incr c =
  c.count <- c.count + 1;
  note_count c

let add c n =
  c.count <- c.count + n;
  note_count c

let count c = c.count
let set g v = g.value <- v
let get g = g.value

let bucket_of v =
  if not (Float.is_finite v) || v <= 0.0 then 0
  else
    let i = bucket_offset + int_of_float (Float.floor (Float.log v /. log_base)) in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

let observe h v =
  let v = if Float.is_finite v then v else 0.0 in
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.lo then h.lo <- v;
  if v > h.hi then h.hi <- v

let observations h = h.n

(* Geometric midpoint of the bucket holding the q-th observation, clamped
   to the observed range so a single-sample histogram reports the sample
   itself rather than a bucket bound. *)
let percentile h q =
  if h.n = 0 then Float.nan
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.n))) in
    let idx = ref 0 in
    let seen = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         seen := !seen + h.buckets.(i);
         if !seen >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let mid = base ** (float_of_int (!idx - bucket_offset) +. 0.5) in
    Float.min h.hi (Float.max h.lo mid)
  end

type stat =
  | Counter of int
  | Gauge of float
  | Histogram of { n : int; sum : float; lo : float; hi : float; p50 : float; p99 : float }

let stat_of = function
  | C c -> Counter c.count
  | G g -> Gauge g.value
  | H h ->
      Histogram
        {
          n = h.n;
          sum = h.sum;
          lo = (if h.n = 0 then 0.0 else h.lo);
          hi = (if h.n = 0 then 0.0 else h.hi);
          p50 = percentile h 0.5;
          p99 = percentile h 0.99;
        }

let snapshot () =
  Hashtbl.fold (fun name m acc -> (name, stat_of m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Zero values but keep the metric objects: static references held by
   instrumented modules stay valid across a reset. *)
let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> c.count <- 0
      | G g -> g.value <- 0.0
      | H h ->
          Array.fill h.buckets 0 nbuckets 0;
          h.n <- 0;
          h.sum <- 0.0;
          h.lo <- Float.infinity;
          h.hi <- Float.neg_infinity)
    registry

let stat_to_jtext = function
  | Counter n -> Jtext.Int n
  | Gauge v -> Jtext.Float v
  | Histogram { n; sum; lo; hi; p50; p99 } ->
      Jtext.Obj
        [
          ("count", Jtext.Int n);
          ("sum", Jtext.Float sum);
          ("min", Jtext.Float lo);
          ("max", Jtext.Float hi);
          ("p50", Jtext.Float p50);
          ("p99", Jtext.Float p99);
        ]

(* Both external surfaces — the serve [{"stats":true}] control line and
   the Prometheus text endpoint — are pure renderings of the same
   [snapshot] value, so they cannot drift: a metric present in one is
   present in the other. Names are sorted and every float goes through
   one locale-independent [%.9g] formatter (OCaml's [Printf] never
   consults the locale), so identical counter states render to
   byte-identical output across runs and machines. *)
let jtext_of_snapshot snap =
  Jtext.Obj (List.map (fun (name, s) -> (name, stat_to_jtext s)) snap)

let to_jtext () = jtext_of_snapshot (snapshot ())
let snapshot_string () = Jtext.to_string (to_jtext ())

(* ---- Prometheus text exposition (version 0.0.4) ---- *)

(* Metric names: dots become underscores under an [rpq_] namespace
   prefix; histograms render as summaries (quantiles + _sum + _count)
   with min/max as companion gauges. *)
let prom_name name =
  "rpq_"
  ^ String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name

let prom_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" v

let prometheus_of_snapshot ?(only_counters = false) snap =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, st) ->
      let pn = prom_name name in
      match st with
      | Counter n ->
          line "# TYPE %s counter" pn;
          line "%s %d" pn n
      | Gauge v ->
          if not only_counters then begin
            line "# TYPE %s gauge" pn;
            line "%s %s" pn (prom_float v)
          end
      | Histogram { n; sum; lo; hi; p50; p99 } ->
          if not only_counters then begin
            line "# TYPE %s summary" pn;
            line "%s{quantile=\"0.5\"} %s" pn (prom_float p50);
            line "%s{quantile=\"0.99\"} %s" pn (prom_float p99);
            line "%s_sum %s" pn (prom_float sum);
            line "%s_count %d" pn n;
            (* _max before _min keeps the whole exposition in strict
               lexicographic family order. *)
            line "# TYPE %s_max gauge" pn;
            line "%s_max %s" pn (prom_float hi);
            line "# TYPE %s_min gauge" pn;
            line "%s_min %s" pn (prom_float lo)
          end)
    snap;
  Buffer.contents b

let prometheus_string ?only_counters () = prometheus_of_snapshot ?only_counters (snapshot ())

(* The flight-recorder dump's [metrics] field is the same rendering as
   every other surface. Registered here to keep the dependency arrow
   metrics -> flight. *)
let () = Flight.set_metrics_provider to_jtext
