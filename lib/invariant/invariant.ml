module Prng = Prng

type violation = { subsystem : string; invariant : string; detail : string }

exception Internal_error of string

let violation ~subsystem ~invariant fmt =
  Printf.ksprintf (fun detail -> { subsystem; invariant; detail }) fmt

let internal_error fmt = Printf.ksprintf (fun s -> raise (Internal_error s)) fmt

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s: %s" v.subsystem v.invariant v.detail

let violation_to_string v = Format.asprintf "%a" pp_violation v

let pp_violations ppf = function
  | [] -> Format.pp_print_string ppf "no violations"
  | vs ->
      Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_violation ppf vs

let violations_to_string vs =
  String.concat "; " (List.map violation_to_string vs)

let violations_to_markdown vs =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# Invariant violations (%d)" (List.length vs);
  line "";
  List.iter (fun v -> line "- **%s** / %s: %s" v.subsystem v.invariant v.detail) vs;
  Buffer.contents b

let result = function [] -> Ok () | vs -> Error vs

module Collector = struct
  type t = { subsystem : string; mutable rev : violation list }

  let create subsystem = { subsystem; rev = [] }

  let add c ~invariant fmt =
    Printf.ksprintf
      (fun detail ->
        c.rev <- { subsystem = c.subsystem; invariant; detail } :: c.rev)
      fmt

  let check c cond ~invariant fmt =
    Printf.ksprintf
      (fun detail ->
        if not cond then
          c.rev <- { subsystem = c.subsystem; invariant; detail } :: c.rev)
      fmt

  let violations c = List.rev c.rev
  let result c = result (violations c)
end
