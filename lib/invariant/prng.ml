(* Deterministic 48-bit LCG, the same generator family as Faults and
   Sfm.validate_submodular: every random draw in the tree must be a pure
   function of an explicit seed, so failures replay exactly. Draws come
   from the high bits — the low bits of an LCG have tiny periods. *)

type t = { mutable state : int }

let mix seed = (seed land max_int) lxor 0x2545F4914F6CDD1D

let make seed = { state = mix seed }

let step t =
  t.state <- ((t.state * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  t.state lsr 16

let int t bound =
  if bound <= 0 then invalid_arg (Printf.sprintf "Prng.int: bound %d must be positive" bound)
  else step t mod bound

let float t bound = float_of_int (step t) /. 4294967296.0 *. bound
