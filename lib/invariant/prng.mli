(** Seeded, deterministic pseudo-random stream (48-bit LCG, drawn from the
    high bits). This is the {e only} sanctioned randomness in library code:
    [rpq_lint] bans the stdlib [Random] module outside the seeded fault /
    chaos machinery, because an ambient [Random] draw makes a failing run
    unreplayable. Same-seed streams are identical across runs, platforms
    and word sizes (the state is masked to 48 bits). *)

type t
(** Mutable stream state; create one per generator with {!make}. *)

val make : int -> t
(** [make seed] starts a stream. Equal seeds yield equal streams. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound - 1].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws from [[0, bound)]. *)
