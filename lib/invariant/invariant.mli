(** Structural-invariant violations, shared by every library's [validate].

    Each data structure of the solver stack ({!Automata.Nfa},
    {!Automata.Dfa}, {!Flow.Network}, {!Graphdb.Db}, {!Hypergraph},
    {!Lp.Simplex}, {!Submodular.Sfm}) exposes a
    [validate : t -> (unit, violation list) result] built on this module.
    The paper's reductions (Thm 3.3, Props 7.5-7.8) are exact: a malformed
    intermediate structure silently yields a wrong resilience value rather
    than a crash, so the solvers machine-check these invariants when the
    {!Resilience.Check} level asks for it. *)

module Prng = Prng
(** Seeded deterministic randomness — the only generator library code may
    use (the stdlib [Random] module is banned by [rpq_lint] outside the
    seeded fault/chaos machinery). *)

type violation = {
  subsystem : string;  (** e.g. ["Nfa"], ["Flow.Network"] *)
  invariant : string;  (** short name of the violated invariant *)
  detail : string;  (** human-readable specifics (offending indices, values) *)
}

exception Internal_error of string
(** The designated exception for "impossible" internal states, replacing
    bare [failwith] / [assert false] in library code (enforced by
    [rpq_lint]). *)

val violation :
  subsystem:string -> invariant:string -> ('a, unit, string, violation) format4 -> 'a

val internal_error : ('a, unit, string, 'b) format4 -> 'a
(** Formats a message and raises {!Internal_error}. *)

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string
val pp_violations : Format.formatter -> violation list -> unit
val violations_to_string : violation list -> string

val violations_to_markdown : violation list -> string
(** Markdown bullet list, suitable for reports and error payloads. *)

val result : violation list -> (unit, violation list) result
(** [Ok ()] on the empty list, [Error vs] otherwise. *)

(** Accumulator used by the [validate] implementations. *)
module Collector : sig
  type t

  val create : string -> t
  (** [create subsystem] starts an empty collector. *)

  val add : t -> invariant:string -> ('a, unit, string, unit) format4 -> 'a
  (** Records a violation unconditionally. *)

  val check : t -> bool -> invariant:string -> ('a, unit, string, unit) format4 -> 'a
  (** [check c cond ~invariant fmt ...] records a violation iff [cond] is
      false. The message is only materialized on failure paths as far as
      [ksprintf] allows; keep the formats cheap. *)

  val violations : t -> violation list
  (** In recording order. *)

  val result : t -> (unit, violation list) result
end
