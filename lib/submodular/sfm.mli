(** Submodular function minimization (SFM).

    Proposition 7.7 of the paper shows that resilience for languages of the
    form [a₁⋯aₙ | aₙ₋₁aₙ₊₁] reduces to minimizing a submodular set function
    — the only tractable case with no known MinCut reduction. The paper
    invokes generic strongly-polynomial SFM (McCormick's survey); we
    implement the standard practical algorithm, the Fujishige–Wolfe
    minimum-norm-point method, exact for integer-valued functions.

    A function is given by its ground-set size [n] and an oracle evaluating
    it on subsets of [{0, …, n-1}] encoded as [bool array]s of length [n]. *)

type oracle = bool array -> int

val minimize : ?fuel:(unit -> unit) -> n:int -> oracle -> int * bool array
(** Minimum value and a minimizing set, by the Fujishige–Wolfe
    minimum-norm-point algorithm. The oracle must be submodular (not
    checked; garbage in, garbage out — though the returned value is always
    [f] of the returned set). [fuel] is called once per oracle evaluation;
    it may raise (e.g. [Resilience.Budget.Exhausted]) to abort an
    over-budget minimization — the exception propagates unchanged. *)

val minimize_bruteforce : n:int -> oracle -> int * bool array
(** Reference implementation over all 2ⁿ subsets (n ≤ 25). *)

val is_submodular : n:int -> oracle -> bool
(** Exhaustively checks f(S∪x) − f(S) ≥ f(T∪x) − f(T) for all S ⊆ T ∌ x
    (equivalently checks the pairwise characterization on all subsets);
    exponential, for tests (n ≤ 12). *)

val validate_submodular :
  ?samples:int -> ?seed:int -> n:int -> oracle -> (unit, Invariant.violation list) result
(** Submodularity check used by paranoid {!Resilience.Check} mode: verifies
    the pairwise characterization [f(S∪x) − f(S) ≥ f(S∪{x,y}) − f(S∪y)].
    When [samples] is omitted and [n ≤ 10] the check is exhaustive;
    otherwise it evaluates [samples] (default 200) pseudo-random triples
    [(S, x, y)] with a deterministic generator seeded by [seed] (default
    0x5eed), so failures are reproducible. Pass an explicit [samples] when
    each oracle call is expensive (e.g. a MinCut): a sampled pass is
    evidence, not proof. *)
