type oracle = bool array -> int

let minimize_bruteforce ~n oracle =
  if n > 25 then invalid_arg "Sfm.minimize_bruteforce: ground set too large";
  let best = ref (oracle (Array.make n false)) in
  let best_set = ref (Array.make n false) in
  for mask = 1 to (1 lsl n) - 1 do
    let s = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
    let v = oracle s in
    if v < !best then begin
      best := v;
      best_set := s
    end
  done;
  (!best, !best_set)

let is_submodular ~n oracle =
  if n > 12 then invalid_arg "Sfm.is_submodular: ground set too large";
  (* f submodular iff f(S∪{x}) - f(S) ≥ f(S∪{x,y}) - f(S∪{y}) for all
     S and x, y ∉ S with x ≠ y. *)
  let ok = ref true in
  for mask = 0 to (1 lsl n) - 1 do
    let s = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
    let fs = oracle s in
    for x = 0 to n - 1 do
      if not s.(x) then
        for y = 0 to n - 1 do
          if (not s.(y)) && x <> y then begin
            let sx = Array.copy s and sy = Array.copy s and sxy = Array.copy s in
            sx.(x) <- true;
            sy.(y) <- true;
            sxy.(x) <- true;
            sxy.(y) <- true;
            if oracle sx - fs < oracle sxy - oracle sy then ok := false
          end
        done
    done
  done;
  !ok

let check_triple c oracle s x y =
  let module C = Invariant.Collector in
  let sx = Array.copy s and sy = Array.copy s and sxy = Array.copy s in
  sx.(x) <- true;
  sy.(y) <- true;
  sxy.(x) <- true;
  sxy.(y) <- true;
  let lhs = oracle sx - oracle s and rhs = oracle sxy - oracle sy in
  C.check c (lhs >= rhs) ~invariant:"submodularity"
    "f(S∪{%d}) − f(S) = %d < f(S∪{%d,%d}) − f(S∪{%d}) = %d" x lhs x y y rhs

let validate_submodular ?samples ?(seed = 0x5eed) ~n oracle =
  let module C = Invariant.Collector in
  let c = C.create "Submodular.Sfm" in
  if n >= 2 then begin
    if samples = None && n <= 10 then
      (* Exhaustive pairwise characterization, as in [is_submodular]. *)
      for mask = 0 to (1 lsl n) - 1 do
        let s = Array.init n (fun i -> mask land (1 lsl i) <> 0) in
        for x = 0 to n - 1 do
          if not s.(x) then
            for y = x + 1 to n - 1 do
              if not s.(y) then check_triple c oracle s x y
            done
        done
      done
    else begin
      let samples = Option.value ~default:200 samples in
      (* Deterministic 48-bit LCG so that any reported violation is
         reproducible. Draw from the high bits: the low bits of an LCG have
         tiny periods (the lowest bit alternates), which would correlate
         consecutive draws and can even make the rejection loop below spin
         forever. *)
      let state = ref ((seed land max_int) lxor 0x2545F4914F6CDD1D) in
      let next bound =
        state := ((!state * 25214903917) + 11) land 0xFFFFFFFFFFFF;
        (!state lsr 16) mod bound
      in
      let tried = ref 0 in
      while !tried < samples do
        let s = Array.init n (fun _ -> next 2 = 1) in
        let x = next n and y = next n in
        if x <> y && (not s.(x)) && not s.(y) then begin
          incr tried;
          check_triple c oracle s x y
        end
      done
    end
  end;
  C.result c

(* ---- Fujishige–Wolfe minimum-norm-point over the base polytope ---- *)

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

(* Edmonds' greedy algorithm: the base-polytope vertex minimizing <w, q>. *)
let greedy_vertex ~n oracle w =
  let order = List.sort (fun i j -> compare w.(i) w.(j)) (List.init n Fun.id) in
  let s = Array.make n false in
  let q = Array.make n 0.0 in
  let prev = ref (oracle s) in
  List.iter
    (fun i ->
      s.(i) <- true;
      let cur = oracle s in
      q.(i) <- float_of_int (cur - !prev);
      prev := cur)
    order;
  q

(* Affine minimizer of the span of points [ps]: coefficients α with Σα = 1
   minimizing ‖Σ αᵢ pᵢ‖², via the KKT linear system
   [2 PᵀP  1; 1ᵀ 0] [α; μ] = [0; 1], solved by Gaussian elimination. *)
let affine_minimizer ps =
  let k = Array.length ps in
  let m = k + 1 in
  let a = Array.make_matrix m m 0.0 in
  let b = Array.make m 0.0 in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      a.(i).(j) <- 2.0 *. dot ps.(i) ps.(j)
    done;
    a.(i).(k) <- 1.0;
    a.(k).(i) <- 1.0
  done;
  b.(k) <- 1.0;
  (* Gaussian elimination with partial pivoting. *)
  for col = 0 to m - 1 do
    let piv = ref col in
    for r = col + 1 to m - 1 do
      if abs_float a.(r).(col) > abs_float a.(!piv).(col) then piv := r
    done;
    if !piv <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- tmp;
      let t = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- t
    end;
    let p = a.(col).(col) in
    if abs_float p > 1e-12 then
      for r = 0 to m - 1 do
        if r <> col then begin
          let factor = a.(r).(col) /. p in
          for c = col to m - 1 do
            a.(r).(c) <- a.(r).(c) -. (factor *. a.(col).(c))
          done;
          b.(r) <- b.(r) -. (factor *. b.(col))
        end
      done
  done;
  Array.init k (fun i -> if abs_float a.(i).(i) > 1e-12 then b.(i) /. a.(i).(i) else 0.0)

let combine ps coeffs =
  let n = Array.length ps.(0) in
  let x = Array.make n 0.0 in
  Array.iteri (fun i p -> Array.iteri (fun j v -> x.(j) <- x.(j) +. (coeffs.(i) *. v)) p) ps;
  x

let oracle_calls = Obs.Metrics.counter "sfm.oracle_calls"

let minimize ?(fuel = fun () -> ()) ~n oracle =
  let oracle s =
    fuel ();
    Obs.Metrics.incr oracle_calls;
    oracle s
  in
  if n = 0 then (oracle [||], [||])
  else begin
    (* Normalize so that f(∅) = 0; restored at the end. *)
    let f_empty = oracle (Array.make n false) in
    let eps = 1e-9 in
    let q0 = greedy_vertex ~n oracle (Array.make n 0.0) in
    let points = ref [| q0 |] in
    let lambdas = ref [| 1.0 |] in
    let x = ref (Array.copy q0) in
    let max_major = 100 + (20 * n * n) in
    (try
       for _major = 1 to max_major do
         (* Linear minimization oracle at the current point. *)
         let q = greedy_vertex ~n oracle !x in
         if dot !x !x <= dot !x q +. eps then raise Exit;
         points := Array.append !points [| q |];
         lambdas := Array.append !lambdas [| 0.0 |];
         (* Minor loop: project onto the affine hull, shrinking the corral
            until the affine minimizer is a convex combination. *)
         let continue_minor = ref true in
         while !continue_minor do
           let alpha = affine_minimizer !points in
           if Array.for_all (fun a -> a > 1e-11) alpha then begin
             lambdas := alpha;
             x := combine !points alpha;
             continue_minor := false
           end
           else begin
             (* Largest step toward the affine minimizer keeping convexity. *)
             let theta = ref 1.0 in
             Array.iteri
               (fun i a ->
                 let l = !lambdas.(i) in
                 (* Only coordinates leaving the simplex (α ≤ 0) limit θ. *)
                 if a <= 1e-11 && l -. a > 1e-12 then begin
                   let t = l /. (l -. a) in
                   if t < !theta then theta := t
                 end)
               alpha;
             let k = Array.length !points in
             let newl =
               Array.init k (fun i ->
                   ((1.0 -. !theta) *. !lambdas.(i)) +. (!theta *. alpha.(i)))
             in
             (* Drop points whose coefficient hit zero. *)
             let keep = ref [] in
             Array.iteri (fun i l -> if l > 1e-11 then keep := i :: !keep) newl;
             let keep = List.rev !keep in
             let keep = if keep = [] then [ 0 ] else keep in
             points := Array.of_list (List.map (fun i -> !points.(i)) keep);
             lambdas := Array.of_list (List.map (fun i -> newl.(i)) keep);
             (* Renormalize the coefficients. *)
             let total = Array.fold_left ( +. ) 0.0 !lambdas in
             if total > 1e-12 then lambdas := Array.map (fun l -> l /. total) !lambdas;
             x := combine !points !lambdas
           end
         done
       done
     with Exit -> ());
    (* Recover a minimizer: sort coordinates of x* ascending and take the
       best prefix (robust to floating-point error since we re-evaluate f). *)
    let order = List.sort (fun i j -> compare !x.(i) !x.(j)) (List.init n Fun.id) in
    let best = ref f_empty and best_set = ref (Array.make n false) in
    let s = Array.make n false in
    List.iter
      (fun i ->
        s.(i) <- true;
        let v = oracle s in
        if v < !best then begin
          best := v;
          best_set := Array.copy s
        end)
      order;
    (!best, !best_set)
  end
