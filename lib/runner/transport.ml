(* Multi-client transport for the serve loop.

   This module owns every socket endpoint in the tree (the rpq_lint
   'socket' capability is granted to the slug runner/transport alone)
   and the per-connection state machines: line framing over partial
   reads, bounded buffered output with backpressure, net-fault
   injection, and the slow/dead-client policy. It never interprets
   payloads and never touches the worker pool — the serve loop in
   {!Runner} composes the two through {!Pool.poll}'s [extra] fds. *)

let m_accepts = Obs.Metrics.counter "transport.accepts"
let m_accept_fails = Obs.Metrics.counter "transport.accept_fails"
let m_client_drops = Obs.Metrics.counter "transport.client_drops"
let m_partial_writes = Obs.Metrics.counter "transport.partial_writes"
let m_write_timeouts = Obs.Metrics.counter "transport.write_timeouts"

let now () = Unix.gettimeofday ()

(* The connection state machine:

     St_open ──zero-read──▶ St_eof        (reads stop; writes continue)
        │
        ├──poison/close_after_flush──▶ St_closing   (flush, then drop)
        │
        └──EPIPE / net:client_drop / write timeout──▶ St_dead (removed)

   St_eof keeps the write half alive on purpose: a client that shut its
   sending side down still receives every reply that was already in
   flight — the serve loop cancels only its *queued* jobs. *)
type client_state = St_open | St_eof | St_closing | St_dead

type client = {
  ccid : int;
  in_fd : Unix.file_descr;
  out_fd : Unix.file_descr;
  owns_fds : bool;  (** close the fds on drop (false for stdio) *)
  ceof_drains : bool;
      (** EOF means "drain then finish" (the stdio client), not "the
          peer is gone" (socket clients) *)
  inbuf : Buffer.t;  (** partial input line *)
  out : Buffer.t;  (** buffered output, consumed from [out_off] *)
  mutable out_off : int;
  mutable cstate : client_state;
  mutable last_progress : float;
      (** last instant the output buffer shrank (or was empty) *)
}

type t = {
  mutable listeners : Unix.file_descr list;
  mutable conns : client list;
  mutable next_cid : int;
  max_line : int;
  out_cap : int;  (** buffered-output bytes beyond which reads pause *)
  write_timeout : float;
}

type event =
  | Accepted of client
  | Line of client * string
  | Eof of client
  | Overlong of client
  | Dead of client * string

let cid c = c.ccid
let eof_drains c = c.ceof_drains
let at_eof c = c.cstate = St_eof
let is_live c = c.cstate <> St_dead
let closing c = c.cstate = St_closing
let pending_out c = Buffer.length c.out - c.out_off

let create ?(max_line = 1 lsl 20) ?(out_cap = 1 lsl 20) ?(write_timeout = 30.0) () =
  if write_timeout <= 0.0 then invalid_arg "Transport.create: write timeout must be positive";
  { listeners = []; conns = []; next_cid = 0; max_line; out_cap; write_timeout }

let clients t = t.conns
let listening t = t.listeners <> []

(* ------------------------------------------------------------------ *)
(* Endpoints. All socket primitives in the tree live below this line.  *)
(* ------------------------------------------------------------------ *)

let listen_unix path =
  (* A stale socket file from a previous server blocks bind; anything
     else at that path is someone's data and bind's EADDRINUSE/ENOTSOCK
     diagnosis is the right error. *)
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  fd

let bound_port fd =
  match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> Some p | Unix.ADDR_UNIX _ -> None

(* Client-side helpers, so tests and the CLI's chaos clients never hold
   a raw socket (and never trip the lint socket rule): the read channel
   owns the socket fd, the write channel a dup of it, so closing both
   closes both directions exactly once. *)
let channels_of_fd fd =
  let wfd = Unix.dup ~cloexec:true fd in
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr wfd)

let connect_unix path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  channels_of_fd fd

let connect_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  channels_of_fd fd

let pair () = Unix.socketpair ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0

(* The client-side "done sending" half-close: the server sees an orderly
   EOF while this end can still read every buffered reply. *)
let shutdown_send oc =
  flush oc;
  Unix.shutdown (Unix.descr_of_out_channel oc) Unix.SHUTDOWN_SEND

(* ------------------------------------------------------------------ *)
(* Client lifecycle.                                                   *)
(* ------------------------------------------------------------------ *)

let add_listener t fd = t.listeners <- t.listeners @ [ fd ]

let add_client t ?(eof_drains = false) ?(owns_fds = true) ~in_fd ~out_fd () =
  let c =
    {
      ccid = t.next_cid;
      in_fd;
      out_fd;
      owns_fds;
      ceof_drains = eof_drains;
      inbuf = Buffer.create 1024;
      out = Buffer.create 1024;
      out_off = 0;
      cstate = St_open;
      last_progress = now ();
    }
  in
  t.next_cid <- t.next_cid + 1;
  t.conns <- t.conns @ [ c ];
  c

let drop t c =
  if c.cstate <> St_dead then begin
    c.cstate <- St_dead;
    if c.owns_fds then begin
      (try Unix.close c.in_fd with Unix.Unix_error _ -> ());
      if c.out_fd <> c.in_fd then
        try Unix.close c.out_fd with Unix.Unix_error _ -> ()
    end;
    t.conns <- List.filter (fun x -> x.ccid <> c.ccid) t.conns
  end

let close_listeners t =
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
  t.listeners <- []

let shutdown t =
  close_listeners t;
  List.iter (fun c -> drop t c) t.conns

(* ------------------------------------------------------------------ *)
(* Select sets.                                                        *)
(* ------------------------------------------------------------------ *)

(* Backpressure: a client whose replies it will not read accumulates
   output; past [out_cap] we stop reading its input too, so its job
   stream stalls instead of growing the buffer without bound. The write
   timeout below is what finally declares it dead. *)
let read_fds ?(accepting = true) t =
  (if accepting then t.listeners else [])
  @ List.filter_map
      (fun c ->
        if c.cstate = St_open && pending_out c <= t.out_cap then Some c.in_fd else None)
      t.conns

let write_fds t =
  List.filter_map (fun c -> if pending_out c > 0 then Some c.out_fd else None) t.conns

(* ------------------------------------------------------------------ *)
(* Writing.                                                            *)
(* ------------------------------------------------------------------ *)

let compact_out c =
  if c.out_off >= Buffer.length c.out then begin
    Buffer.clear c.out;
    c.out_off <- 0
  end
  else if c.out_off > 1 lsl 16 then begin
    let rest = Buffer.sub c.out c.out_off (pending_out c) in
    Buffer.clear c.out;
    Buffer.add_string c.out rest;
    c.out_off <- 0
  end

let flush_client t c =
  if c.cstate = St_dead || pending_out c = 0 then []
  else begin
    let want = min (pending_out c) 65536 in
    (* net:partial_write:N — every Nth flush writes only half of what it
       meant to. Content-invariant by construction: the unsent suffix
       stays buffered, so the byte stream the client sees is unchanged;
       only the syscall schedule differs. *)
    let want =
      if Resilience.Faults.net_site "partial_write" then begin
        Obs.Metrics.incr m_partial_writes;
        max 1 (want / 2)
      end
      else want
    in
    let s = Buffer.sub c.out c.out_off want in
    match Unix.write_substring c.out_fd s 0 want with
    | n ->
        if n > 0 then begin
          c.out_off <- c.out_off + n;
          c.last_progress <- now ();
          compact_out c
        end;
        if pending_out c = 0 && c.cstate = St_closing then drop t c;
        []
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> []
    | exception Unix.Unix_error (err, _, _) ->
        let silent = c.cstate = St_closing in
        drop t c;
        if silent then []
        else [ Dead (c, Printf.sprintf "write failed: %s" (Unix.error_message err)) ]
  end

let send t c line =
  if c.cstate = St_dead then []
  else begin
    if pending_out c = 0 then c.last_progress <- now ();
    Buffer.add_string c.out line;
    Buffer.add_char c.out '\n';
    flush_client t c
  end

let close_after_flush t c =
  if c.cstate <> St_dead then begin
    c.cstate <- St_closing;
    if pending_out c = 0 then drop t c
  end

let handle_writable t fd =
  match List.find_opt (fun c -> c.out_fd = fd && pending_out c > 0) t.conns with
  | Some c -> flush_client t c
  | None -> []

(* A stalled writer holds a buffer and a queue slot hostage; past the
   timeout it is dead, not slow. [last_progress] only ticks while bytes
   actually leave, so a client draining slowly but steadily survives. *)
let check_timeouts t =
  let t_now = now () in
  let stalled =
    List.filter
      (fun c ->
        c.cstate <> St_dead && pending_out c > 0
        && t_now -. c.last_progress > t.write_timeout)
      t.conns
  in
  List.concat_map
    (fun c ->
      Obs.Metrics.incr m_write_timeouts;
      Obs.Log.warn "write-timeout"
        [ ("cid", Obs.Jtext.Int c.ccid); ("timeout_s", Obs.Jtext.Float t.write_timeout) ];
      let silent = c.cstate = St_closing in
      drop t c;
      if silent then []
      else [ Dead (c, Printf.sprintf "write stalled beyond %.3fs" t.write_timeout) ])
    stalled

(* ------------------------------------------------------------------ *)
(* Reading.                                                            *)
(* ------------------------------------------------------------------ *)

let accept_conn t lfd =
  match Unix.accept ~cloexec:true lfd with
  | fd, _addr ->
      if Resilience.Faults.net_site "accept_fail" then begin
        (* The injected failure mode: the connection is taken off the
           backlog and immediately lost, as if the server ran out of fds
           mid-accept. The client sees an unexplained close and must
           reconnect. *)
        Obs.Metrics.incr m_accept_fails;
        Obs.Log.warn "accept-fail" [ ("fault", Obs.Jtext.Str "net:accept_fail") ];
        (try Unix.close fd with Unix.Unix_error _ -> ());
        []
      end
      else begin
        Unix.set_nonblock fd;
        Obs.Metrics.incr m_accepts;
        let c = add_client t ~eof_drains:false ~owns_fds:true ~in_fd:fd ~out_fd:fd () in
        [ Accepted c ]
      end
  | exception Unix.Unix_error (_, _, _) ->
      (* ECONNABORTED, EAGAIN after a spurious wakeup, fd exhaustion:
         nothing to do but keep serving the clients we have. *)
      []

(* Split complete lines out of the input buffer. A line longer than
   [max_line] means the framing is gone for this client — one [Overlong]
   event, input stops ([St_closing]), and the serve loop decides what to
   say before the flush-and-close. *)
let split_lines t c =
  let s = Buffer.contents c.inbuf in
  let n = String.length s in
  let events = ref [] in
  let overlong = ref false in
  let start = ref 0 in
  let continue = ref true in
  while !continue do
    match String.index_from_opt s !start '\n' with
    | Some i ->
        if i - !start > t.max_line then begin
          overlong := true;
          continue := false
        end
        else begin
          events := Line (c, String.sub s !start (i - !start)) :: !events;
          start := i + 1
        end
    | None ->
        Buffer.clear c.inbuf;
        Buffer.add_substring c.inbuf s !start (n - !start);
        continue := false
  done;
  if (not !overlong) && Buffer.length c.inbuf > t.max_line then overlong := true;
  if !overlong then begin
    Buffer.clear c.inbuf;
    c.cstate <- St_closing;
    events := Overlong c :: !events
  end;
  List.rev !events

let client_readable t c =
  if c.cstate <> St_open then []
  else if Resilience.Faults.net_site "client_drop" then begin
    (* net:client_drop:N — the connection is severed from the server
       side, mid-stream, exactly as a crashed client looks to us. *)
    Obs.Metrics.incr m_client_drops;
    Obs.Log.info "client-drop" [ ("cid", Obs.Jtext.Int c.ccid) ];
    drop t c;
    [ Dead (c, "net:client_drop fault") ]
  end
  else begin
    let chunk = Bytes.create 65536 in
    match Unix.read c.in_fd chunk 0 65536 with
    | 0 ->
        (* Zero read: orderly EOF. A torn trailing line is input, not
           silence — surface it before the Eof so nothing is dropped. *)
        c.cstate <- St_eof;
        let tail =
          if Buffer.length c.inbuf > 0 then begin
            let line = Buffer.contents c.inbuf in
            Buffer.clear c.inbuf;
            [ Line (c, line) ]
          end
          else []
        in
        tail @ [ Eof c ]
    | n ->
        Buffer.add_subbytes c.inbuf chunk 0 n;
        split_lines t c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> []
    | exception Unix.Unix_error (err, _, _) ->
        drop t c;
        [ Dead (c, Printf.sprintf "read failed: %s" (Unix.error_message err)) ]
  end

let handle_readable t fd =
  if List.memq fd t.listeners then accept_conn t fd
  else
    match List.find_opt (fun c -> c.in_fd = fd) t.conns with
    | Some c -> client_readable t c
    | None -> []
