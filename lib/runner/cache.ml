open Proto

let m_hits = Obs.Metrics.counter "cache.hits"
let m_misses = Obs.Metrics.counter "cache.misses"
let m_evictions = Obs.Metrics.counter "cache.evictions"
let m_cert_rejects = Obs.Metrics.counter "cache.cert_rejects"
let m_entries = Obs.Metrics.gauge "cache.entries"

(* Intrusive doubly-linked LRU list over the hash table's nodes: both
   lookup and eviction stay O(1), and the table is the single owner of
   every node (the list never holds a key the table lacks). *)
type node = {
  key : string;
  mutable reply : reply;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (** most recently used *)
  mutable tail : node option;  (** least recently used, next to evict *)
}

type lookup = Hit of reply | Miss | Cert_reject of string

let create ~entries =
  { cap = entries; tbl = Hashtbl.create (max 16 entries); head = None; tail = None }

let length t = Hashtbl.length t.tbl
let enabled t = t.cap > 0

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let remove t n =
  unlink t n;
  Hashtbl.remove t.tbl n.key;
  Obs.Metrics.set m_entries (float_of_int (length t))

(* The cache-safety gate: a stored reply is served only after its
   certificate re-checks, so a hit can never hand a client an answer the
   independent checker would refuse — no matter how the entry got here
   (computed this run, seeded from a journal, or tampered on disk). A
   failing entry is dropped so the job recomputes instead. *)
let find t ~digest ~id =
  if not (enabled t) then Miss
  else
    match Hashtbl.find_opt t.tbl digest with
    | None ->
        Obs.Metrics.incr m_misses;
        Miss
    | Some n -> begin
        match
          Obs.Trace.with_span
            ~args:[ ("digest", Obs.Jtext.Str digest) ]
            "cert-check"
            (fun () -> Cert.Checker.check_reply n.reply)
        with
        | Ok () ->
            unlink t n;
            push_front t n;
            Obs.Metrics.incr m_hits;
            Hit { n.reply with id; wall_s = 0. }
        | Error reason ->
            remove t n;
            Obs.Metrics.incr m_cert_rejects;
            Obs.Trace.instant "cache.cert_reject"
              ~args:[ ("digest", Obs.Jtext.Str digest); ("reason", Obs.Jtext.Str reason) ];
            Obs.Log.warn "cache-cert-reject"
              [ ("digest", Obs.Jtext.Str digest); ("reason", Obs.Jtext.Str reason) ];
            Cert_reject reason
      end

(* Error replies are never cached (they are circumstance, not answers),
   and neither run nor seed time re-checks certificates here: the gate is
   at {!find}, once, on the serving path. *)
let store t ~digest reply =
  if enabled t then
    match reply.verdict with
    | V_failed _ -> ()
    | V_exact _ | V_bounded _ -> begin
        (match Hashtbl.find_opt t.tbl digest with
        | Some n ->
            n.reply <- reply;
            unlink t n;
            push_front t n
        | None ->
            let n = { key = digest; reply; prev = None; next = None } in
            Hashtbl.replace t.tbl digest n;
            push_front t n;
            while length t > t.cap do
              match t.tail with
              | Some lru ->
                  remove t lru;
                  Obs.Metrics.incr m_evictions
              | None -> ()
            done);
        Obs.Metrics.set m_entries (float_of_int (length t))
      end
