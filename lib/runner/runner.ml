module Proto = Proto
module Pool = Pool
module Journal = Journal
module Transport = Transport
module Cache = Cache
module Trace_check = Trace_check
open Proto
module Ser = Graphdb.Serialize
open Resilience
module Trace = Obs.Trace

module Log = Obs.Log

let now_s () = Unix.gettimeofday ()

(* Env-installed crash plans must look like a real supervisor death — no
   unwinding, no finalizers, just gone. lib/core cannot touch Unix (see
   the rpq_lint unix rule), so the exit behavior is injected here, once,
   at link time. Exit code 70 is EX_SOFTWARE: distinguishable from both a
   clean batch exit and a SIGKILL in the chaos harness's waitpid. The
   flight recorder gets its one chance to publish the black box first —
   [Flight.dump] is atomic and never raises. *)
let () =
  Faults.set_crash_exit (fun site ->
      Obs.Flight.dump ~reason:("crash:" ^ site) ();
      Unix._exit 70)

(* The in-process [Faults.Crash] path (programmatic fault plans, unit
   tests) unwinds instead of exiting: dump at the catch point, then let
   the exception continue to whoever is simulating the crash. *)
let flight_on_crash f =
  try f ()
  with Faults.Crash site as e ->
    Obs.Flight.dump ~reason:("crash:" ^ site) ();
    raise e

(* Supervisor-side telemetry. Counters cover the retry/death policy
   (deterministic under a fixed fault plan), gauges the instantaneous
   load, histograms the queue wait. Worker-side solver metrics do not
   cross the fork boundary — per-job stage timings travel in the reply's
   [stages] block instead. *)
let m_jobs = Obs.Metrics.counter "runner.jobs"
let m_settled = Obs.Metrics.counter "runner.settled"
let m_retries = Obs.Metrics.counter "runner.retries"
let m_deaths_crash = Obs.Metrics.counter "runner.deaths.crash"
let m_deaths_timeout = Obs.Metrics.counter "runner.deaths.timeout"
let m_deaths_malformed = Obs.Metrics.counter "runner.deaths.malformed"
let m_shed = Obs.Metrics.counter "runner.shed"
let m_queue_depth = Obs.Metrics.gauge "runner.queue_depth"
let m_inflight = Obs.Metrics.gauge "runner.inflight"
let m_dispatch_latency = Obs.Metrics.histogram "runner.dispatch_latency_s"

(* ------------------------------------------------------------------ *)
(* Worker side: run one job to a reply, in this process.               *)
(* ------------------------------------------------------------------ *)

(* A [wedge:N] worker must take the supervisor's SIGKILL-after-grace
   path, so the polite SIGTERM has to be survivable: block it, then stop
   responding. If the supervisor itself dies (it can be SIGKILLed, too)
   nobody is left to deliver our SIGKILL — poll for reparenting to init so
   a wedged orphan exits within a second instead of leaking forever. *)
let wedge_forever () =
  ignore (Unix.sigprocmask Unix.SIG_BLOCK [ Sys.sigterm ]);
  while true do
    Unix.sleep 1;
    if Unix.getppid () = 1 then Unix._exit 0
  done

let worker_probe () =
  match Faults.worker_mode () with
  | None -> None
  | Some (`Kill n) ->
      Some (fun steps -> if steps >= n then Unix.kill (Unix.getpid ()) Sys.sigkill)
  | Some (`Wedge n) -> Some (fun steps -> if steps >= n then wedge_forever ())

let spent_steps = function None -> 0 | Some b -> (Budget.spent b).Budget.steps

(* Worker memory ceiling: a Gc alarm (end of each major cycle) flags when
   the major heap crosses the limit, and the budget probe turns the flag
   into [Budget.Exhausted Memory] on the next tick — so an OOM-bound job
   degrades to a certified [Bounded] reply instead of being SIGKILLed by
   the kernel. Set before the pool forks so workers inherit it. *)
let heap_limit_words : int option ref = ref None

let set_max_heap_mb mb =
  heap_limit_words := Option.map (fun mb -> mb * 1024 * 1024 / (Sys.word_size / 8)) mb

let run_job_inner (job : job) : reply =
  match Trace.stage "parse" (fun () -> Ser.parse job.db) with
  | Error e -> failed ~id:job.id ~kind:"bad-job" "database: %s" e
  | Ok p -> begin
      match Automata.Regex.parse_opt job.query with
      | None -> failed ~id:job.id ~kind:"bad-job" "invalid regular expression %S" job.query
      | Some _ -> begin
          match
            match job.faults with None -> Ok (Faults.plan ()) | Some s -> Faults.parse s
          with
          | Error e -> failed ~id:job.id ~kind:"bad-job" "faults: %s" e
          | Ok plan ->
              Faults.with_plan plan @@ fun () ->
              let lang = Trace.stage "parse" (fun () -> Automata.Lang.of_string job.query) in
              let fault_probe = worker_probe () in
              let heap_flag = ref false in
              let alarm =
                Option.map
                  (fun limit ->
                    Gc.create_alarm (fun () ->
                        if (Gc.quick_stat ()).Gc.heap_words > limit then heap_flag := true))
                  !heap_limit_words
              in
              let probe =
                match (alarm, fault_probe) with
                | None, p -> p
                | Some _, p ->
                    Some
                      (fun steps ->
                        if !heap_flag then raise (Budget.Exhausted Budget.Memory);
                        match p with Some f -> f steps | None -> ())
              in
              let b = job.budget in
              let budget =
                match (b.deadline, b.steps, b.memo_cap, probe) with
                | None, None, None, None -> None
                | _ ->
                    Some
                      (Budget.create ?deadline:b.deadline ?steps:b.steps ?memo_cap:b.memo_cap
                         ?probe ())
              in
              let verdict, cert =
                Fun.protect
                  ~finally:(fun () -> Option.iter Gc.delete_alarm alarm)
                @@ fun () ->
                match Solver.solve_bounded ?budget p.Ser.db lang with
                | Solver.Exact r ->
                    ( V_exact
                        {
                          value = r.Solver.value;
                          algorithm = Solver.algorithm_name r.Solver.algorithm;
                          witness = r.Solver.witness;
                        },
                      r.Solver.cert )
                | Solver.Bounded { lower; upper; upper_witness; reason; spent = _; cert } ->
                    ( V_bounded
                        {
                          lower;
                          upper;
                          witness = upper_witness;
                          reason = Budget.exhaustion_name reason;
                        },
                      cert )
                | exception Invalid_argument e ->
                    (V_failed { kind = "bad-job"; message = e; retriable = false }, None)
                | exception Invariant.Internal_error e ->
                    (V_failed { kind = "internal"; message = e; retriable = false }, None)
              in
              {
                id = job.id;
                attempts = 1;
                steps = spent_steps budget;
                wall_s = 0.0;
                stages = [];
                trace = None;
                verdict;
                cert;
              }
        end
    end

(* The whole job runs under one [solve] span (tagged with the query and
   instance size) and a fresh stage table; the per-stage totals become
   the reply's [stages] block, so they survive the pipe back to the
   supervisor. The job's propagated span context, if any, becomes the
   span's parent — in a forked worker that is the supervisor's [job]
   span, so the stitched trace nests solve stages under it — and the
   span's own context rides back in the reply's [trace] field. *)
let run_job_locally (job : job) : reply =
  Trace.with_parent (Option.bind job.trace Trace.ctx_of_string) @@ fun () ->
  let span_ctx = ref None in
  let reply, stages =
    Trace.with_stages (fun () ->
        Trace.with_span
          ~args:
            [
              ("id", Obs.Jtext.Str job.id);
              ("query", Obs.Jtext.Str job.query);
              ("db_bytes", Obs.Jtext.Int (String.length job.db));
            ]
          "solve"
          (fun () ->
            span_ctx := Option.map Trace.ctx_to_string (Trace.current_ctx ());
            run_job_inner job))
  in
  { reply with stages; trace = !span_ctx }

let worker_handler line =
  let reply =
    match job_of_json line with
    | Error e -> failed ~id:"" ~kind:"bad-job" "unparseable job line: %s" e
    | Ok job -> run_job_locally job
  in
  reply_to_json reply

(* ------------------------------------------------------------------ *)
(* Supervisor: retry policy.                                           *)
(* ------------------------------------------------------------------ *)

type config = {
  workers : int;
  retries : int;  (** extra attempts after the first *)
  degrade : int;  (** budget divisor applied per retry *)
  queue_cap : int;  (** admission limit for {!serve} *)
  job_timeout : float option;
  grace : float;
  backoff : float;  (** base retry delay, doubled per attempt *)
  journal_sync : Journal.sync;  (** fsync policy for {!run_batch}'s journal *)
  max_heap_mb : int option;  (** worker memory ceiling (Gc-alarm watchdog) *)
}

let default_config =
  {
    workers = 4;
    retries = 2;
    degrade = 8;
    queue_cap = 64;
    job_timeout = None;
    grace = 0.5;
    backoff = 0.05;
    journal_sync = Journal.Per_job;
    max_heap_mb = None;
  }

(* 50k steps is comfortably above anything the polynomial paths tick and
   a fraction of a second of branch and bound: a sane first ceiling for a
   job that crashed with no budget of its own. *)
let default_retry_steps = 50_000

let degrade_budget ~degrade (b : budget_spec) : budget_spec =
  let d = max 2 degrade in
  {
    deadline = Option.map (fun s -> Float.max 0.01 (s /. float_of_int d)) b.deadline;
    steps =
      (match b.steps with
      | Some s -> Some (max 1 (s / d))
      | None -> Some default_retry_steps);
    memo_cap = b.memo_cap;
  }

let death_kind = function
  | Pool.Timed_out -> "timeout"
  | Pool.Exited _ | Pool.Signaled _ -> "crash"
  | Pool.Malformed _ -> "malformed"

type task = {
  job : job;  (** as submitted, with the original budget *)
  submitted : float;  (** wall clock at {!submit}, for dispatch latency *)
  span : Trace.handle option;  (** the supervisor-side [job] span: submit -> settle *)
  mutable attempts : int;  (** dispatches so far *)
  mutable cur_budget : budget_spec;
  mutable first_dispatch : float;  (** wall clock, for [wall_s] *)
  mutable not_before : float;  (** backoff gate *)
}

(* A worker span streamed as ["open"] but whose closing event never
   arrived — the raw material for synthesizing [interrupted] spans when
   the worker dies mid-job. *)
type wspan = {
  w_sid : string;
  w_name : string;
  w_ts : float;  (* relative to the shared trace epoch *)
  w_depth : int;
  w_pid : int;
  w_tid : string;
  w_psid : string option;
}

type engine = {
  cfg : config;
  pool : Pool.t;
  pending : task Queue.t;
  mutable delayed : task list;
  inflight : (string, task) Hashtbl.t;
  wopen : (string, wspan list) Hashtbl.t;  (** job id -> worker spans still open *)
  emit : reply -> unit;
  on_dispatch : task -> unit;  (** first dispatch only (journal Started) *)
}

let engine_load e = Queue.length e.pending + List.length e.delayed + Hashtbl.length e.inflight

let update_gauges e =
  Obs.Metrics.set m_queue_depth (float_of_int (Queue.length e.pending + List.length e.delayed));
  Obs.Metrics.set m_inflight (float_of_int (Hashtbl.length e.inflight))

let submit e (job : job) =
  Obs.Metrics.incr m_jobs;
  (* The supervisor's per-job span opens at submission and closes at
     settle, spanning queue wait, every dispatch and every retry. Its
     parent is the job's propagated context (a serve [request] span, or
     a remote client's span); its own identity is what the worker's
     [solve] span will nest under. *)
  let span =
    Trace.open_span
      ?parent:(Option.bind job.trace Trace.ctx_of_string)
      ~args:[ ("id", Obs.Jtext.Str job.id) ]
      "job"
  in
  Queue.add
    {
      job;
      submitted = now_s ();
      span;
      attempts = 0;
      cur_budget = job.budget;
      first_dispatch = 0.0;
      not_before = 0.0;
    }
    e.pending

let dispatch_ready e =
  (* Promote delayed tasks whose backoff expired... *)
  let t_now = now_s () in
  let due, still = List.partition (fun t -> t.not_before <= t_now) e.delayed in
  e.delayed <- still;
  List.iter (fun t -> Queue.add t e.pending) due;
  (* ...then feed idle workers. *)
  let idle = ref (Pool.idle_count e.pool) in
  while !idle > 0 && not (Queue.is_empty e.pending) do
    let t = Queue.pop e.pending in
    if t.attempts = 0 then begin
      t.first_dispatch <- now_s ();
      Obs.Metrics.observe m_dispatch_latency (t.first_dispatch -. t.submitted);
      e.on_dispatch t
    end;
    t.attempts <- t.attempts + 1;
    Hashtbl.replace e.inflight t.job.id t;
    Trace.instant ~args:[ ("id", Obs.Jtext.Str t.job.id) ] "dispatch";
    (* The worker parents its spans under this task's supervisor span;
       an untraced supervisor forwards whatever context the job came in
       with, so propagation survives un-instrumented hops. *)
    let trace =
      match t.span with
      | Some h -> Some (Trace.ctx_to_string (Trace.handle_ctx h))
      | None -> t.job.trace
    in
    let payload = job_to_wire_json { t.job with budget = t.cur_budget; trace } in
    Pool.assign e.pool ~id:t.job.id ~payload;
    decr idle
  done;
  update_gauges e

let settle e t reply =
  Hashtbl.remove e.inflight t.job.id;
  Hashtbl.remove e.wopen t.job.id;
  Obs.Metrics.incr m_settled;
  update_gauges e;
  Trace.instant
    ~args:
      [ ("id", Obs.Jtext.Str t.job.id); ("outcome", Obs.Jtext.Str (verdict_name reply.verdict)) ]
    "settle";
  Option.iter
    (fun h ->
      Trace.close_span
        ~args:
          [
            ("outcome", Obs.Jtext.Str (verdict_name reply.verdict));
            ("attempts", Obs.Jtext.Int t.attempts);
          ]
        h)
    t.span;
  e.emit { reply with id = t.job.id; attempts = t.attempts; wall_s = now_s () -. t.first_dispatch }

let death_counter = function
  | Pool.Timed_out -> m_deaths_timeout
  | Pool.Exited _ | Pool.Signaled _ -> m_deaths_crash
  | Pool.Malformed _ -> m_deaths_malformed

let retry_or_fail e t death =
  Obs.Metrics.incr (death_counter death);
  Trace.instant
    ~args:[ ("id", Obs.Jtext.Str t.job.id); ("death", Obs.Jtext.Str (death_kind death)) ]
    "worker-death";
  Log.warn "worker-death"
    [
      ("id", Obs.Jtext.Str t.job.id);
      ("death", Obs.Jtext.Str (Pool.death_to_string death));
      ("attempt", Obs.Jtext.Int t.attempts);
    ];
  if t.attempts > e.cfg.retries then
    settle e t
      (failed ~id:t.job.id ~kind:(death_kind death) "gave up after %d attempts: %s" t.attempts
         (Pool.death_to_string death))
  else begin
    Hashtbl.remove e.inflight t.job.id;
    Hashtbl.remove e.wopen t.job.id;
    Obs.Metrics.incr m_retries;
    Log.info "retry"
      [ ("id", Obs.Jtext.Str t.job.id); ("attempt", Obs.Jtext.Int (t.attempts + 1)) ];
    (* Shrink the budget so whatever made the worker die (a fault tick, a
       runaway search) is preempted by exhaustion on a later attempt and
       the job settles as Bounded instead of failing outright. *)
    t.cur_budget <- degrade_budget ~degrade:e.cfg.degrade t.cur_budget;
    t.not_before <-
      now_s () +. (e.cfg.backoff *. float_of_int (1 lsl min 16 (t.attempts - 1)));
    e.delayed <- t :: e.delayed
  end

let task_of_event e id =
  match Hashtbl.find_opt e.inflight id with
  | Some t -> Some t
  | None -> None (* stray reply for a job we already settled *)

(* ---- worker trace stitching ---- *)

(* Args on re-emitted worker events keep only the scalar fields the
   worker attached; identity/position fields were already lifted. *)
let jtext_of_json : Json.t -> Obs.Jtext.t =
  let rec conv = function
    | Json.Null -> Obs.Jtext.Null
    | Json.Bool b -> Obs.Jtext.Bool b
    | Json.Int i -> Obs.Jtext.Int i
    | Json.Float f -> Obs.Jtext.Float f
    | Json.Str s -> Obs.Jtext.Str s
    | Json.List xs -> Obs.Jtext.List (List.map conv xs)
    | Json.Obj fs -> Obs.Jtext.Obj (List.map (fun (k, v) -> (k, conv v)) fs)
  in
  conv

let structural_fields = [ "ev"; "name"; "ts"; "dur"; "depth"; "pid"; "tid"; "sid"; "psid" ]

let event_args obj =
  match obj with
  | Json.Obj fields ->
      List.filter_map
        (fun (k, v) ->
          if List.mem k structural_fields then None else Some (k, jtext_of_json v))
        fields
  | _ -> []

(* One line from a worker's pipe sink. ["open"] records are remembered
   (per job) so that spans a killed worker never closed can be
   synthesized; ["span"]/["instant"] records are re-emitted into the
   supervisor's sink; ["meta"] is dropped — the epoch is shared through
   fork, so worker timestamps are already on the supervisor's axis. *)
let handle_worker_trace e ~id ~pid line =
  match Json.parse line with
  | Error _ -> () (* torn trace line from a dying worker: not worth a retry *)
  | Ok obj -> begin
      let str k = Option.bind (Json.member k obj) Json.to_str_opt in
      let num k = Option.bind (Json.member k obj) Json.to_float_opt in
      let int k = Option.bind (Json.member k obj) Json.to_int_opt in
      match str "ev" with
      | Some "open" -> begin
          match (str "sid", str "name", num "ts") with
          | Some w_sid, Some w_name, Some w_ts ->
              let w =
                {
                  w_sid;
                  w_name;
                  w_ts;
                  w_depth = Option.value ~default:0 (int "depth");
                  w_pid = Option.value ~default:pid (int "pid");
                  w_tid = Option.value ~default:"" (str "tid");
                  w_psid = str "psid";
                }
              in
              let prev = Option.value ~default:[] (Hashtbl.find_opt e.wopen id) in
              Hashtbl.replace e.wopen id (w :: prev)
          | _ -> ()
        end
      | Some "span" -> begin
          (* The span closed normally: forget its open record. *)
          (match (Hashtbl.find_opt e.wopen id, str "sid") with
          | Some ws, Some sid ->
              Hashtbl.replace e.wopen id (List.filter (fun w -> w.w_sid <> sid) ws)
          | _ -> ());
          match (str "name", num "ts", num "dur") with
          | Some name, Some ts, Some dur ->
              Trace.emit_raw_span ~args:(event_args obj) ?tid:(str "tid") ?sid:(str "sid")
                ?psid:(str "psid") ~name ~ts ~dur
                ~depth:(Option.value ~default:0 (int "depth"))
                ~pid:(Option.value ~default:pid (int "pid"))
                ()
          | _ -> ()
        end
      | Some "instant" -> begin
          match (str "name", num "ts") with
          | Some name, Some ts ->
              Trace.emit_raw_instant ~args:(event_args obj) ?tid:(str "tid") ?sid:(str "sid")
                ?psid:(str "psid") ~name ~ts
                ~depth:(Option.value ~default:0 (int "depth"))
                ~pid:(Option.value ~default:pid (int "pid"))
                ()
          | _ -> ()
        end
      | _ -> ()
    end

(* The worker died with spans still open: emit each as a span ending at
   the moment the death was observed, tagged [interrupted] — partial
   timing is better than a hole in the trace, and the synthesized stop
   time keeps it inside the supervisor's still-open job span. *)
let close_interrupted_spans e id =
  (match (Hashtbl.find_opt e.wopen id, Trace.epoch ()) with
  | Some ws, Some t0 ->
      let now_rel = now_s () -. t0 in
      List.iter
        (fun w ->
          Trace.emit_raw_span
            ~args:[ ("interrupted", Obs.Jtext.Bool true) ]
            ~tid:w.w_tid ~sid:w.w_sid ?psid:w.w_psid ~name:w.w_name ~ts:w.w_ts
            ~dur:(Float.max 0.0 (now_rel -. w.w_ts))
            ~depth:w.w_depth ~pid:w.w_pid ())
        ws
  | _ -> ());
  Hashtbl.remove e.wopen id

let handle_event e = function
  | Pool.Input _ | Pool.Writable _ -> ()
  | Pool.Trace { id; pid; line } -> handle_worker_trace e ~id ~pid line
  | Pool.Completed { id; reply = line } -> begin
      match task_of_event e id with
      | None -> ()
      | Some t -> begin
          match reply_of_json line with
          | Ok r -> settle e t r
          | Error msg ->
              Log.error "malformed-reply"
                [ ("id", Obs.Jtext.Str id); ("error", Obs.Jtext.Str msg) ];
              retry_or_fail e t (Pool.Malformed (line ^ " (" ^ msg ^ ")"))
        end
    end
  | Pool.Crashed { id; death } -> begin
      close_interrupted_spans e id;
      match task_of_event e id with None -> () | Some t -> retry_or_fail e t death
    end

(* The poll timeout must wake us for the nearest backoff expiry, else a
   lone delayed task waits out the full default timeout. *)
let engine_timeout e =
  let t_now = now_s () in
  List.fold_left
    (fun acc t -> Float.min acc (Float.max 0.005 (t.not_before -. t_now)))
    0.5 e.delayed

let create_engine cfg ~emit ~on_dispatch =
  if cfg.retries < 0 then invalid_arg "Runner: negative retries";
  if cfg.queue_cap < 1 then invalid_arg "Runner: queue cap must be at least 1";
  (match cfg.max_heap_mb with
  | Some mb when mb < 1 -> invalid_arg "Runner: max heap must be at least 1 MB"
  | _ -> ());
  (* Before the fork: the workers inherit the ceiling with the pool. *)
  set_max_heap_mb cfg.max_heap_mb;
  let pool =
    Pool.create
      { Pool.workers = cfg.workers; job_timeout = cfg.job_timeout; grace = cfg.grace }
      ~handler:worker_handler
  in
  {
    cfg;
    pool;
    pending = Queue.create ();
    delayed = [];
    inflight = Hashtbl.create 64;
    wopen = Hashtbl.create 16;
    emit;
    on_dispatch;
  }

let drain e =
  while engine_load e > 0 do
    dispatch_ready e;
    if engine_load e > 0 then
      List.iter (handle_event e) (Pool.poll ~timeout:(engine_timeout e) e.pool)
  done

(* ------------------------------------------------------------------ *)
(* Batch runs with journal-based crash recovery.                       *)
(* ------------------------------------------------------------------ *)

(* Re-verification of a recorded answer on journal resume: the reply's
   certificate must re-check. This subsumes the old witness-only test
   (a Cut/Bounds certificate pins the witness to the serialized
   evidence) and additionally rejects settled answers whose optimality
   argument does not hold — without re-running any solver. *)
let verify_reply (reply : reply) =
  match Cert.Checker.check_reply reply with Ok () -> true | Error _ -> false

type batch_stats = { ran : int; resumed : int; failures : int }

let run_batch ?journal cfg (jobs : job list) : reply list * batch_stats =
  flight_on_crash @@ fun () ->
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (j : job) ->
      if Hashtbl.mem seen j.id then
        invalid_arg (Printf.sprintf "Runner.run_batch: duplicate job id %S" j.id);
      Hashtbl.add seen j.id ())
    jobs;
  let recorded =
    match journal with
    | None -> Hashtbl.create 0
    | Some path -> begin
        match Journal.load path with
        | Ok rep -> Journal.completed rep.Journal.entries
        | Error msg -> invalid_arg (Printf.sprintf "Runner.run_batch: %s" msg)
      end
  in
  let jnl =
    match journal with
    | None -> None
    | Some path -> begin
        match Journal.open_append ~sync:cfg.journal_sync path with
        | Ok j -> Some j
        | Error msg -> invalid_arg (Printf.sprintf "Runner.run_batch: %s" msg)
      end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close jnl)
    (fun () ->
      let results : (string, reply) Hashtbl.t = Hashtbl.create 64 in
      let resumed = ref 0 in
      let todo =
        List.filter
          (fun (j : job) ->
            match Hashtbl.find_opt recorded j.id with
            | Some (digest, reply)
              when digest = Journal.job_digest j
                   && (Check.level () = Check.Off || verify_reply reply) ->
                Hashtbl.replace results j.id reply;
                incr resumed;
                false
            | _ -> true)
          jobs
      in
      let emit r =
        Hashtbl.replace results r.id r;
        Option.iter
          (fun jnl ->
            let j = List.find (fun (j : job) -> j.id = r.id) jobs in
            Journal.append jnl (Journal.Done { id = r.id; digest = Journal.job_digest j; reply = r }))
          jnl
      in
      let on_dispatch t =
        Option.iter
          (fun jnl ->
            Journal.append jnl
              (Journal.Started { id = t.job.id; digest = Journal.job_digest t.job }))
          jnl
      in
      let e = create_engine cfg ~emit ~on_dispatch in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown e.pool)
        (fun () ->
          List.iter (submit e) todo;
          drain e);
      let replies =
        List.map
          (fun (j : job) ->
            match Hashtbl.find_opt results j.id with
            | Some r -> r
            | None ->
                Invariant.internal_error "Runner.run_batch: job %s never settled" j.id)
          jobs
      in
      let failures =
        List.length
          (List.filter (fun r -> match r.verdict with V_failed _ -> true | _ -> false) replies)
      in
      (replies, { ran = List.length todo; resumed = !resumed; failures }))

(* ------------------------------------------------------------------ *)
(* Serve: many clients, one engine — per-client fairness, admission    *)
(* control, and the certificate-gated result cache.                    *)
(* ------------------------------------------------------------------ *)

(* A [{"stats": true}] line (optionally carrying an [id]) is a control
   request, not a job: it answers immediately with the supervisor's
   metrics snapshot and consumes no queue slot. The snapshot is spliced
   in textually — [Obs.Metrics.snapshot_string] emits the same JSON
   grammar this layer parses (see [Obs.Jtext]). *)
let is_stats_request v =
  match Json.member "stats" v with Some (Json.Bool true) -> true | _ -> false

let stats_line id =
  Printf.sprintf {|{"id":%s,"stats":%s}|}
    (Json.to_string (Json.Str id))
    (Obs.Metrics.snapshot_string ())

let m_serve_clients = Obs.Metrics.gauge "serve.clients"
let m_serve_queued = Obs.Metrics.gauge "serve.queued"
let m_serve_inflight = Obs.Metrics.gauge "serve.inflight"
let m_serve_draining = Obs.Metrics.gauge "serve.draining"
let m_serve_cancelled = Obs.Metrics.counter "serve.cancelled"

(* Per-client fairness, factored out of the serve loop so the policy is
   testable without sockets: one FIFO per client, a round-robin rotation
   across clients with work, and a per-client inflight cap so one chatty
   client cannot monopolize the worker pool. *)
module Admission = struct
  type 'a t = {
    cap : int;
    queues : (int, 'a Queue.t) Hashtbl.t;
    mutable order : int list;
    adm_inflight : (int, int) Hashtbl.t;
  }

  let create ~client_inflight =
    if client_inflight < 1 then
      invalid_arg "Runner.Admission.create: per-client inflight cap must be at least 1";
    {
      cap = client_inflight;
      queues = Hashtbl.create 16;
      order = [];
      adm_inflight = Hashtbl.create 16;
    }

  let enqueue t cid x =
    match Hashtbl.find_opt t.queues cid with
    | Some q -> Queue.add x q
    | None ->
        let q = Queue.create () in
        Queue.add x q;
        Hashtbl.replace t.queues cid q;
        t.order <- t.order @ [ cid ]

  let queued_for t cid =
    match Hashtbl.find_opt t.queues cid with Some q -> Queue.length q | None -> 0

  let queued t = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0

  let inflight_for t cid =
    Option.value ~default:0 (Hashtbl.find_opt t.adm_inflight cid)

  let inflight t = Hashtbl.fold (fun _ n acc -> acc + n) t.adm_inflight 0

  (* Round-robin under the cap: the first client in rotation with work
     and headroom wins and moves to the back; a client skipped for lack
     of headroom keeps its place, so it is first in line once one of its
     jobs settles. *)
  let next t =
    let rec scan skipped = function
      | [] -> None
      | cid :: rest -> begin
          match Hashtbl.find_opt t.queues cid with
          | Some q when (not (Queue.is_empty q)) && inflight_for t cid < t.cap ->
              let x = Queue.pop q in
              if Queue.is_empty q then begin
                Hashtbl.remove t.queues cid;
                t.order <- List.rev_append skipped rest
              end
              else t.order <- List.rev_append skipped rest @ [ cid ];
              Hashtbl.replace t.adm_inflight cid (inflight_for t cid + 1);
              Some (cid, x)
          | Some _ -> scan (cid :: skipped) rest
          | None ->
              (* Rotation entry with no queue: drained elsewhere; skip. *)
              scan skipped rest
        end
    in
    scan [] t.order

  let settled t cid =
    let n = inflight_for t cid in
    if n <= 1 then Hashtbl.remove t.adm_inflight cid
    else Hashtbl.replace t.adm_inflight cid (n - 1)

  let cancel t cid =
    let xs =
      match Hashtbl.find_opt t.queues cid with
      | Some q -> List.of_seq (Queue.to_seq q)
      | None -> []
    in
    Hashtbl.remove t.queues cid;
    t.order <- List.filter (fun c -> c <> cid) t.order;
    xs
end

type serve_config = {
  base : config;
  listen : string option;
  tcp : int option;
  cache_entries : int;
  client_inflight : int;
  drain_grace : float;
  write_timeout : float;
  serve_journal : string option;
}

let default_serve_config =
  {
    base = default_config;
    listen = None;
    tcp = None;
    cache_entries = 256;
    client_inflight = 8;
    drain_grace = 5.0;
    write_timeout = 30.0;
    serve_journal = None;
  }

(* The engine's inflight table is keyed by job id, but two clients may
   use the same id concurrently — so jobs run under a namespaced
   internal id and the owner table maps back to (client, original id,
   parsed job). Journal and cache always see original ids and the
   canonical (id-blind) digest, which is what lets a resubmission from
   any client hit the cache. *)
let internal_id cid id = Printf.sprintf "c%d:%s" cid id

let serve_sockets ?stdio ?(preconnected = []) scfg =
  flight_on_crash @@ fun () ->
  let cfg = scfg.base in
  if scfg.cache_entries < 0 then
    invalid_arg "Runner.serve_sockets: cache size must be non-negative";
  if scfg.drain_grace < 0.0 then
    invalid_arg "Runner.serve_sockets: drain grace must be non-negative";
  let tr = Transport.create ~write_timeout:scfg.write_timeout () in
  Option.iter (fun path -> Transport.add_listener tr (Transport.listen_unix path)) scfg.listen;
  Option.iter (fun port -> Transport.add_listener tr (Transport.listen_tcp port)) scfg.tcp;
  Option.iter
    (fun (ic, oc) ->
      (* Anything already buffered on the channel must leave before raw
         fd writes interleave with it. *)
      flush oc;
      ignore
        (Transport.add_client tr ~eof_drains:true ~owns_fds:false
           ~in_fd:(Unix.descr_of_in_channel ic)
           ~out_fd:(Unix.descr_of_out_channel oc) ()))
    stdio;
  (* Pre-connected fds (a test's socketpair ends) get the tolerant EOF
     semantics of the stdio client: the peer half-closes when done
     sending and expects its queued jobs to drain, not be cancelled. *)
  List.iter
    (fun fd ->
      ignore (Transport.add_client tr ~eof_drains:true ~owns_fds:true ~in_fd:fd ~out_fd:fd ()))
    preconnected;
  let cache = Cache.create ~entries:scfg.cache_entries in
  (* Seed the cache from the journal's settled answers: serve journals
     key [Done] entries by the canonical digest, which is exactly the
     cache key, and the certificate gate inside [Cache.find] keeps a
     tampered entry from ever being served. *)
  (match scfg.serve_journal with
  | Some path when Sys.file_exists path -> begin
      match Journal.load path with
      | Ok rep ->
          Hashtbl.iter
            (fun _id (digest, reply) -> Cache.store cache ~digest reply)
            (Journal.completed rep.Journal.entries)
      | Error msg -> invalid_arg (Printf.sprintf "Runner.serve_sockets: %s" msg)
    end
  | Some _ | None -> ());
  let jnl =
    match scfg.serve_journal with
    | None -> None
    | Some path -> begin
        match Journal.open_append ~sync:cfg.journal_sync path with
        | Ok j -> Some j
        | Error msg -> invalid_arg (Printf.sprintf "Runner.serve_sockets: %s" msg)
      end
  in
  let adm = Admission.create ~client_inflight:scfg.client_inflight in
  (* internal id -> (client, original id, parsed job, request span).
     The request span opens at admission and closes when the reply is
     delivered (or the job is cancelled/shed) — the serve-side hop of
     the stitched trace, parenting the engine's [job] span. *)
  let owners : (string, int * string * job * Trace.handle option) Hashtbl.t =
    Hashtbl.create 64
  in
  let close_request ?(outcome = "") h =
    Option.iter
      (fun h ->
        Trace.close_span
          ~args:(if outcome = "" then [] else [ ("outcome", Obs.Jtext.Str outcome) ])
          h)
      h
  in
  let draining = ref false in
  (* SIGTERM/SIGINT request a graceful drain. The handler only flips a
     flag; everything observable — stop accepting, shed queued work,
     flush, release the journal lock, final trace flush — happens in
     the loop below, not in signal context. *)
  let install s behavior =
    match Sys.signal s behavior with
    | old -> Some (s, old)
    | exception Invalid_argument _ -> None
    | exception Sys_error _ -> None
  in
  let saved_signals =
    List.filter_map Fun.id
      [
        install Sys.sigterm (Sys.Signal_handle (fun _ -> draining := true));
        install Sys.sigint (Sys.Signal_handle (fun _ -> draining := true));
        (* A write to a client whose peer vanished must surface as EPIPE
           (handled per client in {!Transport}), not kill the server. *)
        install Sys.sigpipe Sys.Signal_ignore;
      ]
  in
  let update_serve_gauges () =
    Obs.Metrics.set m_serve_clients (float_of_int (List.length (Transport.clients tr)));
    Obs.Metrics.set m_serve_queued (float_of_int (Admission.queued adm));
    Obs.Metrics.set m_serve_inflight (float_of_int (Admission.inflight adm));
    Obs.Metrics.set m_serve_draining (if !draining then 1.0 else 0.0)
  in
  let find_client cid =
    List.find_opt (fun c -> Transport.cid c = cid) (Transport.clients tr)
  in
  (* [admit] and the transport-event handler are mutually recursive (a
     send can surface a [Dead] event, whose handling is policy): tie the
     knot with a forward reference. *)
  let tev_handler = ref (fun (_ : Transport.event) -> ()) in
  let handle_tevs evs = List.iter (fun ev -> !tev_handler ev) evs in
  let deliver cid r =
    match find_client cid with
    | None ->
        (* The client died while the job was inflight: the answer is
           settled, journaled and cached — only delivery is impossible. *)
        ()
    | Some c -> handle_tevs (Transport.send tr c (reply_to_json r))
  in
  let emit r =
    match Hashtbl.find_opt owners r.id with
    | None -> ()
    | Some (cid, orig, j, rspan) ->
        Hashtbl.remove owners r.id;
        Admission.settled adm cid;
        close_request ~outcome:(verdict_name r.verdict) rspan;
        let r = { r with id = orig } in
        let digest = Journal.canonical_digest j in
        Option.iter
          (fun jl -> Journal.append jl (Journal.Done { id = orig; digest; reply = r }))
          jnl;
        Cache.store cache ~digest r;
        deliver cid r
  in
  let on_dispatch (t : task) =
    match (jnl, Hashtbl.find_opt owners t.job.id) with
    | Some jl, Some (_, orig, j, _) ->
        Journal.append jl
          (Journal.Started { id = orig; digest = Journal.canonical_digest j })
    | _ -> ()
  in
  let e = create_engine cfg ~emit ~on_dispatch in
  let total_load () = Admission.queued adm + engine_load e in
  (* Move admitted jobs into the engine only while a worker is idle and
     nothing is already waiting there: keeping the backlog in the
     per-client queues is what makes the round-robin fair. *)
  let feed () =
    let continue = ref true in
    while !continue do
      if Pool.idle_count e.pool > 0 && Queue.is_empty e.pending then begin
        match Admission.next adm with
        | Some (_cid, j) ->
            submit e j;
            dispatch_ready e
        | None -> continue := false
      end
      else continue := false
    done
  in
  let cancel_client c =
    List.iter
      (fun (j : job) ->
        (match Hashtbl.find_opt owners j.id with
        | Some (_, _, _, rspan) -> close_request ~outcome:"cancelled" rspan
        | None -> ());
        Hashtbl.remove owners j.id;
        Obs.Metrics.incr m_serve_cancelled)
      (Admission.cancel adm (Transport.cid c))
  in
  (* An HTTP GET on the job socket is a metrics scrape: answer with one
     HTTP/1.0 response and close. [/metrics] is the full Prometheus
     exposition; [/metrics/counters] restricts it to counters, which are
     deterministic under a seeded fault plan (gauges and histograms
     carry wall-clock noise) — the byte-stable variant CI diffs. *)
  let handle_http c line =
    match String.split_on_char ' ' line with
    | "GET" :: target :: _ ->
        update_serve_gauges ();
        let respond status ctype body =
          handle_tevs
            (Transport.send tr c
               (Printf.sprintf
                  "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
                  status ctype (String.length body) body))
        in
        Log.debug "scrape"
          [ ("cid", Obs.Jtext.Int (Transport.cid c)); ("target", Obs.Jtext.Str target) ];
        (match target with
        | "/metrics" ->
            respond "200 OK" "text/plain; version=0.0.4" (Obs.Metrics.prometheus_string ())
        | "/metrics/counters" ->
            respond "200 OK" "text/plain; version=0.0.4"
              (Obs.Metrics.prometheus_string ~only_counters:true ())
        | _ -> respond "404 Not Found" "text/plain" "not found\n");
        Transport.close_after_flush tr c
    | _ -> ()
  in
  let admit c line =
    if String.trim line = "" then ()
    else if String.starts_with ~prefix:"GET " line then handle_http c line
    else
      let send_reply r = handle_tevs (Transport.send tr c (reply_to_json r)) in
      match Json.parse line with
      | Ok v when is_stats_request v ->
          let id =
            Option.value ~default:"" (Option.bind (Json.member "id" v) Json.to_str_opt)
          in
          update_serve_gauges ();
          handle_tevs (Transport.send tr c (stats_line id))
      | _ -> begin
          match job_of_json line with
          | Error msg ->
              send_reply (failed ~id:"" ~kind:"bad-job" "unparseable job line: %s" msg);
              (* A malformed line poisons only this client: socket framing
                 after garbage is untrustworthy, so the connection closes
                 once the error reply flushes. The stdio client keeps the
                 historical tolerant behavior. *)
              if not (Transport.eof_drains c) then begin
                cancel_client c;
                Transport.close_after_flush tr c
              end
          | Ok job ->
              let cid = Transport.cid c in
              let iid = internal_id cid job.id in
              if Hashtbl.mem owners iid then
                send_reply
                  (failed ~id:job.id ~kind:"bad-job" "duplicate job id still in flight")
              else if !draining then
                send_reply
                  (failed ~retriable:true ~id:job.id ~kind:"overloaded"
                     "server draining; resubmit later")
              else if total_load () >= cfg.queue_cap then begin
                (* Load shedding: a full queue answers immediately instead
                   of buffering without bound; the client may resubmit. *)
                Obs.Metrics.incr m_shed;
                Log.warn "shed"
                  [ ("cid", Obs.Jtext.Int cid); ("id", Obs.Jtext.Str job.id) ];
                send_reply
                  (failed ~retriable:true ~id:job.id ~kind:"overloaded"
                     "queue full (%d jobs); resubmit later" cfg.queue_cap)
              end
              else begin
                (* The serve-side request span: parented by the client's
                   propagated context, parent of the engine's job span. *)
                let rspan =
                  Trace.open_span
                    ?parent:(Option.bind job.trace Trace.ctx_of_string)
                    ~args:[ ("cid", Obs.Jtext.Int cid); ("id", Obs.Jtext.Str job.id) ]
                    "request"
                in
                let digest = Journal.canonical_digest job in
                match Cache.find cache ~digest ~id:job.id with
                | Cache.Hit r ->
                    Trace.instant ~args:[ ("id", Obs.Jtext.Str job.id) ] "cache-hit";
                    close_request ~outcome:"cache-hit" rspan;
                    Option.iter
                      (fun jl ->
                        Journal.append jl (Journal.Done { id = job.id; digest; reply = r }))
                      jnl;
                    send_reply r
                | Cache.Miss | Cache.Cert_reject _ ->
                    Hashtbl.replace owners iid (cid, job.id, job, rspan);
                    let trace =
                      match rspan with
                      | Some h -> Some (Trace.ctx_to_string (Trace.handle_ctx h))
                      | None -> job.trace
                    in
                    Admission.enqueue adm cid { job with id = iid; trace }
              end
        end
  in
  let handle_tev = function
    | Transport.Accepted c ->
        Trace.instant ~args:[ ("cid", Obs.Jtext.Int (Transport.cid c)) ] "client-accept"
    | Transport.Line (c, line) ->
        (* Lines split from the same read batch as a poisoning line
           still arrive as events; a closing client's input is dead.
           (A torn trailing line at EOF is [St_eof], not closing, and
           is still admitted.) *)
        if not (Transport.closing c) then admit c line
    | Transport.Eof c ->
        (* A zero read from a socket client means the peer is done
           sending — cancel its queued jobs. Inflight jobs still settle
           (journal, cache) and delivery is still attempted: the write
           half may outlive the read half. The stdio client instead
           drains to completion, as `serve` always has. *)
        if not (Transport.eof_drains c) then cancel_client c
    | Transport.Overlong c ->
        Log.warn "overlong-line" [ ("cid", Obs.Jtext.Int (Transport.cid c)) ];
        handle_tevs
          (Transport.send tr c
             (reply_to_json
                (failed ~id:"" ~kind:"bad-job" "input line exceeds the size limit")));
        cancel_client c
    | Transport.Dead (c, reason) ->
        Trace.instant
          ~args:
            [ ("cid", Obs.Jtext.Int (Transport.cid c)); ("reason", Obs.Jtext.Str reason) ]
          "client-dead";
        Log.info "client-dead"
          [ ("cid", Obs.Jtext.Int (Transport.cid c)); ("reason", Obs.Jtext.Str reason) ];
        cancel_client c
  in
  tev_handler := handle_tev;
  let owns_jobs cid =
    Hashtbl.fold (fun _ (ocid, _, _, _) acc -> acc || ocid = cid) owners false
  in
  (* A client at EOF with nothing owed and nothing buffered is done. *)
  let sweep () =
    List.iter
      (fun c ->
        if
          Transport.at_eof c
          && Transport.pending_out c = 0
          && not (owns_jobs (Transport.cid c))
        then Transport.drop tr c)
      (Transport.clients tr)
  in
  Fun.protect
    ~finally:(fun () ->
      (* The journal must close (releasing its lock) on every exit path,
         including a signal-initiated drain — a restarted server reopens
         it immediately. The trace sink is NOT finished here: it belongs
         to the process (the CLI flushes it [at_exit]), and an embedding
         caller may still have spans of its own open across this call. *)
      Option.iter Journal.close jnl;
      Transport.shutdown tr;
      Pool.shutdown e.pool;
      List.iter
        (fun (s, old) ->
          match Sys.set_signal s old with
          | () -> ()
          | exception Invalid_argument _ -> ()
          | exception Sys_error _ -> ())
        saved_signals)
    (fun () ->
      while
        (not !draining)
        && (Transport.listening tr || Transport.clients tr <> [] || total_load () > 0)
      do
        feed ();
        (* Promote backed-off retries even when admission has nothing new
           to feed: a crashed job's delayed retry must re-dispatch on its
           own — [engine_timeout] wakes the poll for exactly this. *)
        dispatch_ready e;
        update_serve_gauges ();
        let extra = Transport.read_fds ~accepting:(not !draining) tr in
        let extra_write = Transport.write_fds tr in
        let events = Pool.poll ~extra ~extra_write ~timeout:(engine_timeout e) e.pool in
        List.iter
          (function
            | Pool.Input fd -> handle_tevs (Transport.handle_readable tr fd)
            | Pool.Writable fd -> handle_tevs (Transport.handle_writable tr fd)
            | ev -> handle_event e ev)
          events;
        handle_tevs (Transport.check_timeouts tr);
        feed ();
        sweep ()
      done;
      if !draining then begin
        update_serve_gauges ();
        (* Graceful drain: stop accepting, shed everything still queued
           (retriable — a resubmission after restart can succeed), give
           inflight jobs [drain_grace] seconds to settle, flush what the
           clients will take, exit. *)
        Transport.close_listeners tr;
        List.iter
          (fun c ->
            List.iter
              (fun (j : job) ->
                match Hashtbl.find_opt owners j.id with
                | None -> ()
                | Some (_, orig, _, rspan) ->
                    Hashtbl.remove owners j.id;
                    Obs.Metrics.incr m_serve_cancelled;
                    close_request ~outcome:"shed" rspan;
                    handle_tevs
                      (Transport.send tr c
                         (reply_to_json
                            (failed ~retriable:true ~id:orig ~kind:"overloaded"
                               "server draining; resubmit later"))))
              (Admission.cancel adm (Transport.cid c)))
          (Transport.clients tr);
        let deadline = now_s () +. scfg.drain_grace in
        while Hashtbl.length owners > 0 && now_s () < deadline do
          dispatch_ready e;
          let extra_write = Transport.write_fds tr in
          let timeout = Float.min 0.1 (Float.max 0.01 (deadline -. now_s ())) in
          List.iter
            (function
              | Pool.Input _ -> ()
              | Pool.Writable fd -> handle_tevs (Transport.handle_writable tr fd)
              | ev -> handle_event e ev)
            (Pool.poll ~extra_write ~timeout e.pool)
        done;
        (* Whatever outlived the grace period is shed too; its [Started]
           journal entry records that it never settled. *)
        let leftovers = Hashtbl.fold (fun iid own acc -> (iid, own) :: acc) owners [] in
        List.iter
          (fun (iid, (cid, orig, _, rspan)) ->
            Hashtbl.remove owners iid;
            Obs.Metrics.incr m_serve_cancelled;
            close_request ~outcome:"shed" rspan;
            deliver cid
              (failed ~retriable:true ~id:orig ~kind:"overloaded"
                 "server draining; job did not settle within the grace period"))
          leftovers;
        (* Final flush, bounded: a slow reader does not hold up the exit. *)
        let flush_deadline = now_s () +. 1.0 in
        while
          now_s () < flush_deadline
          && List.exists (fun c -> Transport.pending_out c > 0) (Transport.clients tr)
        do
          let extra_write = Transport.write_fds tr in
          List.iter
            (function
              | Pool.Writable fd -> handle_tevs (Transport.handle_writable tr fd)
              | _ -> ())
            (Pool.poll ~extra_write ~timeout:0.05 e.pool)
        done;
        update_serve_gauges ()
      end)

let serve cfg ic oc =
  serve_sockets ~stdio:(ic, oc)
    { default_serve_config with base = cfg; cache_entries = 0 }
